//! A host-side burst buffer over the PFS.
//!
//! The second modern tier (after "ParaLog: Consistent Host-side
//! Logging for Parallel Checkpoints"): writes to *absorbed* files land
//! in a node-local log at memory-class bandwidth and the foreground
//! process continues immediately; a background drain channel then
//! replays the log to the underlying PFS in FIFO order on the same
//! simulated timeline. Checkpoint commits — the PR-3 recovery
//! machinery's dominant foreground cost — are the intended absorbees:
//! with the log in front, the checkpoint-interval U-curve flattens
//! because committing more often no longer costs foreground time.
//!
//! Files *not* absorbed delegate verbatim to the inner [`Pfs`] — same
//! calls, same calendars — so a burst buffer that absorbs nothing is
//! bit-identical to the plain PFS (the differential suite pins this).
//!
//! Accounting obeys a conservation law checked by proptests:
//! `bytes_logged == bytes_drained + bytes_resident`, and the drain
//! preserves per-file write order (it is a single global FIFO).

use crate::backend::{BackendKind, BackendStats, StorageBackend};
use crate::error::PfsError;
use crate::mode::IoMode;
use crate::op::{Completion, IoOp};
use crate::resilience::ResilienceStats;
use crate::server::{Pfs, PfsConfig};
use sioscope_sim::{Calendar, DetHashMap, FileId, Pid, Time};
use std::collections::VecDeque;

/// Which files the log absorbs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BurstAbsorb {
    /// Absorb writes to every file.
    All,
    /// Absorb writes only to the named file ids (e.g. the checkpoint
    /// files). `Files(vec![])` absorbs nothing — pure passthrough.
    Files(Vec<u32>),
}

/// Burst-buffer sizing and timing over an inner PFS.
#[derive(Debug, Clone)]
pub struct BurstBufferConfig {
    /// The backing store (and the machine/mesh the run executes on).
    pub pfs: PfsConfig,
    /// Which files the log absorbs.
    pub absorb: BurstAbsorb,
    /// Local log append/lookup latency (NVMe-class).
    pub log_latency: Time,
    /// Per-process log bandwidth, bytes per second.
    pub log_bandwidth_bps: u64,
    /// Background drain bandwidth to the PFS, bytes per second.
    pub drain_bandwidth_bps: u64,
}

impl BurstBufferConfig {
    /// A node-local NVMe log over the given PFS: microsecond appends,
    /// ~2 GB/s absorb, drained at roughly a 1996 I/O node's pace.
    pub fn over(pfs: PfsConfig) -> Self {
        BurstBufferConfig {
            pfs,
            absorb: BurstAbsorb::All,
            log_latency: Time::from_micros(5),
            log_bandwidth_bps: 2_000_000_000,
            drain_bandwidth_bps: 300_000_000,
        }
    }

    /// Same log, absorbing only the named files.
    pub fn absorbing(pfs: PfsConfig, files: Vec<u32>) -> Self {
        let mut cfg = BurstBufferConfig::over(pfs);
        cfg.absorb = BurstAbsorb::Files(files);
        cfg
    }
}

/// One logged write awaiting drain.
#[derive(Debug, Clone, Copy)]
struct DrainEntry {
    len: u64,
    /// Instant the entry became visible to the drain (its log-append
    /// completion).
    ready: Time,
}

/// The burst buffer: an absorbing log plus the inner PFS.
pub struct BurstBuffer {
    absorb: BurstAbsorb,
    log_latency: Time,
    log_bandwidth_bps: u64,
    drain_bandwidth_bps: u64,
    inner: Pfs,
    /// Private pointer per (file, process) for absorbed files; also
    /// the open-handle set.
    handles: DetHashMap<(FileId, Pid), u64>,
    /// Logical size of each absorbed file as the log sees it.
    sizes: DetHashMap<FileId, u64>,
    /// One log append channel per process (node-local device).
    logs: DetHashMap<Pid, Calendar>,
    /// Global drain FIFO (preserves per-file write order).
    pending: VecDeque<DrainEntry>,
    /// Instant the drain channel frees up.
    drain_clock: Time,
    stats: BackendStats,
}

impl BurstBuffer {
    /// Build the buffer and its inner PFS.
    pub fn new(cfg: BurstBufferConfig) -> Self {
        BurstBuffer {
            absorb: cfg.absorb,
            log_latency: cfg.log_latency,
            log_bandwidth_bps: cfg.log_bandwidth_bps.max(1),
            drain_bandwidth_bps: cfg.drain_bandwidth_bps.max(1),
            inner: Pfs::new(cfg.pfs),
            handles: DetHashMap::default(),
            sizes: DetHashMap::default(),
            logs: DetHashMap::default(),
            pending: VecDeque::new(),
            drain_clock: Time::ZERO,
            stats: BackendStats::default(),
        }
    }

    /// The backing PFS (for its calendars and fault state).
    pub fn inner(&self) -> &Pfs {
        &self.inner
    }

    fn absorbs(&self, fid: FileId) -> bool {
        match &self.absorb {
            BurstAbsorb::All => true,
            BurstAbsorb::Files(ids) => ids.contains(&fid.0),
        }
    }

    fn xfer(bytes: u64, bps: u64) -> Time {
        let ns = (u128::from(bytes) * 1_000_000_000u128) / u128::from(bps);
        Time::from_nanos(ns as u64)
    }

    /// Retire every pending drain entry that finishes by `now`.
    fn advance_drain(&mut self, now: Time) {
        while let Some(front) = self.pending.front().copied() {
            let start = self.drain_clock.max(front.ready);
            let finish = start + Self::xfer(front.len, self.drain_bandwidth_bps);
            if finish > now {
                break;
            }
            self.drain_clock = finish;
            self.stats.bytes_drained += front.len;
            self.stats.bytes_resident -= front.len;
            self.stats.drain_complete = finish;
            self.pending.pop_front();
        }
    }

    fn check_exists(&self, fid: FileId) -> Result<(), PfsError> {
        if self.inner.file(fid).is_some() {
            Ok(())
        } else {
            Err(PfsError::NoSuchFile(fid))
        }
    }
}

impl StorageBackend for BurstBuffer {
    fn kind(&self) -> BackendKind {
        BackendKind::Burst
    }

    fn create_file_with_size(&mut self, name: &str, size: u64) -> FileId {
        // Every file exists on the backing PFS (dense ids, and the
        // drain needs somewhere to land); absorbed files additionally
        // track their logical size log-side.
        let fid = self.inner.create_file_with_size(name, size);
        if self.absorbs(fid) {
            self.sizes.insert(fid, size);
        }
        fid
    }

    fn submit_into(
        &mut self,
        now: Time,
        pid: Pid,
        fid: FileId,
        op: &IoOp,
        out: &mut Vec<Completion>,
    ) -> Result<bool, PfsError> {
        if !self.absorbs(fid) {
            // Verbatim passthrough: same call the plain PFS would see.
            let r = self.inner.submit_into(now, pid, fid, op, out);
            if r.is_ok() {
                self.stats.passthrough_ops += 1;
            }
            return r;
        }

        self.check_exists(fid)?;
        self.advance_drain(now);
        let key = (fid, pid);
        let open = self.handles.contains_key(&key);

        let completion = |finish: Time, bytes: u64, offset: u64| Completion {
            pid,
            finish,
            bytes,
            offset,
            kind: op.kind(),
            // The log is exactly the PFS's M_LOG promise, kept: local
            // append, background ordering.
            mode: IoMode::MLog,
        };

        match op {
            IoOp::Open | IoOp::Gopen { .. } => {
                if open {
                    return Err(PfsError::AlreadyOpen { file: fid, pid });
                }
                // The log has no collective state: gopen completes
                // per-process at append latency.
                self.handles.insert(key, 0);
                self.stats.absorbed_ops += 1;
                out.push(completion(now + self.log_latency, 0, 0));
                Ok(true)
            }
            IoOp::Close => {
                if !open {
                    return Err(PfsError::NotOpen { file: fid, pid });
                }
                self.handles.remove(&key);
                self.stats.absorbed_ops += 1;
                out.push(completion(now + self.log_latency, 0, 0));
                Ok(true)
            }
            IoOp::Seek { offset } => {
                if !open {
                    return Err(PfsError::NotOpen { file: fid, pid });
                }
                self.handles.insert(key, *offset);
                self.stats.absorbed_ops += 1;
                out.push(completion(now + self.log_latency, 0, *offset));
                Ok(true)
            }
            IoOp::SetIoMode { .. } | IoOp::SetBuffering { .. } | IoOp::Flush => {
                if !open {
                    return Err(PfsError::NotOpen { file: fid, pid });
                }
                let ptr = self.handles[&key];
                self.stats.absorbed_ops += 1;
                out.push(completion(now + self.log_latency, 0, ptr));
                Ok(true)
            }
            IoOp::Read { size } => {
                if !open {
                    return Err(PfsError::NotOpen { file: fid, pid });
                }
                // Absorbed files are read back from the log itself
                // (it caches what it absorbed), at log bandwidth.
                let ptr = self.handles[&key];
                let avail = self.sizes[&fid].saturating_sub(ptr);
                let bytes = (*size).min(avail);
                let cal = self.logs.entry(pid).or_default();
                let res = cal.reserve(
                    now + self.log_latency,
                    Self::xfer(bytes, self.log_bandwidth_bps),
                );
                self.stats.absorbed_ops += 1;
                self.handles.insert(key, ptr + bytes);
                out.push(completion(res.finish, bytes, ptr));
                Ok(true)
            }
            IoOp::Write { size } => {
                if !open {
                    return Err(PfsError::NotOpen { file: fid, pid });
                }
                let ptr = self.handles[&key];
                let cal = self.logs.entry(pid).or_default();
                let res = cal.reserve(
                    now + self.log_latency,
                    Self::xfer(*size, self.log_bandwidth_bps),
                );
                self.stats.bytes_logged += *size;
                self.stats.bytes_resident += *size;
                self.stats.absorbed_ops += 1;
                self.pending.push_back(DrainEntry {
                    len: *size,
                    ready: res.finish,
                });
                let sz = self.sizes.get_mut(&fid).expect("absorbed file size");
                *sz = (*sz).max(ptr + *size);
                self.handles.insert(key, ptr + *size);
                out.push(completion(res.finish, *size, ptr));
                Ok(true)
            }
        }
    }

    fn fault_transition_times(&self) -> Vec<Time> {
        self.inner
            .fault_state()
            .map(|s| s.transitions().to_vec())
            .unwrap_or_default()
    }

    fn forming_collectives(&self) -> usize {
        self.inner.forming_collectives()
    }

    fn resilience_stats(&self) -> ResilienceStats {
        self.inner.resilience_stats()
    }

    fn quiesce(&mut self, now: Time) -> Time {
        while let Some(front) = self.pending.pop_front() {
            let start = self.drain_clock.max(front.ready);
            let finish = start + Self::xfer(front.len, self.drain_bandwidth_bps);
            self.drain_clock = finish;
            self.stats.bytes_drained += front.len;
            self.stats.bytes_resident -= front.len;
            self.stats.drain_complete = finish;
        }
        now.max(self.drain_clock)
    }

    fn stats(&self) -> BackendStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn buffer(absorb: BurstAbsorb) -> BurstBuffer {
        let mut cfg = BurstBufferConfig::over(PfsConfig::tiny());
        cfg.absorb = absorb;
        BurstBuffer::new(cfg)
    }

    fn one(
        b: &mut BurstBuffer,
        now: Time,
        pid: Pid,
        fid: FileId,
        op: &IoOp,
    ) -> Result<Completion, PfsError> {
        let mut out = Vec::new();
        let done = b.submit_into(now, pid, fid, op, &mut out)?;
        assert!(done);
        assert_eq!(out.len(), 1);
        Ok(out[0])
    }

    #[test]
    fn absorbed_writes_complete_at_log_speed_and_drain_later() {
        let mut b = buffer(BurstAbsorb::All);
        let fid = b.create_file_with_size("ckpt", 0);
        let p = Pid(0);
        one(&mut b, Time::ZERO, p, fid, &IoOp::Open).unwrap();
        let w = one(&mut b, Time::ZERO, p, fid, &IoOp::Write { size: 1 << 20 }).unwrap();
        assert_eq!(w.mode, IoMode::MLog);
        let s = b.stats();
        assert_eq!(s.bytes_logged, 1 << 20);
        assert_eq!(s.bytes_resident, 1 << 20);
        assert_eq!(s.bytes_drained, 0);
        assert!(s.conserves_bytes());
        let quiet = b.quiesce(w.finish);
        let s = b.stats();
        assert_eq!(s.bytes_drained, 1 << 20);
        assert_eq!(s.bytes_resident, 0);
        assert!(s.conserves_bytes());
        assert!(quiet >= w.finish, "drain at 300 MB/s outlives the append");
        assert_eq!(s.drain_complete, quiet);
    }

    #[test]
    fn unabsorbed_files_pass_through_to_the_pfs() {
        let mut b = buffer(BurstAbsorb::Files(vec![]));
        let mut plain = Pfs::new(PfsConfig::tiny());
        let fid = b.create_file_with_size("data", 1 << 20);
        let fid2 = plain.create_file_with_size("data", 1 << 20);
        assert_eq!(fid, fid2);
        let p = Pid(0);
        for op in [
            IoOp::Open,
            IoOp::Read { size: 4096 },
            IoOp::Write { size: 4096 },
            IoOp::Close,
        ] {
            let via_buffer = one(&mut b, Time::ZERO, p, fid, &op).unwrap();
            let mut direct = Vec::new();
            plain
                .submit_into(Time::ZERO, p, fid2, &op, &mut direct)
                .unwrap();
            assert_eq!(via_buffer, direct[0], "passthrough must be verbatim");
        }
        assert_eq!(b.stats().bytes_logged, 0);
        assert_eq!(b.stats().passthrough_ops, 4);
    }

    #[test]
    fn drain_is_fifo_and_lazy() {
        let mut b = buffer(BurstAbsorb::All);
        let fid = b.create_file_with_size("f", 0);
        let p = Pid(0);
        one(&mut b, Time::ZERO, p, fid, &IoOp::Open).unwrap();
        let w1 = one(
            &mut b,
            Time::ZERO,
            p,
            fid,
            &IoOp::Write { size: 300_000_000 },
        )
        .unwrap();
        one(&mut b, w1.finish, p, fid, &IoOp::Write { size: 1000 }).unwrap();
        // First entry drains in ~1s; probing well past that retires it
        // but not necessarily instantly at the second append.
        one(
            &mut b,
            Time::from_secs(10),
            p,
            fid,
            &IoOp::Seek { offset: 0 },
        )
        .unwrap();
        let s = b.stats();
        assert_eq!(s.bytes_drained, 300_001_000);
        assert_eq!(s.bytes_resident, 0);
        assert!(s.conserves_bytes());
    }
}
