//! File striping across I/O nodes.
//!
//! PFS declusters every file across the machine's I/O nodes in
//! fixed-size stripe units (64 KB by default on the Caltech machine).
//! A request touching byte range `[offset, offset+len)` is decomposed
//! into per-I/O-node segments; the segments transfer in parallel, so a
//! stripe-aligned 128 KB request on a 16-array system keeps two arrays
//! busy with one full stripe unit each, while a 200-byte request costs
//! a full positioning delay on one array.

use serde::{Deserialize, Serialize};

/// A contiguous piece of a request that lands on one I/O node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Segment {
    /// Index of the I/O node serving this piece.
    pub ion: u32,
    /// Byte offset within the file where the piece begins.
    pub offset: u64,
    /// Piece length in bytes.
    pub len: u64,
}

/// Round-robin stripe layout.
///
/// ```
/// use sioscope_pfs::StripeLayout;
///
/// let layout = StripeLayout::paragon_default(); // 64 KB over 16 I/O nodes
/// // A 128 KB request starting at zero spans exactly two I/O nodes —
/// // the configuration ESCAT's developers tuned their reads to.
/// assert_eq!(layout.fanout(0, 128 * 1024), 2);
/// assert!(layout.aligned(0, 128 * 1024));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StripeLayout {
    /// Stripe unit in bytes (PFS default: 64 KB).
    pub unit: u64,
    /// Number of I/O nodes the file is striped across.
    pub io_nodes: u32,
}

impl StripeLayout {
    /// The Caltech default: 64 KB units over 16 I/O nodes.
    pub fn paragon_default() -> Self {
        StripeLayout {
            unit: 64 * 1024,
            io_nodes: 16,
        }
    }

    /// Construct a layout.
    ///
    /// # Panics
    /// Panics if `unit` or `io_nodes` is zero.
    pub fn new(unit: u64, io_nodes: u32) -> Self {
        assert!(unit > 0, "stripe unit must be positive");
        assert!(io_nodes > 0, "need at least one I/O node");
        StripeLayout { unit, io_nodes }
    }

    /// The I/O node holding the stripe unit that contains `offset`.
    pub fn ion_of(&self, offset: u64) -> u32 {
        ((offset / self.unit) % u64::from(self.io_nodes)) as u32
    }

    /// Decompose `[offset, offset+len)` into per-I/O-node segments, in
    /// file order. Adjacent stripe units on the same I/O node are *not*
    /// merged: each unit is a separate disk request, matching how the
    /// stripe directory dispatched transfers.
    pub fn segments(&self, offset: u64, len: u64) -> Vec<Segment> {
        let mut out = Vec::new();
        if len == 0 {
            return out;
        }
        let mut cur = offset;
        let end = offset + len;
        while cur < end {
            let unit_end = (cur / self.unit + 1) * self.unit;
            let seg_end = unit_end.min(end);
            out.push(Segment {
                ion: self.ion_of(cur),
                offset: cur,
                len: seg_end - cur,
            });
            cur = seg_end;
        }
        out
    }

    /// Number of *distinct* I/O nodes touched by a request — the
    /// request's effective parallelism.
    pub fn fanout(&self, offset: u64, len: u64) -> u32 {
        let mut seen = vec![false; self.io_nodes as usize];
        let mut n = 0;
        for seg in self.segments(offset, len) {
            if !seen[seg.ion as usize] {
                seen[seg.ion as usize] = true;
                n += 1;
            }
        }
        n
    }

    /// `true` iff a request of `len` bytes starting at `offset` is
    /// stripe-aligned (starts on a unit boundary and is a whole number
    /// of units) — the condition §4.2 says M_RECORD wants for good
    /// performance.
    pub fn aligned(&self, offset: u64, len: u64) -> bool {
        offset.is_multiple_of(self.unit) && len.is_multiple_of(self.unit) && len > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_request_stays_on_one_ion() {
        let l = StripeLayout::paragon_default();
        let segs = l.segments(0, 2048);
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].ion, 0);
        assert_eq!(segs[0].len, 2048);
        assert_eq!(l.fanout(0, 2048), 1);
    }

    #[test]
    fn two_stripe_request_spans_two_ions() {
        let l = StripeLayout::paragon_default();
        let segs = l.segments(0, 128 * 1024);
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[0].ion, 0);
        assert_eq!(segs[1].ion, 1);
        assert_eq!(l.fanout(0, 128 * 1024), 2);
        assert!(l.aligned(0, 128 * 1024));
    }

    #[test]
    fn unaligned_request_splits_at_boundaries() {
        let l = StripeLayout::new(100, 4);
        let segs = l.segments(50, 200);
        // [50,100) on ion0, [100,200) on ion1, [200,250) on ion2.
        assert_eq!(segs.len(), 3);
        assert_eq!(segs[0], Segment { ion: 0, offset: 50, len: 50 });
        assert_eq!(segs[1], Segment { ion: 1, offset: 100, len: 100 });
        assert_eq!(segs[2], Segment { ion: 2, offset: 200, len: 50 });
    }

    #[test]
    fn round_robin_wraps() {
        let l = StripeLayout::new(10, 3);
        assert_eq!(l.ion_of(0), 0);
        assert_eq!(l.ion_of(10), 1);
        assert_eq!(l.ion_of(20), 2);
        assert_eq!(l.ion_of(30), 0);
    }

    #[test]
    fn segments_conserve_bytes() {
        let l = StripeLayout::new(64 * 1024, 16);
        for (off, len) in [(0u64, 1u64), (63, 131072), (65536, 40), (1, 1_000_000)] {
            let total: u64 = l.segments(off, len).iter().map(|s| s.len).sum();
            assert_eq!(total, len, "offset {off} len {len}");
        }
    }

    #[test]
    fn zero_length_request_is_empty() {
        let l = StripeLayout::paragon_default();
        assert!(l.segments(123, 0).is_empty());
        assert_eq!(l.fanout(123, 0), 0);
        assert!(!l.aligned(0, 0));
    }

    #[test]
    fn alignment_requires_boundary_and_multiple() {
        let l = StripeLayout::paragon_default();
        assert!(l.aligned(65536, 65536));
        assert!(!l.aligned(1, 65536));
        assert!(!l.aligned(0, 65537));
    }

    #[test]
    #[should_panic(expected = "stripe unit")]
    fn zero_unit_panics() {
        StripeLayout::new(0, 4);
    }
}
