//! Machine-configuration sweeps — the paper's stated future work.
//!
//! §7: *"we plan to examine the effects of different machine
//! configurations (e.g., number of I/O nodes) and different
//! architectures on I/O performance."* These sweeps re-run a paper
//! workload while varying one machine parameter at a time, reporting
//! execution time and total client-observed I/O time per point.

use crate::simulator::{run, RunResult, SimOptions};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use sioscope_faults::{FaultGen, FaultSchedule};
use sioscope_pfs::PfsConfig;
use sioscope_sim::Time;
use sioscope_workloads::Workload;
use std::fmt::Write as _;

/// Every machine-configuration sweep, as a stable identifier.
///
/// The ids double as CLI arguments (`repro --sweeps=io_nodes,...`) and
/// as the `parameter` column of the rendered table, so a sweep can be
/// selected by the same name it reports under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum SweepId {
    IoNodes,
    StripeUnit,
    DiskBandwidth,
    DegradedArrays,
    FaultIntensity,
}

impl SweepId {
    /// All sweeps in presentation order.
    pub fn all() -> Vec<SweepId> {
        use SweepId::*;
        vec![
            IoNodes,
            StripeUnit,
            DiskBandwidth,
            DegradedArrays,
            FaultIntensity,
        ]
    }

    /// Stable identifier (CLI arguments, artifact file names).
    pub fn id(self) -> &'static str {
        use SweepId::*;
        match self {
            IoNodes => "io_nodes",
            StripeUnit => "stripe_unit",
            DiskBandwidth => "disk_bandwidth",
            DegradedArrays => "degraded_arrays",
            FaultIntensity => "fault_intensity",
        }
    }

    /// Parse an identifier.
    pub fn from_id(id: &str) -> Option<SweepId> {
        SweepId::all().into_iter().find(|s| s.id() == id)
    }
}

/// One sweep point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Varied-parameter label (e.g. `"io_nodes=8"`).
    pub label: String,
    /// Parameter value (numeric, for plotting).
    pub value: u64,
    /// Wall-clock execution time of the run.
    pub exec_time: Time,
    /// Total client-observed I/O time.
    pub io_time: Time,
    /// Events processed (simulation cost indicator).
    pub events: u64,
}

/// A completed sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sweep {
    /// What was varied.
    pub parameter: &'static str,
    /// Workload name.
    pub workload: String,
    /// The points, in parameter order.
    pub points: Vec<SweepPoint>,
}

impl Sweep {
    /// Speedup of total I/O time from the first to the best point.
    pub fn best_io_speedup(&self) -> f64 {
        let first = self.points.first().map(|p| p.io_time.as_secs_f64());
        let best = self
            .points
            .iter()
            .map(|p| p.io_time.as_secs_f64())
            .fold(f64::INFINITY, f64::min);
        match first {
            Some(f) if best > 0.0 => f / best,
            _ => 1.0,
        }
    }

    /// Is I/O time non-increasing along the sweep (more resources
    /// never hurt)?
    pub fn io_time_monotone_nonincreasing(&self) -> bool {
        self.points
            .windows(2)
            .all(|w| w[1].io_time <= w[0].io_time.scale(1.02))
    }

    /// Is execution time non-decreasing along the sweep (more faults
    /// never help)? Allows 2% slack for re-routing that incidentally
    /// rebalances load.
    pub fn exec_time_monotone_nondecreasing(&self) -> bool {
        self.points
            .windows(2)
            .all(|w| w[1].exec_time >= w[0].exec_time.scale(0.98))
    }

    /// Render as a fixed-width table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Sweep of {} over {} ({} points)",
            self.parameter,
            self.workload,
            self.points.len()
        );
        let _ = writeln!(
            out,
            "{:<18}{:>14}{:>14}{:>12}",
            self.parameter, "exec time", "total I/O", "events"
        );
        let _ = writeln!(out, "{}", "-".repeat(58));
        for p in &self.points {
            let _ = writeln!(
                out,
                "{:<18}{:>13.1}s{:>13.1}s{:>12}",
                p.label,
                p.exec_time.as_secs_f64(),
                p.io_time.as_secs_f64(),
                p.events
            );
        }
        out
    }
}

fn run_point(workload: &Workload, cfg: PfsConfig, label: String, value: u64) -> SweepPoint {
    let r: RunResult = run(workload, cfg, SimOptions::default())
        .unwrap_or_else(|e| panic!("sweep point {label}: {e}"));
    SweepPoint {
        label,
        value,
        exec_time: r.exec_time,
        io_time: r.total_io_time(),
        events: r.events,
    }
}

/// Vary the number of I/O nodes (the paper's headline example of a
/// configuration study). Each point re-runs `workload` with the same
/// compute partition but `n` I/O nodes/disk arrays.
pub fn io_node_sweep(workload: &Workload, io_nodes: &[u32]) -> Sweep {
    let mut points: Vec<SweepPoint> = io_nodes
        .par_iter()
        .map(|&n| {
            let mut cfg = PfsConfig::caltech(workload.nodes, workload.os);
            cfg.machine.io_nodes = n;
            run_point(workload, cfg, format!("io_nodes={n}"), u64::from(n))
        })
        .collect();
    points.sort_by_key(|p| p.value);
    Sweep {
        parameter: "io_nodes",
        workload: workload.name.clone(),
        points,
    }
}

/// Vary the PFS stripe unit. Request sizes that were tuned to the
/// 64 KB default (ESCAT's 128 KB M_RECORD reads) stop being
/// stripe-multiples at other units — quantifying how tightly the
/// paper's applications were coupled to one file-system constant
/// (§6.2: "optimizations are closely tied to the idiosyncrasies of
/// the parallel I/O system").
pub fn stripe_sweep(workload: &Workload, units: &[u64]) -> Sweep {
    let mut points: Vec<SweepPoint> = units
        .par_iter()
        .map(|&u| {
            let mut cfg = PfsConfig::caltech(workload.nodes, workload.os);
            cfg.stripe_unit = u;
            run_point(workload, cfg, format!("stripe={}K", u >> 10), u)
        })
        .collect();
    points.sort_by_key(|p| p.value);
    Sweep {
        parameter: "stripe_unit",
        workload: workload.name.clone(),
        points,
    }
}

/// Vary the disk array bandwidth (architecture generations).
pub fn disk_bandwidth_sweep(workload: &Workload, bandwidths_mbps: &[u32]) -> Sweep {
    let mut points: Vec<SweepPoint> = bandwidths_mbps
        .par_iter()
        .map(|&mbps| {
            let mut cfg = PfsConfig::caltech(workload.nodes, workload.os);
            cfg.machine.disk.bandwidth_bps = f64::from(mbps) * 1e6;
            run_point(workload, cfg, format!("{mbps}MB/s"), u64::from(mbps))
        })
        .collect();
    points.sort_by_key(|p| p.value);
    Sweep {
        parameter: "disk_bandwidth",
        workload: workload.name.clone(),
        points,
    }
}

/// Vary the number of degraded (single-spindle-failure) RAID-3
/// arrays — failure injection at the device level. Each point is a
/// fault schedule of permanent spindle failures at time zero, so this
/// sweep is now a client of the `sioscope-faults` subsystem rather
/// than a special-cased machine flag.
pub fn degraded_array_sweep(workload: &Workload, degraded_counts: &[u32]) -> Sweep {
    let mut points: Vec<SweepPoint> = degraded_counts
        .par_iter()
        .map(|&k| {
            let mut cfg = PfsConfig::caltech(workload.nodes, workload.os);
            let ions: Vec<u32> = (0..k.min(cfg.machine.io_nodes)).collect();
            cfg.faults = FaultSchedule::degraded_from_start(&ions);
            run_point(workload, cfg, format!("degraded={k}"), u64::from(k))
        })
        .collect();
    points.sort_by_key(|p| p.value);
    Sweep {
        parameter: "degraded_arrays",
        workload: workload.name.clone(),
        points,
    }
}

/// Vary the fault intensity: point `k` runs under the first `k`
/// events of the seeded fault stream. Because the stream is drawn
/// sequentially, intensity `k`'s scenario is a strict prefix of
/// `k + 1`'s — each point adds faults to the previous scenario
/// instead of rolling an unrelated one, so execution-time inflation
/// accumulates along the axis. Fault instants and window lengths are
/// placed as fractions of the healthy run's execution time.
pub fn fault_intensity_sweep(workload: &Workload, intensities: &[usize], seed: u64) -> Sweep {
    let base_cfg = PfsConfig::caltech(workload.nodes, workload.os);
    let horizon = run(workload, base_cfg.clone(), SimOptions::default())
        .unwrap_or_else(|e| panic!("fault sweep baseline: {e}"))
        .exec_time;
    let io_nodes = base_cfg.machine.io_nodes;
    let mut points: Vec<SweepPoint> = intensities
        .par_iter()
        .map(|&k| {
            let mut cfg = base_cfg.clone();
            cfg.faults = FaultGen::new(seed, horizon, io_nodes)
                .with_events(k)
                .schedule();
            run_point(workload, cfg, format!("faults={k}"), k as u64)
        })
        .collect();
    points.sort_by_key(|p| p.value);
    Sweep {
        parameter: "fault_intensity",
        workload: workload.name.clone(),
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sioscope_workloads::{EscatConfig, EscatVersion, PrismConfig, PrismVersion};

    #[test]
    fn sweep_ids_round_trip() {
        for s in SweepId::all() {
            assert_eq!(SweepId::from_id(s.id()), Some(s));
        }
        assert_eq!(SweepId::from_id("nope"), None);
        let ids: Vec<&str> = SweepId::all().iter().map(|s| s.id()).collect();
        assert_eq!(
            ids,
            vec![
                "io_nodes",
                "stripe_unit",
                "disk_bandwidth",
                "degraded_arrays",
                "fault_intensity"
            ]
        );
    }

    #[test]
    fn io_node_sweep_runs_and_orders_points() {
        let w = EscatConfig::tiny(EscatVersion::C).build();
        let sweep = io_node_sweep(&w, &[2, 8, 4]);
        assert_eq!(sweep.points.len(), 3);
        assert_eq!(sweep.points[0].value, 2);
        assert_eq!(sweep.points[2].value, 8);
        let text = sweep.render();
        assert!(text.contains("io_nodes=4"));
    }

    #[test]
    fn more_io_nodes_never_hurt_a_staging_workload() {
        let w = EscatConfig::tiny(EscatVersion::B).build();
        let sweep = io_node_sweep(&w, &[1, 2, 4, 8, 16]);
        assert!(sweep.io_time_monotone_nonincreasing(), "{}", sweep.render());
        assert!(sweep.best_io_speedup() >= 1.0);
    }

    #[test]
    fn stripe_sweep_runs() {
        let w = PrismConfig::tiny(PrismVersion::B).build();
        let sweep = stripe_sweep(&w, &[16 << 10, 64 << 10, 256 << 10]);
        assert_eq!(sweep.points.len(), 3);
        assert!(sweep.points.iter().all(|p| p.io_time > Time::ZERO));
    }

    #[test]
    fn degraded_arrays_increase_io_time() {
        let w = PrismConfig::tiny(PrismVersion::B).build();
        let sweep = degraded_array_sweep(&w, &[0, 1, 2]);
        let healthy = sweep.points.first().expect("points").io_time;
        let worst = sweep.points.last().expect("points").io_time;
        assert!(worst > healthy, "{}", sweep.render());
        // Bounded: degradation is a constant factor, not a collapse.
        assert!(worst < healthy.scale(3.0), "{}", sweep.render());
    }

    #[test]
    fn fault_intensity_zero_matches_healthy_and_inflation_accumulates() {
        let w = PrismConfig::tiny(PrismVersion::B).build();
        let sweep = fault_intensity_sweep(&w, &[0, 3, 8], 0xF417);
        assert_eq!(sweep.points.len(), 3);
        let healthy = run(&w, PfsConfig::caltech(w.nodes, w.os), SimOptions::default()).unwrap();
        assert_eq!(
            sweep.points[0].exec_time, healthy.exec_time,
            "intensity 0 is the fault-free run"
        );
        let first = sweep.points.first().expect("points").exec_time;
        let last = sweep.points.last().expect("points").exec_time;
        assert!(last > first, "{}", sweep.render());
        assert!(
            sweep.exec_time_monotone_nondecreasing(),
            "{}",
            sweep.render()
        );
    }

    #[test]
    fn faster_disks_reduce_io_time() {
        let w = PrismConfig::tiny(PrismVersion::A).build();
        let sweep = disk_bandwidth_sweep(&w, &[2, 8, 32]);
        let first = sweep.points.first().expect("points").io_time;
        let last = sweep.points.last().expect("points").io_time;
        assert!(last <= first, "{}", sweep.render());
    }
}
