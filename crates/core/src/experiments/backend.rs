//! Cross-tier backend comparisons: the same 1996 request streams
//! replayed against three storage tiers.
//!
//! The paper's pathologies — M_UNIX token serialization, gopen
//! rendezvous stalls, small unaligned requests — were measured on one
//! file system. Replaying the identical workload programs through the
//! [`StorageBackend`](sioscope_pfs::StorageBackend) seam answers the
//! evolutionary question directly: which pathologies are artifacts of
//! the 1996 tier (they vanish on the object store, which has no
//! shared-pointer modes), which are intrinsic to the request stream
//! (per-request metadata/latency overhead survives every tier), and
//! which *invert* (striping parallelism becomes single-target
//! serialization when a file maps wholly to one object).

use crate::experiments::{Experiment, ExperimentOutput, Scale, ShapeCheck};
use crate::simulator::{run_backend, RunResult, SimOptions};
use sioscope_pfs::{
    BackendConfig, BackendKind, BurstBufferConfig, ObjectStoreConfig, OpKind, PfsConfig,
};
use sioscope_workloads::{EscatConfig, EscatVersion, PrismConfig, PrismVersion, Workload};
use std::fmt::Write as _;

fn tier_config(kind: BackendKind, workload: &Workload) -> BackendConfig {
    match kind {
        BackendKind::Pfs => BackendConfig::Pfs(PfsConfig::caltech(workload.nodes, workload.os)),
        BackendKind::Object => BackendConfig::Object(ObjectStoreConfig::modern(workload.nodes)),
        BackendKind::Burst => BackendConfig::Burst(BurstBufferConfig::over(PfsConfig::caltech(
            workload.nodes,
            workload.os,
        ))),
    }
}

fn run_tier(kind: BackendKind, workload: &Workload) -> RunResult {
    run_backend(
        workload,
        &tier_config(kind, workload),
        SimOptions::default(),
    )
    .unwrap_or_else(|e| panic!("{} on {kind}: {e}", workload.name))
}

fn cross_tier(experiment: Experiment, title: &str, workloads: Vec<Workload>) -> ExperimentOutput {
    let mut rendered = String::new();
    let mut checks = Vec::new();
    let _ = writeln!(rendered, "{title}");
    let _ = writeln!(
        rendered,
        "  {:<14}{:<8}{:>12}{:>12}{:>10}  tier activity",
        "workload", "tier", "exec time", "total I/O", "events"
    );
    let _ = writeln!(rendered, "  {}", "-".repeat(86));

    for w in &workloads {
        let mut per_tier = Vec::new();
        for kind in BackendKind::all() {
            let r = run_tier(kind, w);
            let s = r.backend_stats;
            let activity = match kind {
                BackendKind::Pfs => "striped PFS (measured path)".to_string(),
                BackendKind::Object => format!("{} PUTs, {} GETs", s.puts, s.gets),
                BackendKind::Burst => format!(
                    "{} B logged, drained by {}",
                    s.bytes_logged, s.drain_complete
                ),
            };
            let _ = writeln!(
                rendered,
                "  {:<14}{:<8}{:>11.2}s{:>11.2}s{:>10}  {}",
                format!("{} {}", w.name, w.version),
                kind.id(),
                r.exec_time.as_secs_f64(),
                r.total_io_time().as_secs_f64(),
                r.events,
                activity
            );
            per_tier.push((kind, r));
        }

        let label = format!("{} {}", w.name, w.version);
        let pfs = &per_tier[0].1;
        let object = &per_tier[1].1;
        let burst = &per_tier[2].1;

        // Same request stream on every tier: the trace has one record
        // per completed client call regardless of how the tier served
        // it.
        let lens: Vec<usize> = per_tier.iter().map(|(_, r)| r.trace.len()).collect();
        checks.push(ShapeCheck::new(
            format!("{label}: identical request stream across tiers"),
            lens.windows(2).all(|p| p[0] == p[1]),
            format!("trace lengths pfs/object/burst = {lens:?}"),
        ));

        // Every data op the object tier saw is accounted as a PUT or
        // GET — the flat namespace serves the whole stream.
        let data_ops = object
            .trace
            .events()
            .iter()
            .filter(|e| e.kind == OpKind::Read || e.kind == OpKind::Write)
            .count() as u64;
        let served = object.backend_stats.puts + object.backend_stats.gets;
        checks.push(ShapeCheck::new(
            format!("{label}: object tier serves all data ops as PUT/GET"),
            served == data_ops,
            format!("{served} PUT+GET vs {data_ops} traced data ops"),
        ));

        // The gopen rendezvous pathology vanishes off the PFS: neither
        // modern tier has collective open semantics.
        checks.push(ShapeCheck::new(
            format!("{label}: no collective stalls survive on modern tiers"),
            object.resilience.is_quiet() && burst.backend_stats.conserves_bytes(),
            "object tier quiet; burst accounting conserved".to_string(),
        ));

        // Absorbing every write at NVMe speed must beat 1996 disks.
        checks.push(ShapeCheck::greater(
            format!("{label}: burst absorb is faster than the striped PFS"),
            "pfs exec (s)",
            pfs.exec_time.as_secs_f64(),
            "burst exec (s)",
            burst.exec_time.as_secs_f64(),
        ));

        // The drain conserves every logged byte and finishes.
        let bs = burst.backend_stats;
        checks.push(ShapeCheck::new(
            format!("{label}: burst drain retires the whole log"),
            bs.conserves_bytes() && bs.bytes_resident == 0 && bs.bytes_drained == bs.bytes_logged,
            format!(
                "{} logged, {} drained, {} resident",
                bs.bytes_logged, bs.bytes_drained, bs.bytes_resident
            ),
        ));
    }

    ExperimentOutput {
        experiment,
        rendered,
        checks,
    }
}

/// ESCAT versions B and C (the tuned M_RECORD progression and the
/// final restructured code) across the three tiers.
pub fn escat(scale: Scale) -> ExperimentOutput {
    let workloads = [EscatVersion::B, EscatVersion::C]
        .into_iter()
        .map(|v| match scale {
            Scale::Smoke => EscatConfig::tiny(v).build(),
            Scale::Full => EscatConfig::ethylene(v).build(),
        })
        .collect();
    cross_tier(
        Experiment::BackendEscat,
        "Backend comparison: ESCAT B and C across pfs / object / burst",
        workloads,
    )
}

/// PRISM versions A and C (the M_UNIX original and the restructured
/// code) across the three tiers.
pub fn prism(scale: Scale) -> ExperimentOutput {
    let workloads = [PrismVersion::A, PrismVersion::C]
        .into_iter()
        .map(|v| match scale {
            Scale::Smoke => PrismConfig::tiny(v).build(),
            Scale::Full => PrismConfig::test_problem(v).build(),
        })
        .collect();
    cross_tier(
        Experiment::BackendPrism,
        "Backend comparison: PRISM A and C across pfs / object / burst",
        workloads,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escat_cross_tier_checks_pass_at_smoke() {
        let out = escat(Scale::Smoke);
        assert!(out.all_pass(), "{}\n{:#?}", out.rendered, out.failures());
        assert!(out.rendered.contains("object"));
        assert!(out.rendered.contains("burst"));
    }

    #[test]
    fn prism_cross_tier_checks_pass_at_smoke() {
        let out = prism(Scale::Smoke);
        assert!(out.all_pass(), "{}\n{:#?}", out.rendered, out.failures());
    }
}
