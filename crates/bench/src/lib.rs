//! # sioscope-bench
//!
//! Benchmark harness for the sioscope reproduction:
//!
//! * the `repro` binary regenerates **every table and figure** of the
//!   paper (run `cargo run -p sioscope-bench --bin repro --release`),
//!   printing each artifact with its shape checks against the paper's
//!   published values;
//! * the Criterion benches (`cargo bench`) time the simulator on each
//!   experiment and on the PFS fast paths.

use sioscope::experiments::{Experiment, Scale};

/// Resolve the scale requested via the `SIOSCOPE_SCALE` environment
/// variable (`full` default, `smoke` for quick runs).
pub fn scale_from_env() -> Scale {
    match std::env::var("SIOSCOPE_SCALE").as_deref() {
        Ok("smoke") | Ok("SMOKE") => Scale::Smoke,
        _ => Scale::Full,
    }
}

/// Parse experiment filters from CLI arguments; empty = all.
///
/// Unknown identifiers are an error, not a no-op: `Err` carries every
/// unrecognized ID so the caller can report all of them at once.
pub fn try_experiments_from_args(args: &[String]) -> Result<Vec<Experiment>, Vec<String>> {
    let filters: Vec<&String> = args.iter().filter(|a| !a.starts_with('-')).collect();
    if filters.is_empty() {
        return Ok(Experiment::all());
    }
    let mut selected = Vec::new();
    let mut unknown = Vec::new();
    for f in filters {
        match Experiment::from_id(f) {
            Some(e) => selected.push(e),
            None => unknown.push(f.clone()),
        }
    }
    if unknown.is_empty() {
        Ok(selected)
    } else {
        Err(unknown)
    }
}

/// Parse experiment filters from CLI arguments; empty = all.
///
/// Exits with status 2 after printing the unknown IDs and the valid
/// set to stderr — a typo must not silently shrink the run to nothing.
pub fn experiments_from_args(args: &[String]) -> Vec<Experiment> {
    match try_experiments_from_args(args) {
        Ok(experiments) => experiments,
        Err(unknown) => {
            for id in &unknown {
                eprintln!("error: unknown experiment id `{id}`");
            }
            eprintln!("valid experiment ids:");
            for e in Experiment::all() {
                eprintln!("  {}", e.id());
            }
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_filtering() {
        let all = try_experiments_from_args(&[]).unwrap();
        assert_eq!(all.len(), Experiment::all().len());
        let one = try_experiments_from_args(&["escat-table2".to_string()]).unwrap();
        assert_eq!(one, vec![Experiment::EscatTable2]);
    }

    #[test]
    fn unknown_ids_are_an_error_listing_every_offender() {
        let err = try_experiments_from_args(&[
            "bogus".to_string(),
            "escat-table2".to_string(),
            "also-bogus".to_string(),
        ])
        .unwrap_err();
        assert_eq!(err, vec!["bogus".to_string(), "also-bogus".to_string()]);
    }

    #[test]
    fn flags_are_ignored_by_the_filter() {
        let got = try_experiments_from_args(&["--sweeps".to_string()]).unwrap();
        assert_eq!(got.len(), Experiment::all().len());
    }

    #[test]
    fn resilience_experiments_are_selectable() {
        let got = try_experiments_from_args(&[
            "resilience-escat".to_string(),
            "resilience-prism".to_string(),
        ])
        .unwrap();
        assert_eq!(
            got,
            vec![Experiment::ResilienceEscat, Experiment::ResiliencePrism]
        );
    }
}
