//! # sioscope-bench
//!
//! Benchmark harness for the sioscope reproduction:
//!
//! * the `repro` binary regenerates **every table and figure** of the
//!   paper (run `cargo run -p sioscope-bench --bin repro --release`),
//!   printing each artifact with its shape checks against the paper's
//!   published values;
//! * the Criterion benches (`cargo bench`) time the simulator on each
//!   experiment and on the PFS fast paths.

use sioscope::experiments::{Scale, Experiment};

/// Resolve the scale requested via the `SIOSCOPE_SCALE` environment
/// variable (`full` default, `smoke` for quick runs).
pub fn scale_from_env() -> Scale {
    match std::env::var("SIOSCOPE_SCALE").as_deref() {
        Ok("smoke") | Ok("SMOKE") => Scale::Smoke,
        _ => Scale::Full,
    }
}

/// Parse experiment filters from CLI arguments; empty = all.
pub fn experiments_from_args(args: &[String]) -> Vec<Experiment> {
    let filters: Vec<&String> = args.iter().filter(|a| !a.starts_with('-')).collect();
    if filters.is_empty() {
        Experiment::all()
    } else {
        filters
            .iter()
            .filter_map(|f| Experiment::from_id(f))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_filtering() {
        let all = experiments_from_args(&[]);
        assert_eq!(all.len(), Experiment::all().len());
        let one = experiments_from_args(&["escat-table2".to_string()]);
        assert_eq!(one, vec![Experiment::EscatTable2]);
        let none = experiments_from_args(&["bogus".to_string()]);
        assert!(none.is_empty());
    }
}
