//! Regenerate every table and figure of Smirni et al. (HPDC 1996).
//!
//! Usage:
//!
//! ```text
//! cargo run -p sioscope-bench --bin repro --release                # everything
//! cargo run -p sioscope-bench --bin repro --release escat-table2  # one artifact
//! cargo run -p sioscope-bench --bin repro --release -- --out out/ # also write files
//! SIOSCOPE_SCALE=smoke cargo run -p sioscope-bench --bin repro    # fast smoke run
//! ```
//!
//! With `--out DIR`, each artifact is written to `DIR/<id>.txt` and a
//! machine-readable summary of the shape checks to `DIR/checks.json`.
//! `--sweeps` appends the machine-configuration sweeps of the paper's
//! future-work agenda (§7); `--sweeps=io_nodes,stripe_unit` selects a
//! subset by id, and an unknown id exits with status 2 and the valid
//! set — the same contract as experiment ids.

use sioscope::experiments::run_experiment;
use sioscope::report;
use sioscope::sweeps::SweepId;
use sioscope_bench::{experiments_from_args, scale_from_env, sweeps_from_args};
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out_dir: Option<PathBuf> = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from);
    let sweep_selection = sweeps_from_args(&args);
    let filtered: Vec<String> = {
        let mut skip_next = false;
        args.iter()
            .filter(|a| {
                if skip_next {
                    skip_next = false;
                    return false;
                }
                if *a == "--out" {
                    skip_next = true;
                    return false;
                }
                *a != "--sweeps" && !a.starts_with("--sweeps=")
            })
            .cloned()
            .collect()
    };
    let scale = scale_from_env();
    let experiments = experiments_from_args(&filtered);
    if let Some(dir) = &out_dir {
        std::fs::create_dir_all(dir).expect("create --out directory");
    }

    println!("{}", report::render_paper_reference());

    let mut failures = 0usize;
    let mut check_rows = Vec::new();
    for e in experiments {
        let out = run_experiment(e, scale);
        let rendered = report::render_output(&out);
        print!("{rendered}");
        if let Some(dir) = &out_dir {
            std::fs::write(dir.join(format!("{}.txt", e.id())), &rendered).expect("write artifact");
        }
        for c in &out.checks {
            check_rows.push(serde_json::json!({
                "experiment": e.id(),
                "check": c.name,
                "pass": c.pass,
                "detail": c.detail,
            }));
        }
        failures += out.failures().len();
    }
    if let Some(selection) = sweep_selection {
        use sioscope::sweeps;
        use sioscope_workloads::{EscatConfig, EscatVersion, PrismConfig, PrismVersion};
        let escat_b = match scale_from_env() {
            sioscope::experiments::Scale::Smoke => EscatConfig::tiny(EscatVersion::B).build(),
            _ => EscatConfig::ethylene(EscatVersion::B).build(),
        };
        let prism_a = match scale_from_env() {
            sioscope::experiments::Scale::Smoke => PrismConfig::tiny(PrismVersion::A).build(),
            _ => PrismConfig::test_problem(PrismVersion::A).build(),
        };
        println!("================================================================");
        println!("Machine-configuration sweeps (the paper's §7 future work)");
        println!("================================================================");
        for id in selection {
            let sweep = match id {
                SweepId::IoNodes => sweeps::io_node_sweep(&escat_b, &[2, 4, 8, 16, 32]),
                SweepId::StripeUnit => {
                    sweeps::stripe_sweep(&escat_b, &[16 << 10, 64 << 10, 256 << 10])
                }
                SweepId::DiskBandwidth => sweeps::disk_bandwidth_sweep(&prism_a, &[2, 8, 32]),
                SweepId::DegradedArrays => sweeps::degraded_array_sweep(&prism_a, &[0, 4, 8]),
                SweepId::FaultIntensity => {
                    sweeps::fault_intensity_sweep(&prism_a, &[0, 2, 4, 8], 0xF417)
                }
            };
            println!("{}", sweep.render());
            if let Some(dir) = &out_dir {
                std::fs::write(
                    dir.join(format!("sweep-{}.txt", sweep.parameter)),
                    sweep.render(),
                )
                .expect("write sweep");
            }
        }
    }
    if let Some(dir) = &out_dir {
        let json = serde_json::to_string_pretty(&check_rows).expect("serialize checks");
        std::fs::write(dir.join("checks.json"), json).expect("write checks.json");
        println!(
            "
artifacts written to {}",
            dir.display()
        );
    }
    if failures > 0 {
        eprintln!("\n{failures} shape check(s) FAILED");
        std::process::exit(1);
    }
    println!("\nall shape checks passed");
}
