//! Collate a Criterion run into a numbered `BENCH_<n>.json` baseline,
//! or compare two baselines.
//!
//! Usage (from the repository root, after `cargo bench -p
//! sioscope-bench --bench hotpath`):
//!
//! ```text
//! cargo run -p sioscope-bench --bin bench_baseline                   # print
//! cargo run -p sioscope-bench --bin bench_baseline -- --out BENCH_1.json
//! cargo run -p sioscope-bench --bin bench_baseline -- \
//!     --compare BENCH_0.json --bench full_registry_cold --min-speedup 1.5
//! ```
//!
//! `--compare OLD` prints the speedup of every bench present in both
//! baselines (current run vs. `OLD`); with `--bench NAME
//! --min-speedup X` the process exits 1 if that bench's speedup is
//! below `X`, making the perf bar enforceable in CI.

use sioscope_bench::{baseline_speedup, baseline_value, collect_estimates};
use std::path::PathBuf;
use std::process::exit;

const GROUP: &str = "hotpath";

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let criterion_dir = PathBuf::from(
        arg_value(&args, "--criterion-dir").unwrap_or_else(|| "target/criterion".to_string()),
    );
    let estimates = match collect_estimates(&criterion_dir, GROUP) {
        Ok(e) if !e.is_empty() => e,
        Ok(_) => {
            eprintln!(
                "error: no estimates under {}/{GROUP}; run `cargo bench -p sioscope-bench \
                 --bench {GROUP}` first",
                criterion_dir.display()
            );
            exit(1);
        }
        Err(e) => {
            eprintln!(
                "error: cannot read {}/{GROUP}: {e}; run `cargo bench -p sioscope-bench \
                 --bench {GROUP}` first",
                criterion_dir.display()
            );
            exit(1);
        }
    };
    let current = baseline_value(GROUP, &estimates);
    let rendered = format!(
        "{}\n",
        serde_json::to_string_pretty(&current).expect("serialize baseline")
    );

    if let Some(old_path) = arg_value(&args, "--compare") {
        let old_text =
            std::fs::read_to_string(&old_path).unwrap_or_else(|e| panic!("read {old_path}: {e}"));
        let old: serde_json::Value =
            serde_json::from_str(&old_text).unwrap_or_else(|e| panic!("parse {old_path}: {e}"));
        println!("speedup vs {old_path} (old mean / new mean):");
        for name in estimates.keys() {
            match baseline_speedup(&old, &current, name) {
                Some(s) => println!("  {name:<24} {s:.2}x"),
                None => println!("  {name:<24} (not in old baseline)"),
            }
        }
        let gate = arg_value(&args, "--bench");
        let min: Option<f64> =
            arg_value(&args, "--min-speedup").map(|v| v.parse().expect("--min-speedup number"));
        if let (Some(bench), Some(min)) = (gate, min) {
            match baseline_speedup(&old, &current, &bench) {
                Some(s) if s >= min => {
                    println!("PASS: {bench} speedup {s:.2}x >= {min:.2}x");
                }
                Some(s) => {
                    eprintln!("FAIL: {bench} speedup {s:.2}x < {min:.2}x");
                    exit(1);
                }
                None => {
                    eprintln!("FAIL: {bench} missing from one of the baselines");
                    exit(1);
                }
            }
        }
        return;
    }

    match arg_value(&args, "--out") {
        Some(path) => {
            std::fs::write(&path, rendered).unwrap_or_else(|e| panic!("write {path}: {e}"));
            println!("baseline written to {path}");
        }
        None => print!("{rendered}"),
    }
}
