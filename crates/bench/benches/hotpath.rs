//! Hot-path microbenchmarks guarding the optimization trajectory
//! recorded in `BENCH_*.json` (see EXPERIMENTS.md § Benchmarks).
//!
//! Four benches, chosen to cover each layer the optimization pass
//! touches:
//!
//! * `calendar_push_pop` — the event queue alone: interleaved
//!   schedule/pop of a large synthetic event population, the inner
//!   loop of every simulation.
//! * `escat_c_single_run` — one cold ESCAT version-C run end-to-end
//!   (workload build + simulate), the PFS server hot path.
//! * `full_registry_cold` — all 25 registry experiments with the run
//!   memoization caches cleared every iteration; this is the headline
//!   number the ≥1.5× acceptance bar is measured on.
//! * `fault_engaged_run` — a PRISM run under an injected fault
//!   schedule, exercising the resilience ladder and timeline scaling.
//!
//! Capture results into a numbered baseline with
//! `scripts/capture_bench.sh` after running
//! `cargo bench -p sioscope-bench --bench hotpath`.

use criterion::{criterion_group, criterion_main, Criterion};
use sioscope::experiments::{clear_run_caches, run_experiment, Experiment, Scale};
use sioscope::simulator::{run, SimOptions};
use sioscope_faults::FaultGen;
use sioscope_pfs::PfsConfig;
use sioscope_sim::{DetRng, EventQueue, Time};
use std::hint::black_box;

/// Interleaved schedule/pop against a queue preloaded with `n` events:
/// repeatedly pop the earliest event and schedule a replacement at a
/// pseudorandom (deterministic) future time, like a simulation step.
fn calendar_churn(n: usize, steps: usize) -> u64 {
    let mut q: EventQueue<u64> = EventQueue::new();
    let mut rng = DetRng::new(0xC0FFEE);
    for i in 0..n {
        q.schedule(Time::from_nanos(rng.range_inclusive(0, 999_999)), i as u64);
    }
    let mut acc = 0u64;
    for _ in 0..steps {
        let ev = q.pop().expect("queue never drains");
        acc = acc.wrapping_add(ev.payload);
        let dt = Time::from_nanos(rng.range_inclusive(1, 9_999));
        q.schedule_after(dt, ev.payload);
    }
    acc
}

fn bench_calendar(c: &mut Criterion) {
    let mut group = c.benchmark_group("hotpath");
    group.bench_function("calendar_push_pop", |b| {
        b.iter(|| black_box(calendar_churn(black_box(4096), black_box(100_000))))
    });
    group.finish();
}

fn bench_escat_c(c: &mut Criterion) {
    use sioscope_workloads::{EscatConfig, EscatVersion};
    let workload = EscatConfig::tiny(EscatVersion::C).build();
    let mut group = c.benchmark_group("hotpath");
    group.bench_function("escat_c_single_run", |b| {
        b.iter(|| {
            let cfg = PfsConfig::caltech(workload.nodes, workload.os);
            black_box(run(&workload, cfg, SimOptions::default()).expect("runs"))
        })
    });
    group.finish();
}

fn bench_full_registry(c: &mut Criterion) {
    let mut group = c.benchmark_group("hotpath");
    group.sample_size(10);
    group.bench_function("full_registry_cold", |b| {
        b.iter(|| {
            clear_run_caches();
            for e in Experiment::all() {
                black_box(run_experiment(black_box(e), Scale::Smoke));
            }
        })
    });
    group.finish();
}

fn bench_fault_engaged(c: &mut Criterion) {
    use sioscope_workloads::{PrismConfig, PrismVersion};
    let workload = PrismConfig::tiny(PrismVersion::B).build();
    let healthy_cfg = PfsConfig::caltech(workload.nodes, workload.os);
    let horizon = run(&workload, healthy_cfg.clone(), SimOptions::default())
        .expect("healthy run")
        .exec_time;
    let mut cfg = PfsConfig::caltech(workload.nodes, workload.os);
    cfg.faults = FaultGen::new(0xF417, horizon, cfg.machine.io_nodes)
        .with_events(8)
        .schedule();
    let mut group = c.benchmark_group("hotpath");
    group.bench_function("fault_engaged_run", |b| {
        b.iter(|| black_box(run(&workload, cfg.clone(), SimOptions::default()).expect("runs")))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_calendar,
    bench_escat_c,
    bench_full_registry,
    bench_fault_engaged
);
criterion_main!(benches);
