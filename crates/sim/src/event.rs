//! The deterministic event queue.
//!
//! Events are ordered by `(time, sequence)`: two events scheduled for
//! the same instant pop in the order they were pushed. This stability
//! is what makes whole-machine simulations bit-for-bit reproducible
//! regardless of how workload generators interleave their scheduling
//! calls.

use crate::time::Time;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event drawn from the queue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduledEvent<E> {
    /// The instant the event fires.
    pub time: Time,
    /// Monotone insertion sequence number (unique per queue).
    pub seq: u64,
    /// The caller-defined payload.
    pub payload: E,
}

/// Internal heap entry; reversed ordering turns `BinaryHeap` (a
/// max-heap) into the min-heap we need.
struct Entry<E> {
    time: Time,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: earliest time (then lowest seq) is the "greatest".
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic min-priority queue of timestamped events.
///
/// ```
/// use sioscope_sim::{EventQueue, Time};
///
/// let mut q = EventQueue::new();
/// q.schedule(Time::from_secs(2), "later");
/// q.schedule(Time::from_secs(1), "sooner");
/// assert_eq!(q.pop().unwrap().payload, "sooner");
/// assert_eq!(q.now(), Time::from_secs(1));
/// ```
///
/// The queue tracks the simulation clock: [`EventQueue::now`] is the
/// timestamp of the most recently popped event. Scheduling an event in
/// the past is a logic error and panics in debug builds; in release
/// builds the event is clamped to `now` so a slightly-stale cost model
/// cannot corrupt causality.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: Time,
    popped: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue with the clock at zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: Time::ZERO,
            popped: 0,
        }
    }

    /// Current simulation clock (time of the last popped event).
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of events waiting in the queue.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` iff no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever popped.
    #[inline]
    pub fn popped(&self) -> u64 {
        self.popped
    }

    /// Schedule `payload` to fire at `time`. Returns the sequence
    /// number, usable as a stable event identity.
    pub fn schedule(&mut self, time: Time, payload: E) -> u64 {
        debug_assert!(
            time >= self.now,
            "scheduled event at {time} before current clock {now}",
            now = self.now
        );
        let time = time.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, payload });
        seq
    }

    /// Schedule `payload` to fire `delay` after the current clock.
    pub fn schedule_after(&mut self, delay: Time, payload: E) -> u64 {
        let at = self.now + delay;
        self.schedule(at, payload)
    }

    /// Pop the earliest event and advance the clock to it.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.time >= self.now, "event queue went backwards");
        self.now = entry.time;
        self.popped += 1;
        Some(ScheduledEvent {
            time: entry.time,
            seq: entry.seq,
            payload: entry.payload,
        })
    }

    /// Timestamp of the next pending event without popping it.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|e| e.time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_secs(3), "c");
        q.schedule(Time::from_secs(1), "a");
        q.schedule(Time::from_secs(2), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|e| e.payload).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = Time::from_secs(1);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|e| e.payload).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_secs(5), ());
        q.schedule(Time::from_secs(2), ());
        assert_eq!(q.now(), Time::ZERO);
        q.pop();
        assert_eq!(q.now(), Time::from_secs(2));
        q.pop();
        assert_eq!(q.now(), Time::from_secs(5));
        assert_eq!(q.popped(), 2);
    }

    #[test]
    fn schedule_after_uses_clock() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_secs(10), "first");
        q.pop();
        q.schedule_after(Time::from_secs(5), "second");
        let e = q.pop().unwrap();
        assert_eq!(e.time, Time::from_secs(15));
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_secs(4), ());
        assert_eq!(q.peek_time(), Some(Time::from_secs(4)));
        assert_eq!(q.now(), Time::ZERO);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "before current clock")]
    fn scheduling_in_the_past_panics_in_debug() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_secs(10), ());
        q.pop();
        q.schedule(Time::from_secs(1), ());
    }
}
