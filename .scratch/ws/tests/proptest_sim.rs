//! Property-based tests for the simulation kernel's ordering
//! invariants: the event calendar's deterministic pop order and the
//! stripe map's coordinate round-trip. These are the two algebraic
//! facts the hot-path optimizations (indexed heap, batched transfers)
//! lean on, so they get adversarial random coverage on top of the unit
//! tests in their home crates.

use proptest::prelude::*;
use sioscope_pfs::StripeLayout;
use sioscope_sim::{EventQueue, Time};

/// One step of an interleaved calendar workout: push an event at
/// `now + delta`, or pop the earliest pending event.
#[derive(Debug, Clone)]
enum CalStep {
    Push { delta: u64 },
    Pop,
}

fn arb_cal_steps() -> impl Strategy<Value = Vec<CalStep>> {
    prop::collection::vec(
        prop_oneof![
            // Biased toward pushes so the queue stays non-trivially
            // full; small deltas force plenty of exact-time ties.
            3 => (0u64..50).prop_map(|delta| CalStep::Push { delta }),
            2 => Just(CalStep::Pop),
        ],
        1..400,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Under any interleaving of pushes and pops, pops come out in
    /// non-decreasing time order, exact-time ties break FIFO (by
    /// insertion sequence), and draining the queue yields exactly the
    /// sorted (time, seq) sequence of everything pushed.
    #[test]
    fn event_queue_pops_sorted_with_fifo_ties(steps in arb_cal_steps()) {
        let mut q = EventQueue::new();
        let mut pushed: Vec<(u64, u64)> = Vec::new();
        let mut popped: Vec<(u64, u64)> = Vec::new();
        for step in &steps {
            match *step {
                CalStep::Push { delta } => {
                    let t = q.now() + Time::from_nanos(delta);
                    let seq = q.schedule(t, ());
                    pushed.push((t.as_nanos(), seq));
                }
                CalStep::Pop => {
                    if let Some(e) = q.pop() {
                        popped.push((e.time.as_nanos(), e.seq));
                    }
                }
            }
        }
        while let Some(e) = q.pop() {
            popped.push((e.time.as_nanos(), e.seq));
        }
        // Pairwise: time never decreases, and equal times pop in
        // strictly increasing insertion order.
        for w in popped.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time went backwards: {w:?}");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "FIFO tie-break violated: {w:?}");
            }
        }
        // Globally: the drain is a permutation-free sort of the pushes.
        pushed.sort_unstable();
        prop_assert_eq!(popped, pushed);
        prop_assert!(q.is_empty());
    }

    /// `locate` and `offset_of` are exact inverses for every offset on
    /// every layout: offset → (ion, block, within) → offset is the
    /// identity, and the ion agrees with `ion_of`.
    #[test]
    fn stripe_locate_offset_round_trip(
        unit in 1u64..1 << 20,
        io_nodes in 1u32..64,
        offset in 0u64..1 << 45,
    ) {
        let l = StripeLayout::new(unit, io_nodes);
        let (ion, block, within) = l.locate(offset);
        prop_assert!(ion < io_nodes);
        prop_assert!(within < unit);
        prop_assert_eq!(l.offset_of(ion, block, within), offset);
        prop_assert_eq!(ion, l.ion_of(offset));
    }

    /// Segment decomposition conserves bytes, stays in file order, and
    /// each segment's coordinates agree with `locate` — so the batched
    /// transfer path that walks `segments_iter` sees exactly the
    /// request's bytes, once each, in order.
    #[test]
    fn stripe_segments_partition_the_request(
        unit in 1u64..1 << 16,
        io_nodes in 1u32..32,
        offset in 0u64..1 << 30,
        len in 1u64..1 << 20,
    ) {
        let l = StripeLayout::new(unit, io_nodes);
        let mut cur = offset;
        let mut total = 0u64;
        for seg in l.segments_iter(offset, len) {
            prop_assert_eq!(seg.offset, cur, "segments must be contiguous");
            prop_assert!(seg.len > 0 && seg.len <= unit);
            prop_assert_eq!(seg.ion, l.ion_of(seg.offset));
            // A segment never crosses a unit boundary.
            prop_assert_eq!(seg.offset / unit, (seg.offset + seg.len - 1) / unit);
            cur += seg.len;
            total += seg.len;
        }
        prop_assert_eq!(total, len);
    }
}
