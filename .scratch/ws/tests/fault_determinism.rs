//! Determinism guarantees of the fault-injection subsystem.
//!
//! Two invariants protect the reproduction results:
//!
//! 1. an *empty* fault schedule must be invisible — even when it is
//!    forced to engage the fault hooks, every run artifact must be
//!    byte-identical to a plain run;
//! 2. a *non-empty* schedule must replay exactly: the same seed and
//!    intensity produce identical execution times, traces and
//!    resilience counters on every run.
//!
//! Both invariants hold on **every storage tier**, not just the
//! classic PFS: a disengaged schedule is bit-invisible on the object
//! store and burst buffer too, and each tier's seeded fault
//! vocabulary replays exactly (resilience ledger and byte ledger
//! included).

use proptest::prelude::*;
use sioscope::simulator::{run, run_backend, RunResult, SimOptions};
use sioscope_faults::{FaultGen, FaultSchedule};
use sioscope_pfs::{BackendConfig, BackendKind, BurstBufferConfig, ObjectStoreConfig, PfsConfig};
use sioscope_sim::Time;
use sioscope_workloads::{EscatConfig, EscatVersion, PrismConfig, PrismVersion, Workload};

fn run_with(workload: &Workload, faults: FaultSchedule) -> RunResult {
    let mut cfg = PfsConfig::caltech(workload.nodes, workload.os);
    cfg.faults = faults;
    run(workload, cfg, SimOptions::default()).expect("runs")
}

fn assert_bit_identical(plain: &RunResult, engaged: &RunResult) {
    assert_eq!(plain.exec_time, engaged.exec_time, "{}", plain.name);
    assert_eq!(plain.node_finish, engaged.node_finish, "{}", plain.name);
    assert_eq!(plain.events, engaged.events, "{}", plain.name);
    assert_eq!(
        plain.trace.events(),
        engaged.trace.events(),
        "{}",
        plain.name
    );
    assert_eq!(engaged.fault_transitions, 0, "{}", plain.name);
    assert!(
        engaged.resilience.is_quiet(),
        "{}: {:?}",
        plain.name,
        engaged.resilience
    );
}

#[test]
fn engaged_empty_schedule_is_invisible_for_escat() {
    for v in [EscatVersion::A, EscatVersion::B, EscatVersion::C] {
        let w = EscatConfig::tiny(v).build();
        let plain = run_with(&w, FaultSchedule::empty());
        let engaged = run_with(&w, FaultSchedule::engaged_empty());
        assert_bit_identical(&plain, &engaged);
    }
}

#[test]
fn engaged_empty_schedule_is_invisible_for_prism() {
    for v in [PrismVersion::A, PrismVersion::B, PrismVersion::C] {
        let w = PrismConfig::tiny(v).build();
        let plain = run_with(&w, FaultSchedule::empty());
        let engaged = run_with(&w, FaultSchedule::engaged_empty());
        assert_bit_identical(&plain, &engaged);
    }
}

#[test]
fn faulty_runs_replay_exactly() {
    let w = PrismConfig::tiny(PrismVersion::B).build();
    let cfg = PfsConfig::caltech(w.nodes, w.os);
    let faults = FaultGen::new(0xD0_0DAD, Time::from_secs(30), cfg.machine.io_nodes)
        .with_events(6)
        .schedule();
    let a = run_with(&w, faults.clone());
    let b = run_with(&w, faults);
    assert_eq!(a.exec_time, b.exec_time);
    assert_eq!(a.events, b.events);
    assert_eq!(a.fault_transitions, b.fault_transitions);
    assert_eq!(a.resilience, b.resilience);
    assert_eq!(a.trace.events(), b.trace.events());
}

/// The workload's view of one storage tier with a schedule installed.
fn tier_cfg(kind: BackendKind, w: &Workload, faults: FaultSchedule) -> BackendConfig {
    match kind {
        BackendKind::Pfs => {
            let mut cfg = PfsConfig::caltech(w.nodes, w.os);
            cfg.faults = faults;
            BackendConfig::Pfs(cfg)
        }
        BackendKind::Object => {
            let mut cfg = ObjectStoreConfig::modern(w.nodes);
            cfg.faults = faults;
            BackendConfig::Object(cfg)
        }
        BackendKind::Burst => {
            let mut cfg = BurstBufferConfig::over(PfsConfig::caltech(w.nodes, w.os));
            cfg.faults = faults;
            BackendConfig::Burst(cfg)
        }
    }
}

/// The tier's own fault vocabulary for a seed, as the canonical run
/// surface would draw it.
fn tier_schedule(kind: BackendKind, seed: u64, events: usize, io_nodes: u32) -> FaultSchedule {
    let gen = FaultGen::new(seed, Time::from_secs(20), io_nodes).with_events(events);
    match kind {
        BackendKind::Pfs => gen.schedule(),
        BackendKind::Object => gen.object_schedule(4),
        BackendKind::Burst => gen.burst_schedule(),
    }
}

#[test]
fn disengaged_and_engaged_empty_schedules_are_invisible_on_every_tier() {
    let w = EscatConfig::tiny(EscatVersion::B).build();
    for kind in BackendKind::all() {
        let plain = run_backend(
            &w,
            &tier_cfg(kind, &w, FaultSchedule::empty()),
            SimOptions::default(),
        )
        .expect("plain tier run");
        let engaged = run_backend(
            &w,
            &tier_cfg(kind, &w, FaultSchedule::engaged_empty()),
            SimOptions::default(),
        )
        .expect("engaged-empty tier run");
        assert_bit_identical(&plain, &engaged);
        assert_eq!(
            plain.backend_stats,
            engaged.backend_stats,
            "{}: hook engagement must not touch the byte ledger",
            kind.id()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Same seed + intensity → identical resilience counters and run
    /// artifacts, for any generated schedule.
    #[test]
    fn same_seed_replay_has_identical_retry_and_abort_counters(
        seed in any::<u64>(),
        intensity in 0usize..8,
    ) {
        let w = EscatConfig::tiny(EscatVersion::B).build();
        let cfg = PfsConfig::caltech(w.nodes, w.os);
        let faults = FaultGen::new(seed, Time::from_secs(20), cfg.machine.io_nodes)
            .with_events(intensity)
            .schedule();
        let a = run_with(&w, faults.clone());
        let b = run_with(&w, faults);
        prop_assert_eq!(a.resilience.retries, b.resilience.retries);
        prop_assert_eq!(a.resilience.aborts, b.resilience.aborts);
        prop_assert_eq!(a.resilience, b.resilience);
        prop_assert_eq!(a.exec_time, b.exec_time);
        prop_assert_eq!(a.events, b.events);
        prop_assert_eq!(a.fault_transitions, b.fault_transitions);
    }

    /// Each tier's seeded fault vocabulary replays bit-identically:
    /// same fingerprint, same resilience ledger, same byte ledger.
    #[test]
    fn tier_fault_runs_replay_exactly_on_every_tier(
        seed in any::<u64>(),
        events in 1usize..4,
    ) {
        let w = EscatConfig::tiny(EscatVersion::B).build();
        let io_nodes = PfsConfig::caltech(w.nodes, w.os).machine.io_nodes;
        for kind in BackendKind::all() {
            let faults = tier_schedule(kind, seed, events, io_nodes);
            let a = run_backend(&w, &tier_cfg(kind, &w, faults.clone()), SimOptions::default())
                .expect("faulted tier run");
            let b = run_backend(&w, &tier_cfg(kind, &w, faults), SimOptions::default())
                .expect("replayed tier run");
            prop_assert_eq!(a.exec_time, b.exec_time, "{}", kind.id());
            prop_assert_eq!(a.events, b.events);
            prop_assert_eq!(a.fault_transitions, b.fault_transitions);
            prop_assert_eq!(&a.resilience, &b.resilience);
            prop_assert_eq!(a.trace.events(), b.trace.events());
            prop_assert_eq!(&a.backend_stats, &b.backend_stats);
        }
    }
}
