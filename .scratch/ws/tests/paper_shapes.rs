//! End-to-end reproduction test: every experiment in the registry must
//! pass all of its shape checks against the paper at full scale.
//!
//! This is the repository's headline guarantee — the qualitative
//! conclusions of Smirni et al. (HPDC 1996) hold on the simulated
//! reproduction: who wins, by roughly what factor, and where the
//! crossovers fall.

use sioscope::experiments::{run_experiment, Experiment, Scale};

#[test]
fn every_experiment_passes_its_shape_checks_at_full_scale() {
    let mut failures = Vec::new();
    for e in Experiment::all() {
        let out = run_experiment(e, Scale::Full);
        for f in out.failures() {
            failures.push(format!("{}: {} — {}", e.id(), f.name, f.detail));
        }
    }
    assert!(
        failures.is_empty(),
        "shape checks failed:\n{}",
        failures.join("\n")
    );
}

#[test]
fn escat_execution_times_match_figure_1_shape() {
    use sioscope::experiments::escat::run_version;
    use sioscope_workloads::{EscatDataset, EscatVersion};
    let times: Vec<f64> = EscatVersion::progressions()
        .iter()
        .map(|&v| {
            run_version(v, EscatDataset::Ethylene, Scale::Full)
                .exec_time
                .as_secs_f64()
        })
        .collect();
    // Version A is the slowest, version C the fastest, overall
    // reduction in the paper's ~20% band.
    let a = times[0];
    let c = times[5];
    assert!(
        times.iter().all(|&t| t <= a + 1e-9),
        "A must be slowest: {times:?}"
    );
    assert!(
        times.iter().all(|&t| t >= c - 1e-9),
        "C must be fastest: {times:?}"
    );
    let reduction = (a - c) / a;
    assert!(
        (0.10..=0.32).contains(&reduction),
        "A->C reduction {reduction:.3} outside the paper's band"
    );
}

#[test]
fn table2_version_dominants_match_paper_narrative() {
    use sioscope::experiments::escat::run_version;
    use sioscope_analysis::table::IoTimeTable;
    use sioscope_pfs::OpKind;
    use sioscope_workloads::{EscatDataset, EscatVersion};

    let dominant = |v: EscatVersion| -> OpKind {
        let r = run_version(v, EscatDataset::Ethylene, Scale::Full);
        IoTimeTable::from_durations("x", &r.trace.duration_by_kind())
            .dominant()
            .expect("non-empty")
    };
    // A: open+read era (either may edge the other out); B: the seek
    // regression; C: writes (the remaining real work).
    assert!(matches!(
        dominant(EscatVersion::A),
        OpKind::Open | OpKind::Read
    ));
    assert_eq!(dominant(EscatVersion::B), OpKind::Seek);
    assert_eq!(dominant(EscatVersion::C), OpKind::Write);
}

#[test]
fn prism_read_pathology_of_version_c() {
    use sioscope::experiments::prism::run_version;
    use sioscope_pfs::OpKind;
    use sioscope_sim::Time;
    use sioscope_workloads::PrismVersion;

    // §5.4: "a few small reads can dominate overall I/O time."
    let rc = run_version(PrismVersion::C, Scale::Full);
    let read: Time = rc.trace.of_kind(OpKind::Read).map(|e| e.duration).sum();
    let total = rc.trace.total_io_time();
    assert!(
        read.as_secs_f64() / total.as_secs_f64() > 0.5,
        "reads must dominate version C I/O: {read} of {total}"
    );
    // And the small header reads specifically are a visible share:
    // every sub-40-byte read pays a real round trip.
    let small_read: Time = rc
        .trace
        .of_kind(OpKind::Read)
        .filter(|e| e.bytes <= 40)
        .map(|e| e.duration)
        .sum();
    assert!(
        small_read > Time::ZERO,
        "small header reads must be present"
    );
}

#[test]
fn initial_access_patterns_match_section_6_1() {
    // §6.1: "In the initial version of both codes, at least 98 percent
    // of all reads were small..., although the vast majority of data
    // is read via a small number of large requests."
    use sioscope::experiments::{escat, prism};
    use sioscope_analysis::Cdf;
    use sioscope_pfs::OpKind;
    use sioscope_workloads::{EscatDataset, EscatVersion, PrismVersion};

    let escat_a = escat::run_version(EscatVersion::A, EscatDataset::Ethylene, Scale::Full);
    let cdf = Cdf::from_samples(escat_a.trace.sizes_of(OpKind::Read));
    assert!(
        cdf.fraction_leq(2048) > 0.90,
        "ESCAT A small-read request fraction: {}",
        cdf.fraction_leq(2048)
    );

    let prism_a = prism::run_version(PrismVersion::A, Scale::Full);
    let cdf = Cdf::from_samples(prism_a.trace.sizes_of(OpKind::Read));
    assert!(
        cdf.fraction_leq(2048) > 0.60,
        "PRISM A small-read request fraction: {}",
        cdf.fraction_leq(2048)
    );
    // Large requests carry the data in both.
    assert!(cdf.weight_fraction_leq(2048) < 0.20);
}

#[test]
fn optimized_access_patterns_match_section_6_2() {
    // §6.2: after optimization, ~45% of ESCAT reads are 128 KB (twice
    // the stripe unit) and carry ~98% of the data.
    use sioscope::experiments::escat::run_version;
    use sioscope_analysis::Cdf;
    use sioscope_pfs::OpKind;
    use sioscope_workloads::{EscatDataset, EscatVersion};

    let rc = run_version(EscatVersion::C, EscatDataset::Ethylene, Scale::Full);
    let cdf = Cdf::from_samples(rc.trace.sizes_of(OpKind::Read));
    let large_requests = 1.0 - cdf.fraction_leq(128 * 1024 - 1);
    let large_data = 1.0 - cdf.weight_fraction_leq(128 * 1024 - 1);
    assert!(
        (0.2..=0.8).contains(&large_requests),
        "share of 128 KB reads: {large_requests}"
    );
    assert!(large_data > 0.9, "data via 128 KB reads: {large_data}");
}
