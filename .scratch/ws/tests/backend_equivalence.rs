//! Differential backend suite: the StorageBackend refactor must be
//! invisible wherever it claims to be.
//!
//! Three oracles, in increasing strictness:
//!
//! 1. `tests/golden/backend_baseline.txt` holds run fingerprints
//!    generated from the tree *before* the trait seam existed. The
//!    post-refactor [`sioscope::run`] must reproduce them bit for bit
//!    (regenerate with `UPDATE_BACKEND_BASELINE=1` — only ever from a
//!    pre-refactor checkout).
//! 2. The dyn-dispatched [`sioscope::run_backend`] over a
//!    [`BackendConfig::Pfs`] tier must match the monomorphized direct
//!    path exactly, faults included.
//! 3. A burst buffer absorbing *nothing* is pure passthrough and must
//!    also match, as must backend-routed recovery over the PFS tier.
//!
//! The suite closes with the issue's acceptance shape: the burst-tier
//! checkpoint-interval sweep must beat the plain-PFS U-curve minimum.

use sioscope::canon::WorkloadId;
use sioscope::experiments::Scale;
use sioscope::{run, run_backend, run_with_recovery, run_with_recovery_backend, SimOptions};
use sioscope_faults::FaultGen;
use sioscope_pfs::{BackendConfig, BurstBufferConfig, PfsConfig};
use std::path::PathBuf;

fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn fingerprint(r: &sioscope::RunResult) -> String {
    let trace_bytes = sioscope_trace::binary::encode(&r.trace);
    let mut finish = Vec::with_capacity(r.node_finish.len() * 8);
    for t in &r.node_finish {
        finish.extend_from_slice(&t.as_nanos().to_le_bytes());
    }
    format!(
        "{} {} {} {} {:016x} {:016x}",
        r.exec_time.as_nanos(),
        r.events,
        r.fault_transitions,
        r.trace.len(),
        fnv64(&trace_bytes),
        fnv64(&finish)
    )
}

/// The Caltech config for one (workload, fault case), with the fault
/// schedule derived exactly as the canonical run surface derives it.
fn faulted_cfg(
    id: WorkloadId,
    fault_events: u32,
    seed: u64,
) -> (sioscope_workloads::Workload, PfsConfig) {
    let workload = id.build(Scale::Smoke);
    let cfg = PfsConfig::caltech(workload.nodes, workload.os);
    let cfg = if fault_events == 0 {
        cfg
    } else {
        let horizon = run(&workload, cfg.clone(), SimOptions::default())
            .expect("fault-free baseline")
            .exec_time;
        let mut faulty = cfg;
        faulty.faults = FaultGen::new(seed, horizon, faulty.machine.io_nodes)
            .with_events(fault_events as usize)
            .schedule();
        faulty
    };
    (workload, cfg)
}

fn baseline_run(id: WorkloadId, fault_events: u32, seed: u64) -> sioscope::RunResult {
    let (workload, cfg) = faulted_cfg(id, fault_events, seed);
    run(&workload, cfg, SimOptions::default()).expect("baseline run")
}

const CASES: &[(u32, u64)] = &[(0, 0), (2, 0xF417)];

fn baseline_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("backend_baseline.txt")
}

#[test]
fn trait_routed_pfs_matches_pre_refactor_baseline() {
    let mut lines = vec![
        "# Pre-refactor run fingerprints (smoke scale): id fault_events seed exec_ns events fault_transitions trace_len trace_fnv64 node_finish_fnv64".to_string(),
    ];
    for id in WorkloadId::all() {
        for &(fault_events, seed) in CASES {
            let r = baseline_run(id, fault_events, seed);
            lines.push(format!(
                "{} {} {} {}",
                id.id(),
                fault_events,
                seed,
                fingerprint(&r)
            ));
        }
    }
    let rendered = lines.join("\n") + "\n";

    let path = baseline_path();
    if std::env::var("UPDATE_BACKEND_BASELINE").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &rendered).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing {} ({e}); run with UPDATE_BACKEND_BASELINE=1",
            path.display()
        )
    });
    assert_eq!(
        golden, rendered,
        "post-refactor run() diverged from the pre-refactor direct path"
    );
}

#[test]
fn dyn_routed_pfs_and_passthrough_burst_match_the_direct_path() {
    for id in WorkloadId::all() {
        for &(fault_events, seed) in CASES {
            let direct = baseline_run(id, fault_events, seed);
            let want = fingerprint(&direct);

            let (workload, cfg) = faulted_cfg(id, fault_events, seed);
            let routed = run_backend(
                &workload,
                &BackendConfig::Pfs(cfg.clone()),
                SimOptions::default(),
            )
            .expect("pfs-routed run");
            assert_eq!(
                fingerprint(&routed),
                want,
                "{} faults={fault_events}: dyn-dispatched PFS diverged",
                id.id()
            );
            assert_eq!(routed.resilience, direct.resilience);

            // A burst buffer absorbing no files is pure passthrough.
            let passthrough = run_backend(
                &workload,
                &BackendConfig::Burst(BurstBufferConfig::absorbing(cfg, Vec::new())),
                SimOptions::default(),
            )
            .expect("passthrough burst run");
            assert_eq!(
                fingerprint(&passthrough),
                want,
                "{} faults={fault_events}: passthrough burst buffer diverged",
                id.id()
            );
            assert_eq!(passthrough.backend_stats.bytes_logged, 0);
            assert_eq!(passthrough.backend_stats.absorbed_ops, 0);
        }
    }
}

#[test]
fn backend_routed_recovery_matches_pfs_direct_on_caltech() {
    use sioscope_faults::{FaultKind, FaultSchedule};
    use sioscope_sim::Time;
    use sioscope_workloads::{CheckpointPolicy, EscatConfig, EscatVersion};

    let cfg = EscatConfig::tiny(EscatVersion::C);
    let rec = cfg.recoverable(CheckpointPolicy::Fixed { interval: 1 });
    let pfs = PfsConfig::caltech(cfg.nodes, rec.workload().os);
    let baseline = run(rec.workload(), pfs.clone(), SimOptions::default())
        .unwrap()
        .exec_time;
    let mut crashes = FaultSchedule::empty();
    crashes.push(
        baseline.scale(0.6),
        FaultKind::ComputeNodeCrash {
            node: 0,
            rework: Time::from_secs(1),
        },
    );
    let direct = run_with_recovery(&rec, &crashes, pfs.clone(), SimOptions::default()).unwrap();
    let routed = run_with_recovery_backend(
        &rec,
        &crashes,
        &BackendConfig::Pfs(pfs),
        SimOptions::default(),
    )
    .unwrap();
    assert_eq!(direct.recovery, routed.recovery);
    assert_eq!(fingerprint(&direct), fingerprint(&routed));
}

/// The issue's durability acceptance shape: a burst-node crash that
/// destroys *resident checkpoint bytes* forces recovery to roll back
/// past the non-durable commit, so its time-to-solution is strictly
/// worse than the identical compute-crash scenario where the burst
/// crash hits an empty log and loses nothing.
#[test]
fn burst_crash_on_resident_checkpoint_bytes_costs_strictly_more_than_on_an_empty_log() {
    use sioscope_faults::{FaultKind, FaultSchedule};
    use sioscope_pfs::{BurstBufferConfig, OpKind};
    use sioscope_sim::Time;
    use sioscope_workloads::{CheckpointPolicy, EscatConfig, EscatVersion};

    let cfg = EscatConfig::tiny(EscatVersion::C);
    let rec = cfg.recoverable(CheckpointPolicy::Fixed { interval: 1 });
    let pfs = PfsConfig::caltech(cfg.nodes, rec.workload().os);
    let burst = BurstBufferConfig::over(pfs);

    // The fault-free marked run: commit instants and the write trace
    // both scenarios are derived from.
    let marked = run_backend(
        rec.workload(),
        &BackendConfig::Burst(burst.clone()),
        SimOptions::default(),
    )
    .expect("marked burst run");
    let exec = marked.exec_time;

    // Both scenarios share one compute crash at 60% of the run.
    let crash_at = exec.scale(0.6);
    let mut crashes = FaultSchedule::empty();
    crashes.push(
        crash_at,
        FaultKind::ComputeNodeCrash {
            node: 0,
            rework: Time::from_secs(1),
        },
    );

    // The commit the crash would roll back to, and the interval
    // window (t_prev, t_k] feeding it.
    let (_, t_k) = *marked
        .checkpoint_commits
        .iter()
        .rev()
        .find(|(_, t)| *t <= crash_at)
        .expect("a commit precedes the crash");
    let t_prev = marked
        .checkpoint_commits
        .iter()
        .rev()
        .find(|(_, t)| *t < t_k)
        .map(|(_, t)| *t)
        .unwrap_or(Time::ZERO);
    // A checkpoint-interval write, caught at the instant it retires
    // into the burst log: its bytes are resident (the drain channel is
    // slower than the log), so a burst-node crash right then loses
    // them and poisons the commit's durability.
    let w = marked
        .trace
        .events()
        .iter()
        .filter(|e| e.kind == OpKind::Write && e.bytes > 0 && e.end() > t_prev && e.end() <= t_k)
        .max_by_key(|e| e.bytes)
        .expect("the rollback interval contains a write");

    let repair = Time::from_millis(1);
    let crashed_burst = |at: Time| {
        let mut faulted = burst.clone();
        faulted.faults = FaultSchedule::empty();
        faulted
            .faults
            .push(at, FaultKind::BurstNodeCrash { repair });
        faulted
    };
    // Scenario A: the burst node dies with the checkpoint bytes still
    // resident. Scenario B: it dies at t=1ns, before anything is
    // logged — same repair, nothing lost. The loss ledger is read from
    // the first attempt's physics (recovery reports the final, replay
    // attempt, whose clock no longer lines up with the crash instant).
    let first_attempt = |at: Time| {
        run_backend(
            rec.workload(),
            &BackendConfig::Burst(crashed_burst(at)),
            SimOptions::default(),
        )
        .expect("faulted burst run")
        .backend_stats
    };
    let lost = first_attempt(w.end());
    assert!(
        lost.bytes_lost >= w.bytes && lost.conserves_bytes(),
        "scenario A must lose the resident checkpoint bytes"
    );
    let intact = first_attempt(Time::from_nanos(1));
    assert!(
        intact.bytes_lost == 0 && intact.conserves_bytes(),
        "scenario B crashes an empty log"
    );

    let recover = |at: Time| {
        run_with_recovery_backend(
            &rec,
            &crashes,
            &BackendConfig::Burst(crashed_burst(at)),
            SimOptions::default(),
        )
        .expect("recovery over the faulted burst tier")
    };
    let resident = recover(w.end());
    let empty_log = recover(Time::from_nanos(1));
    assert!(
        resident.recovery.time_to_solution > empty_log.recovery.time_to_solution,
        "losing resident checkpoint bytes must cost extra rollback: {} vs {}",
        resident.recovery.time_to_solution,
        empty_log.recovery.time_to_solution
    );
}

#[test]
fn burst_tier_checkpoint_sweep_beats_the_plain_u_curve_minimum() {
    use sioscope::sweeps::{checkpoint_interval_sweep, checkpoint_interval_sweep_burst};
    use sioscope_workloads::{PrismConfig, PrismVersion};

    let cfg = PrismConfig::tiny(PrismVersion::B);
    let intervals = [1, 2, 5, 10, 25];
    let plain = checkpoint_interval_sweep(&cfg, &intervals, 0x0C7);
    let burst = checkpoint_interval_sweep_burst(&cfg, &intervals, 0x0C7);
    assert_eq!(plain.points.len(), burst.points.len());

    let min_tts = |s: &sioscope::sweeps::Sweep| {
        s.points
            .iter()
            .map(|p| p.exec_time)
            .min()
            .expect("non-empty sweep")
    };
    let (p_min, b_min) = (min_tts(&plain), min_tts(&burst));
    assert!(
        b_min < p_min,
        "the burst tier's optimal interval must beat the plain U-curve minimum: {b_min} vs {p_min}"
    );
    for (p, b) in plain.points.iter().zip(&burst.points) {
        assert_eq!(p.value, b.value);
        assert!(
            b.exec_time <= p.exec_time,
            "interval {}: burst TTS {} exceeds plain {}",
            p.value,
            b.exec_time,
            p.exec_time
        );
    }
}
