//! The campaign engine's headline guarantee, end to end: a cold
//! campaign, a fully cached re-run, and a single-worker run of the
//! same spec produce **bit-identical** aggregated report bytes — the
//! cache and the thread pool are performance details, not inputs.

use sioscope_campaign::{run_campaign, CampaignSpec, ExecOptions};
use std::path::PathBuf;

/// Small but cross-kind: workload x seed plus a contention run.
const SPEC: &str = r#"
[campaign]
name = "determinism-guard"
scale = "smoke"

[workloads]
ids = ["escat-b"]
fault_events = [0, 2]
seeds = [0]

[contention]
policies = ["fcfs"]
"#;

fn fresh_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("sioscope-campaign-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn opts(jobs: usize, cache_dir: &PathBuf) -> ExecOptions {
    ExecOptions {
        jobs,
        no_cache: false,
        cache_dir: cache_dir.clone(),
    }
}

#[test]
fn cold_cached_and_single_worker_reports_are_bit_identical() {
    let dir = fresh_dir("tri");
    let spec = CampaignSpec::from_toml_str(SPEC).unwrap();

    let cold = run_campaign(&spec, &opts(4, &dir)).unwrap();
    assert_eq!(cold.hits(), 0, "first pass must be all misses");

    let cached = run_campaign(&spec, &opts(4, &dir)).unwrap();
    assert_eq!(
        cached.hits(),
        cached.runs.len(),
        "second pass must be served entirely from the cache"
    );

    let serial_dir = fresh_dir("serial");
    let serial = run_campaign(&spec, &opts(1, &serial_dir)).unwrap();
    assert_eq!(serial.hits(), 0);

    let no_cache = run_campaign(
        &spec,
        &ExecOptions {
            jobs: 2,
            no_cache: true,
            cache_dir: fresh_dir("bypass"),
        },
    )
    .unwrap();

    assert_eq!(cold.render(), cached.render(), "cold vs cached");
    assert_eq!(cold.render(), serial.render(), "parallel vs --jobs 1");
    assert_eq!(cold.render(), no_cache.render(), "cached vs --no-cache");
    assert!(
        cold.runs.iter().all(|r| r.entry.is_ok()),
        "{}",
        cold.render()
    );

    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&serial_dir).ok();
}

#[test]
fn corrupted_cache_entries_are_recomputed_not_trusted() {
    let dir = fresh_dir("corrupt");
    let spec = CampaignSpec::from_toml_str(SPEC).unwrap();
    let cold = run_campaign(&spec, &opts(2, &dir)).unwrap();

    // Truncate one entry and hand-tamper another: both must read as
    // misses and be recomputed to the same bytes.
    let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    entries.sort();
    assert_eq!(entries.len(), cold.runs.len());
    let truncated = &entries[0];
    let text = std::fs::read_to_string(truncated).unwrap();
    std::fs::write(truncated, &text[..text.len() / 3]).unwrap();
    let tampered = &entries[1];
    let text = std::fs::read_to_string(tampered).unwrap();
    std::fs::write(tampered, text.replace("\"ok\"", "\"failed: edited\"")).unwrap();

    let healed = run_campaign(&spec, &opts(2, &dir)).unwrap();
    assert_eq!(
        healed.hits(),
        cold.runs.len() - 1,
        "only the truncated entry recomputes; the tampered status rides a valid entry"
    );
    // The tampered-but-valid entry *is* trusted (the cache is not a
    // tamper-evident store), so statuses can differ — but recomputing
    // the truncated entry must reproduce the original bytes for it.
    let truncated_hash = truncated.file_stem().unwrap().to_str().unwrap();
    let cold_entry = cold.runs.iter().find(|r| r.hash == truncated_hash).unwrap();
    let healed_entry = healed
        .runs
        .iter()
        .find(|r| r.hash == truncated_hash)
        .unwrap();
    assert_eq!(cold_entry.entry, healed_entry.entry);
    assert!(!healed_entry.cache_hit);

    std::fs::remove_dir_all(&dir).ok();
}

/// The SPEC matrix widened across all three storage tiers. The fault
/// axis is legal on every tier: each backend draws its own tier's
/// fault vocabulary (I/O-node faults on the pfs, metadata-shard
/// outages and degraded service on the object store, drain stalls
/// and burst-node crashes on the burst buffer) from the same seed.
const MIXED_BACKEND_SPEC: &str = r#"
[campaign]
name = "backend-tiers"
scale = "smoke"

[workloads]
ids = ["escat-b"]
backends = ["pfs", "object", "burst"]
fault_events = [0, 2]
seeds = [0]
"#;

#[test]
fn backend_tiers_hash_distinctly_and_cache_cold_equals_cached() {
    let spec = CampaignSpec::from_toml_str(MIXED_BACKEND_SPEC).unwrap();
    let runs = spec.expand();
    assert_eq!(runs.len(), 6, "fault-free and faulted runs per tier");

    // The backend is part of the canonical line, so each tier gets its
    // own content address — a cached pfs result can never be served
    // for an object or burst run.
    let mut hashes: Vec<String> = runs
        .iter()
        .map(|r| sioscope_campaign::config_hash(&r.canon()))
        .collect();
    hashes.sort();
    hashes.dedup();
    assert_eq!(hashes.len(), 6, "tiers must not share content addresses");

    let dir = fresh_dir("tiers");
    let cold = run_campaign(&spec, &opts(2, &dir)).unwrap();
    assert_eq!(cold.hits(), 0);
    assert!(
        cold.runs.iter().all(|r| r.entry.is_ok()),
        "{}",
        cold.render()
    );
    // Tiers produce genuinely different physics: the three fault-free
    // runs all time differently.
    let execs: std::collections::BTreeSet<u64> = runs
        .iter()
        .zip(&cold.runs)
        .filter(|(spec_run, _)| spec_run.canon().contains("faults=0"))
        .map(|(_, r)| r.entry.metrics["exec_time_ns"])
        .collect();
    assert_eq!(execs.len(), 3, "each tier must time differently");
    // Faulted runs surface their resilience ledger. The pfs tier's
    // metric set is pinned to the pre-backend path (its content
    // addresses must stay valid), so the counter appears on the
    // modern tiers only.
    for (spec_run, r) in runs.iter().zip(&cold.runs) {
        if spec_run.canon().contains("faults=2") {
            assert!(
                spec_run.canon().contains("backend=pfs")
                    || r.entry.metrics.contains_key("resilience_actions"),
                "faulted {} run must report resilience actions",
                spec_run.canon()
            );
            assert!(r.entry.metrics["fault_transitions"] > 0);
        }
        if spec_run.canon().contains("backend=burst") && spec_run.canon().contains("faults=2") {
            assert!(
                r.entry.metrics.contains_key("bytes_lost"),
                "faulted burst run must expose the loss ledger"
            );
        }
    }

    let cached = run_campaign(&spec, &opts(2, &dir)).unwrap();
    assert_eq!(cached.hits(), cached.runs.len());
    assert_eq!(cold.render(), cached.render(), "cold vs cached");

    std::fs::remove_dir_all(&dir).ok();
}

/// The streaming axis: queue depth × consumer speed × seed, riding
/// next to a registry experiment so the cross-kind ordering is
/// exercised too.
const STREAMS_SPEC: &str = r#"
[campaign]
name = "staging-streams"
scale = "smoke"

[registry]
experiments = ["stream-vs-file"]

[streams]
depths_kib = [16, 256, 0]
consumer_pcts = [50, 100]
seeds = [0, 7]
"#;

#[test]
fn streams_axis_hashes_distinctly_and_cache_cold_equals_cached() {
    let spec = CampaignSpec::from_toml_str(STREAMS_SPEC).unwrap();
    let runs = spec.expand();
    assert_eq!(
        runs.len(),
        1 + 3 * 2 * 2,
        "experiment + depth x speed x seed"
    );

    // Every stream point owns a distinct content address.
    let mut hashes: Vec<String> = runs
        .iter()
        .map(|r| sioscope_campaign::config_hash(&r.canon()))
        .collect();
    hashes.sort();
    hashes.dedup();
    assert_eq!(hashes.len(), runs.len());

    let dir = fresh_dir("streams");
    let cold = run_campaign(&spec, &opts(2, &dir)).unwrap();
    assert_eq!(cold.hits(), 0);
    assert!(
        cold.runs.iter().all(|r| r.entry.is_ok()),
        "{}",
        cold.render()
    );
    for (spec_run, r) in runs.iter().zip(&cold.runs) {
        let canon = spec_run.canon();
        if !canon.contains("kind=stream") {
            continue;
        }
        assert!(r.entry.metrics["pipeline_latency_ns"] > 0, "{canon}");
        assert!(r.entry.metrics["chunks"] > 0, "{canon}");
        // Unbounded queues never stall; the undersized depth at the
        // throttled consumer must.
        if canon.contains("depth=0;") {
            assert_eq!(r.entry.metrics["producer_stall_ns"], 0, "{canon}");
        }
        if canon.contains("depth=16;consumer=50;") && canon.ends_with("seed=0") {
            assert!(r.entry.metrics["producer_stall_ns"] > 0, "{canon}");
        }
    }

    let cached = run_campaign(&spec, &opts(2, &dir)).unwrap();
    assert_eq!(cached.hits(), cached.runs.len());
    assert_eq!(cold.render(), cached.render(), "cold vs cached");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn streams_axis_is_toml_order_independent() {
    let reordered = r#"
[streams]
seeds = [0x7, 0]
consumer_pcts = [50, 100]
depths_kib = [16, 0x100, 0]

[registry]
experiments = ["stream-vs-file"]

[campaign]
scale = "smoke"
name = "staging-streams"
"#;
    let a = CampaignSpec::from_toml_str(STREAMS_SPEC).unwrap();
    let b = CampaignSpec::from_toml_str(reordered).unwrap();
    let hashes = |spec: &CampaignSpec| {
        let mut h: Vec<String> = spec
            .expand()
            .iter()
            .map(|r| sioscope_campaign::config_hash(&r.canon()))
            .collect();
        h.sort();
        h
    };
    assert_eq!(hashes(&a), hashes(&b));
}

#[test]
fn backend_axis_is_toml_order_independent() {
    let reordered = r#"
[workloads]
seeds = [0x0]
fault_events = [0, 2]
backends = ["pfs", "object", "burst"]
ids = ["escat-b"]

[campaign]
scale = "smoke"
name = "backend-tiers"
"#;
    let a = CampaignSpec::from_toml_str(MIXED_BACKEND_SPEC).unwrap();
    let b = CampaignSpec::from_toml_str(reordered).unwrap();
    assert_eq!(a, b);
    let canons =
        |spec: &CampaignSpec| -> Vec<String> { spec.expand().iter().map(|r| r.canon()).collect() };
    assert_eq!(canons(&a), canons(&b));
}

#[test]
fn spec_reordering_cannot_move_a_content_address() {
    let reordered = r#"
[contention]
policies = ["fcfs"]

[workloads]
seeds = [0x0]
fault_events = [2, 0]
ids = ["escat-b"]

[campaign]
scale = "smoke"
name = "determinism-guard"
"#;
    let a = CampaignSpec::from_toml_str(SPEC).unwrap();
    let b = CampaignSpec::from_toml_str(reordered).unwrap();
    // fault_events listed in a different order: same *set* of runs,
    // expansion order follows the listing for axes, so compare the
    // canonical sets and the per-run hashes.
    let hashes = |spec: &CampaignSpec| {
        let mut h: Vec<String> = spec
            .expand()
            .iter()
            .map(|r| sioscope_campaign::config_hash(&r.canon()))
            .collect();
        h.sort();
        h
    };
    assert_eq!(hashes(&a), hashes(&b));
}
