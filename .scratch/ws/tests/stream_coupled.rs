//! End-to-end checks of the streaming subsystem: the coupled
//! producer–consumer driver, its differential against the
//! checkpoint-file hand-off, and the per-job trace attribution.
//!
//! These are the acceptance properties the tentpole promises: at an
//! adequate staging depth the in-transit pipeline beats the file
//! baseline on end-to-end latency with a stall-free producer, while
//! an undersized queue or a crashed consumer surfaces as nonzero
//! producer stall — and every fault-free coupled run replays
//! bit-identically from the same seed.

use sioscope::{run_coupled, FileRoute, Route};
use sioscope_faults::{FaultKind, FaultSchedule};
use sioscope_sim::{JobId, Time};
use sioscope_stream::StagingConfig;
use sioscope_trace::TraceIndex;
use sioscope_workloads::{PrismConfig, PrismVersion, StreamCadence};

fn cadence() -> StreamCadence {
    PrismConfig::tiny(PrismVersion::C).stream_cadence()
}

fn stream_route(depth: u64) -> Route {
    Route::Stream(StagingConfig::paragon(depth))
}

#[test]
fn streaming_beats_the_file_handoff_at_adequate_depth() {
    let c = cadence();
    let depth = 2 * c.bursts[0].bytes();
    let stream = run_coupled(&c, &stream_route(depth), 100, &FaultSchedule::empty()).unwrap();
    let file = run_coupled(
        &c,
        &Route::File(FileRoute::caltech_class()),
        100,
        &FaultSchedule::empty(),
    )
    .unwrap();
    assert!(
        stream.pipeline_latency < file.pipeline_latency,
        "stream {} must beat file {}",
        stream.pipeline_latency,
        file.pipeline_latency
    );
    assert_eq!(stream.producer_stall, Time::ZERO);
    assert_eq!(stream.bytes, c.total_bytes());
    assert_eq!(file.bytes, c.total_bytes());
    assert!(stream.conserves && file.conserves);
}

#[test]
fn undersized_depth_and_consumer_crash_both_stall_the_producer() {
    let c = cadence();
    let tight = run_coupled(
        &c,
        &stream_route(c.max_chunk()),
        100,
        &FaultSchedule::empty(),
    )
    .unwrap();
    assert!(
        tight.producer_stall > Time::ZERO,
        "a queue one chunk deep must backpressure the producer"
    );

    let roomy_depth = 2 * c.bursts[0].bytes();
    let clean = run_coupled(&c, &stream_route(roomy_depth), 100, &FaultSchedule::empty()).unwrap();
    assert_eq!(clean.producer_stall, Time::ZERO);
    let mut faults = FaultSchedule::empty();
    faults.push(
        Time::ZERO,
        FaultKind::ConsumerCrash {
            stall: clean.pipeline_latency.max(Time::from_millis(1)),
        },
    );
    let crashed = run_coupled(&c, &stream_route(roomy_depth), 100, &faults).unwrap();
    assert!(
        crashed.producer_stall > Time::ZERO,
        "the outage must reach the producer through backpressure"
    );
    assert!(crashed.pipeline_latency > clean.pipeline_latency);
    assert_eq!(crashed.bytes, c.total_bytes(), "no bytes lost to the crash");
}

#[test]
fn fault_free_coupled_runs_replay_bit_identically() {
    let c = cadence();
    let depth = c.bursts[0].bytes();
    for route in [stream_route(depth), Route::File(FileRoute::caltech_class())] {
        let a = run_coupled(&c, &route, 100, &FaultSchedule::empty()).unwrap();
        let b = run_coupled(&c, &route, 100, &FaultSchedule::empty()).unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint(), "{route:?}");
        assert_eq!(a.trace.events(), b.trace.events(), "{route:?}");
        assert_eq!(a.occupancy, b.occupancy, "{route:?}");
    }
    // A rebuilt cadence from the same config is the same world too.
    let again = cadence();
    let a = run_coupled(&c, &stream_route(depth), 100, &FaultSchedule::empty()).unwrap();
    let b = run_coupled(&again, &stream_route(depth), 100, &FaultSchedule::empty()).unwrap();
    assert_eq!(a.fingerprint(), b.fingerprint());
}

#[test]
fn per_job_trace_views_attribute_producer_and_consumer() {
    let c = cadence();
    let o = run_coupled(
        &c,
        &stream_route(2 * c.bursts[0].bytes()),
        100,
        &FaultSchedule::empty(),
    )
    .unwrap();
    let index = TraceIndex::build_with_jobs(o.trace.events(), &o.jobs);
    // Job 0 is the producer (every chunk written), job 1 the consumer
    // (every chunk read back): the coupled trace splits exactly in two.
    assert_eq!(index.job_event_count(JobId(0)) as u64, o.chunks);
    assert_eq!(index.job_event_count(JobId(1)) as u64, o.chunks);
    assert_eq!(o.trace.len() as u64, 2 * o.chunks);
    assert_eq!(o.bytes, c.total_bytes());
}

#[test]
fn invalid_coupled_inputs_error_instead_of_panicking() {
    let c = cadence();
    // Depth smaller than one chunk can never admit it.
    let err = run_coupled(
        &c,
        &stream_route(c.max_chunk() - 1),
        100,
        &FaultSchedule::empty(),
    )
    .unwrap_err();
    assert!(err.contains("depth"), "{err}");
    // Cross-tier fault schedules are rejected with the tier named.
    let mut faults = FaultSchedule::empty();
    faults.push(
        Time::from_secs(1),
        FaultKind::DrainStall {
            duration: Time::from_secs(1),
        },
    );
    let err = run_coupled(&c, &stream_route(0), 100, &faults).unwrap_err();
    assert!(err.contains("stream"), "{err}");
}
