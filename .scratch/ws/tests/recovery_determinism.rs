//! End-to-end guarantees of the checkpoint/restart recovery engine:
//! same-seed runs are bit-identical, recovery never beats the
//! fault-free baseline, and malformed crash schedules are rejected
//! before any simulation happens.

use proptest::prelude::*;
use sioscope::simulator::{run, SimError, SimOptions};
use sioscope::{run_with_recovery, RunResult};
use sioscope_faults::{FaultGen, FaultKind, FaultSchedule};
use sioscope_pfs::PfsConfig;
use sioscope_sim::Time;
use sioscope_workloads::{
    CheckpointPolicy, EscatConfig, EscatVersion, PrismConfig, PrismVersion, Recoverable,
};

fn pfs_for(rec: &Recoverable) -> PfsConfig {
    let w = rec.workload();
    PfsConfig::caltech(w.nodes, w.os)
}

fn baseline_of(rec: &Recoverable) -> Time {
    run(rec.workload(), pfs_for(rec), SimOptions::default())
        .expect("baseline runs")
        .exec_time
}

fn crash_at(at: Time, rework: Time) -> FaultSchedule {
    let mut s = FaultSchedule::empty();
    s.push(at, FaultKind::ComputeNodeCrash { node: 0, rework });
    s
}

fn recover(rec: &Recoverable, crashes: &FaultSchedule) -> RunResult {
    run_with_recovery(rec, crashes, pfs_for(rec), SimOptions::default()).expect("recovery runs")
}

#[test]
fn escat_recovery_is_bit_identical_across_reruns() {
    let rec =
        EscatConfig::tiny(EscatVersion::C).recoverable(CheckpointPolicy::Fixed { interval: 1 });
    let crashes = crash_at(baseline_of(&rec).scale(0.6), Time::from_secs(2));
    let a = recover(&rec, &crashes);
    let b = recover(&rec, &crashes);
    assert_eq!(a.recovery, b.recovery);
    assert_eq!(a.recovery.time_to_solution, b.recovery.time_to_solution);
    assert_eq!(a.exec_time, b.exec_time);
    assert_eq!(a.events, b.events);
    assert_eq!(a.trace.events(), b.trace.events());
    assert!(a.recovery.crashes >= 1, "the placed crash must engage");
}

#[test]
fn prism_recovery_is_bit_identical_across_reruns() {
    let cfg = PrismConfig::tiny(PrismVersion::B);
    let rec = cfg.recoverable(CheckpointPolicy::Fixed {
        interval: cfg.checkpoint_every,
    });
    // PRISM's tiny run is dominated by setup I/O, so commit times
    // cluster late; place the crash between the first two measured
    // commits rather than at a fixed fraction of the baseline.
    let base = run(rec.workload(), pfs_for(&rec), SimOptions::default()).expect("baseline runs");
    let (first, second) = (base.checkpoint_commits[0].1, base.checkpoint_commits[1].1);
    let crashes = crash_at(first.saturating_add(second) / 2, Time::from_secs(2));
    let a = recover(&rec, &crashes);
    let b = recover(&rec, &crashes);
    assert_eq!(a.recovery, b.recovery);
    assert_eq!(a.trace.events(), b.trace.events());
    assert!(
        a.recovery.checkpoint_read_bytes > 0,
        "a replay from PRISM's restart file re-reads it through the PFS"
    );
}

#[test]
fn seeded_crash_generation_feeds_recovery_deterministically() {
    let rec =
        EscatConfig::tiny(EscatVersion::C).recoverable(CheckpointPolicy::Fixed { interval: 1 });
    let baseline = baseline_of(&rec);
    let w = rec.workload();
    let fgen = FaultGen::new(0xD00D, baseline.scale(2.0), 8);
    let crashes = fgen.compute_crash_schedule(baseline.scale(0.5), Time::from_secs(1), w.nodes);
    assert_eq!(
        crashes,
        fgen.compute_crash_schedule(baseline.scale(0.5), Time::from_secs(1), w.nodes),
        "the crash stream is a pure function of its seed"
    );
    let a = recover(&rec, &crashes);
    let b = recover(&rec, &crashes);
    assert_eq!(a.recovery, b.recovery);
    assert_eq!(a.trace.events(), b.trace.events());
}

#[test]
fn crash_on_missing_node_is_rejected_before_simulation() {
    let rec = EscatConfig::tiny(EscatVersion::C).recoverable(CheckpointPolicy::None);
    let mut s = FaultSchedule::empty();
    s.push(
        Time::from_secs(1),
        FaultKind::ComputeNodeCrash {
            node: 1000,
            rework: Time::from_secs(1),
        },
    );
    match run_with_recovery(&rec, &s, pfs_for(&rec), SimOptions::default()) {
        Err(SimError::InvalidFaults(problems)) => {
            assert!(
                problems.iter().any(|p| p.contains("compute-crash")),
                "{problems:?}"
            );
        }
        other => panic!("expected InvalidFaults, got {other:?}"),
    }
}

#[test]
fn zero_rework_crash_is_rejected() {
    let rec = EscatConfig::tiny(EscatVersion::C).recoverable(CheckpointPolicy::None);
    let s = crash_at(Time::from_secs(1), Time::ZERO);
    assert!(matches!(
        run_with_recovery(&rec, &s, pfs_for(&rec), SimOptions::default()),
        Err(SimError::InvalidFaults(_))
    ));
}

fn arb_policy() -> impl Strategy<Value = CheckpointPolicy> {
    prop_oneof![
        Just(CheckpointPolicy::None),
        (1u32..=4).prop_map(|interval| CheckpointPolicy::Fixed { interval }),
        (1u64..=8, 4u64..=64).prop_map(|(cost, mtbf)| CheckpointPolicy::Young {
            checkpoint_cost: Time::from_secs(cost),
            mtbf: Time::from_secs(mtbf),
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Whatever the checkpoint policy and wherever a single crash
    /// lands, time-to-solution is never better than the fault-free run
    /// of the same annotated workload — recovery can only add time.
    #[test]
    fn recovery_never_beats_the_fault_free_baseline(
        policy in arb_policy(),
        frac in 0.05f64..1.2,
        reboot_secs in 1u64..4,
    ) {
        let rec = EscatConfig::tiny(EscatVersion::C).recoverable(policy);
        let baseline = baseline_of(&rec);
        let crashes = crash_at(baseline.scale(frac), Time::from_secs(reboot_secs));
        let r = recover(&rec, &crashes);
        prop_assert!(
            r.recovery.time_to_solution >= baseline,
            "policy {policy:?}, crash at {frac:.2}x: TTS {} < baseline {}",
            r.recovery.time_to_solution,
            baseline
        );
        prop_assert_eq!(r.recovery.attempts, r.recovery.crashes + 1);
    }

    /// Seeded multi-crash scenarios always run to completion, with
    /// every crash either surviving into the accounting or absorbed by
    /// an earlier crash's reboot window.
    #[test]
    fn seeded_scenarios_always_reach_a_solution(
        seed in 0u64..1000,
        mtbf_frac in 0.3f64..3.0,
    ) {
        let rec = EscatConfig::tiny(EscatVersion::C)
            .recoverable(CheckpointPolicy::Fixed { interval: 1 });
        let baseline = baseline_of(&rec);
        let crashes = FaultGen::new(seed, baseline.scale(2.0), 8)
            .compute_crash_schedule(baseline.scale(mtbf_frac), Time::from_secs(1), rec.workload().nodes);
        let r = recover(&rec, &crashes);
        prop_assert!(r.recovery.time_to_solution >= baseline);
        prop_assert!(u64::from(r.recovery.crashes) <= crashes.events.len() as u64);
        prop_assert_eq!(r.recovery.attempts, r.recovery.crashes + 1);
    }
}
