//! Golden-run regression suite: bit-exact snapshots of every registry
//! experiment, plus the raw per-run numbers they are derived from.
//!
//! Each experiment's rendered artifact and shape-check verdicts are
//! serialized to `tests/golden/<id>.json`; the underlying `RunResult`s
//! (exact nanosecond times, event counts, per-node finish times and a
//! digest of the full I/O trace) go to `tests/golden/runs-escat.json`
//! and `tests/golden/runs-prism.json`. The comparison is **string
//! equality on the serialized JSON** — one nanosecond of drift anywhere
//! fails the suite, which is exactly the guarantee an optimization pass
//! needs: the refactored simulator must be *bit-identical*, not merely
//! "still passes the shape checks".
//!
//! Workflow:
//!
//! * First run in a fresh checkout (no golden file yet): the snapshot
//!   is **bootstrapped** — written to disk and reported, so the suite
//!   self-seeds from whatever commit it first runs on. Run it once
//!   *before* an optimization lands and the optimized tree is verified
//!   against pre-change outputs.
//! * Subsequent runs: bit-exact comparison; any mismatch fails with the
//!   first differing line.
//! * `UPDATE_GOLDEN=1 cargo test --test golden_experiments` regenerates
//!   every snapshot. Legitimate only when outputs *intentionally*
//!   changed (new experiment, model fix); never to make an
//!   "optimization" pass.
//!
//! Snapshots are captured at smoke scale so the suite stays cheap
//! enough to run on every commit.

use sioscope::experiments::{run_experiment, Experiment, Scale};
use sioscope::simulator::RunResult;
use std::path::{Path, PathBuf};

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
}

fn update_requested() -> bool {
    matches!(
        std::env::var("UPDATE_GOLDEN").as_deref(),
        Ok("1") | Ok("true")
    )
}

/// FNV-1a over the canonical JSON of each trace event: a cheap,
/// dependency-free digest that pins the *entire* I/O trace (every pid,
/// offset, start and duration) without committing megabytes of JSON.
fn trace_digest(r: &RunResult) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for ev in r.trace.events() {
        let line = serde_json::to_string(ev).expect("serialize trace event");
        for b in line.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^= u64::from(b'\n');
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{h:016x}")
}

fn run_summary(r: &RunResult) -> serde_json::Value {
    serde_json::json!({
        "name": r.name,
        "version": r.version,
        "exec_time_ns": r.exec_time,
        "events": r.events,
        "total_io_time_ns": r.total_io_time(),
        "node_finish_ns": r.node_finish,
        "trace_events": r.trace.len(),
        "trace_digest": trace_digest(r),
        "duration_by_kind_ns": r.trace.duration_by_kind(),
        "bytes_by_kind": r.trace.bytes_by_kind(),
        "resilience": r.resilience,
        "fault_transitions": r.fault_transitions,
    })
}

/// Compare `produced` against the snapshot at `path`. Returns an error
/// string on mismatch; bootstraps the file if it does not exist yet.
fn check_snapshot(path: &Path, produced: &str, failures: &mut Vec<String>) {
    if update_requested() || !path.exists() {
        let verb = if path.exists() {
            "updated"
        } else {
            "bootstrapped"
        };
        std::fs::write(path, produced).expect("write golden snapshot");
        eprintln!("golden: {verb} {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(path).expect("read golden snapshot");
    if expected == produced {
        return;
    }
    let diff_line = expected
        .lines()
        .zip(produced.lines())
        .enumerate()
        .find(|(_, (e, p))| e != p)
        .map(|(i, (e, p))| format!("line {}: golden `{}` vs produced `{}`", i + 1, e, p))
        .unwrap_or_else(|| {
            format!(
                "line counts differ: golden {} vs produced {}",
                expected.lines().count(),
                produced.lines().count()
            )
        });
    failures.push(format!(
        "{}: snapshot mismatch ({diff_line}); if the change is intentional, \
         regenerate with UPDATE_GOLDEN=1",
        path.display()
    ));
}

fn pretty(value: &serde_json::Value) -> String {
    let mut s = serde_json::to_string_pretty(value).expect("serialize golden");
    s.push('\n');
    s
}

#[test]
fn registry_experiments_match_goldens_bit_exact() {
    let dir = golden_dir();
    std::fs::create_dir_all(&dir).expect("create tests/golden");
    let mut failures = Vec::new();
    for e in Experiment::all() {
        let out = run_experiment(e, Scale::Smoke);
        let value = serde_json::json!({
            "id": e.id(),
            "title": e.title(),
            "rendered": out.rendered,
            "checks": out
                .checks
                .iter()
                .map(|c| {
                    serde_json::json!({
                        "name": c.name,
                        "pass": c.pass,
                        "detail": c.detail,
                    })
                })
                .collect::<Vec<_>>(),
        });
        check_snapshot(
            &dir.join(format!("{}.json", e.id())),
            &pretty(&value),
            &mut failures,
        );
    }
    assert!(failures.is_empty(), "{}", failures.join("\n"));
}

#[test]
fn escat_run_results_match_goldens_bit_exact() {
    use sioscope::experiments::escat::run_version;
    use sioscope_workloads::{EscatDataset, EscatVersion};
    let dir = golden_dir();
    std::fs::create_dir_all(&dir).expect("create tests/golden");
    let mut runs = serde_json::Map::new();
    for v in EscatVersion::progressions() {
        for dataset in [EscatDataset::Ethylene, EscatDataset::CarbonMonoxide] {
            let r = run_version(v, dataset, Scale::Smoke);
            runs.insert(
                format!("escat-{v:?}-{dataset:?}").to_lowercase(),
                run_summary(&r),
            );
        }
    }
    let mut failures = Vec::new();
    check_snapshot(
        &dir.join("runs-escat.json"),
        &pretty(&serde_json::Value::Object(runs)),
        &mut failures,
    );
    assert!(failures.is_empty(), "{}", failures.join("\n"));
}

#[test]
fn prism_run_results_match_goldens_bit_exact() {
    use sioscope::experiments::prism::run_version;
    use sioscope_workloads::PrismVersion;
    let dir = golden_dir();
    std::fs::create_dir_all(&dir).expect("create tests/golden");
    let mut runs = serde_json::Map::new();
    for v in PrismVersion::all() {
        let r = run_version(v, Scale::Smoke);
        runs.insert(format!("prism-{v:?}").to_lowercase(), run_summary(&r));
    }
    let mut failures = Vec::new();
    check_snapshot(
        &dir.join("runs-prism.json"),
        &pretty(&serde_json::Value::Object(runs)),
        &mut failures,
    );
    assert!(failures.is_empty(), "{}", failures.join("\n"));
}
