//! Trace → replay → re-simulate round trip: the replayed workload must
//! reproduce the original request stream exactly and land in the same
//! timing ballpark.

use sioscope::simulator::{run, SimOptions};
use sioscope_pfs::{OpKind, PfsConfig};
use sioscope_workloads::{replay, EscatConfig, EscatVersion, Workload};
use std::collections::BTreeMap;

fn run_workload(w: &Workload) -> sioscope::simulator::RunResult {
    let cfg = PfsConfig::caltech(w.nodes, w.os);
    run(w, cfg, SimOptions::default()).expect("runs")
}

#[test]
fn escat_replay_reproduces_the_request_stream() {
    let original_workload = EscatConfig::tiny(EscatVersion::B).build();
    let original = run_workload(&original_workload);

    let sizes: BTreeMap<u32, u64> = original_workload
        .files
        .iter()
        .enumerate()
        .map(|(i, f)| (i as u32, f.initial_size))
        .collect();
    let replayed_workload =
        replay::from_trace(original.trace.events(), &sizes).expect("replayable");
    assert!(replayed_workload.validate().is_empty());
    let replayed = run_workload(&replayed_workload);

    // Exactly the same bytes move.
    assert_eq!(
        original.trace.bytes_by_kind(),
        replayed.trace.bytes_by_kind()
    );
    // Same data-operation counts.
    for kind in [OpKind::Read, OpKind::Write, OpKind::Seek] {
        assert_eq!(
            original.trace.of_kind(kind).count(),
            replayed.trace.of_kind(kind).count(),
            "{kind} count"
        );
    }
    // Same request-size distribution.
    let mut orig_sizes = original.trace.sizes_of(OpKind::Read);
    let mut repl_sizes = replayed.trace.sizes_of(OpKind::Read);
    orig_sizes.sort_unstable();
    repl_sizes.sort_unstable();
    assert_eq!(orig_sizes, repl_sizes);

    // Timing lands in the same ballpark (think time is reproduced;
    // barrier structure is not, so allow slack).
    let o = original.exec_time.as_secs_f64();
    let r = replayed.exec_time.as_secs_f64();
    assert!(
        r > 0.5 * o && r < 2.0 * o,
        "replay exec {r:.1}s vs original {o:.1}s"
    );
}

#[test]
fn replay_is_idempotent_at_the_stream_level() {
    // Replaying a replay changes nothing further.
    let w0 = EscatConfig::tiny(EscatVersion::C).build();
    let r0 = run_workload(&w0);
    let sizes: BTreeMap<u32, u64> = w0
        .files
        .iter()
        .enumerate()
        .map(|(i, f)| (i as u32, f.initial_size))
        .collect();
    let w1 = replay::from_trace(r0.trace.events(), &sizes).expect("first replay");
    let r1 = run_workload(&w1);
    let w2 = replay::from_trace(r1.trace.events(), &sizes).expect("second replay");
    let r2 = run_workload(&w2);
    assert_eq!(r1.trace.bytes_by_kind(), r2.trace.bytes_by_kind());
    assert_eq!(
        r1.trace.of_kind(OpKind::Read).count(),
        r2.trace.of_kind(OpKind::Read).count()
    );
}
