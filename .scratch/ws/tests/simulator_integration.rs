//! Cross-crate integration tests: workload generation → simulation →
//! trace → analysis, exercised together at smoke scale.

use sioscope::simulator::{run, SimOptions};
use sioscope_analysis::{classify_file, Cdf, IoClass, Timeline};
use sioscope_pfs::{OpKind, PfsConfig};
use sioscope_sim::{Pid, Time};
use sioscope_trace::{FileRegionSummary, LifetimeSummary, TimeWindowSummary};
use sioscope_workloads::{EscatConfig, EscatVersion, PrismConfig, PrismVersion};

fn run_escat(v: EscatVersion) -> sioscope::simulator::RunResult {
    let w = EscatConfig::tiny(v).build();
    let cfg = PfsConfig::caltech(w.nodes, w.os);
    run(&w, cfg, SimOptions::default()).expect("runs")
}

fn run_prism(v: PrismVersion) -> sioscope::simulator::RunResult {
    let w = PrismConfig::tiny(v).build();
    let cfg = PfsConfig::caltech(w.nodes, w.os);
    run(&w, cfg, SimOptions::default()).expect("runs")
}

#[test]
fn traces_satisfy_global_invariants() {
    for r in [
        run_escat(EscatVersion::A),
        run_escat(EscatVersion::B),
        run_escat(EscatVersion::C),
        run_prism(PrismVersion::A),
        run_prism(PrismVersion::B),
        run_prism(PrismVersion::C),
    ] {
        assert_eq!(r.trace.invariant_violations(), 0, "{}", r.name);
        // Every event ends no later than the run does.
        for e in r.trace.events() {
            assert!(e.end() <= r.exec_time, "{}: event past exec end", r.name);
        }
        // Sorted by construction after run().
        for pair in r.trace.events().windows(2) {
            assert!(pair[0].start <= pair[1].start, "{}: unsorted trace", r.name);
        }
        // Per-pid events are non-overlapping (a process issues one
        // call at a time).
        let mut per_pid: std::collections::HashMap<Pid, Vec<(Time, Time)>> =
            std::collections::HashMap::new();
        for e in r.trace.events() {
            per_pid.entry(e.pid).or_default().push((e.start, e.end()));
        }
        for (pid, mut spans) in per_pid {
            spans.sort();
            for pair in spans.windows(2) {
                assert!(
                    pair[1].0 >= pair[0].1,
                    "{}: {pid:?} has overlapping I/O calls",
                    r.name
                );
            }
        }
    }
}

#[test]
fn conservation_of_bytes_between_workload_and_trace() {
    for v in [EscatVersion::A, EscatVersion::B, EscatVersion::C] {
        let w = EscatConfig::tiny(v).build();
        let cfg = PfsConfig::caltech(w.nodes, w.os);
        let r = run(&w, cfg, SimOptions::default()).expect("runs");
        let (declared_read, declared_written) = w.declared_volume();
        let b = r.trace.bytes_by_kind();
        assert_eq!(b.get(&OpKind::Read).copied().unwrap_or(0), declared_read);
        assert_eq!(
            b.get(&OpKind::Write).copied().unwrap_or(0),
            declared_written
        );
    }
}

#[test]
fn summaries_are_consistent_with_raw_trace() {
    let r = run_prism(PrismVersion::B);
    // Lifetime summaries partition the trace by file: per-kind counts
    // summed across files equal global counts.
    let mut total_reads = 0;
    for f in 0..9u32 {
        let s = LifetimeSummary::build(r.trace.events(), sioscope_sim::FileId(f));
        total_reads += s.per_kind.get(&OpKind::Read).map(|x| x.count).unwrap_or(0);
    }
    assert_eq!(total_reads, r.trace.of_kind(OpKind::Read).count() as u64);

    // A window covering everything equals the whole trace.
    let w = TimeWindowSummary::build(
        r.trace.events(),
        Time::ZERO,
        r.exec_time + Time::from_secs(1),
    );
    let total: u64 = w.per_kind.values().map(|s| s.count).sum();
    assert_eq!(total, r.trace.len() as u64);

    // A region covering all offsets of one file equals that file's
    // data ops.
    let restart = sioscope_sim::FileId(1);
    let region = FileRegionSummary::build(r.trace.events(), restart, 0, u64::MAX);
    let lifetime = LifetimeSummary::build(r.trace.events(), restart);
    let data_ops = lifetime
        .per_kind
        .iter()
        .filter(|(k, _)| matches!(k, OpKind::Read | OpKind::Write))
        .map(|(_, s)| s.count)
        .sum::<u64>();
    assert_eq!(region.accesses(), data_ops);
}

#[test]
fn analysis_pipeline_runs_over_real_traces() {
    let r = run_escat(EscatVersion::C);
    let cdf = Cdf::from_samples(r.trace.sizes_of(OpKind::Write));
    assert!(!cdf.is_empty());
    assert!(cdf.fraction_leq(u64::MAX) > 0.999);
    let tl = Timeline::new(r.trace.timeline_of(OpKind::Write));
    assert!(!tl.is_empty());
    assert!(tl.end().unwrap() <= r.exec_time);
    let ds = tl.downsample(10);
    assert!(ds.len() <= 10);
    assert_eq!(ds.max_value(), tl.max_value());
}

#[test]
fn determinism_across_full_pipeline() {
    let a1 = run_prism(PrismVersion::C);
    let a2 = run_prism(PrismVersion::C);
    assert_eq!(a1.exec_time, a2.exec_time);
    assert_eq!(a1.events, a2.events);
    assert_eq!(a1.trace.events(), a2.trace.events());
}

#[test]
fn trace_export_round_trips_through_json() {
    let r = run_escat(EscatVersion::B);
    let json = sioscope_trace::export::to_json(&r.trace).expect("serializes");
    let back = sioscope_trace::export::from_json(&json).expect("deserializes");
    assert_eq!(back.events(), r.trace.events());
}

#[test]
fn node_zero_does_all_phase_two_io_in_prism() {
    let r = run_prism(PrismVersion::A);
    // Files 3..=6 and 8 (measurement, stats, history) are node-zero
    // territory in every version.
    for f in [3u32, 4, 5, 6, 8] {
        for e in r.trace.of_file(sioscope_sim::FileId(f)) {
            assert_eq!(e.pid, Pid(0), "file {f} touched by {:?}", e.pid);
        }
    }
}

#[test]
fn escat_version_c_has_no_expensive_seeks() {
    let rb = run_escat(EscatVersion::B);
    let rc = run_escat(EscatVersion::C);
    let max_seek = |r: &sioscope::simulator::RunResult| {
        r.trace
            .of_kind(OpKind::Seek)
            .map(|e| e.duration)
            .max()
            .unwrap_or(Time::ZERO)
    };
    assert!(
        max_seek(&rb) > max_seek(&rc) * 10,
        "B {} vs C {}",
        max_seek(&rb),
        max_seek(&rc)
    );
}

#[test]
fn miller_katz_classification_matches_the_papers_phase_taxonomy() {
    // §4: ESCAT's quadrature files are data staging, its inputs are
    // compulsory reads and its outputs compulsory writes.
    let w = EscatConfig::tiny(EscatVersion::C);
    let built = w.build();
    let cfg = PfsConfig::caltech(built.nodes, built.os);
    let r = run(&built, cfg, SimOptions::default()).expect("runs");
    let gap = Time::from_secs(1);
    for f in 0..3u32 {
        assert_eq!(
            classify_file(r.trace.events(), sioscope_sim::FileId(f), gap).class,
            IoClass::CompulsoryInput,
            "escat input {f}"
        );
    }
    for f in 3..5u32 {
        assert_eq!(
            classify_file(r.trace.events(), sioscope_sim::FileId(f), gap).class,
            IoClass::DataStaging,
            "escat quadrature {f}"
        );
    }
    for f in 5..7u32 {
        assert_eq!(
            classify_file(r.trace.events(), sioscope_sim::FileId(f), gap).class,
            IoClass::CompulsoryOutput,
            "escat output {f}"
        );
    }

    // §5: PRISM's statistics files are checkpoint I/O; the parameter /
    // restart / connectivity files are compulsory inputs; the field
    // file is a compulsory output.
    let w = PrismConfig::tiny(PrismVersion::C);
    let built = w.build();
    let cfg = PfsConfig::caltech(built.nodes, built.os);
    let r = run(&built, cfg, SimOptions::default()).expect("runs");
    // Checkpoint gap: half a checkpoint interval of compute.
    let gap = Time::from_millis(50 * 2);
    for f in 0..3u32 {
        assert_eq!(
            classify_file(r.trace.events(), sioscope_sim::FileId(f), gap).class,
            IoClass::CompulsoryInput,
            "prism input {f}"
        );
    }
    for f in 4..7u32 {
        assert_eq!(
            classify_file(r.trace.events(), sioscope_sim::FileId(f), gap).class,
            IoClass::Checkpoint,
            "prism stats {f}"
        );
    }
    assert_eq!(
        classify_file(r.trace.events(), sioscope_sim::FileId(7), gap).class,
        IoClass::CompulsoryOutput,
        "prism field"
    );
}

#[test]
fn workloads_serialize_and_round_trip() {
    // Workload definitions are plain data: they serialize, so
    // experiment configurations can be archived alongside traces.
    let w = EscatConfig::tiny(EscatVersion::B).build();
    let json = serde_json::to_string(&w).expect("serializes");
    let back: sioscope_workloads::Workload = serde_json::from_str(&json).expect("deserializes");
    assert_eq!(back.name, w.name);
    assert_eq!(back.nodes, w.nodes);
    assert_eq!(back.programs, w.programs);
    // And the deserialized workload runs identically.
    let cfg = PfsConfig::caltech(w.nodes, w.os);
    let r1 = run(&w, cfg.clone(), SimOptions::default()).expect("original runs");
    let r2 = run(&back, cfg, SimOptions::default()).expect("round-tripped runs");
    assert_eq!(r1.exec_time, r2.exec_time);
    assert_eq!(r1.trace.events(), r2.trace.events());
}

#[test]
fn phase_detection_recovers_prism_structure() {
    // PRISM's three-phase structure (§5): initialization reads, a long
    // write-dominated integration, final field output — recoverable
    // from the trace alone.
    let w = PrismConfig::test_problem(PrismVersion::A).build();
    let cfg = PfsConfig::caltech(w.nodes, w.os);
    let r = run(&w, cfg, SimOptions::default()).expect("runs");
    let phases = sioscope_analysis::detect_phases(r.trace.events(), Time::from_secs(40));
    assert!(
        phases.len() >= 3,
        "expected at least 3 phases, got {}",
        phases.len()
    );
    // The first phase is the compulsory reads.
    assert_eq!(
        phases[0].kind,
        sioscope_analysis::PhaseKind::ReadDominant,
        "first phase must be the initialization reads"
    );
    // The bulk of written bytes lands after the first phase.
    let later_writes: u64 = phases[1..].iter().map(|p| p.bytes_written).sum();
    assert!(later_writes > phases[0].bytes_written);
    // Phases are time-ordered and non-overlapping.
    for pair in phases.windows(2) {
        assert!(pair[0].end <= pair[1].start);
    }
}

#[test]
fn log_histogram_matches_cdf_on_real_trace() {
    let r = run_escat(EscatVersion::A);
    let sizes = r.trace.sizes_of(OpKind::Read);
    let hist = sioscope_analysis::LogHistogram::from_samples(sizes.iter().copied());
    let cdf = Cdf::from_samples(sizes);
    assert_eq!(hist.total(), cdf.n());
    // The histogram's mode bin is consistent with the CDF's median
    // bin for this small-read-dominated trace.
    let (mode_lo, _) = hist.mode_bin().expect("non-empty");
    let median = cdf.quantile(0.5).expect("non-empty");
    assert!(median >= mode_lo / 2 && median < mode_lo * 4);
}

#[test]
fn interarrival_structure_distinguishes_node_roles() {
    // PRISM node zero writes measurement records on a fixed step
    // cadence — a (relatively) regular stream; the paper's
    // applications overall are irregular (§2 contrast).
    let w = PrismConfig::test_problem(PrismVersion::A).build();
    let cfg = PfsConfig::caltech(w.nodes, w.os);
    let r = run(&w, cfg, SimOptions::default()).expect("runs");
    let node0_writes: Vec<Time> = r
        .trace
        .of_pid(Pid(0))
        .filter(|e| e.kind == OpKind::Write && e.file.0 == 3)
        .map(|e| e.start)
        .collect();
    let ia =
        sioscope_analysis::interarrival::of_starts(&node0_writes).expect("many measurement writes");
    // Jittered 5-step cadence: low coefficient of variation.
    assert!(ia.cv < 0.5, "measurement stream CV {}", ia.cv);
    // The whole-trace request sizes span orders of magnitude (the
    // paper's irregularity claim).
    let cdf = Cdf::from_samples(r.trace.sizes_of(OpKind::Read));
    let lo = cdf.quantile(0.0).expect("reads");
    let hi = cdf.quantile(1.0).expect("reads");
    assert!(hi / lo.max(1) > 1000, "read sizes {lo}..{hi}");
}
