//! Property-based end-to-end tests: randomly generated (but
//! structurally valid) workloads run to completion without deadlock,
//! conserve bytes, and produce causally consistent traces.

use proptest::prelude::*;
use sioscope::simulator::{run, SimOptions};
use sioscope_pfs::mode::OsRelease;
use sioscope_pfs::{IoMode, IoOp, OpKind, PfsConfig};
use sioscope_sim::Time;
use sioscope_workloads::{FileSpec, Stmt, Workload};

/// A random but well-formed workload: `nodes` processes, one shared
/// input file (collectively opened in a random collective-safe mode)
/// plus per-node private files, with random read/write/compute
/// sequences and matching barrier placement.
fn arb_workload() -> impl Strategy<Value = Workload> {
    (
        2u32..6,                                               // nodes
        0usize..3,                                             // barriers
        prop::collection::vec((0u8..4, 1u64..200_000), 1..20), // shared-phase ops
        prop::collection::vec((0u8..2, 1u64..100_000), 0..15), // private-phase ops
        prop_oneof![
            Just(IoMode::MGlobal),
            Just(IoMode::MAsync),
            Just(IoMode::MUnix)
        ],
    )
        .prop_map(|(nodes, barriers, shared_ops, private_ops, shared_mode)| {
            let mut files = vec![FileSpec {
                name: "shared".into(),
                initial_size: 64 << 20,
            }];
            for i in 0..nodes {
                files.push(FileSpec {
                    name: format!("private{i}"),
                    initial_size: 1 << 20,
                });
            }
            let programs = (0..nodes)
                .map(|pid| {
                    let mut p = Vec::new();
                    // Shared file: collective gopen in the chosen mode.
                    p.push(Stmt::Io {
                        file: 0,
                        op: IoOp::Gopen {
                            group: nodes,
                            mode: shared_mode,
                            record_size: None,
                        },
                    });
                    for &(kind, size) in &shared_ops {
                        // All nodes must issue identical collective
                        // streams in M_GLOBAL; reads only to keep the
                        // shared pointer meaningful.
                        match (shared_mode, kind) {
                            (IoMode::MGlobal, _) => p.push(Stmt::Io {
                                file: 0,
                                op: IoOp::Read {
                                    size: size % 65_536 + 1,
                                },
                            }),
                            (_, 0) => p.push(Stmt::Io {
                                file: 0,
                                op: IoOp::Read { size },
                            }),
                            (_, 1) => p.push(Stmt::Io {
                                file: 0,
                                op: IoOp::Write { size },
                            }),
                            (_, 2) => p.push(Stmt::Io {
                                file: 0,
                                op: IoOp::Seek {
                                    offset: (size * (u64::from(pid) + 1)) % (32 << 20),
                                },
                            }),
                            _ => p.push(Stmt::Compute(Time::from_millis(size % 50 + 1))),
                        }
                    }
                    p.push(Stmt::Io {
                        file: 0,
                        op: IoOp::Close,
                    });
                    for _ in 0..barriers {
                        p.push(Stmt::Barrier);
                    }
                    // Private file: unconstrained ops.
                    let f = 1 + pid;
                    p.push(Stmt::Io {
                        file: f,
                        op: IoOp::Open,
                    });
                    for &(kind, size) in &private_ops {
                        match kind {
                            0 => p.push(Stmt::Io {
                                file: f,
                                op: IoOp::Read { size },
                            }),
                            _ => p.push(Stmt::Io {
                                file: f,
                                op: IoOp::Write { size },
                            }),
                        }
                    }
                    p.push(Stmt::Io {
                        file: f,
                        op: IoOp::Close,
                    });
                    p
                })
                .collect();
            Workload {
                name: "random".into(),
                version: "prop".into(),
                os: OsRelease::Osf13,
                nodes,
                files,
                programs,
                phases: vec![],
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random workloads validate, complete without deadlock, and every
    /// trace event is causally sane.
    #[test]
    fn random_workloads_run_to_completion(w in arb_workload()) {
        prop_assert!(w.validate().is_empty(), "{:?}", w.validate());
        let cfg = PfsConfig::caltech(w.nodes, w.os);
        let r = run(&w, cfg, SimOptions::default()).expect("no deadlock");
        prop_assert!(r.exec_time > Time::ZERO);
        prop_assert_eq!(r.node_finish.len(), w.nodes as usize);
        prop_assert_eq!(r.trace.invariant_violations(), 0);
        for e in r.trace.events() {
            prop_assert!(e.end() <= r.exec_time);
        }
        // Byte conservation.
        let (reads, writes) = w.declared_volume();
        let by = r.trace.bytes_by_kind();
        prop_assert_eq!(by.get(&OpKind::Read).copied().unwrap_or(0), reads);
        prop_assert_eq!(by.get(&OpKind::Write).copied().unwrap_or(0), writes);
    }

    /// The same workload is bit-for-bit deterministic.
    #[test]
    fn random_workloads_are_deterministic(w in arb_workload()) {
        let cfg = PfsConfig::caltech(w.nodes, w.os);
        let r1 = run(&w, cfg.clone(), SimOptions::default()).expect("run 1");
        let r2 = run(&w, cfg, SimOptions::default()).expect("run 2");
        prop_assert_eq!(r1.exec_time, r2.exec_time);
        prop_assert_eq!(r1.trace.events(), r2.trace.events());
    }
}
