//! Convenience prelude for the sioscope reproduction's examples and
//! integration tests: one `use sioscope_repro::prelude::*;` brings the
//! whole toolkit into scope.
//!
//! The canonical outputs of the reproduction live in `artifacts/`
//! (regenerate with `cargo run -p sioscope-bench --bin repro --release
//! -- --sweeps --out artifacts`).

/// Everything an experiment script typically needs.
pub mod prelude {
    pub use sioscope::experiments::{run_experiment, Experiment, Scale};
    pub use sioscope::simulator::{run, RunResult, SimError, SimOptions};
    pub use sioscope::sweeps;
    pub use sioscope_analysis::{
        classify_all, detect_phases, BandwidthSeries, Cdf, ConcurrencyProfile, Evolution, IoClass,
        LogHistogram, ModeUsage, NodeBalance, Timeline,
    };
    pub use sioscope_machine::MachineConfig;
    pub use sioscope_pfs::{IoMode, IoOp, OpKind, Pfs, PfsConfig, PolicyConfig};
    pub use sioscope_sim::{FileId, NodeId, Pid, Time};
    pub use sioscope_trace::{IoEvent, TraceRecorder};
    pub use sioscope_workloads::{
        EscatConfig, EscatVersion, PrismConfig, PrismVersion, Stmt, Workload,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_exposes_the_toolkit() {
        use crate::prelude::*;
        let w = EscatConfig::tiny(EscatVersion::C).build();
        let cfg = PfsConfig::caltech(w.nodes, w.os);
        let r = run(&w, cfg, SimOptions::default()).expect("runs");
        assert!(r.exec_time > Time::ZERO);
        let _cdf = Cdf::from_samples(r.trace.sizes_of(OpKind::Read));
    }
}
