//! Whole-machine configuration.

use crate::disk::DiskParams;
use crate::mesh::MeshParams;
use serde::{Deserialize, Serialize};
use sioscope_sim::NodeId;

/// Configuration of the simulated machine: mesh geometry, the set of
/// compute nodes an application runs on, and the I/O node complement.
///
/// The paper's platform is captured by [`MachineConfig::caltech_paragon`]:
/// a 16×32 mesh (512 nodes), sixteen I/O nodes each with a 4.8 GB
/// RAID-3 array, files striped in 64 KB units (the PFS default).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Mesh geometry and link timing.
    pub mesh: MeshParams,
    /// Number of compute nodes allocated to the application partition.
    pub compute_nodes: u32,
    /// Number of I/O nodes (each one disk array).
    pub io_nodes: u32,
    /// Disk array characteristics (identical across I/O nodes).
    pub disk: DiskParams,
    /// Per-node mesh-placement overrides, indexed by node id. A `None`
    /// entry (and every node beyond the table) falls back to the
    /// default row-major fill, so dedicated-mode runs — which never
    /// populate this — are untouched. The batch scheduler fills it as
    /// it carves sub-mesh partitions out of the shared machine.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub placement: Vec<Option<(u32, u32)>>,
}

impl MachineConfig {
    /// The Caltech Center of Advanced Computing Research Paragon XP/S
    /// as described in §3.2 of the paper, with the application
    /// partition size left to the workload (128 nodes for ESCAT
    /// ethylene, 256 for carbon monoxide, 64 for PRISM).
    pub fn caltech_paragon(compute_nodes: u32) -> Self {
        MachineConfig {
            mesh: MeshParams::paragon_16x32(),
            compute_nodes,
            io_nodes: 16,
            disk: DiskParams::raid3_4_8gb(),
            placement: Vec::new(),
        }
    }

    /// The Intel Touchstone Delta (where ESCAT was first developed,
    /// §4.1): a 16×32 mesh like the Paragon's, but with slower links
    /// and fewer, slower I/O nodes under the Concurrent File System.
    /// Version A's access patterns are artifacts of this machine's
    /// habits (§6.1).
    pub fn touchstone_delta(compute_nodes: u32) -> Self {
        let mut mesh = MeshParams::paragon_16x32();
        mesh.sw_setup = sioscope_sim::Time::from_micros(150);
        mesh.bandwidth_bps = 22.0e6;
        let mut disk = DiskParams::raid3_4_8gb();
        disk.bandwidth_bps = 3.0e6;
        MachineConfig {
            mesh,
            compute_nodes,
            io_nodes: 8,
            disk,
            placement: Vec::new(),
        }
    }

    /// The Intel iPSC/860 (where PRISM was developed, §6.1): a
    /// hypercube modelled here as an 8×16 mesh of equivalent diameter,
    /// with the Concurrent File System's I/O complement.
    pub fn ipsc860(compute_nodes: u32) -> Self {
        let mut mesh = MeshParams::paragon_16x32();
        mesh.rows = 8;
        mesh.cols = 16;
        mesh.sw_setup = sioscope_sim::Time::from_micros(300);
        mesh.bandwidth_bps = 2.8e6;
        let mut disk = DiskParams::raid3_4_8gb();
        disk.bandwidth_bps = 1.5e6;
        MachineConfig {
            mesh,
            compute_nodes,
            io_nodes: 4,
            disk,
            placement: Vec::new(),
        }
    }

    /// A deliberately tiny machine for unit tests and the quickstart
    /// example: 2×4 mesh, 4 compute nodes, 2 I/O nodes.
    pub fn tiny() -> Self {
        MachineConfig {
            mesh: MeshParams::tiny_2x4(),
            compute_nodes: 4,
            io_nodes: 2,
            disk: DiskParams::raid3_4_8gb(),
            placement: Vec::new(),
        }
    }

    /// Mesh coordinates of a compute node. A scheduler-registered
    /// [`MachineConfig::placement`] entry wins; otherwise compute nodes
    /// fill the mesh in row-major order from the origin. A partition
    /// anchored at the origin with full-mesh-width rows therefore
    /// places its nodes exactly where a dedicated run would — the
    /// property the single-job bit-identity guarantee rests on.
    pub fn compute_position(&self, node: NodeId) -> (u32, u32) {
        if let Some(Some(pos)) = self.placement.get(node.index()) {
            return *pos;
        }
        let cols = self.mesh.cols.max(1);
        let i = node.0 % (self.mesh.rows * self.mesh.cols).max(1);
        (i % cols, i / cols)
    }

    /// Register (or clear, with `None`) the mesh position of one node,
    /// growing the placement table as needed.
    pub fn place_node(&mut self, node: NodeId, pos: Option<(u32, u32)>) {
        if self.placement.len() <= node.index() {
            self.placement.resize(node.index() + 1, None);
        }
        self.placement[node.index()] = pos;
    }

    /// Mesh coordinates of an I/O node. The Paragon placed I/O nodes
    /// along one edge of the mesh; we follow suit, spreading them
    /// evenly down the last column.
    pub fn io_position(&self, ion: u32) -> (u32, u32) {
        let rows = self.mesh.rows.max(1);
        let row = if self.io_nodes <= 1 {
            0
        } else {
            // Evenly spaced rows, deterministic.
            (ion * rows.saturating_sub(1)) / (self.io_nodes - 1).max(1)
        };
        (self.mesh.cols.saturating_sub(1), row.min(rows - 1))
    }

    /// Iterator over all compute node ids in the partition.
    pub fn compute_node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.compute_nodes).map(NodeId)
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig::caltech_paragon(128)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caltech_paragon_matches_paper() {
        let m = MachineConfig::caltech_paragon(128);
        assert_eq!(m.io_nodes, 16);
        assert_eq!(m.compute_nodes, 128);
        assert_eq!(m.mesh.rows * m.mesh.cols, 512);
    }

    #[test]
    fn compute_positions_are_in_bounds() {
        let m = MachineConfig::caltech_paragon(512);
        for n in m.compute_node_ids() {
            let (x, y) = m.compute_position(n);
            assert!(x < m.mesh.cols);
            assert!(y < m.mesh.rows);
        }
    }

    #[test]
    fn io_positions_distinct_and_in_bounds() {
        let m = MachineConfig::caltech_paragon(128);
        let mut seen = std::collections::HashSet::new();
        for ion in 0..m.io_nodes {
            let (x, y) = m.io_position(ion);
            assert!(x < m.mesh.cols);
            assert!(y < m.mesh.rows);
            assert!(seen.insert((x, y)), "duplicate I/O node placement");
        }
    }

    #[test]
    fn single_io_node_at_origin_row() {
        let mut m = MachineConfig::tiny();
        m.io_nodes = 1;
        assert_eq!(m.io_position(0).1, 0);
    }

    #[test]
    fn predecessor_machines_are_slower() {
        let paragon = MachineConfig::caltech_paragon(128);
        let delta = MachineConfig::touchstone_delta(128);
        let ipsc = MachineConfig::ipsc860(64);
        assert!(delta.io_nodes < paragon.io_nodes);
        assert!(delta.disk.bandwidth_bps < paragon.disk.bandwidth_bps);
        assert!(ipsc.mesh.bandwidth_bps < delta.mesh.bandwidth_bps);
        assert_eq!(ipsc.mesh.rows * ipsc.mesh.cols, 128);
    }

    #[test]
    fn default_is_paragon() {
        let m = MachineConfig::default();
        assert_eq!(m.compute_nodes, 128);
    }

    #[test]
    fn placement_overrides_and_falls_back() {
        let mut m = MachineConfig::tiny();
        assert_eq!(m.compute_position(NodeId(5)), (1, 1));
        m.place_node(NodeId(5), Some((3, 0)));
        assert_eq!(m.compute_position(NodeId(5)), (3, 0));
        // Nodes without an entry (or with a cleared one) keep the
        // row-major fallback.
        assert_eq!(m.compute_position(NodeId(2)), (2, 0));
        m.place_node(NodeId(5), None);
        assert_eq!(m.compute_position(NodeId(5)), (1, 1));
    }

    #[test]
    fn empty_placement_serializes_identically_to_before() {
        let m = MachineConfig::tiny();
        let json = serde_json::to_string(&m).unwrap();
        assert!(!json.contains("placement"), "{json}");
        let mut m2 = MachineConfig::tiny();
        m2.place_node(NodeId(0), Some((0, 0)));
        let json2 = serde_json::to_string(&m2).unwrap();
        assert!(json2.contains("placement"), "{json2}");
        let back: MachineConfig = serde_json::from_str(&json2).unwrap();
        assert_eq!(back.compute_position(NodeId(0)), (0, 0));
    }
}
