//! Calibration notes and sanity checks.
//!
//! Absolute seconds on a 1996 Paragon cannot be recovered from the
//! paper, so the machine model is calibrated to reproduce *relative*
//! magnitudes the paper documents or that are well established for the
//! platform:
//!
//! 1. PFS delivered high transfer rates only for requests that are
//!    multiples of the 64 KB stripe unit (§6.2); small-request
//!    performance was "quite low" (§6.2, footnote 5).
//! 2. A 128 KB read (two stripe units) was the sweet spot the ESCAT
//!    developers tuned to (§4.2).
//! 3. Peak aggregate bandwidth scaled with the sixteen I/O nodes, but
//!    delivered bandwidth was dominated by positioning for small
//!    requests.
//!
//! [`CalibrationReport`] computes the model's delivered bandwidth at a
//! few canonical request sizes so tests (and EXPERIMENTS.md) can
//! assert the shape: ≥20× bandwidth advantage of 128 KB requests over
//! 1 KB requests on a single array.

use crate::config::MachineConfig;
use crate::disk::DiskModel;
use serde::{Deserialize, Serialize};

/// Delivered single-array bandwidth at canonical request sizes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CalibrationReport {
    /// Bytes/second for random 1 KB requests.
    pub bw_1k: f64,
    /// Bytes/second for random 64 KB (one stripe unit) requests.
    pub bw_64k: f64,
    /// Bytes/second for random 128 KB (two stripe units) requests.
    pub bw_128k: f64,
    /// Bytes/second for random 1 MB requests.
    pub bw_1m: f64,
    /// Ratio `bw_128k / bw_1k` — the small-request penalty the paper's
    /// developers tuned around.
    pub large_over_small: f64,
}

impl CalibrationReport {
    /// Evaluate the disk model of `config`.
    pub fn for_machine(config: &MachineConfig) -> Self {
        let disk = DiskModel::new(config.disk);
        let bw_1k = disk.effective_bandwidth(1 << 10);
        let bw_64k = disk.effective_bandwidth(64 << 10);
        let bw_128k = disk.effective_bandwidth(128 << 10);
        let bw_1m = disk.effective_bandwidth(1 << 20);
        CalibrationReport {
            bw_1k,
            bw_64k,
            bw_128k,
            bw_1m,
            large_over_small: if bw_1k > 0.0 { bw_128k / bw_1k } else { 0.0 },
        }
    }

    /// `true` iff the model preserves the paper's qualitative
    /// small-vs-large request behaviour.
    pub fn shape_holds(&self) -> bool {
        self.bw_1k < self.bw_64k
            && self.bw_64k < self.bw_128k
            && self.bw_128k <= self.bw_1m
            && self.large_over_small >= 20.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_machine_is_calibrated() {
        let report = CalibrationReport::for_machine(&MachineConfig::default());
        assert!(
            report.shape_holds(),
            "calibration shape violated: {report:?}"
        );
    }

    #[test]
    fn large_over_small_is_substantial() {
        let report = CalibrationReport::for_machine(&MachineConfig::default());
        // The paper's developers saw order-of-magnitude gains from
        // aggregating small requests into stripe-multiple requests.
        assert!(report.large_over_small > 20.0);
        assert!(report.large_over_small < 10_000.0, "implausibly extreme");
    }
}
