//! The 2-D mesh interconnect.
//!
//! The Paragon XP/S used a 2-D mesh with dimension-ordered (XY)
//! wormhole routing. For wormhole routing, message latency is well
//! approximated by `setup + hops * per_hop + bytes / bandwidth`: the
//! per-hop term covers the header flit pipeline, and the payload
//! streams at link bandwidth once the path is set up.

use serde::{Deserialize, Serialize};
use sioscope_sim::Time;

/// Mesh geometry and link timing parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MeshParams {
    /// Mesh rows.
    pub rows: u32,
    /// Mesh columns.
    pub cols: u32,
    /// Software message setup/teardown cost (send + receive system
    /// call path). Paragon NX message latency was on the order of
    /// 50-100 µs for small messages.
    pub sw_setup: Time,
    /// Per-hop header routing latency. Paragon routers switched a flit
    /// in well under a microsecond.
    pub per_hop: Time,
    /// Link bandwidth in bytes per second. Paragon links moved
    /// ~175 MB/s raw; delivered application bandwidth was much lower,
    /// ~35-90 MB/s. We use a delivered figure.
    pub bandwidth_bps: f64,
}

impl MeshParams {
    /// The Caltech machine: 16 rows × 32 columns.
    pub fn paragon_16x32() -> Self {
        MeshParams {
            rows: 16,
            cols: 32,
            sw_setup: Time::from_micros(60),
            per_hop: Time::from_nanos(400),
            bandwidth_bps: 60.0e6,
        }
    }

    /// A tiny 2×4 mesh for tests.
    pub fn tiny_2x4() -> Self {
        MeshParams {
            rows: 2,
            cols: 4,
            ..Self::paragon_16x32()
        }
    }
}

/// Analytic mesh latency model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MeshModel {
    params: MeshParams,
}

impl MeshModel {
    /// Build a model over the given parameters.
    pub fn new(params: MeshParams) -> Self {
        MeshModel { params }
    }

    /// The underlying parameters.
    pub fn params(&self) -> &MeshParams {
        &self.params
    }

    /// Manhattan hop count between two mesh coordinates (XY routing).
    pub fn hops(&self, a: (u32, u32), b: (u32, u32)) -> u32 {
        a.0.abs_diff(b.0) + a.1.abs_diff(b.1)
    }

    /// One-way latency for a `bytes`-byte message across `hops` hops.
    pub fn message_time_hops(&self, bytes: u64, hops: u32) -> Time {
        let wire = Time::from_secs_f64(bytes as f64 / self.params.bandwidth_bps);
        self.params.sw_setup + self.params.per_hop * u64::from(hops) + wire
    }

    /// One-way latency between two coordinates.
    pub fn message_time(&self, from: (u32, u32), to: (u32, u32), bytes: u64) -> Time {
        self.message_time_hops(bytes, self.hops(from, to))
    }

    /// One-way latency across `hops` hops under link congestion. A
    /// congestion factor of `c` means the payload streams at `1/c` of
    /// the link bandwidth (contending wormhole traffic); the setup and
    /// per-hop header terms are unaffected. `c == 1.0` takes exactly
    /// the uncongested path so fault-free runs stay bit-identical.
    pub fn message_time_hops_congested(&self, bytes: u64, hops: u32, congestion: f64) -> Time {
        if congestion == 1.0 {
            return self.message_time_hops(bytes, hops);
        }
        let wire = Time::from_secs_f64(bytes as f64 * congestion / self.params.bandwidth_bps);
        self.params.sw_setup + self.params.per_hop * u64::from(hops) + wire
    }

    /// Time for a binomial-tree broadcast of `bytes` from one root to
    /// `members` processes. Each of the `ceil(log2(members))` stages
    /// forwards the full payload one average-distance hop span away.
    pub fn broadcast_time(&self, members: u32, bytes: u64) -> Time {
        if members <= 1 {
            return Time::ZERO;
        }
        let stages = 32 - (members - 1).leading_zeros(); // ceil(log2(members))
        let avg_hops = (self.params.rows + self.params.cols) / 4;
        self.message_time_hops(bytes, avg_hops.max(1)) * u64::from(stages)
    }

    /// [`MeshModel::broadcast_time`] under link congestion; see
    /// [`MeshModel::message_time_hops_congested`] for the convention.
    pub fn broadcast_time_congested(&self, members: u32, bytes: u64, congestion: f64) -> Time {
        if congestion == 1.0 {
            return self.broadcast_time(members, bytes);
        }
        if members <= 1 {
            return Time::ZERO;
        }
        let stages = 32 - (members - 1).leading_zeros();
        let avg_hops = (self.params.rows + self.params.cols) / 4;
        self.message_time_hops_congested(bytes, avg_hops.max(1), congestion) * u64::from(stages)
    }

    /// Diameter of the mesh in hops.
    pub fn diameter(&self) -> u32 {
        (self.params.rows - 1) + (self.params.cols - 1)
    }

    /// Mean pairwise hop distance over the whole mesh. For an R×C
    /// mesh with XY routing this is the sum of the two dimensions'
    /// mean 1-D distances, `(R² − 1) / (3R) + (C² − 1) / (3C)`.
    pub fn mean_distance(&self) -> f64 {
        let d1 = |n: f64| (n * n - 1.0) / (3.0 * n);
        d1(f64::from(self.params.rows)) + d1(f64::from(self.params.cols))
    }

    /// Bisection bandwidth in bytes/second: the links crossing the
    /// mesh's narrower middle cut times the link bandwidth.
    pub fn bisection_bandwidth(&self) -> f64 {
        let cut = self.params.rows.min(self.params.cols);
        f64::from(cut) * self.params.bandwidth_bps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> MeshModel {
        MeshModel::new(MeshParams::paragon_16x32())
    }

    #[test]
    fn hops_is_manhattan() {
        let m = model();
        assert_eq!(m.hops((0, 0), (0, 0)), 0);
        assert_eq!(m.hops((0, 0), (3, 4)), 7);
        assert_eq!(m.hops((5, 2), (1, 9)), 11);
    }

    #[test]
    fn message_time_increases_with_size_and_distance() {
        let m = model();
        let small_near = m.message_time_hops(64, 1);
        let small_far = m.message_time_hops(64, 40);
        let big_near = m.message_time_hops(1 << 20, 1);
        assert!(small_far > small_near);
        assert!(big_near > small_near);
    }

    #[test]
    fn zero_byte_message_still_costs_setup() {
        let m = model();
        assert!(m.message_time_hops(0, 0) >= Time::from_micros(60));
    }

    #[test]
    fn broadcast_grows_logarithmically() {
        let m = model();
        let b2 = m.broadcast_time(2, 1024);
        let b128 = m.broadcast_time(128, 1024);
        let b256 = m.broadcast_time(256, 1024);
        assert_eq!(m.broadcast_time(1, 1024), Time::ZERO);
        // 128 members -> 7 stages, 2 members -> 1 stage.
        assert_eq!(b128.as_nanos(), b2.as_nanos() * 7);
        assert_eq!(b256.as_nanos(), b2.as_nanos() * 8);
    }

    #[test]
    fn congestion_factor_one_is_bit_identical() {
        let m = model();
        for bytes in [0u64, 64, 1 << 20] {
            assert_eq!(
                m.message_time_hops_congested(bytes, 7, 1.0),
                m.message_time_hops(bytes, 7)
            );
            assert_eq!(
                m.broadcast_time_congested(128, bytes, 1.0),
                m.broadcast_time(128, bytes)
            );
        }
    }

    #[test]
    fn congestion_stretches_wire_time_only() {
        let m = model();
        // Header-only message: congestion doesn't touch setup/per-hop.
        assert_eq!(
            m.message_time_hops_congested(0, 7, 4.0),
            m.message_time_hops(0, 7)
        );
        // Payload-heavy message: congestion dominates.
        let clean = m.message_time_hops(1 << 20, 7);
        let jammed = m.message_time_hops_congested(1 << 20, 7, 4.0);
        assert!(jammed > clean);
        assert!(m.broadcast_time_congested(128, 1 << 20, 4.0) > m.broadcast_time(128, 1 << 20));
    }

    #[test]
    fn diameter_matches_geometry() {
        assert_eq!(model().diameter(), 15 + 31);
    }

    #[test]
    fn mean_distance_matches_brute_force() {
        let m = MeshModel::new(MeshParams::tiny_2x4());
        // Brute force over all ordered pairs (including self-pairs,
        // matching the closed form's convention).
        let (rows, cols) = (2u32, 4u32);
        let mut total = 0u64;
        let mut pairs = 0u64;
        for a in 0..rows * cols {
            for b in 0..rows * cols {
                let pa = (a % cols, a / cols);
                let pb = (b % cols, b / cols);
                total += u64::from(m.hops(pa, pb));
                pairs += 1;
            }
        }
        let brute = total as f64 / pairs as f64;
        assert!(
            (m.mean_distance() - brute).abs() < 1e-9,
            "closed form {} vs brute {brute}",
            m.mean_distance()
        );
    }

    #[test]
    fn bisection_uses_narrow_cut() {
        let m = model();
        assert!((m.bisection_bandwidth() - 16.0 * 60.0e6).abs() < 1.0);
    }
}
