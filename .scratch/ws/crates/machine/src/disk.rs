//! RAID-3 disk array model.
//!
//! Each Paragon I/O node fronted a 4.8 GB RAID-3 array. RAID-3 stripes
//! every request byte-interleaved across all data spindles with a
//! dedicated parity disk, so the array behaves like a single disk with
//! multiplied transfer bandwidth: one positioning cost per request,
//! then transfer at the aggregate rate.
//!
//! Service time for a request of `b` bytes:
//!
//! ```text
//! t = controller_overhead + positioning + b / aggregate_bandwidth
//! positioning = avg_seek + avg_rotational_latency   (random access)
//!             = track_switch                          (sequential access)
//! ```
//!
//! "Sequential" means the request starts where the previous request on
//! this array ended — the PFS layer tracks that and passes the flag.

use serde::{Deserialize, Serialize};
use sioscope_sim::Time;

/// Physical characteristics of one RAID-3 array.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DiskParams {
    /// Fixed controller/command overhead per request.
    pub controller_overhead: Time,
    /// Average seek time of the member spindles.
    pub avg_seek: Time,
    /// Average rotational latency (half a revolution).
    pub avg_rotation: Time,
    /// Positioning cost when the request is sequential to the previous
    /// one (head settles on the next track).
    pub track_switch: Time,
    /// Aggregate transfer bandwidth of the array, bytes/second.
    pub bandwidth_bps: f64,
    /// Service-time multiplier when the array runs degraded (one
    /// failed spindle, data reconstructed from parity on every
    /// access). RAID-3 tolerates the failure but the controller must
    /// XOR-reconstruct the missing stream and loses overlap with the
    /// dedicated parity disk.
    pub degraded_factor: f64,
}

impl DiskParams {
    /// The 4.8 GB RAID-3 arrays on the Caltech machine. Early-90s
    /// 3.5-inch SCSI spindles: ~12 ms average seek, 4500 RPM
    /// (≈6.7 ms half-rotation). RAID-3 byte-striping across four data
    /// spindles with synchronized rotation delivered ~8 MB/s per
    /// array once positioned.
    pub fn raid3_4_8gb() -> Self {
        DiskParams {
            controller_overhead: Time::from_micros(500),
            avg_seek: Time::from_millis(12),
            avg_rotation: Time::from_micros(6700),
            track_switch: Time::from_millis(1),
            bandwidth_bps: 8.0e6,
            degraded_factor: 1.6,
        }
    }
}

/// A transient disturbance applied to one array's service model at a
/// particular instant. Produced by the fault-injection layer; the
/// neutral value ([`DiskDisturbance::NONE`]) must leave
/// [`DiskModel::service_time_disturbed`] bit-identical to
/// [`DiskModel::service_time`], which is what keeps fault-free runs
/// reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiskDisturbance {
    /// The array runs degraded (one failed spindle; parity
    /// reconstruction on every access, costed by
    /// [`DiskParams::degraded_factor`]).
    pub degraded: bool,
    /// Multiplier on the whole service time (I/O-node daemon starved
    /// of CPU, controller firmware retrying, etc.). `1.0` = none.
    pub slow_factor: f64,
    /// Additive penalty for a latent sector error: the drive's
    /// internal retry/remap cycle before the request completes.
    pub latent_penalty: Time,
}

impl DiskDisturbance {
    /// No disturbance: the healthy, undisturbed service model.
    pub const NONE: DiskDisturbance = DiskDisturbance {
        degraded: false,
        slow_factor: 1.0,
        latent_penalty: Time::ZERO,
    };

    /// `true` iff this disturbance is exactly the neutral value.
    pub fn is_none(&self) -> bool {
        *self == Self::NONE
    }
}

impl Default for DiskDisturbance {
    fn default() -> Self {
        Self::NONE
    }
}

/// Analytic service-time model for one array.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DiskModel {
    params: DiskParams,
}

impl DiskModel {
    /// Build a model over the given parameters.
    pub fn new(params: DiskParams) -> Self {
        DiskModel { params }
    }

    /// The underlying parameters.
    pub fn params(&self) -> &DiskParams {
        &self.params
    }

    /// Service time for one request of `bytes` bytes.
    pub fn service_time(&self, bytes: u64, sequential: bool) -> Time {
        self.service_time_in(bytes, sequential, false)
    }

    /// Service time, optionally on a degraded array (one failed
    /// spindle; every access pays parity reconstruction).
    pub fn service_time_in(&self, bytes: u64, sequential: bool, degraded: bool) -> Time {
        let positioning = if sequential {
            self.params.track_switch
        } else {
            self.params.avg_seek + self.params.avg_rotation
        };
        let transfer = Time::from_secs_f64(bytes as f64 / self.params.bandwidth_bps);
        let healthy = self.params.controller_overhead + positioning + transfer;
        if degraded {
            healthy.scale(self.params.degraded_factor)
        } else {
            healthy
        }
    }

    /// Service time under a fault-injection disturbance. With
    /// [`DiskDisturbance::NONE`] this takes exactly the same code path
    /// as [`DiskModel::service_time`] (no float is multiplied by 1.0),
    /// so undisturbed requests stay bit-identical.
    pub fn service_time_disturbed(
        &self,
        bytes: u64,
        sequential: bool,
        disturbance: &DiskDisturbance,
    ) -> Time {
        let base = self.service_time_in(bytes, sequential, disturbance.degraded);
        let slowed = if disturbance.slow_factor == 1.0 {
            base
        } else {
            base.scale(disturbance.slow_factor)
        };
        slowed + disturbance.latent_penalty
    }

    /// Total service demand for a batch of same-array requests issued
    /// back-to-back: the exact sum of the individual
    /// [`DiskModel::service_time`] values. `Time` is integer
    /// nanoseconds, so the sum is associative — a batch accumulated
    /// this way can be reserved on a resource calendar in one
    /// `reserve_n` call without moving any request's finish time by a
    /// single nanosecond.
    pub fn service_time_batch<I>(&self, requests: I) -> Time
    where
        I: IntoIterator<Item = (u64, bool)>,
    {
        requests
            .into_iter()
            .map(|(bytes, sequential)| self.service_time(bytes, sequential))
            .sum()
    }

    /// Effective bandwidth (bytes/s) delivered for back-to-back random
    /// requests of the given size — useful for calibration checks.
    pub fn effective_bandwidth(&self, bytes: u64) -> f64 {
        let t = self.service_time(bytes, false).as_secs_f64();
        if t <= 0.0 {
            0.0
        } else {
            bytes as f64 / t
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> DiskModel {
        DiskModel::new(DiskParams::raid3_4_8gb())
    }

    #[test]
    fn sequential_beats_random() {
        let m = model();
        assert!(m.service_time(65536, true) < m.service_time(65536, false));
    }

    #[test]
    fn zero_byte_request_costs_positioning() {
        let m = model();
        let t = m.service_time(0, false);
        assert!(t >= Time::from_millis(18)); // overhead + seek + rotation
    }

    #[test]
    fn big_requests_amortize_positioning() {
        let m = model();
        // 1 MB random read should deliver a large fraction of the raw rate;
        // 1 KB random read should deliver almost none of it.
        let eff_big = m.effective_bandwidth(1 << 20);
        let eff_small = m.effective_bandwidth(1 << 10);
        assert!(eff_big > 0.5 * m.params().bandwidth_bps);
        assert!(eff_small < 0.05 * m.params().bandwidth_bps);
    }

    #[test]
    fn degraded_array_is_slower() {
        let m = model();
        let healthy = m.service_time_in(65536, false, false);
        let degraded = m.service_time_in(65536, false, true);
        assert!(degraded > healthy);
        assert!(degraded < healthy * 3, "degradation is bounded");
        assert_eq!(m.service_time(65536, false), healthy);
    }

    #[test]
    fn neutral_disturbance_is_bit_identical() {
        let m = model();
        for sz in [0u64, 512, 65536, 1 << 20] {
            for seq in [false, true] {
                assert_eq!(
                    m.service_time_disturbed(sz, seq, &DiskDisturbance::NONE),
                    m.service_time(sz, seq)
                );
            }
        }
        assert!(DiskDisturbance::default().is_none());
    }

    #[test]
    fn disturbances_compose_and_slow_the_disk() {
        let m = model();
        let healthy = m.service_time(65536, false);
        let slow = DiskDisturbance {
            slow_factor: 2.0,
            ..DiskDisturbance::NONE
        };
        assert!(m.service_time_disturbed(65536, false, &slow) > healthy);
        let latent = DiskDisturbance {
            latent_penalty: Time::from_millis(300),
            ..DiskDisturbance::NONE
        };
        assert_eq!(
            m.service_time_disturbed(65536, false, &latent),
            healthy + Time::from_millis(300)
        );
        let degraded = DiskDisturbance {
            degraded: true,
            ..DiskDisturbance::NONE
        };
        assert_eq!(
            m.service_time_disturbed(65536, false, &degraded),
            m.service_time_in(65536, false, true)
        );
    }

    #[test]
    fn batch_service_is_the_exact_sum_of_singles() {
        let m = model();
        let reqs = [(65536u64, false), (65536, true), (512, false), (0, true)];
        let singles: Time = reqs.iter().map(|&(b, s)| m.service_time(b, s)).sum();
        assert_eq!(m.service_time_batch(reqs), singles);
        assert_eq!(m.service_time_batch(std::iter::empty()), Time::ZERO);
    }

    #[test]
    fn service_time_is_monotone_in_size() {
        let m = model();
        let mut last = Time::ZERO;
        for sz in [0u64, 512, 4096, 65536, 1 << 20] {
            let t = m.service_time(sz, false);
            assert!(t >= last);
            last = t;
        }
    }
}
