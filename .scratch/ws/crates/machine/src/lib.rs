//! # sioscope-machine
//!
//! A parametric model of the machine the paper measured on: the
//! Caltech 512-node Intel Paragon XP/S, organized as a 16×32 mesh with
//! sixteen I/O nodes, each hosting a 4.8 GB RAID-3 disk array.
//!
//! The model is *analytic*: it provides cost functions (message
//! latency across the mesh, disk service time on a RAID-3 array) that
//! the PFS layer composes into end-to-end I/O operation costs. The
//! defaults in [`calibration`] are set from Paragon-era hardware
//! characteristics and then calibrated so the paper's *relative*
//! magnitudes reproduce; every constant documents its provenance.

pub mod calibration;
pub mod config;
pub mod disk;
pub mod mesh;

pub use config::MachineConfig;
pub use disk::{DiskDisturbance, DiskModel};
pub use mesh::MeshModel;
