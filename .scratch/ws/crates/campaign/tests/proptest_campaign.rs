//! Property tests for the campaign spec and content address:
//!
//! * hashing is invariant under TOML key/section reordering (and
//!   comment/whitespace/integer-spelling noise);
//! * distinct resolved configs never collide in a realistic
//!   population of run specs.

use proptest::prelude::*;
use sioscope_campaign::spec::{BACKEND_IDS, POLICY_IDS, SCALE_IDS, WORKLOAD_IDS};
use sioscope_campaign::{config_hash, CampaignSpec, RunSpec};
use std::collections::{BTreeMap, HashMap};

/// The generated axes of a random (valid) campaign.
#[derive(Debug, Clone)]
struct Axes {
    scale: &'static str,
    workloads: Vec<&'static str>,
    backends: Vec<&'static str>,
    fault_events: Vec<u32>,
    seeds: Vec<u64>,
    policies: Vec<&'static str>,
    load_pcts: Vec<u32>,
}

fn axes() -> impl Strategy<Value = Axes> {
    (
        proptest::sample::select(SCALE_IDS.to_vec()),
        proptest::sample::subsequence(WORKLOAD_IDS.to_vec(), 1..=4),
        proptest::sample::subsequence(BACKEND_IDS.to_vec(), 1..=3),
        proptest::collection::vec(0u32..=8, 1..=3),
        // TOML integers are i64, so spec-file seeds top out there.
        proptest::collection::vec(0u64..=i64::MAX as u64, 1..=3),
        proptest::sample::subsequence(POLICY_IDS.to_vec(), 1..=2),
        proptest::collection::vec(1u32..=400, 1..=3),
    )
        .prop_map(
            |(scale, workloads, backends, fault_events, seeds, policies, load_pcts)| Axes {
                scale,
                workloads,
                backends,
                fault_events,
                seeds,
                policies,
                load_pcts,
            },
        )
}

fn quoted(ids: &[&str]) -> String {
    ids.iter()
        .map(|id| format!("\"{id}\""))
        .collect::<Vec<_>>()
        .join(", ")
}

fn ints<T: std::fmt::Display>(values: &[T]) -> String {
    values
        .iter()
        .map(|v| v.to_string())
        .collect::<Vec<_>>()
        .join(", ")
}

fn hex(values: &[u64]) -> String {
    values
        .iter()
        .map(|v| format!("0x{v:X}"))
        .collect::<Vec<_>>()
        .join(", ")
}

/// Render the same campaign two ways: canonical-order decimal TOML,
/// and reversed-section/reversed-key TOML with hex seeds, comments and
/// noise whitespace.
fn render_two_ways(a: &Axes) -> (String, String) {
    let tidy = format!(
        "[campaign]\nname = \"prop\"\nscale = \"{}\"\n\
         [workloads]\nids = [{}]\nbackends = [{}]\nfault_events = [{}]\nseeds = [{}]\n\
         [contention]\npolicies = [{}]\nload_pcts = [{}]\n",
        a.scale,
        quoted(&a.workloads),
        quoted(&a.backends),
        ints(&a.fault_events),
        ints(&a.seeds),
        quoted(&a.policies),
        ints(&a.load_pcts),
    );
    let scrambled = format!(
        "# same campaign, shuffled\n\
         [contention]\n  load_pcts = [ {} ]\n  policies = [{}]\n\n\
         [workloads]\nseeds = [{}]   # hex spellings\n\
         fault_events = [\n  {}\n]\nbackends = [{}]\nids = [{}]\n\n\
         [campaign]\nscale = '{}'\nname = \"prop\"\n",
        ints(&a.load_pcts),
        quoted(&a.policies),
        hex(&a.seeds),
        ints(&a.fault_events),
        quoted(&a.backends),
        quoted(&a.workloads),
        a.scale,
    );
    (tidy, scrambled)
}

proptest! {
    /// Key order, section order, comments, whitespace and integer
    /// spelling must be invisible to the content address.
    #[test]
    fn hashing_is_invariant_under_toml_reordering(a in axes()) {
        let (tidy, scrambled) = render_two_ways(&a);
        let spec_a = CampaignSpec::from_toml_str(&tidy).unwrap();
        let spec_b = CampaignSpec::from_toml_str(&scrambled).unwrap();
        prop_assert_eq!(&spec_a, &spec_b);
        let hashes = |s: &CampaignSpec| -> Vec<String> {
            s.expand().iter().map(|r| config_hash(&r.canon())).collect()
        };
        prop_assert_eq!(hashes(&spec_a), hashes(&spec_b));
    }

    /// Distinct resolved configs never collide: across a random
    /// population of run specs, equal hashes imply equal canon lines.
    #[test]
    fn distinct_configs_never_collide(
        workload_runs in proptest::collection::vec(
            (
                proptest::sample::select(WORKLOAD_IDS.to_vec()),
                proptest::sample::select(BACKEND_IDS.to_vec()),
                proptest::sample::select(SCALE_IDS.to_vec()),
                0u32..=64,
                any::<u64>(),
            ),
            0..64,
        ),
        contention_runs in proptest::collection::vec(
            (
                proptest::sample::select(POLICY_IDS.to_vec()),
                proptest::sample::select(SCALE_IDS.to_vec()),
                1u32..=400,
                any::<u64>(),
            ),
            0..64,
        ),
    ) {
        let mut seen: HashMap<String, String> = HashMap::new();
        let runs = workload_runs
            .into_iter()
            .map(|(id, backend, scale, fault_events, seed)| RunSpec::Workload {
                id: id.to_string(),
                backend: backend.to_string(),
                scale: scale.to_string(),
                fault_events,
                seed,
            })
            .chain(contention_runs.into_iter().map(|(policy, scale, load_pct, seed)| {
                RunSpec::Contention {
                    policy: policy.to_string(),
                    scale: scale.to_string(),
                    load_pct,
                    seed,
                }
            }));
        for run in runs {
            let canon = run.canon();
            let hash = config_hash(&canon);
            if let Some(previous) = seen.insert(hash.clone(), canon.clone()) {
                prop_assert_eq!(
                    previous, canon,
                    "hash collision between distinct configs at {}", hash
                );
            }
        }
    }

    /// Expansion is a pure function of the parsed spec: expanding
    /// twice gives identical run lists with unique canon lines.
    #[test]
    fn expansion_is_stable_and_duplicate_free(a in axes()) {
        let (tidy, _) = render_two_ways(&a);
        let spec = CampaignSpec::from_toml_str(&tidy).unwrap();
        let first = spec.expand();
        prop_assert_eq!(&first, &spec.expand());
        let mut counts: BTreeMap<String, usize> = BTreeMap::new();
        for run in &first {
            *counts.entry(run.canon()).or_default() += 1;
        }
        prop_assert!(counts.values().all(|&c| c == 1), "duplicate canon in expansion");
    }
}
