//! The campaign spec: what to run, as data.
//!
//! A `campaign.toml` names cross-product *matrices* — workloads ×
//! fault intensities × seeds, scheduler policies × load factors ×
//! seeds — plus flat lists of registry experiment/sweep ids.
//! [`CampaignSpec::expand`] turns those into a deterministic,
//! deduplicated list of [`RunSpec`]s, each of which canonicalizes to
//! a single line ([`RunSpec::canon`]) that the content address is
//! computed over.
//!
//! Everything here is resolved *values*, never source text: two specs
//! that differ only in TOML key order, comments, whitespace, or
//! integer spelling (`0x10` vs `16`) expand to identical run lists
//! and therefore identical content addresses.

use std::collections::BTreeSet;
use std::fmt;

use crate::minitoml::{self, TomlTable, TomlValue};

/// Workload ids the spec language accepts, mirroring the ESCAT and
/// PRISM code versions studied by the paper. `sioscope`'s
/// `canon::WorkloadId` registry resolves these to concrete configs;
/// `spec_ids_match_core_registry` in the integration tests pins the
/// two lists together.
pub const WORKLOAD_IDS: [&str; 9] = [
    "escat-a", "escat-a2", "escat-b", "escat-b2", "escat-b3", "escat-c", "prism-a", "prism-b",
    "prism-c",
];

/// Storage backend tiers a workload run can target. `sioscope`'s
/// `BackendKind` registry resolves these to concrete backend configs;
/// the integration tests pin the two lists together.
pub const BACKEND_IDS: [&str; 3] = ["pfs", "object", "burst"];

/// Scheduler policy ids for contention runs.
pub const POLICY_IDS: [&str; 2] = ["fcfs", "easy-backfill"];

/// Problem-size scales.
pub const SCALE_IDS: [&str; 2] = ["smoke", "full"];

/// A spec-level failure: bad TOML, an unknown id, an out-of-range
/// knob. Maps to exit code 2 at the CLI.
#[derive(Debug, Clone, PartialEq)]
pub struct SpecError(pub String);

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for SpecError {}

fn err(msg: impl Into<String>) -> SpecError {
    SpecError(msg.into())
}

/// One resolved run — a pure function of these fields and nothing
/// else. Ordering is the deterministic campaign order: all workload
/// runs, then contention runs, then experiments, then sweeps, each
/// block in the derived `Ord`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum RunSpec {
    /// Simulate one workload end-to-end under a fault schedule, on
    /// one storage tier.
    Workload {
        /// Workload id from [`WORKLOAD_IDS`].
        id: String,
        /// Storage backend id from [`BACKEND_IDS`].
        backend: String,
        /// Scale id from [`SCALE_IDS`].
        scale: String,
        /// Number of injected fault events.
        fault_events: u32,
        /// RNG seed for the fault schedule.
        seed: u64,
    },
    /// Schedule a contended job stream under one policy.
    Contention {
        /// Policy id from [`POLICY_IDS`].
        policy: String,
        /// Scale id from [`SCALE_IDS`].
        scale: String,
        /// Load factor in percent (100 = the baseline stream).
        load_pct: u32,
        /// RNG seed for the job stream.
        seed: u64,
    },
    /// Run one registered experiment and its checks.
    Experiment {
        /// Experiment id from the `sioscope` registry.
        id: String,
        /// Scale id from [`SCALE_IDS`].
        scale: String,
    },
    /// Run one registered parameter sweep.
    Sweep {
        /// Sweep id from the `sioscope` registry.
        id: String,
        /// Scale id from [`SCALE_IDS`].
        scale: String,
    },
    /// Run the coupled streaming pipeline over a bounded staging
    /// queue. Declared last so the derived `Ord` keeps stream runs at
    /// the end of the deterministic campaign order.
    Stream {
        /// Staging queue depth in KiB (`0` = unbounded).
        depth_kib: u32,
        /// Consumer analysis speed in percent (100 = reference).
        consumer_pct: u32,
        /// Scale id from [`SCALE_IDS`].
        scale: String,
        /// RNG seed folded into the producer's cadence.
        seed: u64,
    },
}

impl RunSpec {
    /// The canonical serialization the content address is computed
    /// over: one line, fixed field order, per-kind schema tag. This is
    /// the *only* input to [`crate::config_hash`] — nothing about
    /// source formatting, spec file layout, or execution environment
    /// reaches it. Workload lines are `v=2` (the backend axis was
    /// added to the schema); the other kinds remain `v=1`.
    pub fn canon(&self) -> String {
        match self {
            RunSpec::Workload {
                id,
                backend,
                scale,
                fault_events,
                seed,
            } => {
                format!("v=2;kind=workload;id={id};backend={backend};scale={scale};faults={fault_events};seed={seed}")
            }
            RunSpec::Contention {
                policy,
                scale,
                load_pct,
                seed,
            } => format!(
                "v=1;kind=contention;policy={policy};scale={scale};load={load_pct};seed={seed}"
            ),
            RunSpec::Experiment { id, scale } => {
                format!("v=1;kind=experiment;id={id};scale={scale}")
            }
            RunSpec::Sweep { id, scale } => format!("v=1;kind=sweep;id={id};scale={scale}"),
            RunSpec::Stream {
                depth_kib,
                consumer_pct,
                scale,
                seed,
            } => format!(
                "v=1;kind=stream;depth={depth_kib};consumer={consumer_pct};scale={scale};seed={seed}"
            ),
        }
    }

    /// A short human label for progress lines and reports.
    pub fn label(&self) -> String {
        match self {
            RunSpec::Workload {
                id,
                backend,
                fault_events,
                seed,
                ..
            } => format!("workload {id} backend={backend} faults={fault_events} seed={seed}"),
            RunSpec::Contention {
                policy,
                load_pct,
                seed,
                ..
            } => format!("contention {policy} load={load_pct}% seed={seed}"),
            RunSpec::Experiment { id, .. } => format!("experiment {id}"),
            RunSpec::Sweep { id, .. } => format!("sweep {id}"),
            RunSpec::Stream {
                depth_kib,
                consumer_pct,
                seed,
                ..
            } => format!("stream depth={depth_kib}K consumer={consumer_pct}% seed={seed}"),
        }
    }
}

/// A parsed, validated campaign: the matrices, not yet the runs.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSpec {
    /// Campaign name (lowercase alphanumerics, `-`, `_`).
    pub name: String,
    /// Scale id applied to every run.
    pub scale: String,
    /// Workload matrix ids (validated against [`WORKLOAD_IDS`]).
    pub workload_ids: Vec<String>,
    /// Storage tiers crossed with every workload (validated against
    /// [`BACKEND_IDS`]; defaults to just `pfs`).
    pub backends: Vec<String>,
    /// Fault-event counts crossed with every workload.
    pub fault_events: Vec<u32>,
    /// Seeds crossed with every workload.
    pub workload_seeds: Vec<u64>,
    /// Contention policy ids (validated against [`POLICY_IDS`]).
    pub policies: Vec<String>,
    /// Load factors in percent crossed with every policy.
    pub load_pcts: Vec<u32>,
    /// Seeds crossed with every policy × load.
    pub contention_seeds: Vec<u64>,
    /// Registry experiment ids (resolved by the executor).
    pub experiments: Vec<String>,
    /// Registry sweep ids (resolved by the executor).
    pub sweeps: Vec<String>,
    /// Staging queue depths in KiB crossed with every consumer speed
    /// (`0` = unbounded).
    pub stream_depths_kib: Vec<u32>,
    /// Consumer analysis speeds in percent crossed with every depth.
    pub stream_consumer_pcts: Vec<u32>,
    /// Seeds crossed with every depth × consumer speed.
    pub stream_seeds: Vec<u64>,
}

impl CampaignSpec {
    /// Parse and validate a `campaign.toml` document.
    pub fn from_toml_str(text: &str) -> Result<CampaignSpec, SpecError> {
        let doc = minitoml::parse(text).map_err(|e| err(format!("campaign spec: {e}")))?;
        for key in doc.values.keys() {
            return Err(err(format!(
                "campaign spec: top-level key `{key}` outside any [table]"
            )));
        }
        for table in doc.tables.keys() {
            if !matches!(
                table.as_str(),
                "campaign" | "workloads" | "contention" | "registry" | "streams"
            ) {
                return Err(err(format!("campaign spec: unknown table `[{table}]`")));
            }
        }

        let campaign = doc
            .table("campaign")
            .ok_or_else(|| err("campaign spec: missing [campaign] table"))?;
        reject_unknown(campaign, "campaign", &["name", "scale"])?;
        let name = require_str(campaign, "campaign", "name")?;
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-' || c == '_')
        {
            return Err(err(format!(
                "campaign.name `{name}` must be non-empty lowercase alphanumerics, `-` or `_`"
            )));
        }
        let scale = require_str(campaign, "campaign", "scale")?;
        validate_id("campaign.scale", &scale, &SCALE_IDS)?;

        let mut spec = CampaignSpec {
            name,
            scale,
            workload_ids: Vec::new(),
            backends: Vec::new(),
            fault_events: Vec::new(),
            workload_seeds: Vec::new(),
            policies: Vec::new(),
            load_pcts: Vec::new(),
            contention_seeds: Vec::new(),
            experiments: Vec::new(),
            sweeps: Vec::new(),
            stream_depths_kib: Vec::new(),
            stream_consumer_pcts: Vec::new(),
            stream_seeds: Vec::new(),
        };

        if let Some(w) = doc.table("workloads") {
            reject_unknown(
                w,
                "workloads",
                &["ids", "backends", "fault_events", "seeds"],
            )?;
            spec.workload_ids = str_array(w, "workloads", "ids")?
                .ok_or_else(|| err("workloads table present but `ids` missing"))?;
            for id in &spec.workload_ids {
                validate_id("workloads.ids", id, &WORKLOAD_IDS)?;
            }
            spec.backends =
                str_array(w, "workloads", "backends")?.unwrap_or_else(|| vec!["pfs".to_string()]);
            for id in &spec.backends {
                validate_id("workloads.backends", id, &BACKEND_IDS)?;
            }
            spec.fault_events =
                u32_array(w, "workloads", "fault_events", 64)?.unwrap_or_else(|| vec![0]);
            spec.workload_seeds = u64_array(w, "workloads", "seeds")?.unwrap_or_else(|| vec![0]);
        }

        if let Some(c) = doc.table("contention") {
            reject_unknown(c, "contention", &["policies", "load_pcts", "seeds"])?;
            spec.policies = str_array(c, "contention", "policies")?
                .ok_or_else(|| err("contention table present but `policies` missing"))?;
            for id in &spec.policies {
                validate_id("contention.policies", id, &POLICY_IDS)?;
            }
            spec.load_pcts =
                u32_array(c, "contention", "load_pcts", 400)?.unwrap_or_else(|| vec![100]);
            for pct in &spec.load_pcts {
                if *pct == 0 {
                    return Err(err("contention.load_pcts entries must be >= 1"));
                }
            }
            spec.contention_seeds = u64_array(c, "contention", "seeds")?.unwrap_or_else(|| vec![0]);
        }

        if let Some(r) = doc.table("registry") {
            reject_unknown(r, "registry", &["experiments", "sweeps"])?;
            spec.experiments = str_array(r, "registry", "experiments")?.unwrap_or_default();
            spec.sweeps = str_array(r, "registry", "sweeps")?.unwrap_or_default();
        }

        if let Some(s) = doc.table("streams") {
            reject_unknown(s, "streams", &["depths_kib", "consumer_pcts", "seeds"])?;
            spec.stream_depths_kib = u32_array(s, "streams", "depths_kib", 1_048_576)?
                .ok_or_else(|| err("streams table present but `depths_kib` missing"))?;
            spec.stream_consumer_pcts =
                u32_array(s, "streams", "consumer_pcts", 10_000)?.unwrap_or_else(|| vec![100]);
            for pct in &spec.stream_consumer_pcts {
                if *pct == 0 {
                    return Err(err("streams.consumer_pcts entries must be >= 1"));
                }
            }
            spec.stream_seeds = u64_array(s, "streams", "seeds")?.unwrap_or_else(|| vec![0]);
        }

        if spec.workload_ids.is_empty()
            && spec.policies.is_empty()
            && spec.experiments.is_empty()
            && spec.sweeps.is_empty()
            && spec.stream_depths_kib.is_empty()
        {
            return Err(err(
                "campaign spec declares no runs: add a [workloads], [contention], [registry] or [streams] table",
            ));
        }
        Ok(spec)
    }

    /// Expand the matrices into the deterministic run list: the full
    /// cross-product of each section, deduplicated by canonical
    /// serialization (listing a seed twice is harmless), in a fixed
    /// order that no thread count or cache state can perturb.
    pub fn expand(&self) -> Vec<RunSpec> {
        let mut seen: BTreeSet<String> = BTreeSet::new();
        let mut runs = Vec::new();
        let mut push = |runs: &mut Vec<RunSpec>, run: RunSpec| {
            if seen.insert(run.canon()) {
                runs.push(run);
            }
        };
        for id in &self.workload_ids {
            for backend in &self.backends {
                for &fault_events in &self.fault_events {
                    for &seed in &self.workload_seeds {
                        push(
                            &mut runs,
                            RunSpec::Workload {
                                id: id.clone(),
                                backend: backend.clone(),
                                scale: self.scale.clone(),
                                fault_events,
                                seed,
                            },
                        );
                    }
                }
            }
        }
        for policy in &self.policies {
            for &load_pct in &self.load_pcts {
                for &seed in &self.contention_seeds {
                    push(
                        &mut runs,
                        RunSpec::Contention {
                            policy: policy.clone(),
                            scale: self.scale.clone(),
                            load_pct,
                            seed,
                        },
                    );
                }
            }
        }
        for id in &self.experiments {
            push(
                &mut runs,
                RunSpec::Experiment {
                    id: id.clone(),
                    scale: self.scale.clone(),
                },
            );
        }
        for id in &self.sweeps {
            push(
                &mut runs,
                RunSpec::Sweep {
                    id: id.clone(),
                    scale: self.scale.clone(),
                },
            );
        }
        for &depth_kib in &self.stream_depths_kib {
            for &consumer_pct in &self.stream_consumer_pcts {
                for &seed in &self.stream_seeds {
                    push(
                        &mut runs,
                        RunSpec::Stream {
                            depth_kib,
                            consumer_pct,
                            scale: self.scale.clone(),
                            seed,
                        },
                    );
                }
            }
        }
        runs
    }
}

fn validate_id(field: &str, id: &str, allowed: &[&str]) -> Result<(), SpecError> {
    if allowed.contains(&id) {
        Ok(())
    } else {
        Err(err(format!(
            "{field}: unknown id `{id}` (expected one of: {})",
            allowed.join(", ")
        )))
    }
}

fn reject_unknown(table: &TomlTable, name: &str, allowed: &[&str]) -> Result<(), SpecError> {
    for key in table.values.keys() {
        if !allowed.contains(&key.as_str()) {
            return Err(err(format!(
                "[{name}]: unknown key `{key}` (expected one of: {})",
                allowed.join(", ")
            )));
        }
    }
    if let Some(sub) = table.tables.keys().next() {
        return Err(err(format!("[{name}]: unexpected sub-table `{sub}`")));
    }
    Ok(())
}

fn require_str(table: &TomlTable, tname: &str, key: &str) -> Result<String, SpecError> {
    match table.value(key) {
        Some(TomlValue::Str(s)) => Ok(s.clone()),
        Some(_) => Err(err(format!("{tname}.{key} must be a string"))),
        None => Err(err(format!("{tname}.{key} is required"))),
    }
}

fn str_array(table: &TomlTable, tname: &str, key: &str) -> Result<Option<Vec<String>>, SpecError> {
    match table.value(key) {
        None => Ok(None),
        Some(TomlValue::Array(items)) => {
            let mut out = Vec::with_capacity(items.len());
            for item in items {
                match item {
                    TomlValue::Str(s) => out.push(s.clone()),
                    _ => return Err(err(format!("{tname}.{key} must contain only strings"))),
                }
            }
            if out.is_empty() {
                return Err(err(format!("{tname}.{key} must not be empty")));
            }
            Ok(Some(out))
        }
        Some(_) => Err(err(format!("{tname}.{key} must be an array of strings"))),
    }
}

fn int_array(table: &TomlTable, tname: &str, key: &str) -> Result<Option<Vec<i64>>, SpecError> {
    match table.value(key) {
        None => Ok(None),
        Some(TomlValue::Array(items)) => {
            let mut out = Vec::with_capacity(items.len());
            for item in items {
                match item {
                    TomlValue::Int(n) => out.push(*n),
                    _ => return Err(err(format!("{tname}.{key} must contain only integers"))),
                }
            }
            if out.is_empty() {
                return Err(err(format!("{tname}.{key} must not be empty")));
            }
            Ok(Some(out))
        }
        Some(_) => Err(err(format!("{tname}.{key} must be an array of integers"))),
    }
}

fn u32_array(
    table: &TomlTable,
    tname: &str,
    key: &str,
    max: u32,
) -> Result<Option<Vec<u32>>, SpecError> {
    let Some(raw) = int_array(table, tname, key)? else {
        return Ok(None);
    };
    let mut out = Vec::with_capacity(raw.len());
    for n in raw {
        if n < 0 || n > i64::from(max) {
            return Err(err(format!("{tname}.{key}: `{n}` out of range 0..={max}")));
        }
        out.push(n as u32);
    }
    Ok(Some(out))
}

fn u64_array(table: &TomlTable, tname: &str, key: &str) -> Result<Option<Vec<u64>>, SpecError> {
    let Some(raw) = int_array(table, tname, key)? else {
        return Ok(None);
    };
    let mut out = Vec::with_capacity(raw.len());
    for n in raw {
        if n < 0 {
            return Err(err(format!("{tname}.{key}: `{n}` must be non-negative")));
        }
        out.push(n as u64);
    }
    Ok(Some(out))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SMOKE: &str = concat!(
        "[campaign]\n",
        "name = \"smoke\"\n",
        "scale = \"smoke\"\n",
        "[workloads]\n",
        "ids = [\"escat-b\", \"prism-a\"]\n",
        "fault_events = [0, 2]\n",
        "seeds = [0, 7]\n",
        "[contention]\n",
        "policies = [\"fcfs\", \"easy-backfill\"]\n",
        "load_pcts = [100, 150]\n",
        "[registry]\n",
        "experiments = [\"fig3-escat-b\"]\n",
        "sweeps = [\"stripe-width\"]\n",
    );

    #[test]
    fn expands_the_full_cross_product_in_order() {
        let spec = CampaignSpec::from_toml_str(SMOKE).unwrap();
        let runs = spec.expand();
        // 2*2*2 workload + 2*2*1 contention + 1 experiment + 1 sweep.
        assert_eq!(runs.len(), 8 + 4 + 1 + 1);
        assert_eq!(
            runs[0].canon(),
            "v=2;kind=workload;id=escat-b;backend=pfs;scale=smoke;faults=0;seed=0"
        );
        assert_eq!(
            runs[8].canon(),
            "v=1;kind=contention;policy=fcfs;scale=smoke;load=100;seed=0"
        );
        assert_eq!(
            runs[12].canon(),
            "v=1;kind=experiment;id=fig3-escat-b;scale=smoke"
        );
        assert_eq!(
            runs[13].canon(),
            "v=1;kind=sweep;id=stripe-width;scale=smoke"
        );
        // Every canon line is unique by construction.
        let canons: BTreeSet<String> = runs.iter().map(|r| r.canon()).collect();
        assert_eq!(canons.len(), runs.len());
    }

    #[test]
    fn expansion_is_toml_key_order_independent() {
        let reordered = concat!(
            "[registry]\n",
            "sweeps = [\"stripe-width\"]\n",
            "experiments = [\"fig3-escat-b\"]\n",
            "[contention]\n",
            "load_pcts = [100, 150]\n",
            "policies = [\"fcfs\", \"easy-backfill\"]\n",
            "[workloads]\n",
            "seeds = [0, 7]\n",
            "fault_events = [0, 2]\n",
            "ids = [\"escat-b\", \"prism-a\"]\n",
            "[campaign]\n",
            "scale = \"smoke\"\n",
            "name = \"smoke\"\n",
        );
        let a = CampaignSpec::from_toml_str(SMOKE).unwrap();
        let b = CampaignSpec::from_toml_str(reordered).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.expand(), b.expand());
    }

    #[test]
    fn duplicate_matrix_entries_dedupe() {
        let spec = CampaignSpec::from_toml_str(concat!(
            "[campaign]\n",
            "name = \"d\"\n",
            "scale = \"smoke\"\n",
            "[workloads]\n",
            "ids = [\"escat-b\", \"escat-b\"]\n",
            "seeds = [1, 1]\n",
        ))
        .unwrap();
        assert_eq!(spec.expand().len(), 1);
    }

    #[test]
    fn defaults_apply_when_axes_are_omitted() {
        let spec = CampaignSpec::from_toml_str(concat!(
            "[campaign]\n",
            "name = \"d\"\n",
            "scale = \"full\"\n",
            "[workloads]\n",
            "ids = [\"prism-c\"]\n",
            "[contention]\n",
            "policies = [\"fcfs\"]\n",
        ))
        .unwrap();
        assert_eq!(spec.backends, vec!["pfs"]);
        assert_eq!(spec.fault_events, vec![0]);
        assert_eq!(spec.workload_seeds, vec![0]);
        assert_eq!(spec.load_pcts, vec![100]);
        assert_eq!(spec.contention_seeds, vec![0]);
        let runs = spec.expand();
        assert_eq!(runs.len(), 2);
        assert_eq!(
            runs[0].canon(),
            "v=2;kind=workload;id=prism-c;backend=pfs;scale=full;faults=0;seed=0"
        );
    }

    #[test]
    fn backend_axis_expands_per_tier_and_validates() {
        let spec = CampaignSpec::from_toml_str(concat!(
            "[campaign]\n",
            "name = \"tiers\"\n",
            "scale = \"smoke\"\n",
            "[workloads]\n",
            "ids = [\"escat-b\"]\n",
            "backends = [\"pfs\", \"object\", \"burst\"]\n",
        ))
        .unwrap();
        let runs = spec.expand();
        assert_eq!(runs.len(), 3);
        let canons: Vec<String> = runs.iter().map(|r| r.canon()).collect();
        assert_eq!(
            canons,
            vec![
                "v=2;kind=workload;id=escat-b;backend=pfs;scale=smoke;faults=0;seed=0",
                "v=2;kind=workload;id=escat-b;backend=object;scale=smoke;faults=0;seed=0",
                "v=2;kind=workload;id=escat-b;backend=burst;scale=smoke;faults=0;seed=0",
            ]
        );
        // Distinct tiers must hash distinctly: the canon lines differ.
        let unique: BTreeSet<&String> = canons.iter().collect();
        assert_eq!(unique.len(), canons.len());
        assert!(runs[1].label().contains("backend=object"));

        let e = CampaignSpec::from_toml_str(concat!(
            "[campaign]\n",
            "name = \"tiers\"\n",
            "scale = \"smoke\"\n",
            "[workloads]\n",
            "ids = [\"escat-b\"]\n",
            "backends = [\"nvme\"]\n",
        ))
        .unwrap_err();
        assert!(e.0.contains("workloads.backends"), "{e}");
    }

    #[test]
    fn streams_axis_expands_last_with_distinct_canon_lines() {
        let spec = CampaignSpec::from_toml_str(concat!(
            "[campaign]\n",
            "name = \"pipe\"\n",
            "scale = \"smoke\"\n",
            "[registry]\n",
            "experiments = [\"stream-prism\"]\n",
            "[streams]\n",
            "depths_kib = [16, 0]\n",
            "consumer_pcts = [50, 100]\n",
            "seeds = [0, 7]\n",
        ))
        .unwrap();
        let runs = spec.expand();
        // 1 experiment + 2*2*2 stream runs, stream block last.
        assert_eq!(runs.len(), 1 + 8);
        assert!(matches!(runs[0], RunSpec::Experiment { .. }));
        assert_eq!(
            runs[1].canon(),
            "v=1;kind=stream;depth=16;consumer=50;scale=smoke;seed=0"
        );
        assert!(runs[1..]
            .iter()
            .all(|r| matches!(r, RunSpec::Stream { .. })));
        let canons: BTreeSet<String> = runs.iter().map(|r| r.canon()).collect();
        assert_eq!(canons.len(), runs.len());
        assert!(runs[1].label().contains("depth=16K"));
        // Sorted order keeps streams behind every other kind.
        let mut sorted = runs.clone();
        sorted.sort();
        assert!(matches!(sorted[0], RunSpec::Experiment { .. }));

        // Stream-only campaigns declare runs.
        let only = CampaignSpec::from_toml_str(concat!(
            "[campaign]\n",
            "name = \"pipe\"\n",
            "scale = \"smoke\"\n",
            "[streams]\n",
            "depths_kib = [256]\n",
        ))
        .unwrap();
        assert_eq!(only.stream_consumer_pcts, vec![100]);
        assert_eq!(only.stream_seeds, vec![0]);
        assert_eq!(only.expand().len(), 1);
    }

    #[test]
    fn streams_axis_rejects_bad_keys_and_ranges() {
        let base = "[campaign]\nname = \"x\"\nscale = \"smoke\"\n";
        let e = CampaignSpec::from_toml_str(&format!("{base}[streams]\nconsumer_pcts = [100]\n"))
            .unwrap_err();
        assert!(e.0.contains("`depths_kib` missing"), "{e}");
        let e = CampaignSpec::from_toml_str(&format!(
            "{base}[streams]\ndepths_kib = [16]\ndepth = [1]\n"
        ))
        .unwrap_err();
        assert!(e.0.contains("unknown key"), "{e}");
        let e = CampaignSpec::from_toml_str(&format!(
            "{base}[streams]\ndepths_kib = [16]\nconsumer_pcts = [0]\n"
        ))
        .unwrap_err();
        assert!(e.0.contains(">= 1"), "{e}");
        let e = CampaignSpec::from_toml_str(&format!("{base}[streams]\ndepths_kib = [2097152]\n"))
            .unwrap_err();
        assert!(e.0.contains("out of range"), "{e}");
    }

    #[test]
    fn rejects_unknown_ids_tables_and_keys() {
        let base = |workload: &str| {
            format!(
                "[campaign]\nname = \"x\"\nscale = \"smoke\"\n[workloads]\nids = [\"{workload}\"]\n"
            )
        };
        assert!(CampaignSpec::from_toml_str(&base("escat-z"))
            .unwrap_err()
            .0
            .contains("unknown id"));
        assert!(CampaignSpec::from_toml_str(&base("escat-b")).is_ok());
        let e = CampaignSpec::from_toml_str(
            "[campaign]\nname = \"x\"\nscale = \"huge\"\n[workloads]\nids = [\"escat-b\"]\n",
        )
        .unwrap_err();
        assert!(e.0.contains("campaign.scale"), "{e}");
        assert!(CampaignSpec::from_toml_str(
            "[campaign]\nname = \"x\"\nscale = \"smoke\"\n[wrkloads]\nids = [\"escat-b\"]\n"
        )
        .unwrap_err()
        .0
        .contains("unknown table"));
        assert!(CampaignSpec::from_toml_str(
            "[campaign]\nname = \"x\"\nscale = \"smoke\"\n[workloads]\nids = [\"escat-b\"]\nseed = [1]\n"
        )
        .unwrap_err()
        .0
        .contains("unknown key"));
        assert!(CampaignSpec::from_toml_str(
            "[campaign]\nname = \"Bad Name\"\nscale = \"smoke\"\n[workloads]\nids = [\"escat-b\"]\n"
        )
        .is_err());
    }

    #[test]
    fn rejects_empty_campaigns_and_bad_ranges() {
        assert!(
            CampaignSpec::from_toml_str("[campaign]\nname = \"x\"\nscale = \"smoke\"\n")
                .unwrap_err()
                .0
                .contains("declares no runs")
        );
        assert!(CampaignSpec::from_toml_str(
            "[campaign]\nname = \"x\"\nscale = \"smoke\"\n[workloads]\nids = [\"escat-b\"]\nseeds = [-1]\n"
        )
        .unwrap_err()
        .0
        .contains("non-negative"));
        assert!(CampaignSpec::from_toml_str(
            "[campaign]\nname = \"x\"\nscale = \"smoke\"\n[workloads]\nids = [\"escat-b\"]\nfault_events = [65]\n"
        )
        .unwrap_err()
        .0
        .contains("out of range"));
        assert!(CampaignSpec::from_toml_str(
            "[campaign]\nname = \"x\"\nscale = \"smoke\"\n[contention]\npolicies = [\"fcfs\"]\nload_pcts = [0]\n"
        )
        .is_err());
    }

    #[test]
    fn canon_lines_have_fixed_field_order() {
        let run = RunSpec::Contention {
            policy: "fcfs".into(),
            scale: "smoke".into(),
            load_pct: 125,
            seed: 3,
        };
        assert_eq!(
            run.canon(),
            "v=1;kind=contention;policy=fcfs;scale=smoke;load=125;seed=3"
        );
        assert!(run.label().contains("125%"));
    }
}
