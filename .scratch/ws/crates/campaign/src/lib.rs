//! # sioscope-campaign
//!
//! The campaign engine: thousands of simulator runs as one cheap,
//! resumable batch. A run is treated as a *pure function of its
//! canonicalized configuration* — the resolved config is serialized
//! into a canonical string (independent of TOML key order; the spec
//! language has no floats, so no float-formatting instability either),
//! hashed with the deterministic Fx hasher from `sioscope-sim`, and
//! the result is cached on disk under that content address. Repeating
//! or overlapping campaigns are then near-free, and an interrupted
//! campaign resumes by skipping every hash already on disk.
//!
//! The pieces:
//!
//! * [`minitoml`] — a dependency-free parser for the TOML subset
//!   `campaign.toml` uses (tables, strings, integers, booleans,
//!   arrays);
//! * [`spec`] — [`CampaignSpec`]: cross-products of
//!   (workload × fault intensity × seed), (scheduler policy × load
//!   factor × seed), and registry experiment/sweep ids, expanded into
//!   a deterministic, deduplicated run list of [`RunSpec`]s;
//! * [`confhash`] — the 128-bit content address over a run's
//!   canonical serialization;
//! * [`cache`] — the on-disk `artifacts/campaign/<hash>.json` store,
//!   written through [`write_atomic`] so a killed campaign never
//!   leaves a truncated entry, and validated (parse + schema + hash)
//!   before it is ever trusted;
//! * [`exec`] — the work-stealing parallel executor (rayon) with
//!   per-run panic isolation: one bad config fails that run, not the
//!   campaign;
//! * [`report`] — the aggregated campaign report. Its JSON rendering
//!   contains only deterministic fields, so a cold campaign, a fully
//!   cached campaign, and a single-worker campaign all produce
//!   bit-identical bytes; wall-clock and cache hit/miss accounting
//!   appear only in the human summary;
//! * [`json`] — a minimal deterministic JSON emitter/parser (sorted
//!   object keys, integer-only emission) used by the cache and report;
//! * [`cliutil`] — the CLI error/exit-code contract and the
//!   crash-safe [`write_atomic`] staging rename, shared with the
//!   `sioscope-bench` binaries.

pub mod cache;
pub mod cliutil;
pub mod confhash;
pub mod exec;
pub mod json;
pub mod minitoml;
pub mod report;
pub mod spec;

pub use cache::CacheEntry;
pub use cliutil::{exit_with, tmp_sibling, write_atomic, CliError};
pub use confhash::config_hash;
pub use exec::{run_campaign, ExecOptions};
pub use report::{CampaignReport, RunReport};
pub use spec::{CampaignSpec, RunSpec};
