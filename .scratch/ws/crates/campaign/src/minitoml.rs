//! A dependency-free parser for the TOML subset `campaign.toml`
//! uses: `[table]` / `[table.sub]` headers, bare keys, basic and
//! literal strings, integers (decimal and `0x` hex, `_` separators),
//! booleans, and (possibly multi-line) arrays of those scalars.
//!
//! Two deliberate restrictions keep the campaign content address
//! honest:
//!
//! * **no floats** — a float admits many spellings (`1.0`, `1e0`,
//!   `1.00`) that compare equal but hash differently; every campaign
//!   knob is an integer (percent, permille, count, seed), so the
//!   problem is excluded at the grammar;
//! * **no duplicate keys or reopened tables** — a spec that says a
//!   thing twice is a typo, not a preference.
//!
//! Tables parse into `BTreeMap`s, so everything downstream is
//! independent of the order keys appear in the file — the property
//! the hashing proptests pin down.

use std::collections::BTreeMap;
use std::fmt;

/// A scalar or array value.
#[derive(Debug, Clone, PartialEq)]
pub enum TomlValue {
    /// A basic (`"..."`) or literal (`'...'`) string.
    Str(String),
    /// An integer (decimal or `0x` hex, `_` separators allowed).
    Int(i64),
    /// `true` / `false`.
    Bool(bool),
    /// `[v, v, ...]`, possibly spanning lines.
    Array(Vec<TomlValue>),
}

/// One table: keys to values, sub-tables alongside.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TomlTable {
    /// `key = value` entries, canonically ordered.
    pub values: BTreeMap<String, TomlValue>,
    /// Nested `[parent.child]` tables, canonically ordered.
    pub tables: BTreeMap<String, TomlTable>,
}

impl TomlTable {
    /// The sub-table named `name`, if present.
    pub fn table(&self, name: &str) -> Option<&TomlTable> {
        self.tables.get(name)
    }

    /// The value for `key`, if present.
    pub fn value(&self, key: &str) -> Option<&TomlValue> {
        self.values.get(key)
    }
}

/// A parse failure, with the 1-based line it happened on.
#[derive(Debug, Clone, PartialEq)]
pub struct TomlError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for TomlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for TomlError {}

struct Cursor<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: usize,
}

impl<'a> Cursor<'a> {
    fn new(text: &'a str) -> Self {
        Cursor {
            chars: text.chars().peekable(),
            line: 1,
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.chars.peek().copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next();
        if c == Some('\n') {
            self.line += 1;
        }
        c
    }

    fn err(&self, msg: impl Into<String>) -> TomlError {
        TomlError {
            line: self.line,
            msg: msg.into(),
        }
    }

    /// Skip spaces and tabs (not newlines).
    fn skip_inline_ws(&mut self) {
        while matches!(self.peek(), Some(' ') | Some('\t')) {
            self.bump();
        }
    }

    /// Skip a `# ...` comment up to (not including) the newline.
    fn skip_comment(&mut self) {
        if self.peek() == Some('#') {
            while self.peek().is_some_and(|c| c != '\n') {
                self.bump();
            }
        }
    }

    /// Skip whitespace, newlines and comments — used between items
    /// and inside multi-line arrays.
    fn skip_blank(&mut self) {
        loop {
            self.skip_inline_ws();
            match self.peek() {
                Some('#') => self.skip_comment(),
                Some('\n') | Some('\r') => {
                    self.bump();
                }
                _ => return,
            }
        }
    }

    /// Require end-of-line (allowing trailing whitespace/comment)
    /// after a completed item.
    fn expect_eol(&mut self) -> Result<(), TomlError> {
        self.skip_inline_ws();
        self.skip_comment();
        match self.peek() {
            None => Ok(()),
            Some('\n') => {
                self.bump();
                Ok(())
            }
            Some('\r') => {
                self.bump();
                if self.peek() == Some('\n') {
                    self.bump();
                    Ok(())
                } else {
                    Err(self.err("bare carriage return"))
                }
            }
            Some(c) => Err(self.err(format!("unexpected `{c}` after value"))),
        }
    }
}

fn is_bare_key_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_' || c == '-'
}

/// Parse a complete document.
pub fn parse(text: &str) -> Result<TomlTable, TomlError> {
    let mut cur = Cursor::new(text);
    let mut root = TomlTable::default();
    // Path of the table currently being filled; empty = root.
    let mut current: Vec<String> = Vec::new();
    loop {
        cur.skip_blank();
        match cur.peek() {
            None => return Ok(root),
            Some('[') => {
                cur.bump();
                if cur.peek() == Some('[') {
                    return Err(cur.err(
                        "arrays of tables (`[[...]]`) are not part of the campaign spec subset",
                    ));
                }
                let path = parse_table_path(&mut cur)?;
                open_table(&mut root, &path).map_err(|msg| cur.err(msg))?;
                current = path;
                cur.expect_eol()?;
            }
            Some(c) if is_bare_key_char(c) => {
                let key = parse_bare_key(&mut cur)?;
                cur.skip_inline_ws();
                if cur.bump() != Some('=') {
                    return Err(cur.err(format!("expected `=` after key `{key}`")));
                }
                cur.skip_inline_ws();
                let value = parse_value(&mut cur, 0)?;
                cur.expect_eol()?;
                let table = lookup_mut(&mut root, &current).expect("current table exists");
                if table.values.insert(key.clone(), value).is_some() {
                    return Err(cur.err(format!("duplicate key `{key}`")));
                }
            }
            Some(c) => return Err(cur.err(format!("unexpected `{c}`"))),
        }
    }
}

fn parse_bare_key(cur: &mut Cursor) -> Result<String, TomlError> {
    let mut key = String::new();
    while cur.peek().is_some_and(is_bare_key_char) {
        key.push(cur.bump().expect("peeked"));
    }
    if key.is_empty() {
        return Err(cur.err("expected a key"));
    }
    Ok(key)
}

fn parse_table_path(cur: &mut Cursor) -> Result<Vec<String>, TomlError> {
    let mut path = Vec::new();
    loop {
        cur.skip_inline_ws();
        path.push(parse_bare_key(cur)?);
        cur.skip_inline_ws();
        match cur.bump() {
            Some('.') => continue,
            Some(']') => return Ok(path),
            _ => return Err(cur.err("expected `.` or `]` in table header")),
        }
    }
}

/// Create the table at `path`, erroring if it already exists (the
/// spec subset forbids reopening) and creating intermediates.
fn open_table(root: &mut TomlTable, path: &[String]) -> Result<(), String> {
    let mut table = root;
    let (last, parents) = path.split_last().expect("non-empty path");
    for part in parents {
        table = table.tables.entry(part.clone()).or_default();
    }
    if table.tables.contains_key(last) {
        return Err(format!("table `{}` defined twice", path.join(".")));
    }
    table.tables.insert(last.clone(), TomlTable::default());
    Ok(())
}

fn lookup_mut<'t>(root: &'t mut TomlTable, path: &[String]) -> Option<&'t mut TomlTable> {
    let mut table = root;
    for part in path {
        table = table.tables.get_mut(part)?;
    }
    Some(table)
}

fn parse_value(cur: &mut Cursor, depth: usize) -> Result<TomlValue, TomlError> {
    if depth > 8 {
        return Err(cur.err("array nesting too deep"));
    }
    match cur.peek() {
        Some('"') => parse_basic_string(cur).map(TomlValue::Str),
        Some('\'') => parse_literal_string(cur).map(TomlValue::Str),
        Some('[') => {
            cur.bump();
            let mut items = Vec::new();
            loop {
                cur.skip_blank();
                if cur.peek() == Some(']') {
                    cur.bump();
                    return Ok(TomlValue::Array(items));
                }
                items.push(parse_value(cur, depth + 1)?);
                cur.skip_blank();
                match cur.peek() {
                    Some(',') => {
                        cur.bump();
                    }
                    Some(']') => {
                        cur.bump();
                        return Ok(TomlValue::Array(items));
                    }
                    _ => return Err(cur.err("expected `,` or `]` in array")),
                }
            }
        }
        Some('t') | Some('f') => {
            let word = parse_bare_key(cur)?;
            match word.as_str() {
                "true" => Ok(TomlValue::Bool(true)),
                "false" => Ok(TomlValue::Bool(false)),
                other => Err(cur.err(format!("unexpected value `{other}`"))),
            }
        }
        Some(c) if c.is_ascii_digit() || c == '-' || c == '+' => parse_int(cur),
        Some(c) => Err(cur.err(format!("unexpected `{c}` where a value was expected"))),
        None => Err(cur.err("unexpected end of input")),
    }
}

fn parse_int(cur: &mut Cursor) -> Result<TomlValue, TomlError> {
    let mut text = String::new();
    while cur
        .peek()
        .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-' || c == '+' || c == '.')
    {
        text.push(cur.bump().expect("peeked"));
    }
    if text.contains('.') || text.to_ascii_lowercase().contains('e') && !text.starts_with("0x") {
        return Err(cur.err(format!(
            "`{text}` looks like a float; the campaign spec subset is integer-only \
             (use percent/permille/count knobs)"
        )));
    }
    let digits = text.replace('_', "");
    let (negative, digits) = match digits.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, digits.strip_prefix('+').unwrap_or(&digits)),
    };
    let magnitude = if let Some(hex) = digits.strip_prefix("0x").or(digits.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16)
    } else {
        digits.parse::<i64>()
    }
    .map_err(|_| cur.err(format!("invalid integer `{text}`")))?;
    Ok(TomlValue::Int(if negative {
        -magnitude
    } else {
        magnitude
    }))
}

fn parse_basic_string(cur: &mut Cursor) -> Result<String, TomlError> {
    cur.bump(); // opening quote
    let mut out = String::new();
    loop {
        match cur.bump() {
            None | Some('\n') => return Err(cur.err("unterminated string")),
            Some('"') => return Ok(out),
            Some('\\') => match cur.bump() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some('r') => out.push('\r'),
                Some('u') => {
                    let mut hex = String::new();
                    for _ in 0..4 {
                        match cur.bump() {
                            Some(c) if c.is_ascii_hexdigit() => hex.push(c),
                            _ => return Err(cur.err("invalid \\u escape")),
                        }
                    }
                    let code = u32::from_str_radix(&hex, 16).expect("checked hex");
                    match char::from_u32(code) {
                        Some(c) => out.push(c),
                        None => return Err(cur.err("invalid \\u escape")),
                    }
                }
                _ => return Err(cur.err("invalid escape in string")),
            },
            Some(c) => out.push(c),
        }
    }
}

fn parse_literal_string(cur: &mut Cursor) -> Result<String, TomlError> {
    cur.bump(); // opening quote
    let mut out = String::new();
    loop {
        match cur.bump() {
            None | Some('\n') => return Err(cur.err("unterminated string")),
            Some('\'') => return Ok(out),
            Some(c) => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ints(table: &TomlTable, key: &str) -> Vec<i64> {
        match table.value(key) {
            Some(TomlValue::Array(items)) => items
                .iter()
                .map(|v| match v {
                    TomlValue::Int(n) => *n,
                    other => panic!("expected int, got {other:?}"),
                })
                .collect(),
            other => panic!("expected array at `{key}`, got {other:?}"),
        }
    }

    #[test]
    fn parses_the_campaign_shape() {
        let doc = parse(concat!(
            "# a campaign\n",
            "[campaign]\n",
            "name = \"smoke\"   # trailing comment\n",
            "scale = 'smoke'\n",
            "\n",
            "[workloads]\n",
            "ids = [\"escat-b\", \"prism-a\"]\n",
            "fault_events = [0, 2,\n",
            "    4]  # multi-line array\n",
            "seeds = [0xF417, 1_000]\n",
            "enabled = true\n",
        ))
        .unwrap();
        let campaign = doc.table("campaign").unwrap();
        assert_eq!(
            campaign.value("name"),
            Some(&TomlValue::Str("smoke".into()))
        );
        assert_eq!(
            campaign.value("scale"),
            Some(&TomlValue::Str("smoke".into()))
        );
        let w = doc.table("workloads").unwrap();
        assert_eq!(ints(w, "fault_events"), vec![0, 2, 4]);
        assert_eq!(ints(w, "seeds"), vec![0xF417, 1000]);
        assert_eq!(w.value("enabled"), Some(&TomlValue::Bool(true)));
        assert_eq!(
            w.value("ids"),
            Some(&TomlValue::Array(vec![
                TomlValue::Str("escat-b".into()),
                TomlValue::Str("prism-a".into()),
            ]))
        );
    }

    #[test]
    fn key_order_is_canonicalized_by_construction() {
        let a = parse("[t]\nx = 1\ny = 2\n").unwrap();
        let b = parse("[t]\ny = 2\nx = 1\n").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn section_order_is_canonicalized_too() {
        let a = parse("[a]\nk = 1\n[b]\nk = 2\n").unwrap();
        let b = parse("[b]\nk = 2\n[a]\nk = 1\n").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn nested_tables() {
        let doc = parse("[a.b]\nk = 3\n").unwrap();
        assert_eq!(
            doc.table("a").unwrap().table("b").unwrap().value("k"),
            Some(&TomlValue::Int(3))
        );
    }

    #[test]
    fn rejects_floats_with_a_pointer_to_the_fix() {
        let e = parse("[t]\nx = 1.5\n").unwrap_err();
        assert!(e.msg.contains("integer-only"), "{e}");
        assert!(parse("[t]\nx = 1e3\n").is_err());
    }

    #[test]
    fn rejects_duplicates() {
        assert!(parse("[t]\nx = 1\nx = 2\n")
            .unwrap_err()
            .msg
            .contains("duplicate"));
        assert!(parse("[t]\nk = 1\n[t]\nj = 2\n")
            .unwrap_err()
            .msg
            .contains("defined twice"));
    }

    #[test]
    fn rejects_junk() {
        assert!(parse("[t]\nx = \n").is_err());
        assert!(parse("[t\nx = 1\n").is_err());
        assert!(parse("x 1\n").is_err());
        assert!(parse("[t]\nx = \"unterminated\n").is_err());
        assert!(parse("[t]\nx = [1, 2\n").is_err(), "unclosed array");
        assert!(parse("[[t]]\nx = 1\n").is_err(), "array of tables");
        assert!(parse("[t]\nx = 1 y = 2\n").is_err(), "two items per line");
        assert!(parse("[t]\nx = maybe\n").is_err());
    }

    #[test]
    fn integers_parse_in_both_bases_and_signs() {
        let doc = parse("[t]\na = -42\nb = +7\nc = 0x10\nd = 1_000_000\n").unwrap();
        let t = doc.table("t").unwrap();
        assert_eq!(t.value("a"), Some(&TomlValue::Int(-42)));
        assert_eq!(t.value("b"), Some(&TomlValue::Int(7)));
        assert_eq!(t.value("c"), Some(&TomlValue::Int(16)));
        assert_eq!(t.value("d"), Some(&TomlValue::Int(1_000_000)));
        assert!(
            parse("[t]\na = 99999999999999999999\n").is_err(),
            "overflow"
        );
    }

    #[test]
    fn comments_and_blank_lines_are_invisible() {
        let a = parse("\n\n# hi\n[t]\n# mid\nx = 1 # tail\n\n").unwrap();
        let b = parse("[t]\nx = 1\n").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn crlf_line_endings_parse() {
        let doc = parse("[t]\r\nx = 1\r\n").unwrap();
        assert_eq!(doc.table("t").unwrap().value("x"), Some(&TomlValue::Int(1)));
    }
}
