//! The aggregated campaign report.
//!
//! Two renderings with a deliberate firewall between them:
//!
//! * [`CampaignReport::render`] — the *deterministic* JSON artifact.
//!   It contains only run identities, statuses, and integer metrics,
//!   in canonical order. A cold campaign, a fully cached re-run, and
//!   a `--jobs 1` run of the same spec all produce bit-identical
//!   bytes; CI diffs them directly.
//! * [`CampaignReport::human_summary`] — the terminal summary, which
//!   is where everything nondeterministic lives: cache hit/miss
//!   counts, wall-clock time, worker count.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::cache::CacheEntry;
use crate::json::Json;
use crate::spec::RunSpec;

/// Schema tag for the aggregated report JSON.
pub const REPORT_SCHEMA: &str = "sioscope-campaign-report/1";

/// One run's contribution to the report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunReport {
    /// What was run.
    pub spec: RunSpec,
    /// Its content address.
    pub hash: String,
    /// The (possibly cached) result.
    pub entry: CacheEntry,
    /// Whether the result came from the cache. Summary-only.
    pub cache_hit: bool,
    /// Wall-clock nanoseconds for this run (0 on a hit). Summary-only.
    pub wall_ns: u64,
}

/// The whole campaign, aggregated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignReport {
    /// Campaign name from the spec.
    pub name: String,
    /// Scale id from the spec.
    pub scale: String,
    /// Per-run reports in the deterministic expansion order.
    pub runs: Vec<RunReport>,
}

impl CampaignReport {
    /// Runs whose status is not `"ok"`.
    pub fn failed(&self) -> impl Iterator<Item = &RunReport> {
        self.runs.iter().filter(|r| !r.entry.is_ok())
    }

    /// Cache hits across the campaign. Summary-only: never part of
    /// the deterministic JSON.
    pub fn hits(&self) -> usize {
        self.runs.iter().filter(|r| r.cache_hit).count()
    }

    /// Metric sums across all `ok` runs, keyed by metric name.
    /// Saturating: a campaign report must aggregate, not overflow.
    pub fn totals(&self) -> BTreeMap<String, u64> {
        let mut totals: BTreeMap<String, u64> = BTreeMap::new();
        for run in self.runs.iter().filter(|r| r.entry.is_ok()) {
            for (key, value) in &run.entry.metrics {
                let slot = totals.entry(key.clone()).or_default();
                *slot = slot.saturating_add(*value);
            }
        }
        totals
    }

    /// The deterministic report as JSON.
    pub fn to_json(&self) -> Json {
        let runs = self
            .runs
            .iter()
            .map(|run| {
                let mut obj = BTreeMap::new();
                obj.insert("canon".to_string(), Json::Str(run.entry.canon.clone()));
                obj.insert("hash".to_string(), Json::Str(run.hash.clone()));
                obj.insert("status".to_string(), Json::Str(run.entry.status.clone()));
                let metrics = run
                    .entry
                    .metrics
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::UInt(*v)))
                    .collect();
                obj.insert("metrics".to_string(), Json::Object(metrics));
                Json::Object(obj)
            })
            .collect();
        let totals = self
            .totals()
            .into_iter()
            .map(|(k, v)| (k, Json::UInt(v)))
            .collect();
        let mut obj = BTreeMap::new();
        obj.insert("schema".to_string(), Json::Str(REPORT_SCHEMA.to_string()));
        obj.insert("campaign".to_string(), Json::Str(self.name.clone()));
        obj.insert("scale".to_string(), Json::Str(self.scale.clone()));
        obj.insert("total_runs".to_string(), Json::UInt(self.runs.len() as u64));
        obj.insert(
            "failed_runs".to_string(),
            Json::UInt(self.failed().count() as u64),
        );
        obj.insert("totals".to_string(), Json::Object(totals));
        obj.insert("runs".to_string(), Json::Array(runs));
        Json::Object(obj)
    }

    /// The deterministic report as pretty JSON text (trailing
    /// newline included) — the bytes the determinism guard compares.
    pub fn render(&self) -> String {
        let mut out = self.to_json().render_pretty();
        out.push('\n');
        out
    }

    /// The human terminal summary: statuses plus the nondeterministic
    /// accounting (hits, misses, wall time) that is kept *out* of the
    /// JSON artifact.
    pub fn human_summary(&self, wall_ns: u64, jobs: usize) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "campaign `{}` ({} scale)", self.name, self.scale);
        for run in &self.runs {
            let source = if run.cache_hit { "cache " } else { "ran   " };
            let _ = writeln!(
                out,
                "  [{source}] {:<52} {}",
                run.spec.label(),
                run.entry.status
            );
        }
        let failed = self.failed().count();
        let _ = writeln!(
            out,
            "{} runs, {} ok, {failed} failed; {} cache hits, {} misses; {:.3}s wall on {jobs} worker{}",
            self.runs.len(),
            self.runs.len() - failed,
            self.hits(),
            self.runs.len() - self.hits(),
            wall_ns as f64 / 1e9,
            if jobs == 1 { "" } else { "s" },
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(seed: u64, status: &str, hit: bool, wall_ns: u64) -> RunReport {
        let spec = RunSpec::Workload {
            id: "escat-b".into(),
            backend: "pfs".into(),
            scale: "smoke".into(),
            fault_events: 0,
            seed,
        };
        let canon = spec.canon();
        RunReport {
            spec,
            hash: format!("{seed:032x}"),
            entry: CacheEntry {
                hash: format!("{seed:032x}"),
                canon,
                status: status.to_string(),
                metrics: BTreeMap::from([
                    ("events".to_string(), 10 + seed),
                    ("exec_time_ns".to_string(), 1_000 * (seed + 1)),
                ]),
            },
            cache_hit: hit,
            wall_ns,
        }
    }

    fn report() -> CampaignReport {
        CampaignReport {
            name: "smoke".into(),
            scale: "smoke".into(),
            runs: vec![
                run(0, "ok", false, 5_000),
                run(1, "ok", true, 0),
                run(2, "failed: checks", false, 7_000),
            ],
        }
    }

    #[test]
    fn totals_sum_only_ok_runs() {
        let totals = report().totals();
        assert_eq!(totals["events"], 10 + 11);
        assert_eq!(totals["exec_time_ns"], 1_000 + 2_000);
    }

    #[test]
    fn json_is_independent_of_cache_and_wall_state() {
        let cold = report();
        let mut cached = report();
        for r in &mut cached.runs {
            r.cache_hit = true;
            r.wall_ns = 0;
        }
        assert_eq!(cold.render(), cached.render());
        assert!(
            !cold.render().contains("wall"),
            "wall time leaked into JSON"
        );
        assert!(
            !cold.render().contains("cache"),
            "hit/miss leaked into JSON"
        );
    }

    #[test]
    fn json_shape_round_trips() {
        let rendered = report().render();
        let parsed = Json::parse(&rendered).unwrap();
        let obj = parsed.as_object().unwrap();
        assert_eq!(obj["schema"].as_str(), Some(REPORT_SCHEMA));
        assert_eq!(obj["total_runs"].as_u64(), Some(3));
        assert_eq!(obj["failed_runs"].as_u64(), Some(1));
        // Canonical emission: re-rendering the parsed doc is identity.
        let mut again = parsed.render_pretty();
        again.push('\n');
        assert_eq!(again, rendered);
    }

    #[test]
    fn human_summary_carries_the_nondeterministic_parts() {
        let s = report().human_summary(2_000_000_000, 4);
        assert!(s.contains("1 cache hits, 2 misses"), "{s}");
        assert!(s.contains("2.000s wall on 4 workers"), "{s}");
        assert!(s.contains("3 runs, 2 ok, 1 failed"), "{s}");
        assert!(s.contains("failed: checks"), "{s}");
    }
}
