//! The campaign executor: expand, hash, consult the cache, fan the
//! misses out across a rayon work-stealing pool, and aggregate.
//!
//! Execution order is whatever the thread pool makes of it; *result*
//! order is the spec's deterministic expansion order, and every
//! run's outcome is a pure function of its canonical config — which
//! is why the thread count can't reach the report bytes. Each run is
//! wrapped in `catch_unwind`, so one panicking configuration becomes
//! one `"panicked: ..."` entry instead of a lost campaign.

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::time::Instant;

use rayon::prelude::*;
use sioscope::canon::{self, BackendKind, PolicyId, WorkloadId};
use sioscope::experiments::{run_experiment, Experiment};
use sioscope::sweeps::{run_sweep, SweepId};

use crate::cache::{self, CacheEntry};
use crate::cliutil::CliError;
use crate::confhash::config_hash;
use crate::report::{CampaignReport, RunReport};
use crate::spec::{CampaignSpec, RunSpec};

/// How to execute a campaign.
#[derive(Debug, Clone)]
pub struct ExecOptions {
    /// Worker threads; `0` lets rayon size the pool to the machine.
    pub jobs: usize,
    /// Bypass the cache entirely: neither read nor write entries.
    pub no_cache: bool,
    /// Where cached entries live (`artifacts/campaign` by default).
    pub cache_dir: PathBuf,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            jobs: 0,
            no_cache: false,
            cache_dir: PathBuf::from("artifacts/campaign"),
        }
    }
}

/// Check that every id the spec names resolves in the registries the
/// executor will use. The spec layer already validated workload,
/// policy and scale ids against its own tables; this re-resolves them
/// through `sioscope` (catching any drift between the two lists) and
/// is the only validation experiment/sweep ids get. Failures map to
/// exit 2.
pub fn validate_spec(spec: &CampaignSpec) -> Result<(), CliError> {
    let bad = |what: &str, id: &str, known: String| {
        CliError::BadArgs(format!("unknown {what} id `{id}` (known: {known})"))
    };
    canon::scale_from_id(&spec.scale)
        .ok_or_else(|| bad("scale", &spec.scale, "smoke, full".to_string()))?;
    for id in &spec.workload_ids {
        WorkloadId::from_id(id).ok_or_else(|| {
            let known: Vec<&str> = WorkloadId::all().iter().map(|w| w.id()).collect();
            bad("workload", id, known.join(", "))
        })?;
    }
    for id in &spec.backends {
        BackendKind::from_id(id).ok_or_else(|| {
            let known: Vec<&str> = BackendKind::all().iter().map(|b| b.id()).collect();
            bad("backend", id, known.join(", "))
        })?;
    }
    for id in &spec.policies {
        PolicyId::from_id(id).ok_or_else(|| {
            let known: Vec<&str> = PolicyId::all().iter().map(|p| p.id()).collect();
            bad("policy", id, known.join(", "))
        })?;
    }
    for id in &spec.experiments {
        Experiment::from_id(id).ok_or_else(|| {
            let known: Vec<&str> = Experiment::all().iter().map(|e| e.id()).collect();
            bad("experiment", id, known.join(", "))
        })?;
    }
    for id in &spec.sweeps {
        SweepId::from_id(id).ok_or_else(|| {
            let known: Vec<&str> = SweepId::all().iter().map(|s| s.id()).collect();
            bad("sweep", id, known.join(", "))
        })?;
    }
    Ok(())
}

/// Run the whole campaign and aggregate the report. Cached results
/// are reused (unless `no_cache`), fresh results are computed on the
/// pool and persisted under their content address — including
/// failures, so a red run doesn't get recomputed on every resume.
pub fn run_campaign(spec: &CampaignSpec, opts: &ExecOptions) -> Result<CampaignReport, CliError> {
    validate_spec(spec)?;
    let runs = spec.expand();
    let execute = || -> Result<Vec<RunReport>, CliError> {
        runs.par_iter().map(|run| execute_one(run, opts)).collect()
    };
    let reports = if opts.jobs == 0 {
        execute()?
    } else {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(opts.jobs)
            .build()
            .map_err(|e| {
                CliError::BadArgs(format!("cannot build a {}-worker pool: {e}", opts.jobs))
            })?;
        pool.install(execute)?
    };
    Ok(CampaignReport {
        name: spec.name.clone(),
        scale: spec.scale.clone(),
        runs: reports,
    })
}

fn execute_one(run: &RunSpec, opts: &ExecOptions) -> Result<RunReport, CliError> {
    let canon = run.canon();
    let hash = config_hash(&canon);
    if !opts.no_cache {
        if let Some(entry) = cache::load(&opts.cache_dir, &hash, &canon) {
            return Ok(RunReport {
                spec: run.clone(),
                hash,
                entry,
                cache_hit: true,
                wall_ns: 0,
            });
        }
    }
    let started = Instant::now();
    let (status, metrics) = match catch_unwind(AssertUnwindSafe(|| run_resolved(run))) {
        Ok(Ok((status, metrics))) => (status, metrics),
        Ok(Err(reason)) => (format!("failed: {reason}"), BTreeMap::new()),
        Err(payload) => {
            let reason = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            (format!("panicked: {reason}"), BTreeMap::new())
        }
    };
    let wall_ns = started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
    let entry = CacheEntry {
        hash: hash.clone(),
        canon,
        status,
        metrics,
    };
    if !opts.no_cache {
        cache::store(&opts.cache_dir, &entry)?;
    }
    Ok(RunReport {
        spec: run.clone(),
        hash,
        entry,
        cache_hit: false,
        wall_ns,
    })
}

/// Round a nonnegative float into fixed-point thousandths — the only
/// place a float from the analysis layer crosses into campaign
/// metrics.
fn milli(x: f64) -> u64 {
    (x.max(0.0) * 1_000.0).round() as u64
}

/// A deterministic 64-bit fingerprint of a rendered artifact, so the
/// campaign report can assert "the rendering did not change" without
/// embedding kilobytes of ASCII tables.
fn render_fingerprint(rendered: &str) -> u64 {
    use std::hash::Hasher as _;
    let mut hasher = sioscope_sim::hash::FxHasher::default();
    hasher.write(rendered.as_bytes());
    hasher.finish()
}

/// Execute one resolved run and reduce it to (status, integer
/// metrics). `Err` is an execution failure; `Ok` with a non-`"ok"`
/// status is a run that completed but disagreed with the paper.
fn run_resolved(run: &RunSpec) -> Result<(String, BTreeMap<String, u64>), String> {
    match run {
        RunSpec::Workload {
            id,
            backend,
            scale,
            fault_events,
            seed,
        } => {
            let id = WorkloadId::from_id(id).ok_or_else(|| format!("unknown workload `{id}`"))?;
            let backend = BackendKind::from_id(backend)
                .ok_or_else(|| format!("unknown backend `{backend}`"))?;
            let scale = resolve_scale(scale)?;
            let metrics = canon::workload_run_backend(id, scale, backend, *fault_events, *seed)?;
            Ok(("ok".to_string(), metrics))
        }
        RunSpec::Contention {
            policy,
            scale,
            load_pct,
            seed,
        } => {
            let policy =
                PolicyId::from_id(policy).ok_or_else(|| format!("unknown policy `{policy}`"))?;
            let scale = resolve_scale(scale)?;
            let metrics = canon::contention_run(policy, scale, *load_pct, *seed)?;
            Ok(("ok".to_string(), metrics))
        }
        RunSpec::Experiment { id, scale } => {
            let experiment =
                Experiment::from_id(id).ok_or_else(|| format!("unknown experiment `{id}`"))?;
            let scale = resolve_scale(scale)?;
            let out = run_experiment(experiment, scale);
            let failed = out.failures().len();
            let metrics = BTreeMap::from([
                ("checks_total".to_string(), out.checks.len() as u64),
                ("checks_failed".to_string(), failed as u64),
                ("rendered_bytes".to_string(), out.rendered.len() as u64),
                ("rendered_fx".to_string(), render_fingerprint(&out.rendered)),
            ]);
            let status = if failed == 0 {
                "ok".to_string()
            } else {
                format!("failed: {failed} shape check(s) disagree with the paper")
            };
            Ok((status, metrics))
        }
        RunSpec::Stream {
            depth_kib,
            consumer_pct,
            scale,
            seed,
        } => {
            let scale = resolve_scale(scale)?;
            let metrics = canon::stream_run(*depth_kib, *consumer_pct, *seed, scale)?;
            Ok(("ok".to_string(), metrics))
        }
        RunSpec::Sweep { id, scale } => {
            let sweep_id = SweepId::from_id(id).ok_or_else(|| format!("unknown sweep `{id}`"))?;
            let scale = resolve_scale(scale)?;
            let sweep = run_sweep(sweep_id, scale);
            let total_events: u64 = sweep.points.iter().map(|p| p.events).sum();
            let total_io_ns: u64 = sweep.points.iter().map(|p| p.io_time.as_nanos()).sum();
            let total_exec_ns: u64 = sweep.points.iter().map(|p| p.exec_time.as_nanos()).sum();
            let metrics = BTreeMap::from([
                ("points".to_string(), sweep.points.len() as u64),
                ("total_events".to_string(), total_events),
                ("total_io_time_ns".to_string(), total_io_ns),
                ("total_exec_time_ns".to_string(), total_exec_ns),
                (
                    "best_io_speedup_milli".to_string(),
                    milli(sweep.best_io_speedup()),
                ),
                (
                    "rendered_fx".to_string(),
                    render_fingerprint(&sweep.render()),
                ),
            ]);
            Ok(("ok".to_string(), metrics))
        }
    }
}

fn resolve_scale(scale: &str) -> Result<sioscope::experiments::Scale, String> {
    canon::scale_from_id(scale).ok_or_else(|| format!("unknown scale `{scale}`"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_cache(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "sioscope-campaign-exec-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn tiny_spec() -> CampaignSpec {
        CampaignSpec::from_toml_str(concat!(
            "[campaign]\n",
            "name = \"exec-test\"\n",
            "scale = \"smoke\"\n",
            "[workloads]\n",
            "ids = [\"escat-b\"]\n",
            "seeds = [0, 1]\n",
        ))
        .unwrap()
    }

    #[test]
    fn cold_then_cached_campaigns_agree_bit_for_bit() {
        let dir = tmp_cache("coldwarm");
        let spec = tiny_spec();
        let opts = ExecOptions {
            jobs: 2,
            no_cache: false,
            cache_dir: dir.clone(),
        };
        let cold = run_campaign(&spec, &opts).unwrap();
        assert_eq!(cold.hits(), 0);
        let warm = run_campaign(&spec, &opts).unwrap();
        assert_eq!(warm.hits(), warm.runs.len());
        assert_eq!(cold.render(), warm.render());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn no_cache_bypasses_reads_and_writes() {
        let dir = tmp_cache("nocache");
        let spec = tiny_spec();
        let opts = ExecOptions {
            jobs: 1,
            no_cache: true,
            cache_dir: dir.clone(),
        };
        let report = run_campaign(&spec, &opts).unwrap();
        assert_eq!(report.hits(), 0);
        assert!(!dir.exists(), "--no-cache must not create cache entries");
        assert!(report.runs.iter().all(|r| r.entry.is_ok()));
    }

    #[test]
    fn unknown_registry_ids_fail_validation_with_exit_2() {
        let spec = CampaignSpec::from_toml_str(concat!(
            "[campaign]\n",
            "name = \"bad\"\n",
            "scale = \"smoke\"\n",
            "[registry]\n",
            "experiments = [\"escat-fig99\"]\n",
        ))
        .unwrap();
        let err = run_campaign(&spec, &ExecOptions::default()).unwrap_err();
        assert_eq!(err.exit_code(), 2);
        assert!(err.to_string().contains("escat-fig99"));
    }

    #[test]
    fn spec_ids_match_core_registry() {
        // The spec layer's constant tables and the core registries
        // must name exactly the same ids, or a spec could validate
        // and then fail to resolve (or vice versa).
        let spec_ids: Vec<&str> = crate::spec::WORKLOAD_IDS.to_vec();
        let core_ids: Vec<&str> = WorkloadId::all().iter().map(|w| w.id()).collect();
        assert_eq!(spec_ids, core_ids);
        let spec_policies: Vec<&str> = crate::spec::POLICY_IDS.to_vec();
        let core_policies: Vec<&str> = PolicyId::all().iter().map(|p| p.id()).collect();
        assert_eq!(spec_policies, core_policies);
        let spec_backends: Vec<&str> = crate::spec::BACKEND_IDS.to_vec();
        let core_backends: Vec<&str> = BackendKind::all().iter().map(|b| b.id()).collect();
        assert_eq!(spec_backends, core_backends);
        for s in crate::spec::SCALE_IDS {
            assert!(canon::scale_from_id(s).is_some(), "scale `{s}`");
        }
    }

    #[test]
    fn a_panicking_run_is_isolated_and_reported() {
        // An unknown id smuggled past validation (hand-built RunSpec)
        // must produce a failed entry, not a crashed campaign.
        let run = RunSpec::Workload {
            id: "escat-b".into(),
            backend: "pfs".into(),
            scale: "smoke".into(),
            fault_events: 0,
            seed: 0,
        };
        let dir = tmp_cache("panic");
        let opts = ExecOptions {
            jobs: 1,
            no_cache: true,
            cache_dir: dir,
        };
        let report = execute_one(&run, &opts).unwrap();
        assert!(report.entry.is_ok());
        let bogus = RunSpec::Sweep {
            id: "io_nodes".into(),
            scale: "bogus-scale".into(),
        };
        let report = execute_one(&bogus, &opts).unwrap();
        assert!(report.entry.status.starts_with("failed: unknown scale"));
    }
}
