//! The on-disk result cache: `artifacts/campaign/<hash>.json`.
//!
//! An entry is only ever written through [`write_atomic`], so a
//! campaign killed mid-write leaves a `.tmp` straggler, never a
//! truncated entry under the content address. Loading is paranoid to
//! match: an entry is used only if it parses as strict JSON, carries
//! the expected schema tag, and its embedded hash *and* canonical
//! config line both match what the caller expects. Anything less —
//! truncation that slipped past the rename, a hand-edited file, a
//! hash collision across cache generations — reads as a miss and the
//! run is recomputed; the cache can never make a campaign wrong, only
//! faster.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use crate::cliutil::{write_atomic, CliError};
use crate::json::Json;

/// Schema tag for on-disk entries. Bump on any change to the entry
/// layout *or* to the content-address function.
pub const ENTRY_SCHEMA: &str = "sioscope-campaign-run/1";

/// One cached run result. All metrics are integers (nanoseconds,
/// counts, fixed-point milli/micro units) so the JSON rendering is
/// bit-identical however the entry was produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheEntry {
    /// Content address of the run (32 hex chars).
    pub hash: String,
    /// The canonical config line the hash was computed over.
    pub canon: String,
    /// `"ok"`, `"failed: <reason>"` or `"panicked: <reason>"`.
    pub status: String,
    /// Deterministic integer metrics, canonically ordered.
    pub metrics: BTreeMap<String, u64>,
}

impl CacheEntry {
    /// Whether the run completed and passed its checks.
    pub fn is_ok(&self) -> bool {
        self.status == "ok"
    }

    /// The entry as canonical JSON.
    pub fn to_json(&self) -> Json {
        let mut obj = BTreeMap::new();
        obj.insert("schema".to_string(), Json::Str(ENTRY_SCHEMA.to_string()));
        obj.insert("hash".to_string(), Json::Str(self.hash.clone()));
        obj.insert("canon".to_string(), Json::Str(self.canon.clone()));
        obj.insert("status".to_string(), Json::Str(self.status.clone()));
        let metrics = self
            .metrics
            .iter()
            .map(|(k, v)| (k.clone(), Json::UInt(*v)))
            .collect();
        obj.insert("metrics".to_string(), Json::Object(metrics));
        Json::Object(obj)
    }

    /// Parse an entry back out of JSON, validating the schema tag.
    /// Returns `None` on any shape mismatch.
    pub fn from_json(value: &Json) -> Option<CacheEntry> {
        let obj = value.as_object()?;
        if obj.get("schema")?.as_str()? != ENTRY_SCHEMA {
            return None;
        }
        let mut metrics = BTreeMap::new();
        for (key, v) in obj.get("metrics")?.as_object()? {
            metrics.insert(key.clone(), v.as_u64()?);
        }
        Some(CacheEntry {
            hash: obj.get("hash")?.as_str()?.to_string(),
            canon: obj.get("canon")?.as_str()?.to_string(),
            status: obj.get("status")?.as_str()?.to_string(),
            metrics,
        })
    }
}

/// The file an entry for `hash` lives at under `cache_dir`.
pub fn entry_path(cache_dir: &Path, hash: &str) -> PathBuf {
    cache_dir.join(format!("{hash}.json"))
}

/// Load the cached entry for (`hash`, `canon`), or `None` if there is
/// no trustworthy one: missing file, unreadable file, invalid JSON,
/// wrong schema, or an embedded hash/canon that disagrees with what
/// the caller is asking for.
pub fn load(cache_dir: &Path, hash: &str, canon: &str) -> Option<CacheEntry> {
    let text = std::fs::read_to_string(entry_path(cache_dir, hash)).ok()?;
    let entry = CacheEntry::from_json(&Json::parse(&text).ok()?)?;
    if entry.hash == hash && entry.canon == canon {
        Some(entry)
    } else {
        None
    }
}

/// Persist `entry` under its content address, crash-safely.
pub fn store(cache_dir: &Path, entry: &CacheEntry) -> Result<(), CliError> {
    std::fs::create_dir_all(cache_dir).map_err(|e| CliError::io(cache_dir, e))?;
    let path = entry_path(cache_dir, &entry.hash);
    let mut rendered = entry.to_json().render_pretty();
    rendered.push('\n');
    write_atomic(&path, rendered)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry() -> CacheEntry {
        CacheEntry {
            hash: "0123456789abcdef0123456789abcdef".to_string(),
            canon: "v=1;kind=sweep;id=stripe-width;scale=smoke".to_string(),
            status: "ok".to_string(),
            metrics: BTreeMap::from([
                ("points".to_string(), 5),
                ("total_events".to_string(), 123_456),
            ]),
        }
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "sioscope-campaign-cache-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn round_trips_through_disk() {
        let dir = tmpdir("roundtrip");
        let e = entry();
        store(&dir, &e).unwrap();
        assert_eq!(load(&dir, &e.hash, &e.canon), Some(e.clone()));
        // No .tmp stragglers after a clean store.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|d| d.unwrap().file_name().into_string().unwrap())
            .filter(|n| n.ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn json_round_trip_is_exact() {
        let e = entry();
        let rendered = e.to_json().render();
        let back = CacheEntry::from_json(&Json::parse(&rendered).unwrap()).unwrap();
        assert_eq!(back, e);
        // Same entry, same bytes: the determinism guarantee the
        // campaign report inherits.
        assert_eq!(back.to_json().render(), rendered);
    }

    #[test]
    fn distrusts_bad_entries() {
        let dir = tmpdir("distrust");
        let e = entry();
        store(&dir, &e).unwrap();
        let path = entry_path(&dir, &e.hash);
        let good = std::fs::read_to_string(&path).unwrap();

        // Truncated JSON -> miss.
        std::fs::write(&path, &good[..good.len() / 2]).unwrap();
        assert_eq!(load(&dir, &e.hash, &e.canon), None);

        // Valid JSON, wrong schema tag -> miss.
        std::fs::write(&path, good.replace("run/1", "run/9")).unwrap();
        assert_eq!(load(&dir, &e.hash, &e.canon), None);

        // Valid entry under the right file name but for a different
        // canon (stale cache generation) -> miss.
        std::fs::write(&path, &good).unwrap();
        assert_eq!(
            load(&dir, &e.hash, "v=1;kind=sweep;id=other;scale=smoke"),
            None
        );

        // Missing file -> miss, not an error.
        std::fs::remove_file(&path).unwrap();
        assert_eq!(load(&dir, &e.hash, &e.canon), None);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn from_json_rejects_shape_drift() {
        let e = entry();
        let Json::Object(mut obj) = e.to_json() else {
            panic!("entry must be an object")
        };
        obj.remove("status");
        assert_eq!(CacheEntry::from_json(&Json::Object(obj)), None);
        assert_eq!(
            CacheEntry::from_json(&Json::parse("{\"schema\": 1}").unwrap()),
            None
        );
        // Metrics must be unsigned integers.
        let doc = e.to_json().render().replace(":123456", ":\"123456\"");
        assert_eq!(CacheEntry::from_json(&Json::parse(&doc).unwrap()), None);
    }
}
