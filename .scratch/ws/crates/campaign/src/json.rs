//! Minimal deterministic JSON: an emitter whose output is a pure
//! function of the value (objects are `BTreeMap`s, so key order is
//! canonical) and a strict parser used to *validate* artifacts before
//! a resume trusts them.
//!
//! The campaign engine never emits floating-point numbers — every
//! metric is an integer (nanoseconds, counts, fixed-point milli
//! units) — which is what makes "bit-identical report bytes" a
//! checkable property rather than a formatting accident. The parser
//! still accepts floats (other tools' JSON may contain them) but
//! surfaces them as raw text, since the campaign never needs their
//! value.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed or to-be-emitted JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (everything the campaign emits).
    UInt(u64),
    /// A negative integer.
    NegInt(i64),
    /// A number that is not a u64/i64 integer (floats, huge ints),
    /// kept as its source text — parse-only, never emitted.
    RawNum(String),
    /// A string.
    Str(String),
    /// An array, order-preserving.
    Array(Vec<Json>),
    /// An object; `BTreeMap` makes emission order canonical.
    Object(BTreeMap<String, Json>),
}

/// Where and why a parse failed.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Maximum array/object nesting the parser accepts; artifacts are
/// shallow, so anything deeper is malformed input, not data.
const MAX_DEPTH: usize = 64;

impl Json {
    /// Shorthand for an object built from `(key, value)` pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// The key→value map, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The object field `key`, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The unsigned-integer payload, if this is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(n) => Some(*n),
            _ => None,
        }
    }

    /// Render compactly (no whitespace). Deterministic: object keys
    /// emit in `BTreeMap` order.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Render with two-space indentation and a stable layout — the
    /// format campaign reports and cache entries are written in.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, level: usize) {
        let nl = |out: &mut String, level: usize| {
            if let Some(w) = indent {
                out.push('\n');
                out.push_str(&" ".repeat(w * level));
            }
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(n) => out.push_str(&n.to_string()),
            Json::NegInt(n) => out.push_str(&n.to_string()),
            Json::RawNum(s) => out.push_str(s),
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    nl(out, level + 1);
                    item.write(out, indent, level + 1);
                }
                nl(out, level);
                out.push(']');
            }
            Json::Object(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    nl(out, level + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, level + 1);
                }
                nl(out, level);
                out.push('}');
            }
        }
    }

    /// Parse `text` as a single JSON document (trailing whitespace
    /// allowed, trailing garbage rejected).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        skip_ws(bytes, &mut pos);
        let value = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(JsonError {
                at: pos,
                msg: "trailing characters after the document".into(),
            });
        }
        Ok(value)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn err(at: usize, msg: impl Into<String>) -> JsonError {
    JsonError {
        at,
        msg: msg.into(),
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, JsonError> {
    if depth > MAX_DEPTH {
        return Err(err(*pos, "nesting too deep"));
    }
    match bytes.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'n') => parse_keyword(bytes, pos, "null", Json::Null),
        Some(b't') => parse_keyword(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            loop {
                skip_ws(bytes, pos);
                items.push(parse_value(bytes, pos, depth + 1)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Array(items));
                    }
                    _ => return Err(err(*pos, "expected `,` or `]` in array")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Object(map));
            }
            loop {
                skip_ws(bytes, pos);
                let key_at = *pos;
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(err(*pos, "expected `:` after object key"));
                }
                *pos += 1;
                skip_ws(bytes, pos);
                let value = parse_value(bytes, pos, depth + 1)?;
                if map.insert(key, value).is_some() {
                    return Err(err(key_at, "duplicate object key"));
                }
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Object(map));
                    }
                    _ => return Err(err(*pos, "expected `,` or `}` in object")),
                }
            }
        }
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        Some(c) => Err(err(*pos, format!("unexpected byte `{}`", *c as char))),
    }
}

fn parse_keyword(
    bytes: &[u8],
    pos: &mut usize,
    word: &str,
    value: Json,
) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(err(*pos, format!("expected `{word}`")))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let int_start = *pos;
    while bytes.get(*pos).is_some_and(u8::is_ascii_digit) {
        *pos += 1;
    }
    if *pos == int_start {
        return Err(err(*pos, "expected a digit"));
    }
    // Leading zeros are invalid JSON ("01"), a truncation tell.
    if bytes[int_start] == b'0' && *pos - int_start > 1 {
        return Err(err(int_start, "leading zero in number"));
    }
    let mut integral = true;
    if bytes.get(*pos) == Some(&b'.') {
        integral = false;
        *pos += 1;
        let frac_start = *pos;
        while bytes.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
        if *pos == frac_start {
            return Err(err(*pos, "expected a digit after `.`"));
        }
    }
    if matches!(bytes.get(*pos), Some(b'e') | Some(b'E')) {
        integral = false;
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+') | Some(b'-')) {
            *pos += 1;
        }
        let exp_start = *pos;
        while bytes.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
        if *pos == exp_start {
            return Err(err(*pos, "expected a digit in exponent"));
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("digits are ASCII");
    if integral {
        if let Ok(n) = text.parse::<u64>() {
            return Ok(Json::UInt(n));
        }
        if let Ok(n) = text.parse::<i64>() {
            return Ok(Json::NegInt(n));
        }
    }
    Ok(Json::RawNum(text.to_string()))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(err(*pos, "expected `\"`"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{08}'),
                    Some(b'f') => out.push('\u{0C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hi = parse_hex4(bytes, pos)?;
                        let code = if (0xD800..0xDC00).contains(&hi) {
                            // High surrogate: require the low half.
                            if bytes.get(*pos + 1) != Some(&b'\\')
                                || bytes.get(*pos + 2) != Some(&b'u')
                            {
                                return Err(err(*pos, "lone surrogate in \\u escape"));
                            }
                            *pos += 2;
                            let lo = parse_hex4(bytes, pos)?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(err(*pos, "invalid low surrogate"));
                            }
                            0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                        } else if (0xDC00..0xE000).contains(&hi) {
                            return Err(err(*pos, "lone low surrogate"));
                        } else {
                            hi
                        };
                        match char::from_u32(code) {
                            Some(c) => out.push(c),
                            None => return Err(err(*pos, "invalid \\u escape")),
                        }
                    }
                    _ => return Err(err(*pos, "invalid escape")),
                }
                *pos += 1;
            }
            Some(&c) if c < 0x20 => {
                return Err(err(*pos, "raw control character in string"));
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is &str, so valid).
                let rest =
                    std::str::from_utf8(&bytes[*pos..]).map_err(|_| err(*pos, "invalid UTF-8"))?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

/// Parse the four hex digits of a `\uXXXX` escape; on entry `pos` is
/// at the `u`, on exit at its last hex digit.
fn parse_hex4(bytes: &[u8], pos: &mut usize) -> Result<u32, JsonError> {
    let start = *pos + 1;
    let end = start + 4;
    if end > bytes.len() {
        return Err(err(*pos, "truncated \\u escape"));
    }
    let hex = std::str::from_utf8(&bytes[start..end])
        .ok()
        .filter(|h| h.chars().all(|c| c.is_ascii_hexdigit()))
        .ok_or_else(|| err(start, "invalid \\u escape"))?;
    *pos = end - 1;
    Ok(u32::from_str_radix(hex, 16).expect("checked hex"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emission_is_canonical_and_round_trips() {
        let v = Json::obj(vec![
            ("zeta", Json::UInt(7)),
            ("alpha", Json::Str("a\"b\\c\nd".into())),
            (
                "list",
                Json::Array(vec![Json::Null, Json::Bool(true), Json::NegInt(-3)]),
            ),
            ("empty_obj", Json::Object(BTreeMap::new())),
            ("empty_arr", Json::Array(vec![])),
        ]);
        let compact = v.render();
        // Keys come out sorted regardless of insertion order.
        assert_eq!(
            compact,
            "{\"alpha\":\"a\\\"b\\\\c\\nd\",\"empty_arr\":[],\"empty_obj\":{},\
             \"list\":[null,true,-3],\"zeta\":7}"
        );
        assert_eq!(Json::parse(&compact).unwrap(), v);
        let pretty = v.render_pretty();
        assert_eq!(Json::parse(&pretty).unwrap(), v);
        assert!(pretty.contains("\n  \"alpha\""));
    }

    #[test]
    fn parses_numbers_strictly() {
        assert_eq!(Json::parse("0").unwrap(), Json::UInt(0));
        assert_eq!(
            Json::parse("18446744073709551615").unwrap(),
            Json::UInt(u64::MAX)
        );
        assert_eq!(Json::parse("-12").unwrap(), Json::NegInt(-12));
        assert_eq!(Json::parse("1.5").unwrap(), Json::RawNum("1.5".into()));
        assert_eq!(Json::parse("1e3").unwrap(), Json::RawNum("1e3".into()));
        assert!(Json::parse("01").is_err());
        assert!(Json::parse("1.").is_err());
        assert!(Json::parse("--1").is_err());
    }

    #[test]
    fn rejects_truncation_everywhere() {
        let full = r#"{"a": [1, 2, {"b": "text"}], "c": true}"#;
        assert!(Json::parse(full).is_ok());
        // Every proper prefix must fail — this is exactly the
        // "truncated pre-write_atomic artifact" a resume must detect.
        for cut in 1..full.len() {
            if full.is_char_boundary(cut) {
                assert!(
                    Json::parse(&full[..cut]).is_err(),
                    "prefix {cut} parsed: {}",
                    &full[..cut]
                );
            }
        }
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{} garbage").is_err());
    }

    #[test]
    fn string_escapes_round_trip() {
        let parsed = Json::parse(r#""Aé😀\t""#).unwrap();
        assert_eq!(parsed, Json::Str("Aé😀\t".into()));
        assert!(Json::parse(r#""\ud800""#).is_err(), "lone surrogate");
        assert!(Json::parse(r#""\q""#).is_err(), "bad escape");
        assert!(Json::parse("\"a\nb\"").is_err(), "raw control char");
        // Control characters emit as escapes and parse back.
        let v = Json::Str("\u{01}".into());
        assert_eq!(v.render(), "\"\\u0001\"");
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn rejects_duplicate_keys_and_deep_nesting() {
        assert!(Json::parse(r#"{"a":1,"a":2}"#).is_err());
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn accessors() {
        let v = Json::obj(vec![("n", Json::UInt(4)), ("s", Json::Str("x".into()))]);
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(4));
        assert_eq!(v.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Null.get("n"), None);
    }
}
