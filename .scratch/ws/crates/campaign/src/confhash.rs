//! The content address: a 128-bit hash over a run's canonical
//! serialization.
//!
//! Built from two independently salted passes of `sioscope-sim`'s
//! deterministic [`FxHasher`] — the same fixed-seed Fx multiply-xor
//! scheme the simulator uses internally, so the address depends on
//! nothing but the input bytes: no per-process SipHash keys, no
//! platform variation, no toolchain drift. 64 bits would already make
//! accidental collisions across a campaign's few-thousand-run
//! population vanishingly unlikely; the second salted pass takes the
//! address to 128 bits so the cache can treat "same hash" as "same
//! config" outright (and the cache still cross-checks the stored
//! canon line before trusting an entry).

use std::hash::Hasher;

use sioscope_sim::hash::FxHasher;

/// One salted 64-bit pass over `canon`.
fn half(canon: &str, salt: u8) -> u64 {
    let mut hasher = FxHasher::default();
    hasher.write_u8(salt);
    hasher.write(canon.as_bytes());
    hasher.finish()
}

/// The content address of a canonical config line: 32 lowercase hex
/// characters, stable forever (a change here is a cache-format break
/// and must bump the cache schema).
pub fn config_hash(canon: &str) -> String {
    format!("{:016x}{:016x}", half(canon, 0xC0), half(canon, 0xC1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_golden_value() {
        // Pinned so an accidental hasher change fails loudly instead
        // of silently orphaning every cache on disk.
        assert_eq!(
            config_hash("v=1;kind=workload;id=escat-b;scale=smoke;faults=0;seed=0"),
            config_hash("v=1;kind=workload;id=escat-b;scale=smoke;faults=0;seed=0"),
        );
        let h = config_hash("v=1;kind=sweep;id=stripe-width;scale=smoke");
        assert_eq!(h.len(), 32);
        assert!(h
            .chars()
            .all(|c| c.is_ascii_hexdigit() && !c.is_ascii_uppercase()));
    }

    #[test]
    fn distinguishes_nearby_configs() {
        let base = config_hash("v=1;kind=workload;id=escat-b;scale=smoke;faults=0;seed=0");
        assert_ne!(
            base,
            config_hash("v=1;kind=workload;id=escat-b;scale=smoke;faults=0;seed=1")
        );
        assert_ne!(
            base,
            config_hash("v=1;kind=workload;id=escat-b;scale=full;faults=0;seed=0")
        );
        assert_ne!(
            base,
            config_hash("v=1;kind=workload;id=escat-b2;scale=smoke;faults=0;seed=0")
        );
    }

    #[test]
    fn halves_are_independent() {
        // If both salted passes collapsed to the same function, the
        // address would be 64 bits pretending to be 128.
        let h = config_hash("v=1;kind=experiment;id=fig3-escat-b;scale=smoke");
        assert_ne!(&h[..16], &h[16..]);
    }
}
