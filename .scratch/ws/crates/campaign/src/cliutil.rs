//! The CLI error/exit-code contract and crash-safe artifact writes.
//!
//! Moved here from `sioscope-bench` (which re-exports these names
//! unchanged) so the campaign cache can stage its entries through the
//! same machinery the repro binary uses for artifacts, without a
//! dependency cycle between the two crates.

use std::fmt;
use std::path::{Path, PathBuf};

/// A CLI failure with a stable exit code, so scripts and CI can tell
/// *why* a run failed without parsing stderr:
///
/// * `2` — unusable arguments (unknown flag, unknown id, missing value);
/// * `3` — an I/O failure, always naming the path involved;
/// * `4` — artifacts ran but their checks failed (shape/golden
///   mismatch against the paper's published values, or a campaign run
///   that failed).
#[derive(Debug)]
pub enum CliError {
    /// Arguments could not be understood (exit 2).
    BadArgs(String),
    /// Reading or writing `path` failed (exit 3).
    Io {
        /// The file or directory the operation failed on.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// Artifacts disagree with their expected values (exit 4).
    GoldenMismatch(String),
}

impl CliError {
    /// An [`CliError::Io`] for `path`.
    pub fn io(path: impl Into<PathBuf>, source: std::io::Error) -> Self {
        CliError::Io {
            path: path.into(),
            source,
        }
    }

    /// The process exit code this failure maps to.
    pub fn exit_code(&self) -> i32 {
        match self {
            CliError::BadArgs(_) => 2,
            CliError::Io { .. } => 3,
            CliError::GoldenMismatch(_) => 4,
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::BadArgs(msg) => write!(f, "{msg}"),
            CliError::Io { path, source } => {
                write!(f, "I/O error on {}: {source}", path.display())
            }
            CliError::GoldenMismatch(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for CliError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CliError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Report `err` on stderr and exit with its code. The single exit
/// point of the CLI binaries' error paths.
pub fn exit_with(err: CliError) -> ! {
    eprintln!("error: {err}");
    std::process::exit(err.exit_code());
}

/// The scratch sibling `write_atomic` stages into: `<name>.tmp` next
/// to the destination (same directory, hence same filesystem, hence an
/// atomic rename).
pub fn tmp_sibling(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Crash-safe artifact write: stage the contents into a `.tmp` sibling
/// and atomically rename it over the destination. A run killed
/// mid-write leaves either the old artifact or a `.tmp` straggler —
/// never a truncated artifact that a later resume would trust.
pub fn write_atomic(path: &Path, contents: impl AsRef<[u8]>) -> Result<(), CliError> {
    let tmp = tmp_sibling(path);
    std::fs::write(&tmp, contents.as_ref()).map_err(|e| CliError::io(&tmp, e))?;
    std::fs::rename(&tmp, path).map_err(|e| CliError::io(path, e))
}
