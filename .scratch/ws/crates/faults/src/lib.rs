//! # sioscope-faults
//!
//! Deterministic fault injection for the sioscope stack.
//!
//! The paper (§7) observes that application I/O behaviour is shaped by
//! the machine's failure habits as much as by its healthy performance;
//! this crate makes failure shapes a first-class, reproducible
//! experiment dimension. It has three layers:
//!
//! * [`FaultSchedule`] — a declarative, serde-serializable list of
//!   timed fault events: latent sector errors, RAID-3 spindle failures
//!   (with optional timed rebuild), I/O-node crashes with restart,
//!   I/O-node slowdown windows, mesh-link congestion bursts, and
//!   *compute*-node crashes (the PFS never sees those; the recovery
//!   driver in `sioscope-core` consumes them to model
//!   checkpoint/restart time-to-solution).
//! * [`FaultGen`] — draws a schedule from the deterministic sim RNG so
//!   a `(seed, intensity)` pair names a reproducible fault scenario,
//!   and intensity `k` is always a prefix of intensity `k + 1`
//!   (monotone sweeps by construction).
//! * [`FaultState`] — the compiled runtime form: per-I/O-node
//!   down/degraded/latent windows and slowdown timelines, a global
//!   link-congestion timeline, and the sorted list of transition
//!   instants the simulator interleaves with its event calendar.
//!
//! The cardinal invariant: a schedule that does not
//! [`FaultSchedule::engages`] must leave every downstream computation
//! bit-identical to a build without this crate in the loop. All hooks
//! are therefore gated on `Option<FaultState>` rather than on neutral
//! parameter values.

pub mod generator;
pub mod schedule;
pub mod state;

pub use generator::FaultGen;
pub use schedule::{FaultEvent, FaultKind, FaultSchedule, Tier};
pub use state::{BurstFaultState, ComputeCrash, FaultState, ObjectFaultState};
