//! Seeded schedule generation.
//!
//! A [`FaultGen`] names a whole family of fault scenarios by
//! `(seed, horizon, io_nodes)`; the `events` knob picks how deep into
//! the family's deterministic event stream to go. Events are drawn
//! *sequentially* from one RNG stream, so the schedule at intensity
//! `k` is exactly the first `k` events of the schedule at intensity
//! `k + 1`. That nesting is what makes a `fault_intensity` sweep
//! meaningful: each point adds faults to the previous point's scenario
//! instead of rolling an unrelated one, so exec-time inflation is
//! monotone by construction rather than by luck.

use crate::schedule::{FaultKind, FaultSchedule};
use sioscope_sim::{DetRng, Time};

/// Salt folded into the user seed so fault streams never collide with
/// workload RNG streams derived from the same experiment seed.
const FAULT_STREAM_SALT: u64 = 0xFA17_5EED_0BAD_D15C;

/// Salt for the compute-crash stream: distinct from
/// [`FAULT_STREAM_SALT`] so adding crashes to a scenario never
/// perturbs the I/O-side fault draws of the same seed.
const CRASH_STREAM_SALT: u64 = 0xC0DE_CAA5_4E57_A27B;

/// Salt for the object-tier fault stream: one seed names one scenario
/// *per tier*, each drawn from its own independent stream.
const OBJECT_STREAM_SALT: u64 = 0x0B1E_C7FA_CADE_5A1D;

/// Salt for the burst-tier fault stream.
const BURST_STREAM_SALT: u64 = 0xB0B5_7CAF_E11A_5EED;

/// A deterministic fault-scenario generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultGen {
    /// Seed of the fault event stream.
    pub seed: u64,
    /// Rough length of the run being disturbed; fault instants and
    /// window lengths are drawn as fractions of this.
    pub horizon: Time,
    /// Number of I/O nodes available to target.
    pub io_nodes: u32,
    /// How many events to take from the stream (the intensity axis).
    pub events: usize,
}

impl FaultGen {
    /// A generator with the given stream identity and zero intensity.
    pub fn new(seed: u64, horizon: Time, io_nodes: u32) -> Self {
        FaultGen {
            seed,
            horizon,
            io_nodes,
            events: 0,
        }
    }

    /// The same generator at a different intensity.
    pub fn with_events(mut self, events: usize) -> Self {
        self.events = events;
        self
    }

    /// Materialize the schedule: the first [`FaultGen::events`] events
    /// of the stream. Generated schedules always pass
    /// [`FaultSchedule::validate`] for this generator's `io_nodes`.
    pub fn schedule(&self) -> FaultSchedule {
        let mut rng = DetRng::new(self.seed ^ FAULT_STREAM_SALT);
        let mut sched = FaultSchedule::empty();
        if self.io_nodes == 0 {
            return sched;
        }
        // Windows never collapse to zero even on tiny horizons.
        let min_window = Time::from_millis(50);
        for _ in 0..self.events {
            // Strike somewhere in the first 90% of the horizon so the
            // fault actually intersects the run.
            let at = self.horizon.scale(0.9 * rng.unit());
            let ion = rng.range_inclusive(0, u64::from(self.io_nodes - 1)) as u32;
            let kind = match rng.range_inclusive(0, 4) {
                0 => FaultKind::LatentSector {
                    ion,
                    duration: self.window(&mut rng, 0.05, 0.20, min_window),
                    penalty: Time::from_millis(rng.range_inclusive(100, 500)),
                },
                1 => FaultKind::SpindleFailure {
                    ion,
                    rebuild: if rng.chance(0.5) {
                        Some(self.window(&mut rng, 0.20, 0.50, min_window))
                    } else {
                        None
                    },
                },
                2 => FaultKind::IonCrash {
                    ion,
                    restart: self.window(&mut rng, 0.05, 0.20, min_window),
                },
                3 => FaultKind::IonSlowdown {
                    ion,
                    duration: self.window(&mut rng, 0.10, 0.30, min_window),
                    factor: 1.5 + 2.5 * rng.unit(),
                },
                _ => FaultKind::LinkCongestion {
                    duration: self.window(&mut rng, 0.10, 0.30, min_window),
                    factor: 1.5 + 2.5 * rng.unit(),
                },
            };
            sched.push(at, kind);
        }
        sched
    }

    /// A window length uniform in `[lo, hi]` fractions of the horizon,
    /// floored at `min`.
    fn window(&self, rng: &mut DetRng, lo: f64, hi: f64, min: Time) -> Time {
        self.horizon.scale(lo + (hi - lo) * rng.unit()).max(min)
    }

    /// An *object-tier* scenario: the first [`FaultGen::events`]
    /// events of a stream over metadata-shard outages and
    /// degraded-service windows, targeting a store with `md_shards`
    /// metadata shards. Same nesting guarantee as
    /// [`FaultGen::schedule`], independently salted so one seed names
    /// uncorrelated scenarios on each tier. Generated schedules always
    /// pass `validate_for_tier(Tier::Object, md_shards, _)`.
    pub fn object_schedule(&self, md_shards: u32) -> FaultSchedule {
        let mut rng = DetRng::new(self.seed ^ OBJECT_STREAM_SALT);
        let mut sched = FaultSchedule::empty();
        if md_shards == 0 {
            return sched;
        }
        let min_window = Time::from_millis(50);
        for _ in 0..self.events {
            let at = self.horizon.scale(0.9 * rng.unit());
            let kind = if rng.chance(0.5) {
                FaultKind::MetadataShardOutage {
                    shard: rng.range_inclusive(0, u64::from(md_shards - 1)) as u32,
                    duration: self.window(&mut rng, 0.05, 0.20, min_window),
                }
            } else {
                FaultKind::DegradedService {
                    duration: self.window(&mut rng, 0.10, 0.30, min_window),
                    factor: 1.5 + 2.5 * rng.unit(),
                }
            };
            sched.push(at, kind);
        }
        sched
    }

    /// A *burst-tier* scenario: drain stalls and (rarer) burst-node
    /// crashes with repair windows. Same nesting and salting contract
    /// as [`FaultGen::object_schedule`]. Generated schedules always
    /// pass `validate_for_tier(Tier::Burst, _, _)`.
    pub fn burst_schedule(&self) -> FaultSchedule {
        let mut rng = DetRng::new(self.seed ^ BURST_STREAM_SALT);
        let mut sched = FaultSchedule::empty();
        let min_window = Time::from_millis(50);
        for _ in 0..self.events {
            let at = self.horizon.scale(0.9 * rng.unit());
            let kind = if rng.chance(0.7) {
                FaultKind::DrainStall {
                    duration: self.window(&mut rng, 0.10, 0.40, min_window),
                }
            } else {
                FaultKind::BurstNodeCrash {
                    repair: self.window(&mut rng, 0.05, 0.20, min_window),
                }
            };
            sched.push(at, kind);
        }
        sched
    }

    /// An MTBF-style compute-crash scenario: inter-crash gaps are
    /// exponential with mean `mtbf` (the memoryless model behind
    /// Young's interval formula), the victim pid is uniform over
    /// `0..compute_nodes`, and generation stops at the horizon. Every
    /// crash charges the same `rework` restart latency. The stream is
    /// salted independently of [`FaultGen::schedule`], so layering
    /// crashes onto an I/O-fault scenario with the same seed leaves
    /// the I/O-side draws untouched.
    pub fn compute_crash_schedule(
        &self,
        mtbf: Time,
        rework: Time,
        compute_nodes: u32,
    ) -> FaultSchedule {
        let mut sched = FaultSchedule::empty();
        if compute_nodes == 0 || mtbf.is_zero() || rework.is_zero() {
            return sched;
        }
        let mut rng = DetRng::new(self.seed ^ CRASH_STREAM_SALT);
        let mut t = Time::ZERO;
        loop {
            // Inverse-CDF exponential draw; `1 - u` keeps ln's
            // argument in (0, 1]. Floored so pathological draws can't
            // schedule two crashes in the same nanosecond.
            let gap = mtbf
                .scale(-(1.0 - rng.unit()).ln())
                .max(Time::from_millis(1));
            t = t.saturating_add(gap);
            if t > self.horizon {
                return sched;
            }
            let node = rng.range_inclusive(0, u64::from(compute_nodes - 1)) as u32;
            sched.push(t, FaultKind::ComputeNodeCrash { node, rework });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen(events: usize) -> FaultGen {
        FaultGen::new(42, Time::from_secs(100), 8).with_events(events)
    }

    #[test]
    fn same_seed_same_schedule() {
        assert_eq!(gen(10).schedule(), gen(10).schedule());
    }

    #[test]
    fn different_seeds_differ() {
        let a = gen(10).schedule();
        let mut g = gen(10);
        g.seed = 43;
        assert_ne!(a, g.schedule());
    }

    #[test]
    fn intensities_are_nested_prefixes() {
        let deep = gen(12).schedule();
        for k in 0..12 {
            let shallow = gen(k).schedule();
            assert_eq!(shallow.events.len(), k);
            assert_eq!(shallow.events[..], deep.events[..k]);
        }
    }

    #[test]
    fn generated_schedules_validate() {
        for seed in 0..20u64 {
            let mut g = gen(16);
            g.seed = seed;
            let s = g.schedule();
            assert!(s.validate(8).is_empty(), "seed {seed}: {:?}", s.validate(8));
        }
    }

    #[test]
    fn zero_intensity_is_fault_free() {
        let s = gen(0).schedule();
        assert!(s.is_empty());
        assert!(!s.engages());
    }

    #[test]
    fn zero_io_nodes_yields_empty_schedule() {
        let mut g = gen(5);
        g.io_nodes = 0;
        assert!(g.schedule().is_empty());
    }

    #[test]
    fn crash_schedule_is_deterministic_and_valid() {
        let g = FaultGen::new(42, Time::from_secs(100), 8);
        let mtbf = Time::from_secs(20);
        let rework = Time::from_secs(3);
        let a = g.compute_crash_schedule(mtbf, rework, 16);
        let b = g.compute_crash_schedule(mtbf, rework, 16);
        assert_eq!(a, b);
        assert!(!a.is_empty(), "mtbf of horizon/5 should yield crashes");
        assert!(a.validate_for(8, 16).is_empty());
        let mut last = Time::ZERO;
        for ev in &a.events {
            assert!(ev.at > last, "crash instants strictly increase");
            assert!(ev.at <= Time::from_secs(100));
            assert!(matches!(
                ev.kind,
                FaultKind::ComputeNodeCrash {
                    rework: r, ..
                } if r == rework
            ));
            last = ev.at;
        }
    }

    #[test]
    fn crash_stream_does_not_disturb_io_stream() {
        let g = gen(10);
        let io_only = g.schedule();
        let _crashes = g.compute_crash_schedule(Time::from_secs(10), Time::from_secs(1), 8);
        assert_eq!(io_only, g.schedule());
    }

    #[test]
    fn longer_mtbf_means_fewer_crashes() {
        let g = FaultGen::new(7, Time::from_secs(1000), 4);
        let rework = Time::from_secs(1);
        let fast = g.compute_crash_schedule(Time::from_secs(50), rework, 8);
        let slow = g.compute_crash_schedule(Time::from_secs(200), rework, 8);
        assert!(fast.events.len() > slow.events.len());
    }

    #[test]
    fn degenerate_crash_generators_yield_empty() {
        let g = FaultGen::new(1, Time::from_secs(100), 4);
        assert!(g
            .compute_crash_schedule(Time::ZERO, Time::from_secs(1), 8)
            .is_empty());
        assert!(g
            .compute_crash_schedule(Time::from_secs(1), Time::ZERO, 8)
            .is_empty());
        assert!(g
            .compute_crash_schedule(Time::from_secs(1), Time::from_secs(1), 0)
            .is_empty());
    }

    #[test]
    fn stream_covers_every_fault_class() {
        let s = gen(64).schedule();
        let labels: std::collections::HashSet<&str> =
            s.events.iter().map(|e| e.kind.label()).collect();
        assert_eq!(labels.len(), 5, "64 draws should hit all 5 classes");
    }

    #[test]
    fn tier_streams_are_nested_valid_and_independent() {
        use crate::schedule::Tier;
        let deep_obj = gen(12).object_schedule(4);
        let deep_burst = gen(12).burst_schedule();
        for k in 0..12 {
            assert_eq!(gen(k).object_schedule(4).events[..], deep_obj.events[..k]);
            assert_eq!(gen(k).burst_schedule().events[..], deep_burst.events[..k]);
        }
        for seed in 0..20u64 {
            let mut g = gen(16);
            g.seed = seed;
            let o = g.object_schedule(4);
            assert!(
                o.validate_for_tier(Tier::Object, 4, u32::MAX).is_empty(),
                "seed {seed}: {:?}",
                o.validate_for_tier(Tier::Object, 4, u32::MAX)
            );
            let b = g.burst_schedule();
            assert!(
                b.validate_for_tier(Tier::Burst, 0, u32::MAX).is_empty(),
                "seed {seed}: {:?}",
                b.validate_for_tier(Tier::Burst, 0, u32::MAX)
            );
        }
        // Each tier stream is independently salted: drawing one does
        // not disturb the others, and the PFS stream is unchanged.
        let g = gen(10);
        let io_only = g.schedule();
        let _ = g.object_schedule(4);
        let _ = g.burst_schedule();
        assert_eq!(io_only, g.schedule());
    }

    #[test]
    fn tier_streams_cover_their_fault_classes() {
        let obj = gen(64).object_schedule(4);
        let labels: std::collections::HashSet<&str> =
            obj.events.iter().map(|e| e.kind.label()).collect();
        assert!(labels.contains("md-shard-outage"));
        assert!(labels.contains("degraded-service"));
        let burst = gen(64).burst_schedule();
        let labels: std::collections::HashSet<&str> =
            burst.events.iter().map(|e| e.kind.label()).collect();
        assert!(labels.contains("drain-stall"));
        assert!(labels.contains("burst-crash"));
        assert!(gen(0).object_schedule(4).is_empty());
        assert!(gen(0).burst_schedule().is_empty());
        let mut g = gen(5);
        g.io_nodes = 0;
        assert!(!g.object_schedule(4).is_empty(), "md shards, not io nodes");
        assert!(g.object_schedule(0).is_empty());
    }
}
