//! Declarative fault schedules.
//!
//! A schedule is plain data: a list of `(instant, fault)` pairs. It
//! carries no behaviour beyond validation; the runtime interpretation
//! (windows, timelines, transition instants) lives in
//! [`crate::state::FaultState`], and the policy reaction (retry,
//! re-route, degrade) lives in the PFS layer.

use serde::{Deserialize, Serialize};
use sioscope_sim::Time;

/// One injectable fault class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// A latent sector error on one array: for the window's duration
    /// every request to the array pays the drive's internal
    /// retry/remap penalty on top of normal service.
    LatentSector {
        /// Afflicted I/O node.
        ion: u32,
        /// How long the bad region keeps being hit.
        duration: Time,
        /// Extra service time per request while the window is open.
        penalty: Time,
    },
    /// A RAID-3 spindle failure: the array runs degraded (parity
    /// reconstruction on every access) from the fault instant until
    /// the rebuild completes — or forever when `rebuild` is `None`,
    /// which reproduces the old statically-degraded-array model.
    SpindleFailure {
        /// Afflicted I/O node.
        ion: u32,
        /// Rebuild duration; `None` = never rebuilt.
        rebuild: Option<Time>,
    },
    /// An I/O-node crash: the node serves nothing until it restarts.
    /// In-flight and newly arriving requests time out and the PFS
    /// resilience policy decides whether to retry, re-route, or wait.
    IonCrash {
        /// Afflicted I/O node.
        ion: u32,
        /// Time from crash to the node accepting requests again.
        restart: Time,
    },
    /// An I/O-node slowdown window: every request served during the
    /// window takes `factor`× its normal service time (daemon CPU
    /// starvation, firmware retries, thermal throttling).
    IonSlowdown {
        /// Afflicted I/O node.
        ion: u32,
        /// Window length.
        duration: Time,
        /// Service-time multiplier, `> 1.0` to slow down.
        factor: f64,
    },
    /// A mesh-wide congestion burst: wire transfer time is scaled by
    /// `factor` for the window (contending traffic from another
    /// partition; the Paragon ran space-shared).
    LinkCongestion {
        /// Window length.
        duration: Time,
        /// Wire-time multiplier, `> 1.0` to slow down.
        factor: f64,
    },
    /// A *compute*-node crash. The applications are gang-scheduled
    /// SPMD codes, so one dead node kills the whole attempt: the run
    /// is torn down, the partition reboots for `rework`, and the
    /// application restarts from its last committed checkpoint. The
    /// PFS layer never sees this fault — it is interpreted by the
    /// recovery driver in `sioscope-core`, which charges the restart
    /// latency and replays the lost work.
    ComputeNodeCrash {
        /// The compute node (pid) that dies.
        node: u32,
        /// Time from the crash to the replacement partition being
        /// ready to rerun the application (reboot + reschedule).
        rework: Time,
    },
    /// An object-store metadata shard outage: for the window's
    /// duration the shard answers nothing and the store's resilience
    /// policy decides whether to retry, re-route to the replica
    /// shard, or stall until the shard returns.
    MetadataShardOutage {
        /// Afflicted metadata shard.
        shard: u32,
        /// How long the shard is dark.
        duration: Time,
    },
    /// A degraded-service window on the object store: every PUT/GET
    /// served during the window pays `factor`× its normal service
    /// latency (compaction storms, recovery traffic, noisy
    /// neighbours). Sizes and ordering are untouched, so the PUT/GET
    /// semantics oracle still holds under this fault.
    DegradedService {
        /// Window length.
        duration: Time,
        /// Service-latency multiplier, `> 1.0` to slow down.
        factor: f64,
    },
    /// A burst-buffer drain stall: the background drain channel to
    /// the inner PFS makes no progress for the window (drain daemon
    /// wedged, PFS backpressure). Absorbed writes still complete at
    /// log speed; the resident backlog just drains later.
    DrainStall {
        /// Window length.
        duration: Time,
    },
    /// A burst-buffer node crash: every logged byte not yet drained
    /// to the inner PFS at the crash instant is *lost*, and while the
    /// log rebuilds (`repair`) writes fall through to the inner PFS
    /// directly. The recovery driver consumes the durability side of
    /// this: a checkpoint committed to the log but never drained
    /// cannot be restored from.
    BurstNodeCrash {
        /// Time from the crash to the log absorbing writes again.
        repair: Time,
    },
    /// An in-situ consumer crash on a streaming pipeline: the consumer
    /// makes no progress for the outage, so staged chunks stop
    /// draining, the bounded staging queue stops returning credits,
    /// and the *producer* ultimately stalls through backpressure —
    /// qualitatively unlike any disk fault, where the writer pays at
    /// the device. Only the `stream` tier can express this; storage
    /// tiers have no consumer to kill.
    ConsumerCrash {
        /// How long the consumer is down (restart + reattach).
        stall: Time,
    },
}

/// The storage tier a fault schedule is interpreted against. Lives
/// here (not in the PFS crate) because the fault crate sits below the
/// storage crates in the dependency order; `sioscope-pfs` maps its
/// `BackendKind` onto this enum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Tier {
    /// The 1996-style parallel file system (also the inner PFS of a
    /// burst buffer).
    Pfs,
    /// The flat-namespace object store.
    Object,
    /// The host-side burst-buffer log (its inner PFS validates its
    /// own schedule as [`Tier::Pfs`]).
    Burst,
    /// The in-transit streaming layer: bounded staging queues between
    /// a producer and an in-situ consumer. No storage device is in the
    /// path, so every disk-era fault class is rejected here; the one
    /// fault the tier expresses is the consumer crash.
    Stream,
}

impl Tier {
    /// Short stable id, matching the `BackendKind` ids.
    pub fn label(&self) -> &'static str {
        match self {
            Tier::Pfs => "pfs",
            Tier::Object => "object",
            Tier::Burst => "burst",
            Tier::Stream => "stream",
        }
    }

    /// The labels of every fault class this tier can express,
    /// verbatim for fail-fast diagnostics.
    pub fn valid_fault_labels(&self) -> &'static [&'static str] {
        match self {
            Tier::Pfs => &[
                "latent-sector",
                "spindle-failure",
                "ion-crash",
                "ion-slowdown",
                "link-congestion",
                "compute-crash",
            ],
            Tier::Object => &["md-shard-outage", "degraded-service", "compute-crash"],
            Tier::Burst => &["drain-stall", "burst-crash", "compute-crash"],
            Tier::Stream => &["consumer-crash"],
        }
    }
}

impl std::fmt::Display for Tier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl FaultKind {
    /// The I/O node this fault pins down, if it is node-scoped.
    pub fn ion(&self) -> Option<u32> {
        match *self {
            FaultKind::LatentSector { ion, .. }
            | FaultKind::SpindleFailure { ion, .. }
            | FaultKind::IonCrash { ion, .. }
            | FaultKind::IonSlowdown { ion, .. } => Some(ion),
            _ => None,
        }
    }

    /// The metadata shard this fault pins down, if it is shard-scoped
    /// (disjoint from [`FaultKind::ion`]).
    pub fn shard(&self) -> Option<u32> {
        match *self {
            FaultKind::MetadataShardOutage { shard, .. } => Some(shard),
            _ => None,
        }
    }

    /// `true` iff this fault class is expressible on `tier`.
    /// Compute-node crashes are agnostic across the *storage* tiers —
    /// the storage layer never sees them, the recovery driver does —
    /// but the coupled stream driver has no rollback path, so the
    /// stream tier rejects them along with every disk fault.
    pub fn valid_on(&self, tier: Tier) -> bool {
        match self {
            FaultKind::ComputeNodeCrash { .. } => tier != Tier::Stream,
            FaultKind::ConsumerCrash { .. } => tier == Tier::Stream,
            FaultKind::LatentSector { .. }
            | FaultKind::SpindleFailure { .. }
            | FaultKind::IonCrash { .. }
            | FaultKind::IonSlowdown { .. }
            | FaultKind::LinkCongestion { .. } => tier == Tier::Pfs,
            FaultKind::MetadataShardOutage { .. } | FaultKind::DegradedService { .. } => {
                tier == Tier::Object
            }
            FaultKind::DrainStall { .. } | FaultKind::BurstNodeCrash { .. } => tier == Tier::Burst,
        }
    }

    /// The compute node this fault kills, if it is a compute-side
    /// fault (disjoint from [`FaultKind::ion`]).
    pub fn compute_node(&self) -> Option<u32> {
        match *self {
            FaultKind::ComputeNodeCrash { node, .. } => Some(node),
            _ => None,
        }
    }

    /// Short stable label for reports and sweep axes.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::LatentSector { .. } => "latent-sector",
            FaultKind::SpindleFailure { .. } => "spindle-failure",
            FaultKind::IonCrash { .. } => "ion-crash",
            FaultKind::IonSlowdown { .. } => "ion-slowdown",
            FaultKind::LinkCongestion { .. } => "link-congestion",
            FaultKind::ComputeNodeCrash { .. } => "compute-crash",
            FaultKind::MetadataShardOutage { .. } => "md-shard-outage",
            FaultKind::DegradedService { .. } => "degraded-service",
            FaultKind::DrainStall { .. } => "drain-stall",
            FaultKind::BurstNodeCrash { .. } => "burst-crash",
            FaultKind::ConsumerCrash { .. } => "consumer-crash",
        }
    }
}

/// A fault scheduled at an instant of simulated time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// When the fault strikes.
    pub at: Time,
    /// What happens.
    pub kind: FaultKind,
}

/// A complete fault scenario for one run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultSchedule {
    /// The timed fault events, in no particular order.
    pub events: Vec<FaultEvent>,
    /// Route the run through the fault machinery even with no events.
    /// The determinism regression tests use this to prove the hooks
    /// themselves are bit-neutral; ordinary empty schedules leave it
    /// `false` so fault-free runs skip the hooks entirely.
    #[serde(default)]
    pub engage_when_empty: bool,
}

impl FaultSchedule {
    /// The fault-free schedule: no events, hooks disengaged.
    pub fn empty() -> Self {
        Self::default()
    }

    /// No events, but the fault machinery stays in the loop. Exists so
    /// tests can assert the hooks are bit-neutral; see
    /// [`FaultSchedule::engage_when_empty`].
    pub fn engaged_empty() -> Self {
        FaultSchedule {
            events: Vec::new(),
            engage_when_empty: true,
        }
    }

    /// The legacy statically-degraded-array scenario: each listed I/O
    /// node suffers a never-rebuilt spindle failure at time zero.
    pub fn degraded_from_start(ions: &[u32]) -> Self {
        FaultSchedule {
            events: ions
                .iter()
                .map(|&ion| FaultEvent {
                    at: Time::ZERO,
                    kind: FaultKind::SpindleFailure { ion, rebuild: None },
                })
                .collect(),
            engage_when_empty: false,
        }
    }

    /// Append one fault.
    pub fn push(&mut self, at: Time, kind: FaultKind) {
        self.events.push(FaultEvent { at, kind });
    }

    /// `true` iff the schedule holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// `true` iff the run must route through the fault machinery.
    pub fn engages(&self) -> bool {
        !self.events.is_empty() || self.engage_when_empty
    }

    /// Structural problems, one message each; empty = valid. `io_nodes`
    /// bounds I/O-node-scoped faults; compute-node crashes are checked
    /// only for a sane rework time (use [`FaultSchedule::validate_for`]
    /// to also bound the crashed pid against the application size).
    pub fn validate(&self, io_nodes: u32) -> Vec<String> {
        self.validate_for(io_nodes, u32::MAX)
    }

    /// [`FaultSchedule::validate`] with the compute-partition size
    /// known: additionally rejects compute-node crashes that name a
    /// pid outside `0..compute_nodes`. PFS semantics: any fault class
    /// the 1996-style file system cannot express is rejected.
    pub fn validate_for(&self, io_nodes: u32, compute_nodes: u32) -> Vec<String> {
        self.validate_for_tier(Tier::Pfs, io_nodes, compute_nodes)
    }

    /// Backend-aware validation. `scope_nodes` bounds the tier's
    /// node-scoped faults — I/O nodes on `pfs`, metadata shards on
    /// `object`, unused on `burst` — and `compute_nodes` bounds
    /// compute-node crash victims. A fault class the tier cannot
    /// express is a hard problem whose message names the tier's valid
    /// fault set, so CLIs can fail fast with exit code 2.
    pub fn validate_for_tier(
        &self,
        tier: Tier,
        scope_nodes: u32,
        compute_nodes: u32,
    ) -> Vec<String> {
        let mut problems = Vec::new();
        for (i, ev) in self.events.iter().enumerate() {
            if !ev.kind.valid_on(tier) {
                problems.push(format!(
                    "event {i}: {} is not a fault of the {tier} tier \
                     (valid on {tier}: {})",
                    ev.kind.label(),
                    tier.valid_fault_labels().join(", ")
                ));
                continue;
            }
            if let Some(ion) = ev.kind.ion() {
                if ion >= scope_nodes {
                    problems.push(format!(
                        "event {i}: {} targets I/O node {ion}, machine has {scope_nodes}",
                        ev.kind.label()
                    ));
                }
            }
            if let Some(shard) = ev.kind.shard() {
                if shard >= scope_nodes {
                    problems.push(format!(
                        "event {i}: {} targets metadata shard {shard}, store has {scope_nodes}",
                        ev.kind.label()
                    ));
                }
            }
            match ev.kind {
                FaultKind::LatentSector {
                    duration, penalty, ..
                } => {
                    if duration.is_zero() {
                        problems.push(format!("event {i}: latent-sector window is empty"));
                    }
                    if penalty.is_zero() {
                        problems.push(format!("event {i}: latent-sector penalty is zero"));
                    }
                }
                FaultKind::SpindleFailure { rebuild, .. } => {
                    if rebuild.is_some_and(|r| r.is_zero()) {
                        problems.push(format!(
                            "event {i}: spindle rebuild of zero duration (use None for 'never')"
                        ));
                    }
                }
                FaultKind::IonCrash { restart, .. } => {
                    if restart.is_zero() {
                        problems.push(format!("event {i}: crash with zero restart time"));
                    }
                }
                FaultKind::IonSlowdown {
                    duration, factor, ..
                } => {
                    if duration.is_zero() {
                        problems.push(format!("event {i}: slowdown window is empty"));
                    }
                    if !factor.is_finite() || factor <= 1.0 {
                        problems.push(format!("event {i}: slowdown factor {factor} is not > 1"));
                    }
                }
                FaultKind::LinkCongestion { duration, factor } => {
                    if duration.is_zero() {
                        problems.push(format!("event {i}: congestion window is empty"));
                    }
                    if !factor.is_finite() || factor <= 1.0 {
                        problems.push(format!("event {i}: congestion factor {factor} is not > 1"));
                    }
                }
                FaultKind::ComputeNodeCrash { node, rework } => {
                    if node >= compute_nodes {
                        problems.push(format!(
                            "event {i}: compute-crash targets node {node}, \
                             application has {compute_nodes}"
                        ));
                    }
                    if rework.is_zero() {
                        problems.push(format!("event {i}: compute-crash with zero rework time"));
                    }
                }
                FaultKind::MetadataShardOutage { duration, .. } => {
                    if duration.is_zero() {
                        problems.push(format!("event {i}: md-shard-outage window is empty"));
                    }
                }
                FaultKind::DegradedService { duration, factor } => {
                    if duration.is_zero() {
                        problems.push(format!("event {i}: degraded-service window is empty"));
                    }
                    if !factor.is_finite() || factor <= 1.0 {
                        problems.push(format!(
                            "event {i}: degraded-service factor {factor} is not > 1"
                        ));
                    }
                }
                FaultKind::DrainStall { duration } => {
                    if duration.is_zero() {
                        problems.push(format!("event {i}: drain-stall window is empty"));
                    }
                }
                FaultKind::BurstNodeCrash { repair } => {
                    if repair.is_zero() {
                        problems.push(format!("event {i}: burst-crash with zero repair time"));
                    }
                }
                FaultKind::ConsumerCrash { stall } => {
                    if stall.is_zero() {
                        problems.push(format!("event {i}: consumer-crash with zero stall time"));
                    }
                }
            }
        }
        problems
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_does_not_engage_but_engaged_empty_does() {
        assert!(!FaultSchedule::empty().engages());
        assert!(FaultSchedule::empty().is_empty());
        assert!(FaultSchedule::engaged_empty().engages());
        assert!(FaultSchedule::engaged_empty().is_empty());
        assert!(!FaultSchedule::default().engages());
    }

    #[test]
    fn degraded_from_start_is_permanent_spindle_failures() {
        let s = FaultSchedule::degraded_from_start(&[0, 3]);
        assert!(s.engages());
        assert_eq!(s.events.len(), 2);
        for ev in &s.events {
            assert_eq!(ev.at, Time::ZERO);
            assert!(matches!(
                ev.kind,
                FaultKind::SpindleFailure { rebuild: None, .. }
            ));
        }
        assert!(s.validate(4).is_empty());
    }

    #[test]
    fn validate_catches_bad_events() {
        let mut s = FaultSchedule::empty();
        s.push(
            Time::ZERO,
            FaultKind::IonCrash {
                ion: 9,
                restart: Time::ZERO,
            },
        );
        s.push(
            Time::from_secs(1),
            FaultKind::IonSlowdown {
                ion: 0,
                duration: Time::from_secs(1),
                factor: 0.5,
            },
        );
        let problems = s.validate(2);
        assert_eq!(problems.len(), 3, "{problems:?}");
    }

    #[test]
    fn schedules_round_trip_through_serde() {
        let mut s = FaultSchedule::empty();
        s.push(
            Time::from_millis(250),
            FaultKind::LatentSector {
                ion: 1,
                duration: Time::from_secs(2),
                penalty: Time::from_millis(300),
            },
        );
        s.push(
            Time::from_secs(1),
            FaultKind::LinkCongestion {
                duration: Time::from_secs(3),
                factor: 2.5,
            },
        );
        let json = serde_json::to_string(&s).unwrap();
        let back: FaultSchedule = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn labels_are_stable() {
        let kinds = [
            FaultKind::LatentSector {
                ion: 0,
                duration: Time::from_secs(1),
                penalty: Time::from_millis(1),
            },
            FaultKind::SpindleFailure {
                ion: 0,
                rebuild: Some(Time::from_secs(1)),
            },
            FaultKind::IonCrash {
                ion: 0,
                restart: Time::from_secs(1),
            },
            FaultKind::IonSlowdown {
                ion: 0,
                duration: Time::from_secs(1),
                factor: 2.0,
            },
            FaultKind::LinkCongestion {
                duration: Time::from_secs(1),
                factor: 2.0,
            },
            FaultKind::ComputeNodeCrash {
                node: 0,
                rework: Time::from_secs(1),
            },
        ];
        let labels: std::collections::HashSet<&str> = kinds.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), kinds.len());
        assert_eq!(kinds[4].ion(), None);
        assert_eq!(kinds[0].ion(), Some(0));
        assert_eq!(kinds[5].ion(), None);
        assert_eq!(kinds[5].compute_node(), Some(0));
        assert_eq!(kinds[0].compute_node(), None);
    }

    #[test]
    fn tier_validation_rejects_cross_tier_faults() {
        let mut s = FaultSchedule::empty();
        s.push(
            Time::from_secs(1),
            FaultKind::LatentSector {
                ion: 0,
                duration: Time::from_secs(1),
                penalty: Time::from_millis(1),
            },
        );
        s.push(
            Time::from_secs(2),
            FaultKind::MetadataShardOutage {
                shard: 0,
                duration: Time::from_secs(1),
            },
        );
        s.push(
            Time::from_secs(3),
            FaultKind::BurstNodeCrash {
                repair: Time::from_secs(1),
            },
        );
        s.push(
            Time::from_secs(4),
            FaultKind::ComputeNodeCrash {
                node: 0,
                rework: Time::from_secs(1),
            },
        );
        s.push(
            Time::from_secs(5),
            FaultKind::ConsumerCrash {
                stall: Time::from_secs(1),
            },
        );
        // Each storage tier accepts exactly its own class plus
        // compute-crash; the stream tier accepts only consumer-crash.
        for (tier, rejected) in [
            (Tier::Pfs, 3),
            (Tier::Object, 3),
            (Tier::Burst, 3),
            (Tier::Stream, 4),
        ] {
            let problems = s.validate_for_tier(tier, 4, 8);
            assert_eq!(problems.len(), rejected, "{tier}: {problems:?}");
            for p in &problems {
                assert!(p.contains(&format!("valid on {tier}:")), "{p}");
            }
        }
        // The legacy PFS entry point rejects the new tier variants too.
        assert_eq!(s.validate_for(4, 8).len(), 3);
    }

    #[test]
    fn stream_tier_validates_consumer_crashes() {
        let mut s = FaultSchedule::empty();
        s.push(
            Time::from_secs(1),
            FaultKind::ConsumerCrash {
                stall: Time::from_secs(2),
            },
        );
        assert!(s.validate_for_tier(Tier::Stream, 0, 8).is_empty());
        s.push(
            Time::from_secs(3),
            FaultKind::ConsumerCrash { stall: Time::ZERO },
        );
        let problems = s.validate_for_tier(Tier::Stream, 0, 8);
        assert_eq!(problems.len(), 1, "{problems:?}");
        assert!(problems[0].contains("zero stall"));
        // Every storage tier rejects the class by name.
        for tier in [Tier::Pfs, Tier::Object, Tier::Burst] {
            let problems = s.validate_for_tier(tier, 4, 8);
            assert!(
                problems.iter().all(|p| p.contains("consumer-crash")),
                "{tier}: {problems:?}"
            );
            assert_eq!(problems.len(), 2, "{tier}: {problems:?}");
        }
    }

    #[test]
    fn tier_validation_checks_structure_and_shard_bounds() {
        let mut s = FaultSchedule::empty();
        s.push(
            Time::ZERO,
            FaultKind::MetadataShardOutage {
                shard: 7,
                duration: Time::ZERO,
            },
        );
        s.push(
            Time::from_secs(1),
            FaultKind::DegradedService {
                duration: Time::from_secs(1),
                factor: 0.5,
            },
        );
        let problems = s.validate_for_tier(Tier::Object, 4, 8);
        assert_eq!(problems.len(), 3, "{problems:?}");
        assert!(problems[0].contains("metadata shard 7"));

        let mut b = FaultSchedule::empty();
        b.push(
            Time::ZERO,
            FaultKind::DrainStall {
                duration: Time::ZERO,
            },
        );
        b.push(
            Time::from_secs(1),
            FaultKind::BurstNodeCrash { repair: Time::ZERO },
        );
        let problems = b.validate_for_tier(Tier::Burst, 0, 8);
        assert_eq!(problems.len(), 2, "{problems:?}");
    }

    #[test]
    fn tier_labels_and_fault_sets_are_stable() {
        assert_eq!(Tier::Pfs.label(), "pfs");
        assert_eq!(Tier::Object.label(), "object");
        assert_eq!(Tier::Burst.label(), "burst");
        assert_eq!(Tier::Stream.label(), "stream");
        assert_eq!(Tier::Pfs.valid_fault_labels().len(), 6);
        assert_eq!(Tier::Stream.valid_fault_labels(), &["consumer-crash"]);
        let crash = FaultKind::ConsumerCrash {
            stall: Time::from_secs(1),
        };
        assert_eq!(crash.label(), "consumer-crash");
        assert_eq!(crash.ion(), None);
        assert_eq!(crash.shard(), None);
        assert_eq!(crash.compute_node(), None);
        assert!(crash.valid_on(Tier::Stream));
        assert!(!crash.valid_on(Tier::Pfs));
        assert!(Tier::Object
            .valid_fault_labels()
            .contains(&"md-shard-outage"));
        assert!(Tier::Burst.valid_fault_labels().contains(&"burst-crash"));
        for tier in [Tier::Pfs, Tier::Object, Tier::Burst] {
            assert!(tier.valid_fault_labels().contains(&"compute-crash"));
        }
        let outage = FaultKind::MetadataShardOutage {
            shard: 3,
            duration: Time::from_secs(1),
        };
        assert_eq!(outage.label(), "md-shard-outage");
        assert_eq!(outage.shard(), Some(3));
        assert_eq!(outage.ion(), None);
        let crash = FaultKind::BurstNodeCrash {
            repair: Time::from_secs(1),
        };
        assert_eq!(crash.label(), "burst-crash");
        assert_eq!(crash.shard(), None);
    }

    #[test]
    fn validate_for_bounds_compute_crashes() {
        let mut s = FaultSchedule::empty();
        s.push(
            Time::from_secs(1),
            FaultKind::ComputeNodeCrash {
                node: 8,
                rework: Time::from_secs(5),
            },
        );
        s.push(
            Time::from_secs(2),
            FaultKind::ComputeNodeCrash {
                node: 0,
                rework: Time::ZERO,
            },
        );
        // Plain `validate` leaves the pid unbounded but still rejects
        // the zero rework.
        assert_eq!(s.validate(4).len(), 1, "{:?}", s.validate(4));
        let problems = s.validate_for(4, 8);
        assert_eq!(problems.len(), 2, "{problems:?}");
        assert!(problems[0].contains("node 8"));
        assert!(s.validate_for(4, 9).len() == 1);
    }
}
