//! Compiled runtime fault state.
//!
//! [`FaultState`] is the query-optimised form of a [`FaultSchedule`]:
//! per-I/O-node window sets plus a global link timeline, built once
//! before the run starts. Everything is precomputed from declarative
//! data — no RNG draws happen at query time — so two runs over the
//! same schedule see byte-identical disturbances regardless of what
//! else the simulation does.

use crate::schedule::{FaultKind, FaultSchedule};
use sioscope_machine::DiskDisturbance;
use sioscope_sim::{PiecewiseFactor, Time};

/// One compiled compute-node crash, sorted by instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ComputeCrash {
    /// When the node dies.
    pub at: Time,
    /// The pid that dies.
    pub node: u32,
    /// Restart latency charged before the application can rerun.
    pub rework: Time,
}

/// Per-node and global fault windows, ready for instant queries.
#[derive(Debug, Clone)]
pub struct FaultState {
    io_nodes: u32,
    /// Per-ion crash windows `[start, end)` — the node serves nothing.
    down: Vec<Vec<(Time, Time)>>,
    /// Per-ion degraded-array windows (`Time::MAX` end = never rebuilt).
    degraded: Vec<Vec<(Time, Time)>>,
    /// Per-ion latent-sector windows with their per-request penalty.
    latent: Vec<Vec<(Time, Time, Time)>>,
    /// Per-ion service-time slowdown timelines.
    slow: Vec<PiecewiseFactor>,
    /// Global wire-time congestion timeline.
    link: PiecewiseFactor,
    /// Sorted, deduplicated instants at which any window opens or
    /// closes — the fault calendar the simulator interleaves with its
    /// event calendar.
    transitions: Vec<Time>,
    /// Compute-node crashes, sorted by instant. Deliberately *not*
    /// folded into `transitions`: the PFS never observes a compute
    /// crash, so schedules that only add compute crashes leave the
    /// I/O-side simulation byte-identical. The recovery driver reads
    /// this list directly.
    compute_crashes: Vec<ComputeCrash>,
}

impl FaultState {
    /// Compile a schedule against a machine with `io_nodes` I/O nodes.
    /// Events targeting out-of-range nodes are dropped (callers are
    /// expected to have run [`FaultSchedule::validate`] first).
    pub fn new(schedule: &FaultSchedule, io_nodes: u32) -> Self {
        let n = io_nodes as usize;
        let mut state = FaultState {
            io_nodes,
            down: vec![Vec::new(); n],
            degraded: vec![Vec::new(); n],
            latent: vec![Vec::new(); n],
            slow: vec![PiecewiseFactor::identity(); n],
            link: PiecewiseFactor::identity(),
            transitions: Vec::new(),
            compute_crashes: Vec::new(),
        };
        for ev in &schedule.events {
            if ev.kind.ion().is_some_and(|ion| ion >= io_nodes) {
                continue;
            }
            match ev.kind {
                FaultKind::LatentSector {
                    ion,
                    duration,
                    penalty,
                } => {
                    let end = ev.at.saturating_add(duration);
                    state.latent[ion as usize].push((ev.at, end, penalty));
                }
                FaultKind::SpindleFailure { ion, rebuild } => {
                    let end = match rebuild {
                        Some(r) => ev.at.saturating_add(r),
                        None => Time::MAX,
                    };
                    state.degraded[ion as usize].push((ev.at, end));
                }
                FaultKind::IonCrash { ion, restart } => {
                    let end = ev.at.saturating_add(restart);
                    state.down[ion as usize].push((ev.at, end));
                }
                FaultKind::IonSlowdown {
                    ion,
                    duration,
                    factor,
                } => {
                    state.slow[ion as usize].push_window(
                        ev.at,
                        ev.at.saturating_add(duration),
                        factor,
                    );
                }
                FaultKind::LinkCongestion { duration, factor } => {
                    state
                        .link
                        .push_window(ev.at, ev.at.saturating_add(duration), factor);
                }
                FaultKind::ComputeNodeCrash { node, rework } => {
                    state.compute_crashes.push(ComputeCrash {
                        at: ev.at,
                        node,
                        rework,
                    });
                }
                // Object-, burst-, and stream-tier faults are
                // invisible to the PFS; validation rejects them on
                // this tier, and the compiled forms live in
                // [`ObjectFaultState`], [`BurstFaultState`], and the
                // stream driver's stall calendar.
                FaultKind::MetadataShardOutage { .. }
                | FaultKind::DegradedService { .. }
                | FaultKind::DrainStall { .. }
                | FaultKind::BurstNodeCrash { .. }
                | FaultKind::ConsumerCrash { .. } => {}
            }
        }
        state
            .compute_crashes
            .sort_by_key(|c| (c.at, c.node, c.rework));
        state.collect_transitions();
        state
    }

    fn collect_transitions(&mut self) {
        let mut ts = Vec::new();
        let mut push = |t: Time| {
            if t != Time::MAX {
                ts.push(t);
            }
        };
        for windows in self.down.iter().chain(self.degraded.iter()) {
            for &(start, end) in windows {
                push(start);
                push(end);
            }
        }
        for windows in &self.latent {
            for &(start, end, _) in windows {
                push(start);
                push(end);
            }
        }
        for tl in &self.slow {
            for t in tl.transitions() {
                push(t);
            }
        }
        for t in self.link.transitions() {
            push(t);
        }
        ts.sort_unstable();
        ts.dedup();
        self.transitions = ts;
    }

    /// Number of I/O nodes this state was compiled for.
    pub fn io_nodes(&self) -> u32 {
        self.io_nodes
    }

    /// The disk-model disturbance in force on `ion` at instant `t`.
    pub fn disk_disturbance(&self, ion: u32, t: Time) -> DiskDisturbance {
        let Some(i) = self.index(ion) else {
            return DiskDisturbance::NONE;
        };
        let degraded = self.degraded[i].iter().any(|&(s, e)| t >= s && t < e);
        let latent_penalty = self.latent[i]
            .iter()
            .filter(|&&(s, e, _)| t >= s && t < e)
            .fold(Time::ZERO, |acc, &(_, _, p)| acc.saturating_add(p));
        DiskDisturbance {
            degraded,
            slow_factor: self.slow[i].at(t),
            latent_penalty,
        }
    }

    /// `true` iff `ion` is crashed at instant `t`.
    pub fn is_down(&self, ion: u32, t: Time) -> bool {
        self.down_until(ion, t).is_some()
    }

    /// If `ion` is crashed at `t`, the instant it comes back up
    /// (latest end among covering crash windows).
    pub fn down_until(&self, ion: u32, t: Time) -> Option<Time> {
        let i = self.index(ion)?;
        self.down[i]
            .iter()
            .filter(|&&(s, e)| t >= s && t < e)
            .map(|&(_, e)| e)
            .max()
    }

    /// The wire-time congestion factor at instant `t`.
    pub fn link_factor(&self, t: Time) -> f64 {
        self.link.at(t)
    }

    /// The lowest-numbered I/O node that is up at `t` and differs from
    /// `not` — the deterministic re-route target for requests fleeing
    /// a crashed node. `None` when every other node is also down.
    pub fn first_healthy_ion(&self, t: Time, not: u32) -> Option<u32> {
        (0..self.io_nodes).find(|&ion| ion != not && !self.is_down(ion, t))
    }

    /// Instants at which any fault window opens or closes, sorted and
    /// deduplicated.
    pub fn transitions(&self) -> &[Time] {
        &self.transitions
    }

    /// All compute-node crashes, sorted by instant.
    pub fn compute_crashes(&self) -> &[ComputeCrash] {
        &self.compute_crashes
    }

    /// Compute crashes striking inside `[start, end)` — "which crash
    /// windows overlap this attempt".
    pub fn compute_crashes_in(&self, start: Time, end: Time) -> &[ComputeCrash] {
        let lo = self.compute_crashes.partition_point(|c| c.at < start);
        let hi = self.compute_crashes.partition_point(|c| c.at < end);
        &self.compute_crashes[lo..hi]
    }

    /// The first compute crash strictly after `t`, if any.
    pub fn next_compute_crash_after(&self, t: Time) -> Option<&ComputeCrash> {
        let i = self.compute_crashes.partition_point(|c| c.at <= t);
        self.compute_crashes.get(i)
    }

    fn index(&self, ion: u32) -> Option<usize> {
        (ion < self.io_nodes).then_some(ion as usize)
    }
}

/// Compiled runtime form of an *object-tier* fault schedule:
/// per-metadata-shard outage windows plus a global degraded-service
/// timeline. Built once before the run; query-only afterwards, so two
/// runs over the same schedule see byte-identical disturbances.
#[derive(Debug, Clone)]
pub struct ObjectFaultState {
    md_shards: u32,
    /// Per-shard outage windows `[start, end)` — the shard answers
    /// nothing.
    down: Vec<Vec<(Time, Time)>>,
    /// Global PUT/GET service-latency timeline.
    degraded: PiecewiseFactor,
    /// Sorted, deduplicated window boundaries (the fault calendar).
    transitions: Vec<Time>,
    /// Compute-node crashes, sorted; invisible to the store itself,
    /// consumed by the recovery driver (see [`FaultState`]'s field of
    /// the same name for the rationale).
    compute_crashes: Vec<ComputeCrash>,
}

impl ObjectFaultState {
    /// Compile a schedule against a store with `md_shards` metadata
    /// shards. Events targeting out-of-range shards are dropped
    /// (callers run [`FaultSchedule::validate_for_tier`] first).
    pub fn new(schedule: &FaultSchedule, md_shards: u32) -> Self {
        let mut state = ObjectFaultState {
            md_shards,
            down: vec![Vec::new(); md_shards as usize],
            degraded: PiecewiseFactor::identity(),
            transitions: Vec::new(),
            compute_crashes: Vec::new(),
        };
        for ev in &schedule.events {
            match ev.kind {
                FaultKind::MetadataShardOutage { shard, duration } => {
                    if shard < md_shards {
                        state.down[shard as usize].push((ev.at, ev.at.saturating_add(duration)));
                    }
                }
                FaultKind::DegradedService { duration, factor } => {
                    state
                        .degraded
                        .push_window(ev.at, ev.at.saturating_add(duration), factor);
                }
                FaultKind::ComputeNodeCrash { node, rework } => {
                    state.compute_crashes.push(ComputeCrash {
                        at: ev.at,
                        node,
                        rework,
                    });
                }
                _ => {}
            }
        }
        state
            .compute_crashes
            .sort_by_key(|c| (c.at, c.node, c.rework));
        let mut ts = Vec::new();
        let mut push = |t: Time| {
            if t != Time::MAX {
                ts.push(t);
            }
        };
        for windows in &state.down {
            for &(start, end) in windows {
                push(start);
                push(end);
            }
        }
        for t in state.degraded.transitions() {
            push(t);
        }
        ts.sort_unstable();
        ts.dedup();
        state.transitions = ts;
        state
    }

    /// Number of metadata shards this state was compiled for.
    pub fn md_shards(&self) -> u32 {
        self.md_shards
    }

    /// If `shard` is dark at `t`, the instant it comes back (latest
    /// end among covering outage windows).
    pub fn shard_down_until(&self, shard: u32, t: Time) -> Option<Time> {
        let windows = self.down.get(shard as usize)?;
        windows
            .iter()
            .filter(|&&(s, e)| t >= s && t < e)
            .map(|&(_, e)| e)
            .max()
    }

    /// `true` iff `shard` is dark at instant `t`.
    pub fn is_shard_down(&self, shard: u32, t: Time) -> bool {
        self.shard_down_until(shard, t).is_some()
    }

    /// The deterministic replica re-route target: the lowest-numbered
    /// shard that is up at `t` and differs from `not`. `None` when the
    /// whole metadata service is dark.
    pub fn first_healthy_shard(&self, t: Time, not: u32) -> Option<u32> {
        (0..self.md_shards).find(|&s| s != not && !self.is_shard_down(s, t))
    }

    /// The PUT/GET service-latency factor at instant `t`.
    pub fn service_factor(&self, t: Time) -> f64 {
        self.degraded.at(t)
    }

    /// Instants at which any window opens or closes, sorted and
    /// deduplicated.
    pub fn transitions(&self) -> &[Time] {
        &self.transitions
    }

    /// All compute-node crashes, sorted by instant.
    pub fn compute_crashes(&self) -> &[ComputeCrash] {
        &self.compute_crashes
    }
}

/// Compiled runtime form of a *burst-tier* fault schedule: merged
/// drain-stall windows plus burst-node crash windows `(at, repaired)`.
#[derive(Debug, Clone)]
pub struct BurstFaultState {
    /// Drain-stall windows, sorted by start, overlaps merged — so a
    /// forward scan clears them in one pass.
    stalls: Vec<(Time, Time)>,
    /// Burst-node crashes as `[at, repaired)` windows, sorted.
    crashes: Vec<(Time, Time)>,
    /// Sorted, deduplicated window boundaries (the fault calendar).
    transitions: Vec<Time>,
    /// Compute-node crashes, sorted; consumed by the recovery driver.
    compute_crashes: Vec<ComputeCrash>,
}

impl BurstFaultState {
    /// Compile a burst-tier schedule. No node bound: the log is one
    /// host-side device.
    pub fn new(schedule: &FaultSchedule) -> Self {
        let mut stalls = Vec::new();
        let mut crashes = Vec::new();
        let mut compute_crashes = Vec::new();
        for ev in &schedule.events {
            match ev.kind {
                FaultKind::DrainStall { duration } => {
                    stalls.push((ev.at, ev.at.saturating_add(duration)));
                }
                FaultKind::BurstNodeCrash { repair } => {
                    crashes.push((ev.at, ev.at.saturating_add(repair)));
                }
                FaultKind::ComputeNodeCrash { node, rework } => {
                    compute_crashes.push(ComputeCrash {
                        at: ev.at,
                        node,
                        rework,
                    });
                }
                _ => {}
            }
        }
        stalls.sort_unstable();
        let mut merged: Vec<(Time, Time)> = Vec::with_capacity(stalls.len());
        for (s, e) in stalls {
            match merged.last_mut() {
                Some(last) if s <= last.1 => last.1 = last.1.max(e),
                _ => merged.push((s, e)),
            }
        }
        crashes.sort_unstable();
        compute_crashes.sort_by_key(|c| (c.at, c.node, c.rework));
        let mut ts = Vec::new();
        for &(start, end) in merged.iter().chain(crashes.iter()) {
            if start != Time::MAX {
                ts.push(start);
            }
            if end != Time::MAX {
                ts.push(end);
            }
        }
        ts.sort_unstable();
        ts.dedup();
        BurstFaultState {
            stalls: merged,
            crashes,
            transitions: ts,
            compute_crashes,
        }
    }

    /// The earliest instant `>= t` at which the drain channel makes
    /// progress: pushes `t` past every covering stall window. Merged
    /// windows have strictly positive gaps, so clearing one window
    /// never lands inside the next.
    pub fn drain_clear(&self, t: Time) -> Time {
        let mut t = t;
        let mut i = self.stalls.partition_point(|&(_, e)| e <= t);
        while i < self.stalls.len() && self.stalls[i].0 <= t {
            t = self.stalls[i].1;
            i += 1;
        }
        t
    }

    /// Burst-node crashes as `[at, repaired)` windows, sorted.
    pub fn crashes(&self) -> &[(Time, Time)] {
        &self.crashes
    }

    /// If the log node is down (crashed, not yet repaired) at `t`,
    /// the repair instant — the window in which writes fall through
    /// to the inner PFS.
    pub fn log_down_until(&self, t: Time) -> Option<Time> {
        self.crashes
            .iter()
            .filter(|&&(s, e)| t >= s && t < e)
            .map(|&(_, e)| e)
            .max()
    }

    /// Instants at which any window opens or closes, sorted and
    /// deduplicated.
    pub fn transitions(&self) -> &[Time] {
        &self.transitions
    }

    /// All compute-node crashes, sorted by instant.
    pub fn compute_crashes(&self) -> &[ComputeCrash] {
        &self.compute_crashes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::FaultEvent;

    fn sec(s: u64) -> Time {
        Time::from_secs(s)
    }

    fn state(events: Vec<FaultEvent>) -> FaultState {
        FaultState::new(
            &FaultSchedule {
                events,
                engage_when_empty: false,
            },
            4,
        )
    }

    #[test]
    fn empty_schedule_disturbs_nothing() {
        let s = state(vec![]);
        for ion in 0..4 {
            assert!(s.disk_disturbance(ion, sec(5)).is_none());
            assert!(!s.is_down(ion, sec(5)));
        }
        assert_eq!(s.link_factor(sec(5)), 1.0);
        assert!(s.transitions().is_empty());
        assert_eq!(s.io_nodes(), 4);
    }

    #[test]
    fn crash_window_reports_restart_instant() {
        let s = state(vec![FaultEvent {
            at: sec(10),
            kind: FaultKind::IonCrash {
                ion: 2,
                restart: sec(5),
            },
        }]);
        assert!(!s.is_down(2, sec(9)));
        assert_eq!(s.down_until(2, sec(10)), Some(sec(15)));
        assert_eq!(s.down_until(2, sec(14)), Some(sec(15)));
        assert!(!s.is_down(2, sec(15)));
        assert!(!s.is_down(1, sec(12)));
        assert_eq!(s.first_healthy_ion(sec(12), 2), Some(0));
        assert_eq!(s.transitions(), &[sec(10), sec(15)]);
    }

    #[test]
    fn permanent_spindle_failure_never_ends() {
        let s = state(vec![FaultEvent {
            at: Time::ZERO,
            kind: FaultKind::SpindleFailure {
                ion: 0,
                rebuild: None,
            },
        }]);
        assert!(s.disk_disturbance(0, Time::ZERO).degraded);
        assert!(s.disk_disturbance(0, Time::from_secs(1_000_000)).degraded);
        assert!(!s.disk_disturbance(1, sec(1)).degraded);
        // MAX never shows up as a transition instant.
        assert_eq!(s.transitions(), &[Time::ZERO]);
    }

    #[test]
    fn rebuild_restores_the_array() {
        let s = state(vec![FaultEvent {
            at: sec(2),
            kind: FaultKind::SpindleFailure {
                ion: 1,
                rebuild: Some(sec(6)),
            },
        }]);
        assert!(!s.disk_disturbance(1, sec(1)).degraded);
        assert!(s.disk_disturbance(1, sec(4)).degraded);
        assert!(!s.disk_disturbance(1, sec(8)).degraded);
    }

    #[test]
    fn latent_penalties_accumulate_and_slowdowns_compose() {
        let s = state(vec![
            FaultEvent {
                at: sec(0),
                kind: FaultKind::LatentSector {
                    ion: 3,
                    duration: sec(10),
                    penalty: Time::from_millis(200),
                },
            },
            FaultEvent {
                at: sec(5),
                kind: FaultKind::LatentSector {
                    ion: 3,
                    duration: sec(10),
                    penalty: Time::from_millis(300),
                },
            },
            FaultEvent {
                at: sec(0),
                kind: FaultKind::IonSlowdown {
                    ion: 3,
                    duration: sec(20),
                    factor: 2.0,
                },
            },
        ]);
        let early = s.disk_disturbance(3, sec(2));
        assert_eq!(early.latent_penalty, Time::from_millis(200));
        assert_eq!(early.slow_factor, 2.0);
        let overlap = s.disk_disturbance(3, sec(7));
        assert_eq!(overlap.latent_penalty, Time::from_millis(500));
        let late = s.disk_disturbance(3, sec(16));
        assert_eq!(late.latent_penalty, Time::ZERO);
        assert_eq!(late.slow_factor, 2.0);
    }

    #[test]
    fn link_congestion_is_global() {
        let s = state(vec![FaultEvent {
            at: sec(1),
            kind: FaultKind::LinkCongestion {
                duration: sec(2),
                factor: 3.0,
            },
        }]);
        assert_eq!(s.link_factor(sec(0)), 1.0);
        assert_eq!(s.link_factor(sec(2)), 3.0);
        assert_eq!(s.link_factor(sec(3)), 1.0);
    }

    #[test]
    fn all_nodes_down_means_no_reroute_target() {
        let s = FaultState::new(
            &FaultSchedule {
                events: (0..2)
                    .map(|ion| FaultEvent {
                        at: Time::ZERO,
                        kind: FaultKind::IonCrash {
                            ion,
                            restart: sec(10),
                        },
                    })
                    .collect(),
                engage_when_empty: false,
            },
            2,
        );
        assert_eq!(s.first_healthy_ion(sec(5), 0), None);
        assert_eq!(s.first_healthy_ion(sec(11), 0), Some(1));
    }

    #[test]
    fn compute_crashes_compile_sorted_and_invisible_to_pfs() {
        let s = state(vec![
            FaultEvent {
                at: sec(30),
                kind: FaultKind::ComputeNodeCrash {
                    node: 5,
                    rework: sec(2),
                },
            },
            FaultEvent {
                at: sec(10),
                kind: FaultKind::ComputeNodeCrash {
                    node: 1,
                    rework: sec(3),
                },
            },
        ]);
        // The PFS-facing view is untouched: no transitions, no windows.
        assert!(s.transitions().is_empty());
        assert!(!s.is_down(1, sec(11)));
        assert!(s.disk_disturbance(1, sec(11)).is_none());
        // The crash list is sorted by instant.
        let crashes = s.compute_crashes();
        assert_eq!(crashes.len(), 2);
        assert_eq!(
            crashes[0],
            ComputeCrash {
                at: sec(10),
                node: 1,
                rework: sec(3),
            }
        );
        assert_eq!(crashes[1].at, sec(30));
        // Interval and successor queries.
        assert_eq!(s.compute_crashes_in(sec(0), sec(10)).len(), 0);
        assert_eq!(s.compute_crashes_in(sec(10), sec(11)).len(), 1);
        assert_eq!(s.compute_crashes_in(sec(0), sec(100)).len(), 2);
        assert_eq!(s.next_compute_crash_after(Time::ZERO).unwrap().at, sec(10));
        assert_eq!(s.next_compute_crash_after(sec(10)).unwrap().at, sec(30));
        assert!(s.next_compute_crash_after(sec(30)).is_none());
    }

    #[test]
    fn out_of_range_targets_are_dropped() {
        let s = state(vec![FaultEvent {
            at: sec(1),
            kind: FaultKind::IonCrash {
                ion: 99,
                restart: sec(5),
            },
        }]);
        assert!(s.transitions().is_empty());
        assert!(!s.is_down(99, sec(2)));
        assert!(s.disk_disturbance(99, sec(2)).is_none());
    }

    fn object_state(events: Vec<FaultEvent>) -> ObjectFaultState {
        ObjectFaultState::new(
            &FaultSchedule {
                events,
                engage_when_empty: false,
            },
            4,
        )
    }

    #[test]
    fn object_state_compiles_shard_outages_and_degraded_windows() {
        let s = object_state(vec![
            FaultEvent {
                at: sec(10),
                kind: FaultKind::MetadataShardOutage {
                    shard: 1,
                    duration: sec(5),
                },
            },
            FaultEvent {
                at: sec(20),
                kind: FaultKind::DegradedService {
                    duration: sec(10),
                    factor: 3.0,
                },
            },
        ]);
        assert_eq!(s.md_shards(), 4);
        assert!(!s.is_shard_down(1, sec(9)));
        assert_eq!(s.shard_down_until(1, sec(10)), Some(sec(15)));
        assert_eq!(s.shard_down_until(1, sec(14)), Some(sec(15)));
        assert!(!s.is_shard_down(1, sec(15)));
        assert!(!s.is_shard_down(0, sec(12)));
        assert_eq!(s.first_healthy_shard(sec(12), 1), Some(0));
        assert_eq!(s.service_factor(sec(19)), 1.0);
        assert_eq!(s.service_factor(sec(25)), 3.0);
        assert_eq!(s.service_factor(sec(30)), 1.0);
        assert_eq!(s.transitions(), &[sec(10), sec(15), sec(20), sec(30)]);
        // PFS-tier events never reach the object state.
        let t = object_state(vec![FaultEvent {
            at: sec(1),
            kind: FaultKind::IonCrash {
                ion: 0,
                restart: sec(5),
            },
        }]);
        assert!(t.transitions().is_empty());
    }

    #[test]
    fn object_state_drops_out_of_range_shards_and_sorts_crashes() {
        let s = object_state(vec![
            FaultEvent {
                at: sec(1),
                kind: FaultKind::MetadataShardOutage {
                    shard: 99,
                    duration: sec(5),
                },
            },
            FaultEvent {
                at: sec(9),
                kind: FaultKind::ComputeNodeCrash {
                    node: 2,
                    rework: sec(1),
                },
            },
            FaultEvent {
                at: sec(3),
                kind: FaultKind::ComputeNodeCrash {
                    node: 0,
                    rework: sec(1),
                },
            },
        ]);
        // Out-of-range shard dropped; compute crashes sorted and kept
        // out of the transition calendar.
        assert!(s.transitions().is_empty());
        assert_eq!(s.compute_crashes().len(), 2);
        assert_eq!(s.compute_crashes()[0].at, sec(3));
        // Every shard dark => no re-route target.
        let dark = object_state(
            (0..4)
                .map(|shard| FaultEvent {
                    at: Time::ZERO,
                    kind: FaultKind::MetadataShardOutage {
                        shard,
                        duration: sec(10),
                    },
                })
                .collect(),
        );
        assert_eq!(dark.first_healthy_shard(sec(5), 0), None);
        assert_eq!(dark.first_healthy_shard(sec(10), 0), Some(1));
    }

    fn burst_state(events: Vec<FaultEvent>) -> BurstFaultState {
        BurstFaultState::new(&FaultSchedule {
            events,
            engage_when_empty: false,
        })
    }

    #[test]
    fn burst_state_merges_stalls_and_clears_forward() {
        let s = burst_state(vec![
            FaultEvent {
                at: sec(10),
                kind: FaultKind::DrainStall { duration: sec(5) },
            },
            FaultEvent {
                at: sec(12),
                kind: FaultKind::DrainStall { duration: sec(8) },
            },
            FaultEvent {
                at: sec(30),
                kind: FaultKind::DrainStall { duration: sec(2) },
            },
        ]);
        // Overlapping [10,15) and [12,20) merge into [10,20).
        assert_eq!(s.drain_clear(sec(5)), sec(5));
        assert_eq!(s.drain_clear(sec(10)), sec(20));
        assert_eq!(s.drain_clear(sec(19)), sec(20));
        assert_eq!(s.drain_clear(sec(20)), sec(20));
        assert_eq!(s.drain_clear(sec(31)), sec(32));
        assert_eq!(s.transitions(), &[sec(10), sec(20), sec(30), sec(32)]);
    }

    #[test]
    fn burst_state_reports_crash_windows() {
        let s = burst_state(vec![FaultEvent {
            at: sec(40),
            kind: FaultKind::BurstNodeCrash { repair: sec(6) },
        }]);
        assert_eq!(s.crashes(), &[(sec(40), sec(46))]);
        assert_eq!(s.log_down_until(sec(39)), None);
        assert_eq!(s.log_down_until(sec(40)), Some(sec(46)));
        assert_eq!(s.log_down_until(sec(45)), Some(sec(46)));
        assert_eq!(s.log_down_until(sec(46)), None);
        assert_eq!(s.transitions(), &[sec(40), sec(46)]);
        assert_eq!(s.drain_clear(sec(41)), sec(41));
    }
}
