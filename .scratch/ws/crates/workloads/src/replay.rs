//! Trace-driven workload replay.
//!
//! Characterization studies like the paper's produce *traces*; the
//! natural next step (and the basis of the benchmark-derivation plan
//! of §7) is replaying a captured trace against a different file
//! system or machine configuration. [`from_trace`] reconstructs a
//! runnable [`Workload`] from a Pablo-style event trace:
//!
//! * each process's operation sequence is replayed in order, with the
//!   inter-operation gaps reproduced as compute time (the
//!   "think time" the application spent between calls);
//! * collective operations (`gopen`, `setiomode`, and the collective
//!   data modes) are re-grouped by their completion instant — members
//!   of one collective round all finish at related times in the
//!   original trace;
//! * seeks replay to their recorded offsets, reads/writes to their
//!   recorded sizes.
//!
//! ## Fidelity limits
//!
//! The trace records *what the file system did*, not every piece of
//! client state: buffering toggles (`SetBuffering`) are recorded as
//! `iomode` events indistinguishable from `setiomode`; singleton
//! `iomode` rounds (which is what a buffering toggle looks like) are
//! therefore dropped rather than replayed as a mis-sized collective.
//! M_RECORD record sizes are inferred from the data requests that
//! follow. Replays reproduce the request stream exactly and the
//! timing approximately.

use crate::program::{FileSpec, Stmt, Workload};
use sioscope_pfs::mode::OsRelease;
use sioscope_pfs::{IoMode, IoOp, OpKind};
use sioscope_sim::Time;
use sioscope_trace::IoEvent;
use std::collections::{BTreeMap, HashMap};

/// Reconstruction failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayError {
    /// The trace is empty.
    EmptyTrace,
    /// An M_RECORD round had no data request to infer the record size
    /// from.
    NoRecordSize {
        /// The file whose record size could not be inferred.
        file: u32,
    },
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::EmptyTrace => write!(f, "cannot replay an empty trace"),
            ReplayError::NoRecordSize { file } => {
                write!(f, "file {file}: M_RECORD round with no data request")
            }
        }
    }
}

impl std::error::Error for ReplayError {}

/// Reconstruct a workload from a trace. `file_sizes` supplies the
/// initial size of each pre-existing file (index = file id); missing
/// entries are derived from the highest offset read before the first
/// write.
pub fn from_trace(
    events: &[IoEvent],
    file_sizes: &BTreeMap<u32, u64>,
) -> Result<Workload, ReplayError> {
    if events.is_empty() {
        return Err(ReplayError::EmptyTrace);
    }
    let nodes = events.iter().map(|e| e.pid.0).max().expect("non-empty") + 1;
    let n_files = events.iter().map(|e| e.file.0).max().expect("non-empty") + 1;

    // Group collective opens/mode-changes by (file, kind, finish):
    // all members of one round complete at the same instant.
    let mut group_sizes: HashMap<(u32, u8, u64), u32> = HashMap::new();
    for e in events {
        if matches!(e.kind, OpKind::Gopen | OpKind::Iomode) {
            *group_sizes
                .entry((e.file.0, e.kind as u8, e.end().as_nanos()))
                .or_insert(0) += 1;
        }
    }

    // Infer M_RECORD record sizes per file: the size of data requests
    // made under M_RECORD.
    let mut record_sizes: HashMap<u32, u64> = HashMap::new();
    for e in events {
        if e.mode == IoMode::MRecord && e.is_data() && e.bytes > 0 {
            record_sizes.entry(e.file.0).or_insert(e.bytes);
        }
    }

    // Derive input-file sizes where not supplied: bytes visible to
    // reads (max offset + len over read events).
    let mut derived_sizes: BTreeMap<u32, u64> = file_sizes.clone();
    for e in events {
        if e.kind == OpKind::Read && e.bytes > 0 {
            let end = e.offset + e.bytes;
            let entry = derived_sizes.entry(e.file.0).or_insert(0);
            *entry = (*entry).max(end);
        }
    }

    // Per-pid event sequences, trace order.
    let mut per_pid: Vec<Vec<&IoEvent>> = vec![Vec::new(); nodes as usize];
    for e in events {
        per_pid[e.pid.index()].push(e);
    }
    for seq in &mut per_pid {
        seq.sort_by_key(|e| (e.start, e.end()));
    }

    let mut programs = Vec::with_capacity(nodes as usize);
    for seq in &per_pid {
        let mut prog = Vec::with_capacity(seq.len() * 2);
        let mut cursor = Time::ZERO;
        for e in seq {
            // Reproduce the application's think time between calls.
            if e.start > cursor {
                prog.push(Stmt::Compute(e.start - cursor));
            }
            let op = match e.kind {
                OpKind::Open => IoOp::Open,
                OpKind::Gopen => IoOp::Gopen {
                    group: group_sizes[&(e.file.0, e.kind as u8, e.end().as_nanos())],
                    mode: e.mode,
                    record_size: if e.mode == IoMode::MRecord {
                        Some(
                            record_sizes
                                .get(&e.file.0)
                                .copied()
                                .ok_or(ReplayError::NoRecordSize { file: e.file.0 })?,
                        )
                    } else {
                        None
                    },
                },
                OpKind::Iomode => {
                    let group = group_sizes[&(e.file.0, e.kind as u8, e.end().as_nanos())];
                    if group <= 1 {
                        // A buffering toggle (or a degenerate
                        // single-member setiomode): not replayable as
                        // a collective — skip, keeping the think-time
                        // cursor faithful.
                        cursor = e.end();
                        continue;
                    }
                    IoOp::SetIoMode {
                        group,
                        mode: e.mode,
                        record_size: if e.mode == IoMode::MRecord {
                            Some(
                                record_sizes
                                    .get(&e.file.0)
                                    .copied()
                                    .ok_or(ReplayError::NoRecordSize { file: e.file.0 })?,
                            )
                        } else {
                            None
                        },
                    }
                }
                OpKind::Read => IoOp::Read { size: e.bytes },
                OpKind::Write => IoOp::Write { size: e.bytes },
                OpKind::Seek => IoOp::Seek { offset: e.offset },
                OpKind::Flush => IoOp::Flush,
                OpKind::Close => IoOp::Close,
            };
            prog.push(Stmt::Io { file: e.file.0, op });
            // The replayed call re-executes under the target
            // configuration; advancing the cursor to the original end
            // keeps gap reconstruction faithful to the source trace.
            cursor = e.end();
        }
        programs.push(prog);
    }

    let files = (0..n_files)
        .map(|i| FileSpec {
            name: format!("replay/file{i}"),
            initial_size: derived_sizes.get(&i).copied().unwrap_or(0),
        })
        .collect();

    Ok(Workload {
        name: "replay".into(),
        version: "replay".into(),
        os: OsRelease::Osf13,
        nodes,
        files,
        programs,
        phases: vec![],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sioscope_sim::{FileId, Pid};

    #[allow(clippy::too_many_arguments)]
    fn ev(
        pid: u32,
        file: u32,
        kind: OpKind,
        mode: IoMode,
        start_ms: u64,
        dur_ms: u64,
        bytes: u64,
        offset: u64,
    ) -> IoEvent {
        IoEvent {
            pid: Pid(pid),
            file: FileId(file),
            kind,
            start: Time::from_millis(start_ms),
            duration: Time::from_millis(dur_ms),
            bytes,
            offset,
            mode,
        }
    }

    #[test]
    fn empty_trace_rejected() {
        assert_eq!(
            from_trace(&[], &BTreeMap::new()).unwrap_err(),
            ReplayError::EmptyTrace
        );
    }

    #[test]
    fn single_process_sequence_reconstructed() {
        let events = vec![
            ev(0, 0, OpKind::Open, IoMode::MUnix, 0, 10, 0, 0),
            ev(0, 0, OpKind::Read, IoMode::MUnix, 20, 5, 4096, 0),
            ev(0, 0, OpKind::Close, IoMode::MUnix, 30, 1, 0, 0),
        ];
        let w = from_trace(&events, &BTreeMap::new()).expect("replays");
        assert_eq!(w.nodes, 1);
        assert!(w.validate().is_empty());
        // Open, think-gap, read, think-gap, close.
        let ops: Vec<&Stmt> = w.programs[0].iter().collect();
        assert!(matches!(ops[0], Stmt::Io { op: IoOp::Open, .. }));
        assert!(matches!(ops[1], Stmt::Compute(t) if *t == Time::from_millis(10)));
        assert!(matches!(
            ops[2],
            Stmt::Io {
                op: IoOp::Read { size: 4096 },
                ..
            }
        ));
        // Derived input size covers the read.
        assert_eq!(w.files[0].initial_size, 4096);
    }

    #[test]
    fn collective_groups_recovered_by_finish_time() {
        // Two pids gopen the same file, completing together.
        let events = vec![
            ev(0, 0, OpKind::Gopen, IoMode::MAsync, 0, 30, 0, 0),
            ev(1, 0, OpKind::Gopen, IoMode::MAsync, 10, 20, 0, 0),
        ];
        let w = from_trace(&events, &BTreeMap::new()).expect("replays");
        assert_eq!(w.nodes, 2);
        for prog in &w.programs {
            let gopen = prog.iter().find_map(|s| match s {
                Stmt::Io {
                    op: IoOp::Gopen { group, mode, .. },
                    ..
                } => Some((*group, *mode)),
                _ => None,
            });
            assert_eq!(gopen, Some((2, IoMode::MAsync)));
        }
    }

    #[test]
    fn record_size_inferred_from_data_requests() {
        let events = vec![
            ev(0, 0, OpKind::Gopen, IoMode::MRecord, 0, 10, 0, 0),
            ev(0, 0, OpKind::Read, IoMode::MRecord, 20, 5, 131072, 0),
        ];
        let w = from_trace(&events, &BTreeMap::new()).expect("replays");
        let rec = w.programs[0].iter().find_map(|s| match s {
            Stmt::Io {
                op: IoOp::Gopen { record_size, .. },
                ..
            } => *record_size,
            _ => None,
        });
        assert_eq!(rec, Some(131072));
    }

    #[test]
    fn record_mode_without_data_is_an_error() {
        let events = vec![ev(0, 0, OpKind::Gopen, IoMode::MRecord, 0, 10, 0, 0)];
        assert_eq!(
            from_trace(&events, &BTreeMap::new()).unwrap_err(),
            ReplayError::NoRecordSize { file: 0 }
        );
    }

    #[test]
    fn singleton_iomode_rounds_are_dropped() {
        let events = vec![
            ev(0, 0, OpKind::Open, IoMode::MUnix, 0, 5, 0, 0),
            // A buffering toggle: a lone iomode event.
            ev(0, 0, OpKind::Iomode, IoMode::MUnix, 10, 1, 0, 0),
            ev(0, 0, OpKind::Read, IoMode::MUnix, 20, 5, 64, 0),
        ];
        let w = from_trace(&events, &BTreeMap::new()).expect("replays");
        let has_iomode = w.programs[0].iter().any(|s| {
            matches!(
                s,
                Stmt::Io {
                    op: IoOp::SetIoMode { .. },
                    ..
                }
            )
        });
        assert!(!has_iomode, "singleton iomode must be dropped");
        // The read survives.
        assert!(w.programs[0].iter().any(|s| matches!(
            s,
            Stmt::Io {
                op: IoOp::Read { .. },
                ..
            }
        )));
    }

    #[test]
    fn supplied_file_sizes_take_precedence() {
        let events = vec![ev(0, 0, OpKind::Read, IoMode::MUnix, 0, 1, 100, 0)];
        let mut sizes = BTreeMap::new();
        sizes.insert(0u32, 1 << 20);
        let w = from_trace(&events, &sizes).expect("replays");
        assert_eq!(w.files[0].initial_size, 1 << 20);
    }
}
