//! PRISM — the 3-D spectral-element Navier–Stokes solver (§5).
//!
//! Three I/O phases:
//!
//! 1. **Phase One** — three input files initialize the system
//!    (compulsory I/O): a *parameter* file (Reynolds number, mesh
//!    elements, boundary conditions — small text records), a *restart*
//!    file (a tiny header plus a body accessed in 155,584-byte
//!    requests), and a *connectivity* file (text in versions A/B,
//!    binary in C).
//! 2. **Phase Two** — time integration with checkpointing: node zero
//!    writes a measurement file (lift/drag/viscous forces, kinetic
//!    energy) and three flow-statistics files (velocity, vorticity,
//!    turbulent stresses), plus history points.
//! 3. **Phase Three** — results transform back to physical space and
//!    the field file is written (compulsory I/O).
//!
//! Version differences (Table 4; all versions under OSF/1 R1.3):
//!
//! | Phase | A | B | C |
//! |---|---|---|---|
//! | One   | all nodes, M_UNIX | P: M_GLOBAL, R: M_GLOBAL(header)+M_RECORD(body), C: M_GLOBAL | P: M_GLOBAL, R: M_ASYNC (buffering disabled), C: M_GLOBAL |
//! | Two   | node zero, M_UNIX | node zero, M_UNIX | node zero, M_UNIX |
//! | Three | node zero, M_UNIX | all nodes, M_ASYNC | all nodes, M_ASYNC |
//!
//! Versions A/B reach their modes through `open` + `setiomode` (the
//! expensive path Table 5 shows); version C uses `gopen`.

use crate::builder::ProgramBuilder;
use crate::checkpoint::{young_interval, CheckpointPolicy, Recoverable};
use crate::program::{FileSpec, PhaseDesc, Stmt, Workload};
use serde::{Deserialize, Serialize};
use sioscope_pfs::mode::OsRelease;
use sioscope_pfs::{IoMode, IoOp};
use sioscope_sim::{DetRng, Time};

// Workload file indices.
const PARAM: u32 = 0;
const RESTART: u32 = 1;
const CONN: u32 = 2;
const MEASURE: u32 = 3;
const STATS0: u32 = 4; // 4,5,6: velocity / vorticity / stresses
const FIELD: u32 = 7;
const HISTORY: u32 = 8;

/// The three PRISM code versions of §5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PrismVersion {
    /// Standard UNIX I/O everywhere; node zero administers phases two
    /// and three.
    A,
    /// Collective initialization reads (M_GLOBAL / M_RECORD via
    /// `setiomode`), concurrent field writes (M_ASYNC).
    B,
    /// `gopen` everywhere; restart file via M_ASYNC with system
    /// buffering disabled (the small-read pathology of §5.1/§5.4).
    C,
}

impl PrismVersion {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            PrismVersion::A => "A",
            PrismVersion::B => "B",
            PrismVersion::C => "C",
        }
    }

    /// All versions in order.
    pub fn all() -> [PrismVersion; 3] {
        [PrismVersion::A, PrismVersion::B, PrismVersion::C]
    }

    /// Compute inflation relative to version C (Figure 6's ~23%
    /// execution-time reduction includes code and instrumentation
    /// improvements beyond I/O).
    pub fn compute_scale(self) -> f64 {
        match self {
            PrismVersion::A => 1.18,
            PrismVersion::B => 1.05,
            PrismVersion::C => 1.0,
        }
    }
}

/// Full PRISM workload configuration. The paper's test problem: 201
/// mesh elements, Reynolds number 1000, 1250 time steps with
/// checkpoints every 250 steps, on 64 of the Paragon's nodes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PrismConfig {
    /// Code version.
    pub version: PrismVersion,
    /// Compute nodes (paper: 64).
    pub nodes: u32,
    /// Spectral-element count (201 in the test problem).
    pub elements: u32,
    /// Time steps (1250).
    pub steps: u32,
    /// Checkpoint interval in steps (250).
    pub checkpoint_every: u32,
    /// RNG seed.
    pub seed: u64,
    /// Request-stream knobs.
    pub knobs: PrismKnobs,
}

/// Calibration knobs for the PRISM request stream.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PrismKnobs {
    /// Parameter-file size.
    pub param_bytes: u64,
    /// Parameter-file small-read size (paper: < 40 bytes).
    pub param_read: u64,
    /// Parameter-file reads per reader.
    pub param_reads: u32,
    /// Restart-header size.
    pub header_bytes: u64,
    /// Restart-header read size (< 40 bytes).
    pub header_read: u64,
    /// Restart-header reads per reader.
    pub header_reads: u32,
    /// Restart-body record (paper: 155,584 bytes).
    pub body_record: u64,
    /// Body records per node ("a few requests of 155,584 bytes each")
    /// in versions B and C, where each node reads only its slice.
    pub body_records_per_node: u32,
    /// Body records each node reads in version A: without M_RECORD
    /// partitioning, every node redundantly scans a large prefix of
    /// the restart body.
    pub body_reads_a: u32,
    /// Connectivity-file size.
    pub conn_bytes: u64,
    /// Connectivity text-read size (versions A/B).
    pub conn_text_read: u64,
    /// Connectivity text reads per reader.
    pub conn_text_reads: u32,
    /// Connectivity binary-read size (version C).
    pub conn_bin_read: u64,
    /// Connectivity binary reads per reader (version C).
    pub conn_bin_reads: u32,
    /// Measurement record written by node zero.
    pub measurement_write: u64,
    /// Steps between measurement writes.
    pub measurement_every: u32,
    /// History-point record size.
    pub history_write: u64,
    /// Steps between history writes.
    pub history_every: u32,
    /// Per-statistics-file write size at each checkpoint (mean,
    /// variance, skewness, flatness per field).
    pub stats_write: u64,
    /// Writes per statistics file per checkpoint.
    pub stats_writes: u32,
    /// Compute time per integration step (before version scaling).
    pub step_compute: Time,
    /// Compute during initialization.
    pub init_compute: Time,
    /// Compute during post-processing.
    pub final_compute: Time,
}

impl PrismKnobs {
    /// The paper's 201-element test problem.
    pub fn test_problem() -> Self {
        PrismKnobs {
            param_bytes: 8 * 1024,
            param_read: 36,
            param_reads: 120,
            header_bytes: 160,
            header_read: 36,
            header_reads: 4,
            body_record: 155_584,
            body_records_per_node: 3,
            body_reads_a: 24,
            conn_bytes: 256 * 1024,
            conn_text_read: 60,
            conn_text_reads: 160,
            conn_bin_read: 24 * 1024,
            conn_bin_reads: 10,
            measurement_write: 96,
            measurement_every: 5,
            history_write: 240,
            history_every: 25,
            stats_write: 8 * 1024,
            stats_writes: 6,
            step_compute: Time::from_secs_f64(5.5),
            init_compute: Time::from_secs(40),
            final_compute: Time::from_secs(60),
        }
    }
}

impl PrismConfig {
    /// The paper's configuration for a given version.
    pub fn test_problem(version: PrismVersion) -> Self {
        PrismConfig {
            version,
            nodes: 64,
            elements: 201,
            steps: 1250,
            checkpoint_every: 250,
            seed: 0x9815,
            knobs: PrismKnobs::test_problem(),
        }
    }

    /// Scaled-down configuration for fast tests.
    pub fn tiny(version: PrismVersion) -> Self {
        let mut knobs = PrismKnobs::test_problem();
        knobs.param_reads = 10;
        knobs.conn_text_reads = 10;
        knobs.step_compute = Time::from_millis(50);
        knobs.init_compute = Time::from_secs(1);
        knobs.final_compute = Time::from_secs(1);
        PrismConfig {
            version,
            nodes: 8,
            elements: 24,
            steps: 20,
            checkpoint_every: 5,
            seed: 11,
            knobs,
        }
    }

    /// Number of checkpoints ("a total of five checkpoints" for the
    /// test problem).
    pub fn checkpoints(&self) -> u32 {
        self.steps / self.checkpoint_every
    }

    /// Phase-one initialization reads for node `pid` (shared between
    /// [`PrismConfig::build`] and [`PrismConfig::restart_prologue`]).
    /// RNG-free: the statement sequence is a pure function of the
    /// configuration.
    fn phase_one(&self, b: &mut ProgramBuilder, pid: u32) {
        let n = self.nodes;
        let k = &self.knobs;
        match self.version {
            PrismVersion::A => {
                // All nodes, standard UNIX I/O, fully serialized.
                b.open(PARAM);
                b.read_n(PARAM, k.param_reads, k.param_read);
                b.close(PARAM);

                b.open(RESTART);
                b.read_n(RESTART, k.header_reads, k.header_read);
                // Without M_RECORD partitioning every node scans a
                // large prefix of the body redundantly; the seek
                // past the header pays the shared-file server
                // round trip.
                b.seek(RESTART, k.header_bytes);
                b.read_n(RESTART, k.body_reads_a, k.body_record);
                b.close(RESTART);

                b.open(CONN);
                b.read_n(CONN, k.conn_text_reads, k.conn_text_read);
                b.close(CONN);
            }
            PrismVersion::B => {
                // open + setiomode, then collective reads.
                b.open(PARAM);
                b.setiomode(PARAM, n, IoMode::MGlobal);
                b.read_n(PARAM, k.param_reads, k.param_read);
                b.close(PARAM);

                // Restart: header via M_GLOBAL, body via M_RECORD.
                b.open(RESTART);
                b.setiomode(RESTART, n, IoMode::MGlobal);
                b.read_n(RESTART, k.header_reads, k.header_read);
                b.io(
                    RESTART,
                    IoOp::SetIoMode {
                        group: n,
                        mode: IoMode::MRecord,
                        record_size: Some(k.body_record),
                    },
                );
                b.read_n(RESTART, k.body_records_per_node, k.body_record);
                b.close(RESTART);

                b.open(CONN);
                b.setiomode(CONN, n, IoMode::MGlobal);
                b.read_n(CONN, k.conn_text_reads, k.conn_text_read);
                b.close(CONN);
            }
            PrismVersion::C => {
                // gopen everywhere; restart via M_ASYNC with
                // system buffering disabled.
                b.gopen(PARAM, n, IoMode::MGlobal);
                b.read_n(PARAM, k.param_reads, k.param_read);
                b.close(PARAM);

                b.gopen(RESTART, n, IoMode::MAsync);
                b.set_buffering(RESTART, false);
                b.read_n(RESTART, k.header_reads, k.header_read);
                let slice = k.header_bytes
                    + u64::from(pid) * u64::from(k.body_records_per_node) * k.body_record;
                b.seek(RESTART, slice);
                b.read_n(RESTART, k.body_records_per_node, k.body_record);
                b.close(RESTART);

                // Connectivity read as binary data: far fewer,
                // larger requests (§5.2).
                b.gopen(CONN, n, IoMode::MGlobal);
                b.read_n(CONN, k.conn_bin_reads, k.conn_bin_read);
                b.close(CONN);
            }
        }
    }

    /// The statements a restarted PRISM run executes before resuming
    /// from a checkpoint: the full phase-one read sequence through the
    /// real PFS path (parameter file, restart header plus the
    /// 155,584-byte body records, connectivity) followed by the
    /// initialization compute. One entry per node; RNG-free, so every
    /// replay attempt issues the identical prologue.
    pub fn restart_prologue(&self) -> Vec<Vec<Stmt>> {
        let scale = self.version.compute_scale();
        (0..self.nodes)
            .map(|pid| {
                let mut b = ProgramBuilder::new();
                self.phase_one(&mut b, pid);
                b.compute(self.knobs.init_compute.scale(scale));
                b.build()
            })
            .collect()
    }

    /// Snap a desired checkpoint interval (in integration steps) to
    /// the divisor of [`PrismConfig::steps`] nearest to it (ties go to
    /// the smaller divisor), so the rebuilt configuration always
    /// passes [`PrismConfig::validate`].
    pub fn snap_interval(&self, desired: u32) -> u32 {
        let desired = desired.max(1);
        (1..=self.steps)
            .filter(|d| self.steps.is_multiple_of(*d))
            .min_by_key(|d| (d.abs_diff(desired), *d))
            .unwrap_or(self.steps.max(1))
    }

    /// Build the workload under a checkpoint policy. For
    /// [`CheckpointPolicy::None`] the application I/O is identical to
    /// [`PrismConfig::build`] with no commit markers (every crash
    /// replays from the start). Fixed and Young policies rebuild the
    /// integration loop at the snapped interval and mark a commit
    /// after every checkpoint barrier; the checkpoint payload is the
    /// three flow-statistics files.
    pub fn recoverable(&self, policy: CheckpointPolicy) -> Recoverable {
        match policy {
            CheckpointPolicy::None => Recoverable::plain(self.build()),
            CheckpointPolicy::Fixed { interval } => {
                self.recoverable_every(self.snap_interval(interval))
            }
            CheckpointPolicy::Young {
                checkpoint_cost,
                mtbf,
            } => {
                let step = self.knobs.step_compute.scale(self.version.compute_scale());
                let ideal = young_interval(checkpoint_cost, mtbf);
                let steps = if step.is_zero() {
                    1.0
                } else {
                    (ideal.as_secs_f64() / step.as_secs_f64()).round()
                };
                self.recoverable_every(
                    self.snap_interval(steps.clamp(1.0, f64::from(self.steps)) as u32),
                )
            }
        }
    }

    fn recoverable_every(&self, every: u32) -> Recoverable {
        let mut cfg = self.clone();
        cfg.checkpoint_every = every;
        let prologue = cfg.restart_prologue();
        Recoverable::annotate(
            cfg.build(),
            1,
            prologue,
            vec![STATS0, STATS0 + 1, STATS0 + 2],
        )
    }

    /// Validate the configuration's arithmetic. Returns problems
    /// (empty = valid).
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        let k = &self.knobs;
        if self.checkpoint_every == 0 || !self.steps.is_multiple_of(self.checkpoint_every) {
            problems.push(format!(
                "steps ({}) must be a whole number of checkpoint intervals ({})",
                self.steps, self.checkpoint_every
            ));
        }
        if k.body_record == 0 || k.param_read == 0 {
            problems.push("request sizes must be positive".into());
        }
        if k.body_records_per_node == 0 {
            problems.push("each node must read at least one body record".into());
        }
        if k.measurement_every == 0 || k.history_every == 0 {
            problems.push("write cadences must be positive".into());
        }
        problems
    }

    /// Build the runnable workload.
    ///
    /// # Panics
    /// Panics if [`PrismConfig::validate`] reports problems.
    pub fn build(&self) -> Workload {
        let problems = self.validate();
        assert!(problems.is_empty(), "invalid PRISM config: {problems:?}");
        let v = self.version;
        let n = self.nodes;
        let k = &self.knobs;
        let scale = v.compute_scale();

        let body_bytes = u64::from(n) * u64::from(k.body_records_per_node) * k.body_record;
        let files = vec![
            FileSpec {
                name: "prism/parameters".into(),
                initial_size: k.param_bytes,
            },
            FileSpec {
                name: "prism/restart".into(),
                initial_size: k.header_bytes + body_bytes,
            },
            FileSpec {
                name: "prism/connectivity".into(),
                initial_size: k.conn_bytes,
            },
            FileSpec {
                name: "prism/measurement".into(),
                initial_size: 0,
            },
            FileSpec {
                name: "prism/stats.velocity".into(),
                initial_size: 0,
            },
            FileSpec {
                name: "prism/stats.vorticity".into(),
                initial_size: 0,
            },
            FileSpec {
                name: "prism/stats.stresses".into(),
                initial_size: 0,
            },
            FileSpec {
                name: "prism/field".into(),
                initial_size: 0,
            },
            FileSpec {
                name: "prism/history".into(),
                initial_size: 0,
            },
        ];

        let root_rng = DetRng::new(self.seed);
        let mut programs = Vec::with_capacity(n as usize);
        for pid in 0..n {
            let mut rng = root_rng.fork(u64::from(pid));
            let mut b = ProgramBuilder::new();
            let is_root = pid == 0;

            // ---- Phase One: initialization reads -------------------
            self.phase_one(&mut b, pid);
            b.compute_jittered(k.init_compute.scale(scale), 0.1, &mut rng);

            // ---- Phase Two: integration with checkpointing ---------
            if is_root {
                b.open(MEASURE);
                for s in 0..3 {
                    b.open(STATS0 + s);
                }
                b.open(HISTORY);
            }
            for step in 1..=self.steps {
                b.compute_jittered(k.step_compute.scale(scale), 0.15, &mut rng);
                if is_root {
                    if step % k.measurement_every == 0 {
                        b.write(MEASURE, k.measurement_write);
                    }
                    if step % k.history_every == 0 {
                        b.write(HISTORY, k.history_write);
                    }
                    if step % self.checkpoint_every == 0 {
                        // Flow statistics burst: mean, variance,
                        // skewness, flatness for each of the three
                        // statistics files.
                        for s in 0..3 {
                            b.write_n(STATS0 + s, k.stats_writes, k.stats_write);
                            b.flush(STATS0 + s);
                        }
                    }
                }
                if step % self.checkpoint_every == 0 {
                    b.barrier();
                }
            }
            if is_root {
                b.close(MEASURE);
                for s in 0..3 {
                    b.close(STATS0 + s);
                }
                b.close(HISTORY);
            }

            // ---- Phase Three: field output --------------------------
            let slice_bytes = u64::from(k.body_records_per_node) * k.body_record;
            match v {
                PrismVersion::A => {
                    if is_root {
                        b.open(FIELD);
                        for _ in 0..n {
                            b.write(FIELD, k.body_record);
                        }
                        b.close(FIELD);
                    }
                }
                PrismVersion::B | PrismVersion::C => {
                    // All nodes write their slice concurrently.
                    b.gopen(FIELD, n, IoMode::MAsync);
                    b.seek(FIELD, u64::from(pid) * slice_bytes);
                    b.write_n(FIELD, k.body_records_per_node, k.body_record);
                    b.close(FIELD);
                }
            }
            b.compute_jittered(k.final_compute.scale(scale), 0.1, &mut rng);
            b.barrier();

            programs.push(b.build());
        }

        Workload {
            name: format!("PRISM-{}", v.label()),
            version: v.label().to_string(),
            os: OsRelease::Osf13,
            nodes: n,
            files,
            programs,
            phases: phase_table(v),
        }
    }
}

/// Table 4's rows.
fn phase_table(v: PrismVersion) -> Vec<PhaseDesc> {
    let m = |s: &str, md: IoMode| (s.to_string(), md);
    match v {
        PrismVersion::A => vec![
            PhaseDesc {
                phase: "Phase One".into(),
                activity: "All Nodes".into(),
                modes: vec![
                    m("P", IoMode::MUnix),
                    m("R", IoMode::MUnix),
                    m("C", IoMode::MUnix),
                ],
            },
            PhaseDesc {
                phase: "Phase Two".into(),
                activity: "Node Zero".into(),
                modes: vec![m("stats", IoMode::MUnix)],
            },
            PhaseDesc {
                phase: "Phase Three".into(),
                activity: "Node Zero".into(),
                modes: vec![m("field", IoMode::MUnix)],
            },
        ],
        PrismVersion::B => vec![
            PhaseDesc {
                phase: "Phase One".into(),
                activity: "All Nodes".into(),
                modes: vec![
                    m("P", IoMode::MGlobal),
                    m("R(h)", IoMode::MGlobal),
                    m("R(b)", IoMode::MRecord),
                    m("C", IoMode::MGlobal),
                ],
            },
            PhaseDesc {
                phase: "Phase Two".into(),
                activity: "Node Zero".into(),
                modes: vec![m("stats", IoMode::MUnix)],
            },
            PhaseDesc {
                phase: "Phase Three".into(),
                activity: "All Nodes".into(),
                modes: vec![m("field", IoMode::MAsync)],
            },
        ],
        PrismVersion::C => vec![
            PhaseDesc {
                phase: "Phase One".into(),
                activity: "All Nodes".into(),
                modes: vec![
                    m("P", IoMode::MGlobal),
                    m("R", IoMode::MAsync),
                    m("C", IoMode::MGlobal),
                ],
            },
            PhaseDesc {
                phase: "Phase Two".into(),
                activity: "Node Zero".into(),
                modes: vec![m("stats", IoMode::MUnix)],
            },
            PhaseDesc {
                phase: "Phase Three".into(),
                activity: "All Nodes".into(),
                modes: vec![m("field", IoMode::MAsync)],
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Stmt;

    #[test]
    fn all_versions_build_valid_workloads() {
        for v in PrismVersion::all() {
            let w = PrismConfig::tiny(v).build();
            let problems = w.validate();
            assert!(problems.is_empty(), "version {v:?} invalid: {problems:?}");
        }
    }

    #[test]
    fn test_problem_matches_paper() {
        let cfg = PrismConfig::test_problem(PrismVersion::C);
        assert_eq!(cfg.nodes, 64);
        assert_eq!(cfg.elements, 201);
        assert_eq!(cfg.steps, 1250);
        assert_eq!(cfg.checkpoints(), 5, "five checkpoints");
        let w = cfg.build();
        assert_eq!(w.files.len(), 9);
        assert_eq!(w.os, OsRelease::Osf13);
    }

    #[test]
    fn validation_catches_bad_cadences() {
        let mut cfg = PrismConfig::tiny(PrismVersion::A);
        assert!(cfg.validate().is_empty());
        cfg.checkpoint_every = 7; // does not divide 20 steps
        assert!(!cfg.validate().is_empty());
        let mut cfg = PrismConfig::tiny(PrismVersion::A);
        cfg.knobs.body_records_per_node = 0;
        assert!(!cfg.validate().is_empty());
    }

    #[test]
    #[should_panic(expected = "invalid PRISM config")]
    fn build_panics_on_invalid_config() {
        let mut cfg = PrismConfig::tiny(PrismVersion::B);
        cfg.checkpoint_every = 0;
        let _ = cfg.build();
    }

    #[test]
    fn restart_body_uses_155584_byte_records() {
        let cfg = PrismConfig::test_problem(PrismVersion::B);
        assert_eq!(cfg.knobs.body_record, 155_584);
        let w = cfg.build();
        let has_record_mode = w.programs[0].iter().any(|s| {
            matches!(
                s,
                Stmt::Io {
                    op: IoOp::SetIoMode {
                        mode: IoMode::MRecord,
                        record_size: Some(155_584),
                        ..
                    },
                    ..
                }
            )
        });
        assert!(has_record_mode, "B must reload the body via M_RECORD");
    }

    #[test]
    fn version_c_disables_buffering_on_restart() {
        let w = PrismConfig::tiny(PrismVersion::C).build();
        let disables = w.programs[0].iter().any(|s| {
            matches!(
                s,
                Stmt::Io {
                    file: 1,
                    op: IoOp::SetBuffering { enabled: false }
                }
            )
        });
        assert!(disables);
        // And uses gopen, never bare open... except phase-two node-zero
        // bookkeeping files, which stayed plain UNIX in all versions.
        let bare_input_opens = w.programs[1]
            .iter()
            .filter(|s| {
                matches!(
                    s,
                    Stmt::Io {
                        file: 0..=2,
                        op: IoOp::Open
                    }
                )
            })
            .count();
        assert_eq!(bare_input_opens, 0, "version C must gopen its inputs");
    }

    #[test]
    fn version_b_pays_setiomode_calls() {
        let w = PrismConfig::tiny(PrismVersion::B).build();
        let iomodes = w.programs[0]
            .iter()
            .filter(|s| {
                matches!(
                    s,
                    Stmt::Io {
                        op: IoOp::SetIoMode { .. },
                        ..
                    }
                )
            })
            .count();
        assert_eq!(iomodes, 4, "P, R(header), R(body), C");
    }

    #[test]
    fn only_node_zero_writes_phase_two() {
        let w = PrismConfig::tiny(PrismVersion::C).build();
        for (pid, prog) in w.programs.iter().enumerate() {
            let writes_measurement = prog.iter().any(|s| {
                matches!(
                    s,
                    Stmt::Io {
                        file: 3,
                        op: IoOp::Write { .. }
                    }
                )
            });
            assert_eq!(writes_measurement, pid == 0);
        }
    }

    #[test]
    fn field_written_by_all_in_b_and_c_but_root_only_in_a() {
        let wa = PrismConfig::tiny(PrismVersion::A).build();
        for (pid, prog) in wa.programs.iter().enumerate() {
            let writes_field = prog.iter().any(|s| {
                matches!(
                    s,
                    Stmt::Io {
                        file: 7,
                        op: IoOp::Write { .. }
                    }
                )
            });
            assert_eq!(writes_field, pid == 0);
        }
        let wc = PrismConfig::tiny(PrismVersion::C).build();
        for prog in &wc.programs {
            assert!(prog.iter().any(|s| matches!(
                s,
                Stmt::Io {
                    file: 7,
                    op: IoOp::Write { .. }
                }
            )));
        }
    }

    #[test]
    fn phase_tables_match_table4() {
        let a = phase_table(PrismVersion::A);
        assert_eq!(a.len(), 3);
        assert!(a[0].modes.iter().all(|(_, m)| *m == IoMode::MUnix));
        let b = phase_table(PrismVersion::B);
        assert_eq!(b[0].modes.len(), 4);
        assert_eq!(b[2].modes[0].1, IoMode::MAsync);
        let c = phase_table(PrismVersion::C);
        assert_eq!(c[0].modes[1].1, IoMode::MAsync);
    }

    #[test]
    fn compute_scale_decreases() {
        assert!(PrismVersion::A.compute_scale() > PrismVersion::B.compute_scale());
        assert!(PrismVersion::B.compute_scale() > PrismVersion::C.compute_scale());
    }

    #[test]
    fn restart_prologue_is_deterministic_and_rereads_the_body() {
        let cfg = PrismConfig::tiny(PrismVersion::C);
        let a = cfg.restart_prologue();
        let b = cfg.restart_prologue();
        assert_eq!(a, b, "prologue is a pure function of the config");
        assert_eq!(a.len(), cfg.nodes as usize);
        let body_reads = a[0]
            .iter()
            .filter(|s| {
                matches!(
                    s,
                    Stmt::Io {
                        file: 1,
                        op: IoOp::Read { size }
                    } if *size == cfg.knobs.body_record
                )
            })
            .count();
        assert_eq!(body_reads as u32, cfg.knobs.body_records_per_node);
    }

    #[test]
    fn snap_interval_picks_nearest_divisor() {
        let cfg = PrismConfig::tiny(PrismVersion::B); // 20 steps
        assert_eq!(cfg.snap_interval(0), 1);
        assert_eq!(cfg.snap_interval(3), 2, "ties go to the smaller divisor");
        assert_eq!(cfg.snap_interval(5), 5);
        assert_eq!(cfg.snap_interval(13), 10);
        assert_eq!(cfg.snap_interval(100), 20);
    }

    #[test]
    fn recoverable_policies_annotate_and_slice() {
        let cfg = PrismConfig::tiny(PrismVersion::B);
        let none = cfg.recoverable(CheckpointPolicy::None);
        assert_eq!(none.checkpoints(), 0);
        assert_eq!(none.workload().programs, cfg.build().programs);

        // 20 steps every 5 → 4 checkpoint barriers → 4 markers.
        let fixed = cfg.recoverable(CheckpointPolicy::Fixed { interval: 5 });
        assert_eq!(fixed.checkpoints(), 4);
        assert!(fixed.workload().validate().is_empty());
        assert!(fixed.prologue_read_bytes() > 0);
        let sliced = fixed.slice_from(Some(0));
        assert!(sliced.validate().is_empty(), "{:?}", sliced.validate());
        // The replay re-reads phase one: restart-body records appear.
        assert!(sliced.programs[1].iter().any(|s| matches!(
            s,
            Stmt::Io {
                file: 1,
                op: IoOp::Read { size }
            } if *size == cfg.knobs.body_record
        )));

        // Young: sqrt(2 · 0.1 s · 2 s) ≈ 0.632 s of 50 ms steps →
        // 13 steps, snapped to the nearest divisor of 20 (10) → 2
        // checkpoints.
        let young = cfg.recoverable(CheckpointPolicy::Young {
            checkpoint_cost: Time::from_millis(100),
            mtbf: Time::from_secs(2),
        });
        assert_eq!(young.checkpoints(), 2);
        assert!(young.workload().validate().is_empty());
    }
}
