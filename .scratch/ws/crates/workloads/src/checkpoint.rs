//! Checkpoint policies and replay slicing.
//!
//! The paper's workloads are checkpointing codes: PRISM commits flow
//! statistics every 250 of 1250 integration steps, and ESCAT's staged
//! quadrature files are exactly the state a restarted run would reload.
//! This module makes that structure explicit so the recovery driver in
//! `sioscope-core` can charge the true cost of a compute-node crash:
//!
//! * [`CheckpointPolicy`] — how often the application commits:
//!   never, every fixed number of work units, or at Young's optimum
//!   interval `sqrt(2 · C · MTBF)` computed from the measured
//!   checkpoint cost `C` and the failure rate.
//! * [`Recoverable`] — a workload annotated with
//!   [`Stmt::CheckpointCommit`] markers plus everything needed to
//!   build the "replay from marker `k`" workload: per-node restart
//!   prologues (the phase-one re-reads a restarted run performs, e.g.
//!   PRISM's 155,584-byte restart-body records) and the file set that
//!   constitutes the checkpoint.
//!
//! Markers are placed immediately *after* a barrier, so every node
//! agrees on what marker `k` covers, and the sliced suffixes keep
//! equal collective counts across nodes (the barrier ordinal is global
//! by construction). Markers are zero-cost in the simulator; the
//! commit writes themselves are the ordinary `Io` statements the
//! application already issues before the barrier.

use crate::program::{Stmt, Workload};
use serde::{Deserialize, Serialize};
use sioscope_pfs::IoOp;
use sioscope_sim::Time;
use std::collections::BTreeMap;

/// When the application commits checkpoints.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CheckpointPolicy {
    /// Never commit: every crash replays the run from the beginning.
    None,
    /// Commit every `interval` work units (integration steps for
    /// PRISM, staging cycles for ESCAT).
    Fixed {
        /// Work units between commits.
        interval: u32,
    },
    /// Commit at Young's optimum interval `sqrt(2 · C · MTBF)`,
    /// translated into whole work units by the workload.
    Young {
        /// Cost of writing one checkpoint.
        checkpoint_cost: Time,
        /// Mean time between compute-node failures.
        mtbf: Time,
    },
}

impl CheckpointPolicy {
    /// Short stable label for report rows.
    pub fn label(&self) -> &'static str {
        match self {
            CheckpointPolicy::None => "none",
            CheckpointPolicy::Fixed { .. } => "fixed",
            CheckpointPolicy::Young { .. } => "young",
        }
    }
}

/// Young's first-order optimum checkpoint interval:
/// `sqrt(2 · checkpoint_cost · mtbf)`. Degenerate inputs (zero cost or
/// zero MTBF) yield a zero interval, which workloads clamp to one work
/// unit.
pub fn young_interval(checkpoint_cost: Time, mtbf: Time) -> Time {
    Time::from_secs_f64((2.0 * checkpoint_cost.as_secs_f64() * mtbf.as_secs_f64()).sqrt())
}

/// Per-file state reconstructed by scanning a program prefix; used to
/// re-emit the open/mode/seek statements a replay needs before it can
/// continue from a marker.
#[derive(Debug, Default, Clone)]
struct FileTrack {
    /// The statements that (re)establish the file's open state, in
    /// order: the `Open`/`Gopen` plus any later `SetIoMode` /
    /// `SetBuffering` calls.
    open_ops: Vec<Stmt>,
    /// The node's file pointer after the prefix.
    pointer: u64,
    /// Whether the file is open at the end of the prefix.
    open: bool,
}

/// A workload annotated with checkpoint-commit markers, sliceable into
/// "replay from marker `k`" workloads.
#[derive(Debug, Clone)]
pub struct Recoverable {
    workload: Workload,
    /// Per-node restart prologue: the statements a restarted run
    /// executes before resuming (phase-one re-reads through the real
    /// PFS path). Empty when the workload carries no markers.
    prologue: Vec<Vec<Stmt>>,
    /// Workload file indices that constitute the checkpoint payload
    /// (used by the recovery driver's volume accounting).
    checkpoint_files: Vec<u32>,
    /// Number of markers inserted per node.
    checkpoints: u32,
}

impl Recoverable {
    /// A workload with no checkpoints: every crash replays from the
    /// beginning ([`CheckpointPolicy::None`]).
    pub fn plain(workload: Workload) -> Self {
        Recoverable {
            workload,
            prologue: Vec::new(),
            checkpoint_files: Vec::new(),
            checkpoints: 0,
        }
    }

    /// Annotate `workload` with a [`Stmt::CheckpointCommit`] marker
    /// after every `stride`-th barrier, skipping the program-final
    /// barrier (committing "the run is over" is useless). `prologue`
    /// holds the per-node restart statements (one entry per node, or
    /// empty for none); `checkpoint_files` names the files whose
    /// writes count as checkpoint volume.
    ///
    /// # Panics
    /// Panics if `stride` is zero or `prologue` is neither empty nor
    /// one entry per node.
    pub fn annotate(
        workload: Workload,
        stride: u32,
        prologue: Vec<Vec<Stmt>>,
        checkpoint_files: Vec<u32>,
    ) -> Self {
        assert!(stride > 0, "marker stride must be positive");
        assert!(
            prologue.is_empty() || prologue.len() == workload.nodes as usize,
            "prologue must have one entry per node"
        );
        let mut w = workload;
        let mut checkpoints = 0u32;
        for (pid, prog) in w.programs.iter_mut().enumerate() {
            let total_barriers = prog.iter().filter(|s| matches!(s, Stmt::Barrier)).count() as u32;
            let mut annotated = Vec::with_capacity(prog.len());
            let mut j = 0u32;
            let mut inserted = 0u32;
            for stmt in prog.drain(..) {
                let is_barrier = matches!(stmt, Stmt::Barrier);
                annotated.push(stmt);
                if is_barrier {
                    j += 1;
                    if j % stride == 0 && j != total_barriers {
                        annotated.push(Stmt::CheckpointCommit(j / stride - 1));
                        inserted += 1;
                    }
                }
            }
            *prog = annotated;
            if pid == 0 {
                checkpoints = inserted;
            } else {
                assert_eq!(
                    inserted, checkpoints,
                    "barrier counts must match across nodes"
                );
            }
        }
        Recoverable {
            workload: w,
            prologue,
            checkpoint_files,
            checkpoints,
        }
    }

    /// The annotated workload (the "attempt from the beginning" form).
    pub fn workload(&self) -> &Workload {
        &self.workload
    }

    /// Number of commit markers per node.
    pub fn checkpoints(&self) -> u32 {
        self.checkpoints
    }

    /// File indices whose writes constitute the checkpoint payload.
    pub fn checkpoint_files(&self) -> &[u32] {
        &self.checkpoint_files
    }

    /// Bytes the restart prologue reads back through the PFS, summed
    /// across all nodes — the checkpoint *read* volume one replay
    /// attempt pays.
    pub fn prologue_read_bytes(&self) -> u64 {
        self.prologue
            .iter()
            .flatten()
            .map(|s| match s {
                Stmt::Io {
                    op: IoOp::Read { size },
                    ..
                } => *size,
                _ => 0,
            })
            .sum()
    }

    /// The workload that replays from marker `from` (or from the
    /// beginning for `None`): per node, the restart prologue, the
    /// statements that re-establish files open at the marker (reopen +
    /// mode changes + a seek to the saved pointer), then the program
    /// suffix after the marker. File sizes carry forward — anything
    /// written before the marker is durable, so the replay's file
    /// table starts at the prefix's high-water sizes.
    ///
    /// # Panics
    /// Panics if `from` names a marker the workload does not carry.
    pub fn slice_from(&self, from: Option<u32>) -> Workload {
        let Some(k) = from else {
            return self.workload.clone();
        };
        assert!(
            k < self.checkpoints,
            "marker {k} out of range ({} checkpoints)",
            self.checkpoints
        );
        let mut sliced = self.workload.clone();
        // Global high-water write offsets, per file, across all nodes.
        let mut write_end: BTreeMap<u32, u64> = BTreeMap::new();
        let mut programs = Vec::with_capacity(self.workload.programs.len());
        for (pid, prog) in self.workload.programs.iter().enumerate() {
            let pos = prog
                .iter()
                .position(|s| matches!(s, Stmt::CheckpointCommit(i) if *i == k))
                .unwrap_or_else(|| panic!("pid {pid}: marker {k} not found"));
            let mut tracks: BTreeMap<u32, FileTrack> = BTreeMap::new();
            for stmt in &prog[..=pos] {
                if let Stmt::Io { file, op } = stmt {
                    let track = tracks.entry(*file).or_default();
                    match op {
                        IoOp::Open | IoOp::Gopen { .. } => {
                            track.open = true;
                            track.pointer = 0;
                            track.open_ops = vec![stmt.clone()];
                        }
                        IoOp::SetIoMode { .. } | IoOp::SetBuffering { .. } => {
                            if track.open {
                                track.open_ops.push(stmt.clone());
                            }
                        }
                        IoOp::Seek { offset } => track.pointer = *offset,
                        IoOp::Read { size } => track.pointer += size,
                        IoOp::Write { size } => {
                            let end = track.pointer + size;
                            track.pointer = end;
                            let hw = write_end.entry(*file).or_insert(0);
                            *hw = (*hw).max(end);
                        }
                        IoOp::Close => {
                            track.open = false;
                            track.open_ops.clear();
                        }
                        IoOp::Flush => {}
                    }
                }
            }
            let mut replay = if self.prologue.is_empty() {
                Vec::new()
            } else {
                self.prologue[pid].clone()
            };
            // Re-establish open files in ascending file order so the
            // collective reopen sequence lines up across nodes.
            for (file, track) in &tracks {
                if !track.open {
                    continue;
                }
                replay.extend(track.open_ops.iter().cloned());
                if track.pointer > 0 {
                    replay.push(Stmt::Io {
                        file: *file,
                        op: IoOp::Seek {
                            offset: track.pointer,
                        },
                    });
                }
            }
            replay.extend(prog[pos + 1..].iter().cloned());
            programs.push(replay);
        }
        sliced.programs = programs;
        for (file, end) in write_end {
            let spec = &mut sliced.files[file as usize];
            spec.initial_size = spec.initial_size.max(end);
        }
        sliced
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::FileSpec;
    use crate::synthetic;
    use sioscope_pfs::mode::OsRelease;

    fn staged_workload() -> Workload {
        // Two nodes, three compute/write/barrier rounds on file 0.
        let programs = (0..2u32)
            .map(|pid| {
                let mut p = Vec::new();
                p.push(Stmt::Io {
                    file: 0,
                    op: IoOp::Open,
                });
                for round in 0..3u64 {
                    p.push(Stmt::Compute(Time::from_secs(1)));
                    p.push(Stmt::Io {
                        file: 0,
                        op: IoOp::Seek {
                            offset: (round * 2 + u64::from(pid)) * 100,
                        },
                    });
                    p.push(Stmt::Io {
                        file: 0,
                        op: IoOp::Write { size: 100 },
                    });
                    p.push(Stmt::Barrier);
                }
                p.push(Stmt::Io {
                    file: 0,
                    op: IoOp::Close,
                });
                p
            })
            .collect();
        Workload {
            name: "staged".into(),
            version: "T".into(),
            os: OsRelease::Osf13,
            nodes: 2,
            files: vec![FileSpec {
                name: "stage.dat".into(),
                initial_size: 0,
            }],
            programs,
            phases: vec![],
        }
    }

    #[test]
    fn young_interval_matches_formula() {
        let c = Time::from_secs(2);
        let mtbf = Time::from_secs(400);
        // sqrt(2 * 2 * 400) = 40 s.
        assert_eq!(young_interval(c, mtbf), Time::from_secs(40));
        assert!(young_interval(Time::ZERO, mtbf).is_zero());
    }

    #[test]
    fn policy_labels_are_stable() {
        assert_eq!(CheckpointPolicy::None.label(), "none");
        assert_eq!(CheckpointPolicy::Fixed { interval: 3 }.label(), "fixed");
        assert_eq!(
            CheckpointPolicy::Young {
                checkpoint_cost: Time::from_secs(1),
                mtbf: Time::from_secs(100),
            }
            .label(),
            "young"
        );
    }

    #[test]
    fn annotate_marks_every_stride_but_skips_final_barrier() {
        let rec = Recoverable::annotate(staged_workload(), 1, Vec::new(), vec![0]);
        // Three barriers; the last one is program-final, so two markers.
        assert_eq!(rec.checkpoints(), 2);
        for prog in &rec.workload().programs {
            let markers: Vec<u32> = prog
                .iter()
                .filter_map(|s| match s {
                    Stmt::CheckpointCommit(k) => Some(*k),
                    _ => None,
                })
                .collect();
            assert_eq!(markers, vec![0, 1]);
        }
        assert!(rec.workload().validate().is_empty());
    }

    #[test]
    fn annotated_workload_keeps_collective_alignment_with_stride() {
        let rec = Recoverable::annotate(staged_workload(), 2, Vec::new(), vec![0]);
        // Barriers at ordinals 1, 2, 3; stride 2 marks ordinal 2 only.
        assert_eq!(rec.checkpoints(), 1);
        assert!(rec.workload().validate().is_empty());
    }

    #[test]
    fn slice_from_none_is_the_full_workload() {
        let rec = Recoverable::annotate(staged_workload(), 1, Vec::new(), vec![0]);
        let w = rec.slice_from(None);
        assert_eq!(w.programs, rec.workload().programs);
        assert_eq!(w.files[0].initial_size, 0);
    }

    #[test]
    fn slice_reopens_files_and_carries_sizes() {
        let rec = Recoverable::annotate(staged_workload(), 1, Vec::new(), vec![0]);
        let w = rec.slice_from(Some(0));
        assert!(w.validate().is_empty(), "{:?}", w.validate());
        // Round 0 wrote [0,100) on pid 0 and [100,200) on pid 1 —
        // both are durable at marker 0.
        assert_eq!(w.files[0].initial_size, 200);
        for (pid, prog) in w.programs.iter().enumerate() {
            // Replay reopens the file, seeks back to the saved
            // pointer, then runs rounds 1 and 2.
            assert!(matches!(
                prog[0],
                Stmt::Io {
                    file: 0,
                    op: IoOp::Open
                }
            ));
            assert!(matches!(
                prog[1],
                Stmt::Io {
                    file: 0,
                    op: IoOp::Seek { offset }
                } if offset == 100 * (u64::from(pid as u32) + 1)
            ));
            let writes = prog
                .iter()
                .filter(|s| {
                    matches!(
                        s,
                        Stmt::Io {
                            op: IoOp::Write { .. },
                            ..
                        }
                    )
                })
                .count();
            assert_eq!(writes, 2, "rounds 1 and 2 replay");
            // No marker 0 left in the suffix; marker 1 survives.
            assert!(!prog.iter().any(|s| matches!(s, Stmt::CheckpointCommit(0))));
            assert!(prog.iter().any(|s| matches!(s, Stmt::CheckpointCommit(1))));
        }
    }

    #[test]
    fn slice_prepends_prologue() {
        let prologue: Vec<Vec<Stmt>> = (0..2)
            .map(|_| {
                vec![
                    Stmt::Io {
                        file: 0,
                        op: IoOp::Open,
                    },
                    Stmt::Io {
                        file: 0,
                        op: IoOp::Read { size: 640 },
                    },
                    Stmt::Io {
                        file: 0,
                        op: IoOp::Close,
                    },
                ]
            })
            .collect();
        let rec = Recoverable::annotate(staged_workload(), 1, prologue, vec![0]);
        assert_eq!(rec.prologue_read_bytes(), 2 * 640);
        let w = rec.slice_from(Some(1));
        for prog in &w.programs {
            assert!(matches!(
                prog[1],
                Stmt::Io {
                    file: 0,
                    op: IoOp::Read { size: 640 }
                }
            ));
        }
        assert!(w.validate().is_empty());
    }

    #[test]
    fn synthetic_kernels_annotate_generically() {
        let cfg = synthetic::KernelConfig::small();
        let w = synthetic::checkpoint_burst(&cfg, 4);
        let rec = Recoverable::annotate(w, 1, Vec::new(), vec![0]);
        // Four burst barriers, last is program-final: three markers.
        assert_eq!(rec.checkpoints(), 3);
        let sliced = rec.slice_from(Some(2));
        assert!(sliced.validate().is_empty(), "{:?}", sliced.validate());
        // The staged writes before marker 2 are durable.
        assert!(sliced.files[0].initial_size > 0);
    }

    #[test]
    #[should_panic(expected = "marker 5 out of range")]
    fn slice_from_unknown_marker_panics() {
        let rec = Recoverable::annotate(staged_workload(), 1, Vec::new(), vec![0]);
        let _ = rec.slice_from(Some(5));
    }

    #[test]
    fn plain_recoverable_has_no_markers() {
        let rec = Recoverable::plain(staged_workload());
        assert_eq!(rec.checkpoints(), 0);
        assert_eq!(rec.prologue_read_bytes(), 0);
        let w = rec.slice_from(None);
        assert!(!w
            .programs
            .iter()
            .flatten()
            .any(|s| matches!(s, Stmt::CheckpointCommit(_))));
    }
}
