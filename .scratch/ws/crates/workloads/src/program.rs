//! The per-node program language the simulator executes.

use serde::{Deserialize, Serialize};
use sioscope_pfs::mode::OsRelease;
use sioscope_pfs::{IoMode, IoOp};
use sioscope_sim::Time;

/// One statement of a node's program.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Stmt {
    /// Pure computation for the given duration.
    Compute(Time),
    /// A file-system call on workload file `file` (index into
    /// [`Workload::files`]).
    Io {
        /// Index of the target file in the workload's file table.
        file: u32,
        /// The PFS operation.
        op: IoOp,
    },
    /// Global barrier across all nodes of the application. Nodes must
    /// all execute the same number of collective statements
    /// (`Barrier`/`Broadcast`/`Gather`) in the same order.
    Barrier,
    /// Broadcast of `bytes` from `root` to every node (message-passing
    /// collective, not a file operation).
    Broadcast {
        /// Broadcasting node (pid index).
        root: u32,
        /// Payload size.
        bytes: u64,
    },
    /// Every node sends `bytes_per_node` to `root` (the version-A
    /// "node zero collects the quadrature data" pattern).
    Gather {
        /// Collecting node (pid index).
        root: u32,
        /// Payload contributed by each non-root node.
        bytes_per_node: u64,
    },
    /// Checkpoint-commit marker `k`: everything before this statement
    /// is durable on the PFS; a recovering run may resume from here
    /// instead of from the beginning. Zero-cost in the simulator (the
    /// commit *writes* are ordinary `Io` statements preceding the
    /// marker) — it only records the instant the program passed it.
    /// Placed immediately after a barrier so all nodes agree on what
    /// marker `k` covers; not itself a collective.
    CheckpointCommit(u32),
}

impl Stmt {
    /// Is this a message-passing collective (participates in the
    /// global collective-sequence numbering)?
    pub fn is_collective(&self) -> bool {
        matches!(
            self,
            Stmt::Barrier | Stmt::Broadcast { .. } | Stmt::Gather { .. }
        )
    }
}

/// A file the workload touches.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FileSpec {
    /// File name (unique within the workload).
    pub name: String,
    /// Bytes present before the application starts (input files).
    pub initial_size: u64,
}

/// Human-readable description of one application phase — the rows of
/// the paper's Tables 1 and 4.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseDesc {
    /// Phase name ("Phase One", ...).
    pub phase: String,
    /// Which nodes perform I/O ("All Nodes" / "Node zero").
    pub activity: String,
    /// `(file label, mode)` pairs used during the phase.
    pub modes: Vec<(String, IoMode)>,
}

/// A complete runnable workload: one program per node plus the file
/// table and descriptive metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    /// Workload name, e.g. `"ESCAT-C/ethylene"`.
    pub name: String,
    /// Version label ("A", "B", "C", ...).
    pub version: String,
    /// OS release the version ran under (Table 1: ESCAT A/B on OSF/1
    /// R1.2, C on R1.3; PRISM all on R1.3).
    pub os: OsRelease,
    /// Number of compute nodes (= number of programs).
    pub nodes: u32,
    /// Files the workload touches.
    pub files: Vec<FileSpec>,
    /// Per-node statement sequences, indexed by pid.
    pub programs: Vec<Vec<Stmt>>,
    /// Phase descriptions for Tables 1 / 4.
    pub phases: Vec<PhaseDesc>,
}

impl Workload {
    /// Total number of statements across all nodes.
    pub fn total_stmts(&self) -> usize {
        self.programs.iter().map(Vec::len).sum()
    }

    /// Total bytes read and written if every data op completes, as
    /// `(read, written)`.
    pub fn declared_volume(&self) -> (u64, u64) {
        let mut r = 0;
        let mut w = 0;
        for prog in &self.programs {
            for stmt in prog {
                if let Stmt::Io { op, .. } = stmt {
                    match op {
                        IoOp::Read { size } => r += size,
                        IoOp::Write { size } => w += size,
                        _ => {}
                    }
                }
            }
        }
        (r, w)
    }

    /// Human-readable operation inventory: per-kind op counts plus
    /// declared read/write volumes.
    pub fn summary(&self) -> String {
        use sioscope_pfs::OpKind;
        use std::fmt::Write as _;
        let mut counts: std::collections::BTreeMap<OpKind, u64> = std::collections::BTreeMap::new();
        let mut computes = 0u64;
        let mut collectives = 0u64;
        let mut markers = 0u64;
        for prog in &self.programs {
            for stmt in prog {
                match stmt {
                    Stmt::Io { op, .. } => *counts.entry(op.kind()).or_insert(0) += 1,
                    Stmt::Compute(_) => computes += 1,
                    Stmt::CheckpointCommit(_) => markers += 1,
                    _ => collectives += 1,
                }
            }
        }
        let (read, written) = self.declared_volume();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{} — {} nodes, {} files, {} statements",
            self.name,
            self.nodes,
            self.files.len(),
            self.total_stmts()
        );
        for (kind, n) in &counts {
            let _ = writeln!(out, "  {:<8}{n:>10}", kind.label());
        }
        let _ = writeln!(out, "  {:<8}{computes:>10}", "compute");
        let _ = writeln!(out, "  {:<8}{collectives:>10}", "collective");
        if markers > 0 {
            let _ = writeln!(out, "  {:<8}{markers:>10}", "ckpt");
        }
        let _ = writeln!(
            out,
            "  volume: {:.1} MB read, {:.1} MB written",
            read as f64 / 1e6,
            written as f64 / 1e6
        );
        out
    }

    /// Structural validation: program count matches `nodes`, every
    /// file index is in range, every node executes the same number of
    /// message-passing collectives, broadcast/gather roots are valid,
    /// and M_ASYNC is not used under OSF/1 R1.2. Returns a list of
    /// problems (empty = valid).
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        if self.programs.len() != self.nodes as usize {
            problems.push(format!(
                "{} programs for {} nodes",
                self.programs.len(),
                self.nodes
            ));
        }
        let mut collective_counts = Vec::with_capacity(self.programs.len());
        for (pid, prog) in self.programs.iter().enumerate() {
            let mut collectives = 0u32;
            for (i, stmt) in prog.iter().enumerate() {
                match stmt {
                    Stmt::Io { file, op } => {
                        if *file as usize >= self.files.len() {
                            problems.push(format!("pid {pid} stmt {i}: file {file} out of range"));
                        }
                        if let IoOp::Gopen {
                            mode: IoMode::MAsync,
                            ..
                        }
                        | IoOp::SetIoMode {
                            mode: IoMode::MAsync,
                            ..
                        } = op
                        {
                            if self.os == OsRelease::Osf12 {
                                problems.push(format!(
                                    "pid {pid} stmt {i}: M_ASYNC requires OSF/1 R1.3"
                                ));
                            }
                        }
                    }
                    Stmt::Broadcast { root, .. } | Stmt::Gather { root, .. } => {
                        if *root >= self.nodes {
                            problems.push(format!("pid {pid} stmt {i}: root {root} out of range"));
                        }
                        collectives += 1;
                    }
                    Stmt::Barrier => collectives += 1,
                    Stmt::Compute(_) | Stmt::CheckpointCommit(_) => {}
                }
            }
            collective_counts.push(collectives);
        }
        if let (Some(&min), Some(&max)) = (
            collective_counts.iter().min(),
            collective_counts.iter().max(),
        ) {
            if min != max {
                problems.push(format!(
                    "collective count mismatch across nodes: min {min}, max {max}"
                ));
            }
        }
        problems
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_workload() -> Workload {
        Workload {
            name: "t".into(),
            version: "A".into(),
            os: OsRelease::Osf13,
            nodes: 2,
            files: vec![FileSpec {
                name: "f".into(),
                initial_size: 0,
            }],
            programs: vec![
                vec![
                    Stmt::Io {
                        file: 0,
                        op: IoOp::Open,
                    },
                    Stmt::Io {
                        file: 0,
                        op: IoOp::Write { size: 10 },
                    },
                    Stmt::Barrier,
                    Stmt::Io {
                        file: 0,
                        op: IoOp::Close,
                    },
                ],
                vec![
                    Stmt::Compute(Time::from_secs(1)),
                    Stmt::Io {
                        file: 0,
                        op: IoOp::Open,
                    },
                    Stmt::Io {
                        file: 0,
                        op: IoOp::Read { size: 4 },
                    },
                    Stmt::Barrier,
                    Stmt::Io {
                        file: 0,
                        op: IoOp::Close,
                    },
                ],
            ],
            phases: vec![],
        }
    }

    #[test]
    fn valid_workload_passes() {
        assert!(tiny_workload().validate().is_empty());
    }

    #[test]
    fn volume_and_stmt_counts() {
        let w = tiny_workload();
        assert_eq!(w.total_stmts(), 9);
        assert_eq!(w.declared_volume(), (4, 10));
    }

    #[test]
    fn summary_inventories_operations() {
        let w = tiny_workload();
        let text = w.summary();
        assert!(text.contains("2 nodes"));
        assert!(text.contains("open"));
        assert!(text.contains("read"));
        assert!(text.contains("collective"));
        assert!(text.contains("0.0 MB read"));
    }

    #[test]
    fn bad_file_index_caught() {
        let mut w = tiny_workload();
        w.programs[0].push(Stmt::Io {
            file: 9,
            op: IoOp::Open,
        });
        assert!(!w.validate().is_empty());
    }

    #[test]
    fn collective_mismatch_caught() {
        let mut w = tiny_workload();
        w.programs[0].push(Stmt::Barrier);
        let problems = w.validate();
        assert!(problems.iter().any(|p| p.contains("collective count")));
    }

    #[test]
    fn bad_root_caught() {
        let mut w = tiny_workload();
        for prog in &mut w.programs {
            prog.push(Stmt::Broadcast { root: 7, bytes: 1 });
        }
        assert!(!w.validate().is_empty());
    }

    #[test]
    fn masync_under_osf12_caught() {
        let mut w = tiny_workload();
        w.os = OsRelease::Osf12;
        w.programs[0].insert(
            0,
            Stmt::Io {
                file: 0,
                op: IoOp::Gopen {
                    group: 2,
                    mode: IoMode::MAsync,
                    record_size: None,
                },
            },
        );
        assert!(w.validate().iter().any(|p| p.contains("M_ASYNC")));
    }

    #[test]
    fn node_count_mismatch_caught() {
        let mut w = tiny_workload();
        w.nodes = 3;
        assert!(!w.validate().is_empty());
    }

    #[test]
    fn collectivity_classification() {
        assert!(Stmt::Barrier.is_collective());
        assert!(Stmt::Broadcast { root: 0, bytes: 1 }.is_collective());
        assert!(Stmt::Gather {
            root: 0,
            bytes_per_node: 1
        }
        .is_collective());
        assert!(!Stmt::Compute(Time::ZERO).is_collective());
        assert!(!Stmt::CheckpointCommit(0).is_collective());
    }

    #[test]
    fn checkpoint_markers_validate_and_inventory() {
        let mut w = tiny_workload();
        for prog in &mut w.programs {
            prog.push(Stmt::CheckpointCommit(0));
        }
        assert!(w.validate().is_empty(), "{:?}", w.validate());
        assert!(w.summary().contains("ckpt"));
        // Marker-free workloads keep the old inventory shape.
        assert!(!tiny_workload().summary().contains("ckpt"));
    }
}
