//! Fluent helper for assembling per-node programs.

use crate::program::Stmt;
use sioscope_pfs::{IoMode, IoOp};
use sioscope_sim::{DetRng, Time};

/// Builds one node's statement sequence.
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    stmts: Vec<Stmt>,
}

impl ProgramBuilder {
    /// An empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a compute burst, optionally jittered by `rng`.
    pub fn compute(&mut self, dur: Time) -> &mut Self {
        self.stmts.push(Stmt::Compute(dur));
        self
    }

    /// Append a jittered compute burst (±`frac` multiplicative).
    pub fn compute_jittered(&mut self, dur: Time, frac: f64, rng: &mut DetRng) -> &mut Self {
        self.stmts.push(Stmt::Compute(rng.jitter(dur, frac)));
        self
    }

    /// Append an arbitrary I/O statement.
    pub fn io(&mut self, file: u32, op: IoOp) -> &mut Self {
        self.stmts.push(Stmt::Io { file, op });
        self
    }

    /// Non-collective open.
    pub fn open(&mut self, file: u32) -> &mut Self {
        self.io(file, IoOp::Open)
    }

    /// Collective open setting the mode.
    pub fn gopen(&mut self, file: u32, group: u32, mode: IoMode) -> &mut Self {
        self.io(
            file,
            IoOp::Gopen {
                group,
                mode,
                record_size: None,
            },
        )
    }

    /// Collective open in M_RECORD with a fixed record size.
    pub fn gopen_record(&mut self, file: u32, group: u32, record_size: u64) -> &mut Self {
        self.io(
            file,
            IoOp::Gopen {
                group,
                mode: IoMode::MRecord,
                record_size: Some(record_size),
            },
        )
    }

    /// Collective mode change.
    pub fn setiomode(&mut self, file: u32, group: u32, mode: IoMode) -> &mut Self {
        self.io(
            file,
            IoOp::SetIoMode {
                group,
                mode,
                record_size: None,
            },
        )
    }

    /// Read `size` bytes at the current pointer.
    pub fn read(&mut self, file: u32, size: u64) -> &mut Self {
        self.io(file, IoOp::Read { size })
    }

    /// `n` consecutive reads of `size` bytes.
    pub fn read_n(&mut self, file: u32, n: u32, size: u64) -> &mut Self {
        for _ in 0..n {
            self.read(file, size);
        }
        self
    }

    /// Write `size` bytes at the current pointer.
    pub fn write(&mut self, file: u32, size: u64) -> &mut Self {
        self.io(file, IoOp::Write { size })
    }

    /// `n` consecutive writes of `size` bytes.
    pub fn write_n(&mut self, file: u32, n: u32, size: u64) -> &mut Self {
        for _ in 0..n {
            self.write(file, size);
        }
        self
    }

    /// Seek to an absolute offset.
    pub fn seek(&mut self, file: u32, offset: u64) -> &mut Self {
        self.io(file, IoOp::Seek { offset })
    }

    /// Enable/disable client buffering.
    pub fn set_buffering(&mut self, file: u32, enabled: bool) -> &mut Self {
        self.io(file, IoOp::SetBuffering { enabled })
    }

    /// Close the file.
    pub fn close(&mut self, file: u32) -> &mut Self {
        self.io(file, IoOp::Close)
    }

    /// Flush the file.
    pub fn flush(&mut self, file: u32) -> &mut Self {
        self.io(file, IoOp::Flush)
    }

    /// Global barrier.
    pub fn barrier(&mut self) -> &mut Self {
        self.stmts.push(Stmt::Barrier);
        self
    }

    /// Broadcast from `root`.
    pub fn broadcast(&mut self, root: u32, bytes: u64) -> &mut Self {
        self.stmts.push(Stmt::Broadcast { root, bytes });
        self
    }

    /// Gather to `root`.
    pub fn gather(&mut self, root: u32, bytes_per_node: u64) -> &mut Self {
        self.stmts.push(Stmt::Gather {
            root,
            bytes_per_node,
        });
        self
    }

    /// Number of statements so far.
    pub fn len(&self) -> usize {
        self.stmts.len()
    }

    /// `true` iff no statements have been added.
    pub fn is_empty(&self) -> bool {
        self.stmts.is_empty()
    }

    /// Finish, yielding the statement list.
    pub fn build(self) -> Vec<Stmt> {
        self.stmts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_assembles_statements() {
        let mut b = ProgramBuilder::new();
        b.open(0).read_n(0, 3, 100).barrier().write(0, 50).close(0);
        let stmts = b.build();
        assert_eq!(stmts.len(), 7);
        assert!(matches!(
            stmts[0],
            Stmt::Io {
                file: 0,
                op: IoOp::Open
            }
        ));
        assert!(matches!(stmts[4], Stmt::Barrier));
    }

    #[test]
    fn jittered_compute_is_deterministic() {
        let mut r1 = DetRng::new(5);
        let mut r2 = DetRng::new(5);
        let mut b1 = ProgramBuilder::new();
        let mut b2 = ProgramBuilder::new();
        b1.compute_jittered(Time::from_secs(10), 0.3, &mut r1);
        b2.compute_jittered(Time::from_secs(10), 0.3, &mut r2);
        assert_eq!(b1.build(), b2.build());
    }

    #[test]
    fn empty_and_len() {
        let mut b = ProgramBuilder::new();
        assert!(b.is_empty());
        b.barrier();
        assert_eq!(b.len(), 1);
        assert!(!b.is_empty());
    }

    #[test]
    fn gopen_record_carries_size() {
        let mut b = ProgramBuilder::new();
        b.gopen_record(2, 8, 65536);
        match &b.build()[0] {
            Stmt::Io {
                file: 2,
                op:
                    IoOp::Gopen {
                        group: 8,
                        mode: IoMode::MRecord,
                        record_size: Some(65536),
                    },
            } => {}
            other => panic!("unexpected: {other:?}"),
        }
    }
}
