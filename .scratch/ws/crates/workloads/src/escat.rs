//! ESCAT — the Schwinger Multichannel electron scattering code (§4).
//!
//! Four I/O phases:
//!
//! 1. **Phase One** — initialization data is read from three input
//!    files (compulsory I/O).
//! 2. **Phase Two** — quadrature data is written to disk (data
//!    staging) in a series of compute/write cycles, one data file per
//!    collision channel.
//! 3. **Phase Three** — quadrature data is read back (data staging),
//!    combined with energy-dependent structures.
//! 4. **Phase Four** — results are written (compulsory I/O), one
//!    output file per channel.
//!
//! Version differences (Table 1):
//!
//! | Phase | A | B | C |
//! |---|---|---|---|
//! | One   | all nodes, M_UNIX | node zero, M_UNIX | node zero, M_UNIX |
//! | Two   | node zero, M_UNIX | all nodes, M_UNIX (gopen + seeks) | all nodes, M_ASYNC |
//! | Three | node zero, M_UNIX | all nodes, M_RECORD | all nodes, M_RECORD |
//! | Four  | node zero, M_UNIX | node zero, M_UNIX | node zero, M_UNIX |
//!
//! Versions A and B ran under OSF/1 R1.2 (no M_ASYNC), version C under
//! R1.3. Figure 1 tracks six progressions; [`EscatVersion`] includes
//! the three intermediate builds (`A2`, `B2`, `B3`) whose differences
//! were instrumentation and operating-system updates rather than I/O
//! restructuring.

use crate::builder::ProgramBuilder;
use crate::checkpoint::{young_interval, CheckpointPolicy, Recoverable};
use crate::program::{FileSpec, PhaseDesc, Stmt, Workload};
use serde::{Deserialize, Serialize};
use sioscope_pfs::mode::OsRelease;
use sioscope_pfs::IoMode;
use sioscope_sim::{DetRng, Time};

/// The six code progressions of Figure 1. `A`, `B`, `C` are the
/// versions analyzed in Tables 1–3; `A2`, `B2`, `B3` are the
/// intermediate builds (instrumentation and OS updates).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EscatVersion {
    /// Initial port from the Intel Touchstone Delta (CFS habits).
    A,
    /// A with updated Pablo instrumentation.
    A2,
    /// Restructured: node-zero reads + broadcast, all-node staging
    /// writes with seeks under M_UNIX, M_RECORD reloads.
    B,
    /// B with reduced instrumentation overhead.
    B2,
    /// B under the OSF/1 R1.3 upgrade.
    B3,
    /// B with phase-two writes switched to M_ASYNC.
    C,
}

impl EscatVersion {
    /// The I/O structure this progression uses (intermediates share
    /// their parent's structure).
    pub fn structure(self) -> EscatVersion {
        match self {
            EscatVersion::A | EscatVersion::A2 => EscatVersion::A,
            EscatVersion::B | EscatVersion::B2 | EscatVersion::B3 => EscatVersion::B,
            EscatVersion::C => EscatVersion::C,
        }
    }

    /// OS release the progression ran under.
    pub fn os(self) -> OsRelease {
        match self {
            EscatVersion::A | EscatVersion::A2 | EscatVersion::B | EscatVersion::B2 => {
                OsRelease::Osf12
            }
            EscatVersion::B3 | EscatVersion::C => OsRelease::Osf13,
        }
    }

    /// Multiplicative compute inflation relative to version C. The
    /// paper attributes part of the Figure-1 execution-time evolution
    /// to "operating system changes, new application code versions,
    /// and software instrumentation updates" — i.e. non-I/O overheads
    /// that shrank across progressions.
    pub fn compute_scale(self) -> f64 {
        match self {
            EscatVersion::A => 1.145,
            EscatVersion::A2 => 1.12,
            EscatVersion::B => 1.06,
            EscatVersion::B2 => 1.04,
            EscatVersion::B3 => 1.015,
            EscatVersion::C => 1.0,
        }
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            EscatVersion::A => "A",
            EscatVersion::A2 => "A'",
            EscatVersion::B => "B",
            EscatVersion::B2 => "B'",
            EscatVersion::B3 => "B''",
            EscatVersion::C => "C",
        }
    }

    /// The six progressions in chronological order (Figure 1's
    /// x-axis).
    pub fn progressions() -> [EscatVersion; 6] {
        [
            EscatVersion::A,
            EscatVersion::A2,
            EscatVersion::B,
            EscatVersion::B2,
            EscatVersion::B3,
            EscatVersion::C,
        ]
    }
}

/// The two datasets the paper reports (§4.1, Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EscatDataset {
    /// Electronic excitation of ethylene to its first triplet state:
    /// two collision channels (elastic + inelastic triplet), 128
    /// nodes.
    Ethylene,
    /// Electronic excitation of carbon monoxide: 13 collision
    /// channels, 256 nodes. Quadrature volume grows as O(channels³);
    /// we scale it down for simulation tractability (see DESIGN.md)
    /// while keeping I/O's share of execution time at the paper's
    /// ~20%.
    CarbonMonoxide,
}

impl EscatDataset {
    /// Number of collision channels (one quadrature file and one
    /// output file each).
    pub fn channels(self) -> u32 {
        match self {
            EscatDataset::Ethylene => 2,
            EscatDataset::CarbonMonoxide => 13,
        }
    }

    /// Default node count the paper used.
    pub fn default_nodes(self) -> u32 {
        match self {
            EscatDataset::Ethylene => 128,
            EscatDataset::CarbonMonoxide => 256,
        }
    }
}

/// Full ESCAT workload configuration.
///
/// ```
/// use sioscope_workloads::{EscatConfig, EscatVersion};
///
/// let workload = EscatConfig::ethylene(EscatVersion::C).build();
/// assert_eq!(workload.nodes, 128);
/// assert!(workload.validate().is_empty());
/// // Three inputs, two quadrature files, two output files.
/// assert_eq!(workload.files.len(), 7);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EscatConfig {
    /// Code progression to build.
    pub version: EscatVersion,
    /// Dataset.
    pub dataset: EscatDataset,
    /// Compute nodes (paper: 128 for ethylene, 256 for carbon
    /// monoxide).
    pub nodes: u32,
    /// RNG seed for compute jitter.
    pub seed: u64,
    /// Tunable request-stream parameters.
    pub knobs: EscatKnobs,
}

/// Calibration knobs for the ESCAT request stream. Defaults reproduce
/// the paper's figures for the ethylene dataset; the carbon monoxide
/// constructor scales them.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EscatKnobs {
    /// Size of the problem-definition input file.
    pub input_problem_bytes: u64,
    /// Size of each of the two initial-matrix input files.
    pub input_matrix_bytes: u64,
    /// Small-read request size during phase one (paper: < 2 KB).
    pub init_small_read: u64,
    /// Number of small reads each reader performs per input file.
    pub init_small_reads_per_file: u32,
    /// Large-read request size during phase one.
    pub init_large_read: u64,
    /// Number of large reads per matrix file.
    pub init_large_reads: u32,
    /// Quadrature bytes per collision channel. Must be a multiple of
    /// `nodes × record_read` so M_RECORD rounds tile exactly.
    pub quad_bytes_per_channel: u64,
    /// Number of compute/write cycles in phase two.
    pub cycles: u32,
    /// Version-A phase-two write sizes (node zero coordinates writes
    /// "with four different request sizes", Fig. 4).
    pub write_sizes_a: [u64; 4],
    /// Version-B/C phase-two write size (Fig. 4: "all write requests
    /// are of the same size").
    pub write_size_bc: u64,
    /// Version-A phase-three read chunk (node zero reads "in small
    /// chunks (less than 2K bytes)").
    pub reload_chunk_a: u64,
    /// Version-B/C phase-three M_RECORD record size (128 KB — twice
    /// the PFS stripe unit).
    pub record_read: u64,
    /// Result bytes written per channel in phase four.
    pub output_bytes_per_channel: u64,
    /// Phase-four write size (small, < 2 KB).
    pub output_write: u64,
    /// Compute time before phase two starts (phase one work).
    pub compute_init: Time,
    /// Total compute across phase two (split over cycles, jittered
    /// ±20% per node per cycle).
    pub compute_stage: Time,
    /// Total compute across phase three.
    pub compute_solve: Time,
    /// Compute in phase four.
    pub compute_final: Time,
    /// Broadcast chunk used when node zero redistributes data.
    pub broadcast_chunk: u64,
}

impl EscatKnobs {
    /// Ethylene defaults (128 nodes, 2 channels).
    pub fn ethylene() -> Self {
        EscatKnobs {
            input_problem_bytes: 64 * 1024,
            input_matrix_bytes: 1536 * 1024,
            init_small_read: 1024,
            init_small_reads_per_file: 192,
            init_large_read: 640 * 1024,
            init_large_reads: 1,
            // 32 MB per channel = 2 M_RECORD rounds of 128 nodes ×
            // 128 KB.
            quad_bytes_per_channel: 32 * 1024 * 1024,
            cycles: 16,
            write_sizes_a: [512, 1024, 2048, 2944],
            write_size_bc: 1800,
            reload_chunk_a: 2048,
            record_read: 128 * 1024,
            output_bytes_per_channel: 1024 * 1024,
            output_write: 1500,
            compute_init: Time::from_secs(60),
            compute_stage: Time::from_secs(3300),
            compute_solve: Time::from_secs(1700),
            compute_final: Time::from_secs(120),
            broadcast_chunk: 1024 * 1024,
        }
    }

    /// Carbon monoxide (256 nodes, 13 channels). The physical
    /// quadrature volume scales as O(channels³); we scale the
    /// simulated volume by (13/2)² instead of (13/2)³ to keep event
    /// counts tractable, and shrink per-channel compute so that I/O
    /// reaches the ~20% share of Table 3.
    pub fn carbon_monoxide() -> Self {
        EscatKnobs {
            // 32 MB per channel = 1 M_RECORD round of 256 × 128 KB;
            // thirteen channels put 416 MB through the staging files.
            quad_bytes_per_channel: 32 * 1024 * 1024,
            cycles: 26,
            // Larger staging writes keep the op count simulable.
            write_size_bc: 16 * 1024,
            compute_init: Time::from_secs(120),
            compute_stage: Time::from_secs(2600),
            compute_solve: Time::from_secs(1500),
            compute_final: Time::from_secs(150),
            ..Self::ethylene()
        }
    }
}

impl EscatConfig {
    /// The ethylene study configuration for one progression.
    pub fn ethylene(version: EscatVersion) -> Self {
        EscatConfig {
            version,
            dataset: EscatDataset::Ethylene,
            nodes: 128,
            seed: 0xE5CA7,
            knobs: EscatKnobs::ethylene(),
        }
    }

    /// The carbon monoxide configuration (version C only in the
    /// paper's Table 3).
    pub fn carbon_monoxide(version: EscatVersion) -> Self {
        EscatConfig {
            version,
            dataset: EscatDataset::CarbonMonoxide,
            nodes: 256,
            seed: 0xC0C0,
            knobs: EscatKnobs::carbon_monoxide(),
        }
    }

    /// A scaled-down configuration for fast tests: 8 nodes, 1 MB of
    /// quadrature per channel, short compute.
    pub fn tiny(version: EscatVersion) -> Self {
        let mut knobs = EscatKnobs::ethylene();
        knobs.quad_bytes_per_channel = 8 * 128 * 1024; // 1 round at 8 nodes
        knobs.cycles = 2;
        knobs.compute_init = Time::from_secs(1);
        knobs.compute_stage = Time::from_secs(8);
        knobs.compute_solve = Time::from_secs(4);
        knobs.compute_final = Time::from_secs(1);
        knobs.init_small_reads_per_file = 5;
        EscatConfig {
            version,
            dataset: EscatDataset::Ethylene,
            nodes: 8,
            seed: 7,
            knobs,
        }
    }

    /// Validate the configuration's arithmetic: the quadrature volume
    /// must tile M_RECORD rounds exactly, the cycle structure must
    /// divide the volume, and the staging write size must fit a
    /// cycle's per-node share. Returns problems (empty = valid).
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        let k = &self.knobs;
        let per_round = u64::from(self.nodes) * k.record_read;
        if per_round == 0 || !k.quad_bytes_per_channel.is_multiple_of(per_round) {
            problems.push(format!(
                "quadrature per channel ({}) must be a multiple of nodes x record ({})",
                k.quad_bytes_per_channel, per_round
            ));
        }
        let quad_total = u64::from(self.dataset.channels()) * k.quad_bytes_per_channel;
        let cycle_div = u64::from(k.cycles) * u64::from(self.nodes);
        if k.cycles == 0 || !quad_total.is_multiple_of(cycle_div) {
            problems.push(format!(
                "total quadrature ({quad_total}) must divide evenly over cycles x nodes ({cycle_div})"
            ));
        }
        if self.dataset.channels() != 0 && !k.cycles.is_multiple_of(self.dataset.channels()) {
            problems.push(format!(
                "cycles ({}) must be a multiple of channels ({}) so staging files fill evenly",
                k.cycles,
                self.dataset.channels()
            ));
        }
        if k.write_size_bc == 0 || k.init_small_read == 0 {
            problems.push("request sizes must be positive".into());
        }
        problems
    }

    /// Build the runnable workload.
    ///
    /// # Panics
    /// Panics if [`EscatConfig::validate`] reports problems.
    pub fn build(&self) -> Workload {
        let problems = self.validate();
        assert!(problems.is_empty(), "invalid ESCAT config: {problems:?}");
        let v = self.version.structure();
        let ch = self.dataset.channels();
        let n = self.nodes;
        let k = &self.knobs;
        let scale = self.version.compute_scale();

        // File table: 3 inputs, `ch` quadrature files, `ch` outputs.
        let mut files = vec![
            FileSpec {
                name: "escat/input.problem".into(),
                initial_size: k.input_problem_bytes,
            },
            FileSpec {
                name: "escat/input.matrix1".into(),
                initial_size: k.input_matrix_bytes,
            },
            FileSpec {
                name: "escat/input.matrix2".into(),
                initial_size: k.input_matrix_bytes,
            },
        ];
        for c in 0..ch {
            files.push(FileSpec {
                name: format!("escat/quad.ch{c}"),
                initial_size: 0,
            });
        }
        for c in 0..ch {
            files.push(FileSpec {
                name: format!("escat/out.ch{c}"),
                initial_size: 0,
            });
        }
        let quad_file = |c: u32| 3 + c;
        let out_file = |c: u32| 3 + ch + c;

        let root_rng = DetRng::new(self.seed);
        let mut programs = Vec::with_capacity(n as usize);
        for pid in 0..n {
            let mut rng = root_rng.fork(u64::from(pid));
            let mut b = ProgramBuilder::new();
            let is_root = pid == 0;

            // ---- Phase One: compulsory initialization reads --------
            match v {
                EscatVersion::A => {
                    // All nodes concurrently open and read the three
                    // input files under M_UNIX — fully serialized.
                    self.phase1_reads(&mut b);
                }
                _ => {
                    // B/C: node zero reads and broadcasts.
                    if is_root {
                        self.phase1_reads(&mut b);
                    }
                    let init_total = k.input_problem_bytes + 2 * k.input_matrix_bytes;
                    let chunks = init_total.div_ceil(k.broadcast_chunk);
                    for _ in 0..chunks {
                        b.broadcast(0, k.broadcast_chunk);
                    }
                }
            }
            b.compute_jittered(k.compute_init.scale(scale), 0.1, &mut rng);

            // ---- Phase Two: quadrature staging writes --------------
            let quad_total = u64::from(ch) * k.quad_bytes_per_channel;
            match v {
                EscatVersion::A => {
                    // Node zero collects and writes everything.
                    if is_root {
                        for c in 0..ch {
                            b.open(quad_file(c));
                        }
                    }
                    let per_cycle = quad_total / u64::from(k.cycles);
                    for cycle in 0..k.cycles {
                        b.compute_jittered(
                            (k.compute_stage / u64::from(k.cycles)).scale(scale),
                            0.2,
                            &mut rng,
                        );
                        b.barrier();
                        b.gather(0, per_cycle / u64::from(n));
                        if is_root {
                            // Four request sizes, round-robin.
                            let f = quad_file(cycle % ch);
                            let mut written = 0;
                            let mut i = 0usize;
                            while written < per_cycle {
                                let sz = k.write_sizes_a[i % 4].min(per_cycle - written);
                                b.write(f, sz);
                                written += sz;
                                i += 1;
                            }
                        }
                    }
                    if is_root {
                        for c in 0..ch {
                            b.close(quad_file(c));
                        }
                    }
                }
                _ => {
                    // All nodes write their share directly. The phase
                    // boundary synchronizes the nodes, so the
                    // collective opens see aligned arrivals.
                    b.barrier();
                    for c in 0..ch {
                        b.gopen(quad_file(c), n, IoMode::MUnix);
                        if v == EscatVersion::C {
                            // "Intel introduced the more efficient
                            // M_ASYNC mode in the OSF/1 1.3 release"
                            // (§4.1) — version C switches to it.
                            b.setiomode(quad_file(c), n, IoMode::MAsync);
                        }
                    }
                    let per_node_cycle = quad_total / (u64::from(k.cycles) * u64::from(n));
                    for cycle in 0..k.cycles {
                        b.compute_jittered(
                            (k.compute_stage / u64::from(k.cycles)).scale(scale),
                            0.2,
                            &mut rng,
                        );
                        let f = quad_file(cycle % ch);
                        // "Each node seeks to a calculated offset
                        // dependent on the node number, iteration, and
                        // the Paragon PFS stripe size before writing
                        // any data" (§4.1). Under M_UNIX (version B)
                        // each of these seeks is a serialized
                        // file-server round trip; under M_ASYNC
                        // (version C) they are local pointer updates.
                        let channel_cycle = u64::from(cycle / ch);
                        let base = channel_cycle * u64::from(n) * per_node_cycle
                            + u64::from(pid) * per_node_cycle;
                        let mut written = 0;
                        while written < per_node_cycle {
                            let sz = k.write_size_bc.min(per_node_cycle - written);
                            b.seek(f, base + written);
                            b.write(f, sz);
                            written += sz;
                        }
                        b.barrier();
                    }
                    for c in 0..ch {
                        b.close(quad_file(c));
                    }
                }
            }

            // ---- Phase Three: quadrature reload --------------------
            // The energy-dependent structures are generated first;
            // the staged quadrature is then reloaded and combined, so
            // read activity reappears only near the end of execution
            // (Figure 3).
            b.compute_jittered(k.compute_solve.scale(scale * 0.9), 0.1, &mut rng);
            match v {
                EscatVersion::A => {
                    // Node zero re-reads everything in small chunks and
                    // broadcasts.
                    if is_root {
                        for c in 0..ch {
                            b.open(quad_file(c));
                            let mut read = 0;
                            while read < k.quad_bytes_per_channel {
                                let sz = k.reload_chunk_a.min(k.quad_bytes_per_channel - read);
                                b.read(quad_file(c), sz);
                                read += sz;
                            }
                            b.close(quad_file(c));
                        }
                    }
                    let chunks = quad_total.div_ceil(k.broadcast_chunk);
                    for _ in 0..chunks {
                        b.broadcast(0, k.broadcast_chunk);
                    }
                }
                _ => {
                    // B/C: all nodes reload with M_RECORD in 128 KB
                    // records (twice the stripe unit). The mode is set
                    // with a collective setiomode after the gopen —
                    // the `iomode` rows of Table 2.
                    b.barrier();
                    for c in 0..ch {
                        b.gopen(quad_file(c), n, IoMode::MUnix);
                        b.io(
                            quad_file(c),
                            sioscope_pfs::IoOp::SetIoMode {
                                group: n,
                                mode: IoMode::MRecord,
                                record_size: Some(k.record_read),
                            },
                        );
                        let rounds = k.quad_bytes_per_channel / (u64::from(n) * k.record_read);
                        for _ in 0..rounds {
                            b.read(quad_file(c), k.record_read);
                        }
                        b.close(quad_file(c));
                    }
                }
            }
            b.compute_jittered(k.compute_solve.scale(scale * 0.1), 0.1, &mut rng);

            // ---- Phase Four: compulsory result writes --------------
            if is_root {
                for c in 0..ch {
                    b.open(out_file(c));
                    let mut written = 0;
                    while written < k.output_bytes_per_channel {
                        let sz = k.output_write.min(k.output_bytes_per_channel - written);
                        b.write(out_file(c), sz);
                        written += sz;
                    }
                    b.close(out_file(c));
                }
            }
            b.compute_jittered(k.compute_final.scale(scale), 0.1, &mut rng);
            b.barrier();

            programs.push(b.build());
        }

        Workload {
            name: format!(
                "ESCAT-{}/{}",
                self.version.label(),
                match self.dataset {
                    EscatDataset::Ethylene => "ethylene",
                    EscatDataset::CarbonMonoxide => "carbon-monoxide",
                }
            ),
            version: self.version.label().to_string(),
            os: self.version.os(),
            nodes: n,
            files,
            programs,
            phases: phase_table(v),
        }
    }

    /// The statements a restarted ESCAT run executes before resuming
    /// from a checkpoint: the phase-one compulsory reads (all nodes in
    /// version A; node zero plus broadcasts in B/C) followed by the
    /// initialization compute. The staged quadrature written before
    /// the crash stays on the PFS — it *is* the checkpoint — and phase
    /// three re-reads it through the normal path, so no extra reload
    /// statements are needed here. One entry per node; RNG-free.
    pub fn restart_prologue(&self) -> Vec<Vec<Stmt>> {
        let v = self.version.structure();
        let k = &self.knobs;
        let scale = self.version.compute_scale();
        (0..self.nodes)
            .map(|pid| {
                let mut b = ProgramBuilder::new();
                match v {
                    EscatVersion::A => self.phase1_reads(&mut b),
                    _ => {
                        if pid == 0 {
                            self.phase1_reads(&mut b);
                        }
                        let init_total = k.input_problem_bytes + 2 * k.input_matrix_bytes;
                        let chunks = init_total.div_ceil(k.broadcast_chunk);
                        for _ in 0..chunks {
                            b.broadcast(0, k.broadcast_chunk);
                        }
                    }
                }
                b.compute(k.compute_init.scale(scale));
                b.build()
            })
            .collect()
    }

    /// Build the workload under a checkpoint policy. Commit markers go
    /// after every `interval`-th barrier — the staging-cycle grain of
    /// phase two — and the checkpoint payload is the staged quadrature
    /// files themselves (phase three re-reads them anyway, which is
    /// why ESCAT restarts so cheaply). [`CheckpointPolicy::None`]
    /// keeps the application I/O identical with no markers.
    pub fn recoverable(&self, policy: CheckpointPolicy) -> Recoverable {
        let stride = match policy {
            CheckpointPolicy::None => return Recoverable::plain(self.build()),
            CheckpointPolicy::Fixed { interval } => interval.max(1),
            CheckpointPolicy::Young {
                checkpoint_cost,
                mtbf,
            } => {
                let k = &self.knobs;
                let cycle = (k.compute_stage / u64::from(k.cycles.max(1)))
                    .scale(self.version.compute_scale());
                let ideal = young_interval(checkpoint_cost, mtbf);
                let cycles = if cycle.is_zero() {
                    1.0
                } else {
                    (ideal.as_secs_f64() / cycle.as_secs_f64()).round()
                };
                cycles.clamp(1.0, f64::from(self.knobs.cycles.max(1))) as u32
            }
        };
        let files = (3..3 + self.dataset.channels()).collect();
        Recoverable::annotate(self.build(), stride, self.restart_prologue(), files)
    }

    /// Phase-one read pattern for one reader. The problem-definition
    /// file is parsed in small reads; each matrix file is read with a
    /// leading burst of small reads followed by a few large requests —
    /// matching Figure 2a's version-A mix (97% small requests, large
    /// requests carrying most of the data).
    fn phase1_reads(&self, b: &mut ProgramBuilder) {
        let k = &self.knobs;
        // Problem definition: fully scanned in small reads.
        b.open(0);
        let problem_reads = (k.input_problem_bytes / k.init_small_read) as u32;
        b.read_n(0, problem_reads, k.init_small_read);
        b.close(0);
        // Initial matrices: header/small region then bulk reads.
        for f in 1..3u32 {
            b.open(f);
            b.read_n(f, k.init_small_reads_per_file, k.init_small_read);
            b.read_n(f, k.init_large_reads, k.init_large_read);
            b.close(f);
        }
    }
}

/// Table 1's rows for a structural version.
fn phase_table(v: EscatVersion) -> Vec<PhaseDesc> {
    let m = |s: &str, m: IoMode| (s.to_string(), m);
    match v {
        EscatVersion::A => vec![
            PhaseDesc {
                phase: "Phase One".into(),
                activity: "All Nodes".into(),
                modes: vec![m("inputs", IoMode::MUnix)],
            },
            PhaseDesc {
                phase: "Phase Two".into(),
                activity: "Node zero".into(),
                modes: vec![m("quadrature", IoMode::MUnix)],
            },
            PhaseDesc {
                phase: "Phase Three".into(),
                activity: "Node zero".into(),
                modes: vec![m("quadrature", IoMode::MUnix)],
            },
            PhaseDesc {
                phase: "Phase Four".into(),
                activity: "Node zero".into(),
                modes: vec![m("outputs", IoMode::MUnix)],
            },
        ],
        EscatVersion::B => vec![
            PhaseDesc {
                phase: "Phase One".into(),
                activity: "Node zero".into(),
                modes: vec![m("inputs", IoMode::MUnix)],
            },
            PhaseDesc {
                phase: "Phase Two".into(),
                activity: "All Nodes".into(),
                modes: vec![m("quadrature", IoMode::MUnix)],
            },
            PhaseDesc {
                phase: "Phase Three".into(),
                activity: "All Nodes".into(),
                modes: vec![m("quadrature", IoMode::MRecord)],
            },
            PhaseDesc {
                phase: "Phase Four".into(),
                activity: "Node zero".into(),
                modes: vec![m("outputs", IoMode::MUnix)],
            },
        ],
        EscatVersion::C => vec![
            PhaseDesc {
                phase: "Phase One".into(),
                activity: "Node zero".into(),
                modes: vec![m("inputs", IoMode::MUnix)],
            },
            PhaseDesc {
                phase: "Phase Two".into(),
                activity: "All Nodes".into(),
                modes: vec![m("quadrature", IoMode::MAsync)],
            },
            PhaseDesc {
                phase: "Phase Three".into(),
                activity: "All Nodes".into(),
                modes: vec![m("quadrature", IoMode::MRecord)],
            },
            PhaseDesc {
                phase: "Phase Four".into(),
                activity: "Node zero".into(),
                modes: vec![m("outputs", IoMode::MUnix)],
            },
        ],
        _ => phase_table(v.structure()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Stmt;

    #[test]
    fn all_versions_build_valid_workloads() {
        for v in EscatVersion::progressions() {
            let w = EscatConfig::tiny(v).build();
            let problems = w.validate();
            assert!(problems.is_empty(), "version {v:?} invalid: {problems:?}");
        }
    }

    #[test]
    fn ethylene_matches_paper_scale() {
        let cfg = EscatConfig::ethylene(EscatVersion::C);
        assert_eq!(cfg.nodes, 128);
        assert_eq!(cfg.dataset.channels(), 2);
        let w = cfg.build();
        assert_eq!(w.nodes, 128);
        assert_eq!(w.files.len(), 3 + 2 + 2);
        assert_eq!(w.os, OsRelease::Osf13);
    }

    #[test]
    fn carbon_monoxide_matches_paper_scale() {
        let cfg = EscatConfig::carbon_monoxide(EscatVersion::C);
        assert_eq!(cfg.nodes, 256);
        assert_eq!(cfg.dataset.channels(), 13);
        let w = cfg.build();
        assert_eq!(w.files.len(), 3 + 13 + 13);
    }

    #[test]
    fn version_a_runs_under_osf12_without_masync() {
        let w = EscatConfig::tiny(EscatVersion::A).build();
        assert_eq!(w.os, OsRelease::Osf12);
        assert!(w.validate().is_empty());
    }

    #[test]
    fn version_structure_collapses_intermediates() {
        assert_eq!(EscatVersion::A2.structure(), EscatVersion::A);
        assert_eq!(EscatVersion::B2.structure(), EscatVersion::B);
        assert_eq!(EscatVersion::B3.structure(), EscatVersion::B);
        assert_eq!(EscatVersion::C.structure(), EscatVersion::C);
    }

    #[test]
    fn compute_scales_decrease_monotonically() {
        let scales: Vec<f64> = EscatVersion::progressions()
            .iter()
            .map(|v| v.compute_scale())
            .collect();
        for pair in scales.windows(2) {
            assert!(pair[0] >= pair[1], "scales must not increase: {scales:?}");
        }
        assert_eq!(scales[5], 1.0);
    }

    #[test]
    fn validation_catches_bad_tiling() {
        let mut cfg = EscatConfig::tiny(EscatVersion::C);
        assert!(cfg.validate().is_empty());
        cfg.knobs.quad_bytes_per_channel += 1;
        assert!(!cfg.validate().is_empty());
        let mut cfg = EscatConfig::tiny(EscatVersion::C);
        cfg.knobs.cycles = 3; // not a multiple of 2 channels
        assert!(!cfg.validate().is_empty());
    }

    #[test]
    #[should_panic(expected = "invalid ESCAT config")]
    fn build_panics_on_invalid_config() {
        let mut cfg = EscatConfig::tiny(EscatVersion::C);
        cfg.knobs.quad_bytes_per_channel += 1;
        let _ = cfg.build();
    }

    #[test]
    fn quadrature_tiles_m_record_rounds_exactly() {
        for cfg in [
            EscatConfig::ethylene(EscatVersion::C),
            EscatConfig::carbon_monoxide(EscatVersion::C),
            EscatConfig::tiny(EscatVersion::C),
        ] {
            let per_round = u64::from(cfg.nodes) * cfg.knobs.record_read;
            assert_eq!(
                cfg.knobs.quad_bytes_per_channel % per_round,
                0,
                "quadrature must tile M_RECORD rounds"
            );
        }
    }

    #[test]
    fn declared_volumes_match_quadrature() {
        let cfg = EscatConfig::tiny(EscatVersion::C);
        let w = cfg.build();
        let (read, written) = w.declared_volume();
        let quad = u64::from(cfg.dataset.channels()) * cfg.knobs.quad_bytes_per_channel;
        // Everything written in phase two is re-read in phase three.
        assert!(read >= quad, "read {read} < quadrature {quad}");
        assert!(written >= quad, "written {written} < quadrature {quad}");
    }

    #[test]
    fn version_a_has_all_node_phase1_reads() {
        let w = EscatConfig::tiny(EscatVersion::A).build();
        // Every node opens the input files in version A...
        for prog in &w.programs {
            let opens = prog
                .iter()
                .filter(|s| {
                    matches!(
                        s,
                        Stmt::Io {
                            file: 0..=2,
                            op: sioscope_pfs::IoOp::Open
                        }
                    )
                })
                .count();
            assert_eq!(opens, 3);
        }
        // ...but only node zero in versions B and C.
        let wb = EscatConfig::tiny(EscatVersion::B).build();
        for (pid, prog) in wb.programs.iter().enumerate() {
            let opens = prog
                .iter()
                .filter(|s| {
                    matches!(
                        s,
                        Stmt::Io {
                            file: 0..=2,
                            op: sioscope_pfs::IoOp::Open
                        }
                    )
                })
                .count();
            assert_eq!(opens, if pid == 0 { 3 } else { 0 });
        }
    }

    #[test]
    fn restart_prologue_is_deterministic_and_root_reads() {
        let cfg = EscatConfig::tiny(EscatVersion::C);
        let a = cfg.restart_prologue();
        assert_eq!(a, cfg.restart_prologue());
        assert_eq!(a.len(), cfg.nodes as usize);
        // B/C: only node zero re-reads; everyone broadcasts.
        assert!(a[0].iter().any(|s| matches!(
            s,
            Stmt::Io {
                op: sioscope_pfs::IoOp::Read { .. },
                ..
            }
        )));
        assert!(!a[1].iter().any(|s| matches!(
            s,
            Stmt::Io {
                op: sioscope_pfs::IoOp::Read { .. },
                ..
            }
        )));
        let bcasts = |prog: &[Stmt]| {
            prog.iter()
                .filter(|s| matches!(s, Stmt::Broadcast { .. }))
                .count()
        };
        assert_eq!(bcasts(&a[0]), bcasts(&a[1]), "collective alignment");
        // Version A: every node re-reads, no broadcasts.
        let pa = EscatConfig::tiny(EscatVersion::A).restart_prologue();
        assert!(pa[1].iter().any(|s| matches!(
            s,
            Stmt::Io {
                op: sioscope_pfs::IoOp::Read { .. },
                ..
            }
        )));
        assert_eq!(bcasts(&pa[1]), 0);
    }

    #[test]
    fn recoverable_policies_annotate_and_slice() {
        let cfg = EscatConfig::tiny(EscatVersion::C);
        let none = cfg.recoverable(CheckpointPolicy::None);
        assert_eq!(none.checkpoints(), 0);

        // tiny C: 2 cycles → barriers = cycles + 3 = 5, the last is
        // program-final → 4 markers at stride 1.
        let fixed = cfg.recoverable(CheckpointPolicy::Fixed { interval: 1 });
        assert_eq!(fixed.checkpoints(), 4);
        assert!(fixed.workload().validate().is_empty());
        assert!(fixed.prologue_read_bytes() > 0);
        assert_eq!(fixed.checkpoint_files(), &[3, 4]);
        // Marker 1 sits after cycle 0's barrier: the cycle-0 staging
        // writes to quadrature channel 0 are durable.
        let sliced = fixed.slice_from(Some(1));
        assert!(sliced.validate().is_empty(), "{:?}", sliced.validate());
        assert!(sliced.files[3].initial_size > 0);

        // Version A: barriers = cycles + 1 = 3 → 2 markers.
        let a =
            EscatConfig::tiny(EscatVersion::A).recoverable(CheckpointPolicy::Fixed { interval: 1 });
        assert_eq!(a.checkpoints(), 2);
        let sliced_a = a.slice_from(Some(0));
        assert!(sliced_a.validate().is_empty(), "{:?}", sliced_a.validate());

        // Young: cycle time 4 s; sqrt(2 · 8 s · 16 s) = 16 s → 4
        // cycles, clamped to the 2 cycles available → stride 2 → 2
        // markers (barriers 2 and 4 of 5).
        let young = cfg.recoverable(CheckpointPolicy::Young {
            checkpoint_cost: Time::from_secs(8),
            mtbf: Time::from_secs(16),
        });
        assert_eq!(young.checkpoints(), 2);
        assert!(young.workload().validate().is_empty());
    }

    #[test]
    fn phase_tables_match_table1() {
        let a = phase_table(EscatVersion::A);
        assert_eq!(a[0].activity, "All Nodes");
        assert_eq!(a[1].activity, "Node zero");
        let b = phase_table(EscatVersion::B);
        assert_eq!(b[0].activity, "Node zero");
        assert_eq!(b[2].modes[0].1, IoMode::MRecord);
        let c = phase_table(EscatVersion::C);
        assert_eq!(c[1].modes[0].1, IoMode::MAsync);
        assert_eq!(c[3].modes[0].1, IoMode::MUnix);
    }
}
