//! # sioscope-workloads
//!
//! Synthetic reconstructions of the two Scalable I/O Initiative
//! applications the paper characterizes:
//!
//! * **ESCAT** (§4) — the Schwinger Multichannel electron scattering
//!   code: four I/O phases (compulsory initialization reads, staged
//!   quadrature writes, staged quadrature reads, compulsory result
//!   writes), studied in versions A, B and C on 128 nodes with the
//!   ethylene dataset (2 collision channels) and on 256 nodes with the
//!   carbon monoxide dataset (13 channels).
//! * **PRISM** (§5) — the 3-D spectral-element Navier–Stokes solver:
//!   three I/O phases (initialization reads, checkpointed integration,
//!   post-processing field output), studied in versions A, B and C on
//!   64 nodes (201 elements, Re = 1000, 1250 steps, checkpoints every
//!   250 steps).
//!
//! Each version reproduces the node activity and PFS access modes of
//! the paper's Tables 1 and 4, and request-size distributions
//! consistent with Figures 2–5 and 7–9. Workloads are generated as
//! per-node [`program::Stmt`] sequences consumed by the `sioscope`
//! core simulator.
//!
//! [`synthetic`] additionally provides the parallel-file-system
//! benchmark kernels the paper says should be derived from these
//! characterizations (§7).

pub mod builder;
pub mod checkpoint;
pub mod escat;
pub mod prism;
pub mod program;
pub mod replay;
pub mod streaming;
pub mod synthetic;

pub use checkpoint::{young_interval, CheckpointPolicy, Recoverable};
pub use escat::{EscatConfig, EscatDataset, EscatVersion};
pub use prism::{PrismConfig, PrismVersion};
pub use program::{FileSpec, PhaseDesc, Stmt, Workload};
pub use sioscope_pfs::mode::OsRelease;
pub use streaming::{Burst, StreamCadence};
