//! Streaming cadence extraction: the producer-side view of a coupled
//! in-transit pipeline.
//!
//! A [`StreamCadence`] flattens a checkpointing workload into the
//! sequence the in-transit layer actually sees: alternating compute
//! intervals and write *bursts* (the chunks emitted at each checkpoint
//! barrier). [`PrismConfig::stream_cadence`] derives it from the same
//! configuration and RNG discipline as [`PrismConfig::build`], so the
//! streamed producer and the file-based workload agree step for step
//! on when data becomes available — the differential experiments
//! compare routes, not applications.

use crate::prism::PrismConfig;
use serde::{Deserialize, Serialize};
use sioscope_sim::{DetRng, Time};

/// One checkpoint burst: the compute that precedes it and the chunks
/// it emits, in emission order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Burst {
    /// Wall time the producer computes before this burst becomes
    /// available (the barrier-synchronised interval: max over nodes of
    /// their jittered per-step computes).
    pub compute: Time,
    /// Chunk sizes emitted at the barrier, in order.
    pub chunks: Vec<u64>,
}

impl Burst {
    /// Bytes this burst emits.
    pub fn bytes(&self) -> u64 {
        self.chunks.iter().sum()
    }
}

/// A producer job reduced to its streaming skeleton: named, versioned,
/// sized, and scheduled as a list of bursts.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamCadence {
    /// Workload name (e.g. `PRISM-C`).
    pub name: String,
    /// Version label.
    pub version: String,
    /// Compute nodes driving the producer.
    pub nodes: u32,
    /// Bursts in emission order.
    pub bursts: Vec<Burst>,
}

impl StreamCadence {
    /// Total bytes across all bursts.
    pub fn total_bytes(&self) -> u64 {
        self.bursts.iter().map(Burst::bytes).sum()
    }

    /// Total chunk count across all bursts.
    pub fn total_chunks(&self) -> u64 {
        self.bursts.iter().map(|b| b.chunks.len() as u64).sum()
    }

    /// Largest single chunk (0 for an empty cadence) — the lower bound
    /// a bounded staging queue's depth must clear.
    pub fn max_chunk(&self) -> u64 {
        self.bursts
            .iter()
            .flat_map(|b| b.chunks.iter().copied())
            .max()
            .unwrap_or(0)
    }

    /// Structural problems (empty = valid): a cadence must carry at
    /// least one burst, and no chunk may be empty.
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        if self.bursts.is_empty() {
            problems.push("cadence has no bursts".into());
        }
        if self.nodes == 0 {
            problems.push("cadence needs at least one producer node".into());
        }
        for (i, b) in self.bursts.iter().enumerate() {
            if b.chunks.contains(&0) {
                problems.push(format!("burst {i}: zero-byte chunk"));
            }
        }
        problems
    }
}

impl PrismConfig {
    /// The streaming skeleton of this PRISM configuration: one burst
    /// per checkpoint, each carrying the three flow-statistics files'
    /// writes as chunks (`3 × stats_writes` chunks of `stats_write`
    /// bytes) and preceded by the barrier-synchronised compute of its
    /// checkpoint interval.
    ///
    /// Mirrors [`PrismConfig::build`]'s RNG discipline exactly: one
    /// fork of the root RNG per pid, one jitter draw for the scaled
    /// init compute (10%) and one per integration step (15%), so the
    /// cadence is bit-reproducible against the file-based workload.
    ///
    /// # Panics
    /// Panics if [`PrismConfig::validate`] reports problems.
    pub fn stream_cadence(&self) -> StreamCadence {
        let problems = self.validate();
        assert!(problems.is_empty(), "invalid PRISM config: {problems:?}");
        let k = &self.knobs;
        let scale = self.version.compute_scale();
        let root_rng = DetRng::new(self.seed);

        // Per-node jitter streams, drawn in build() order.
        let mut rngs: Vec<DetRng> = (0..self.nodes)
            .map(|pid| root_rng.fork(u64::from(pid)))
            .collect();
        let init: Vec<Time> = rngs
            .iter_mut()
            .map(|rng| rng.jitter(k.init_compute.scale(scale), 0.1))
            .collect();

        let intervals = self.checkpoints();
        let mut bursts = Vec::with_capacity(intervals as usize);
        let chunk_count = (3 * k.stats_writes) as usize;
        for interval in 0..intervals {
            // Barrier semantics: the interval ends when its slowest
            // node arrives, so the burst's compute is the max over
            // nodes of their summed step jitters (plus init before
            // the first barrier).
            let mut slowest = Time::ZERO;
            for (pid, rng) in rngs.iter_mut().enumerate() {
                let mut t: Time = (0..self.checkpoint_every)
                    .map(|_| rng.jitter(k.step_compute.scale(scale), 0.15))
                    .sum();
                if interval == 0 {
                    t += init[pid];
                }
                slowest = slowest.max(t);
            }
            bursts.push(Burst {
                compute: slowest,
                chunks: vec![k.stats_write; chunk_count],
            });
        }

        StreamCadence {
            name: format!("PRISM-{}", self.version.label()),
            version: self.version.label().to_string(),
            nodes: self.nodes,
            bursts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prism::PrismVersion;

    #[test]
    fn cadence_matches_checkpoint_arithmetic() {
        let cfg = PrismConfig::tiny(PrismVersion::C);
        let c = cfg.stream_cadence();
        assert!(c.validate().is_empty(), "{:?}", c.validate());
        assert_eq!(c.name, "PRISM-C");
        assert_eq!(c.nodes, cfg.nodes);
        assert_eq!(c.bursts.len(), cfg.checkpoints() as usize);
        let per_burst = 3 * cfg.knobs.stats_writes as u64;
        assert_eq!(c.total_chunks(), per_burst * u64::from(cfg.checkpoints()));
        assert_eq!(
            c.total_bytes(),
            per_burst * cfg.knobs.stats_write * u64::from(cfg.checkpoints())
        );
        assert_eq!(c.max_chunk(), cfg.knobs.stats_write);
    }

    #[test]
    fn cadence_is_deterministic_and_seed_sensitive() {
        let cfg = PrismConfig::tiny(PrismVersion::B);
        assert_eq!(cfg.stream_cadence(), cfg.stream_cadence());
        let mut other = cfg.clone();
        other.seed ^= 0xdead_beef;
        assert_ne!(
            cfg.stream_cadence().bursts[0].compute,
            other.stream_cadence().bursts[0].compute
        );
    }

    #[test]
    fn first_burst_carries_init_compute() {
        let cfg = PrismConfig::tiny(PrismVersion::A);
        let c = cfg.stream_cadence();
        // Init compute (≈1 s here) dwarfs one 5-step interval of 50 ms
        // steps, so the first burst's compute must exceed the second's.
        assert!(c.bursts[0].compute > c.bursts[1].compute);
    }

    #[test]
    fn interval_compute_is_barrier_max_over_nodes() {
        // With one node the burst compute is just that node's sum —
        // strictly below a many-node max drawn from the same base.
        let mut one = PrismConfig::tiny(PrismVersion::C);
        one.nodes = 1;
        let mut many = PrismConfig::tiny(PrismVersion::C);
        many.nodes = 8;
        let c1 = one.stream_cadence();
        let c8 = many.stream_cadence();
        // Node 0's jitter stream is identical (same fork), so the
        // 8-node barrier max can only be ≥ the single-node time.
        assert!(c8.bursts[1].compute >= c1.bursts[1].compute);
    }

    #[test]
    #[should_panic(expected = "invalid PRISM config")]
    fn cadence_panics_on_invalid_config() {
        let mut cfg = PrismConfig::tiny(PrismVersion::A);
        cfg.checkpoint_every = 0;
        let _ = cfg.stream_cadence();
    }
}
