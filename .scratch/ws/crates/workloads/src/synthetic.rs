//! The derived parallel-file-system benchmark suite.
//!
//! The paper closes: *"From these characterizations, a comprehensive
//! set of parallel file system I/O benchmarks will be derived."* This
//! module is that derivation: each kernel isolates one access pattern
//! the ESCAT/PRISM study found to matter, parameterized by node count,
//! request size and volume, so file-system variants (modes, policies,
//! machine configurations) can be compared on exactly the behaviours
//! the applications exhibited.
//!
//! | kernel | pattern distilled from |
//! |---|---|
//! | [`sequential_scan`] | ESCAT phase-3 reload / PRISM restart body |
//! | [`strided_read`] | per-node slices of a shared matrix |
//! | [`checkpoint_burst`] | PRISM's periodic statistics bursts |
//! | [`collective_reload`] | ESCAT's M_RECORD quadrature rounds |
//! | [`global_init_read`] | PRISM's M_GLOBAL parameter reads |
//! | [`log_append`] | stdout-style M_LOG appends |
//! | [`random_small_io`] | the untuned small-request pathology |
//! | [`staging_pipeline`] | ESCAT's write-then-reload staging cycle |
//! | [`msync_result_gather`] | node-ordered variable-size result output (M_SYNC) |

use crate::program::{FileSpec, Stmt, Workload};
use serde::{Deserialize, Serialize};
use sioscope_pfs::mode::OsRelease;
use sioscope_pfs::{IoMode, IoOp};
use sioscope_sim::{DetRng, Time};

/// Common kernel parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KernelConfig {
    /// Compute nodes.
    pub nodes: u32,
    /// Request size in bytes.
    pub request: u64,
    /// Total bytes moved across all nodes.
    pub total_bytes: u64,
    /// Compute time inserted between consecutive requests per node.
    pub think_time: Time,
    /// RNG seed (random kernels).
    pub seed: u64,
}

impl KernelConfig {
    /// A small default: 8 nodes, 4 KB requests, 16 MB total.
    pub fn small() -> Self {
        KernelConfig {
            nodes: 8,
            request: 4096,
            total_bytes: 16 << 20,
            think_time: Time::from_micros(200),
            seed: 0xBE7C,
        }
    }

    /// Paper-scale default: 64 nodes, 8 KB requests, 256 MB total —
    /// requests small enough to exercise the client buffering and
    /// policy paths (the regime the paper's applications lived in).
    pub fn paper_scale() -> Self {
        KernelConfig {
            nodes: 64,
            request: 8 << 10,
            total_bytes: 256 << 20,
            think_time: Time::from_micros(500),
            seed: 0x510,
        }
    }

    fn requests_per_node(&self) -> u64 {
        (self.total_bytes / u64::from(self.nodes) / self.request).max(1)
    }
}

fn workload(name: &str, nodes: u32, files: Vec<FileSpec>, programs: Vec<Vec<Stmt>>) -> Workload {
    Workload {
        name: format!("synthetic/{name}"),
        version: "bench".into(),
        os: OsRelease::Osf13,
        nodes,
        files,
        programs,
        phases: vec![],
    }
}

/// Every node scans its own contiguous region of a shared file
/// sequentially — the staged-data reload pattern.
pub fn sequential_scan(cfg: &KernelConfig) -> Workload {
    let per_node = cfg.requests_per_node() * cfg.request;
    let programs = (0..cfg.nodes)
        .map(|pid| {
            let mut p = vec![
                Stmt::Io {
                    file: 0,
                    op: IoOp::Gopen {
                        group: cfg.nodes,
                        mode: IoMode::MAsync,
                        record_size: None,
                    },
                },
                Stmt::Io {
                    file: 0,
                    op: IoOp::Seek {
                        offset: u64::from(pid) * per_node,
                    },
                },
            ];
            for _ in 0..cfg.requests_per_node() {
                p.push(Stmt::Io {
                    file: 0,
                    op: IoOp::Read { size: cfg.request },
                });
                p.push(Stmt::Compute(cfg.think_time));
            }
            p.push(Stmt::Io {
                file: 0,
                op: IoOp::Close,
            });
            p
        })
        .collect();
    workload(
        "sequential-scan",
        cfg.nodes,
        vec![FileSpec {
            name: "scan.dat".into(),
            initial_size: per_node * u64::from(cfg.nodes),
        }],
        programs,
    )
}

/// Nodes read interleaved stripes of a shared file: node `i` reads
/// request `k` at offset `(k * nodes + i) * request` — the classic
/// strided distribution of a block-cyclic matrix.
pub fn strided_read(cfg: &KernelConfig) -> Workload {
    let reqs = cfg.requests_per_node();
    let programs = (0..cfg.nodes)
        .map(|pid| {
            let mut p = vec![Stmt::Io {
                file: 0,
                op: IoOp::Gopen {
                    group: cfg.nodes,
                    mode: IoMode::MAsync,
                    record_size: None,
                },
            }];
            for k in 0..reqs {
                let offset = (k * u64::from(cfg.nodes) + u64::from(pid)) * cfg.request;
                p.push(Stmt::Io {
                    file: 0,
                    op: IoOp::Seek { offset },
                });
                p.push(Stmt::Io {
                    file: 0,
                    op: IoOp::Read { size: cfg.request },
                });
                p.push(Stmt::Compute(cfg.think_time));
            }
            p.push(Stmt::Io {
                file: 0,
                op: IoOp::Close,
            });
            p
        })
        .collect();
    workload(
        "strided-read",
        cfg.nodes,
        vec![FileSpec {
            name: "strided.dat".into(),
            initial_size: reqs * u64::from(cfg.nodes) * cfg.request,
        }],
        programs,
    )
}

/// Synchronized periodic write bursts from node zero (measurement
/// records) plus all-node barriers — the checkpoint shape.
pub fn checkpoint_burst(cfg: &KernelConfig, bursts: u32) -> Workload {
    let writes_per_burst = (cfg.requests_per_node() / u64::from(bursts.max(1))).max(1);
    let programs = (0..cfg.nodes)
        .map(|pid| {
            let mut p = Vec::new();
            if pid == 0 {
                p.push(Stmt::Io {
                    file: 0,
                    op: IoOp::Open,
                });
            }
            for _ in 0..bursts {
                p.push(Stmt::Compute(Time::from_millis(200)));
                if pid == 0 {
                    for _ in 0..writes_per_burst {
                        p.push(Stmt::Io {
                            file: 0,
                            op: IoOp::Write { size: cfg.request },
                        });
                    }
                    p.push(Stmt::Io {
                        file: 0,
                        op: IoOp::Flush,
                    });
                }
                p.push(Stmt::Barrier);
            }
            if pid == 0 {
                p.push(Stmt::Io {
                    file: 0,
                    op: IoOp::Close,
                });
            }
            p
        })
        .collect();
    workload(
        "checkpoint-burst",
        cfg.nodes,
        vec![FileSpec {
            name: "ckpt.dat".into(),
            initial_size: 0,
        }],
        programs,
    )
}

/// All nodes reload staged data in node-ordered M_RECORD rounds —
/// the ESCAT phase-3 kernel. The request size is forced to a record
/// that tiles (`total = nodes * request * rounds`).
pub fn collective_reload(cfg: &KernelConfig) -> Workload {
    let rounds = cfg.requests_per_node().max(1);
    let programs = (0..cfg.nodes)
        .map(|_| {
            let mut p = vec![Stmt::Io {
                file: 0,
                op: IoOp::Gopen {
                    group: cfg.nodes,
                    mode: IoMode::MRecord,
                    record_size: Some(cfg.request),
                },
            }];
            for _ in 0..rounds {
                p.push(Stmt::Io {
                    file: 0,
                    op: IoOp::Read { size: cfg.request },
                });
                p.push(Stmt::Compute(cfg.think_time));
            }
            p.push(Stmt::Io {
                file: 0,
                op: IoOp::Close,
            });
            p
        })
        .collect();
    workload(
        "collective-reload",
        cfg.nodes,
        vec![FileSpec {
            name: "staged.dat".into(),
            initial_size: rounds * u64::from(cfg.nodes) * cfg.request,
        }],
        programs,
    )
}

/// All nodes read the same initialization data through M_GLOBAL —
/// one disk access per request regardless of node count.
pub fn global_init_read(cfg: &KernelConfig) -> Workload {
    let reqs = (cfg.total_bytes / cfg.request).clamp(1, 4096);
    let programs = (0..cfg.nodes)
        .map(|_| {
            let mut p = vec![Stmt::Io {
                file: 0,
                op: IoOp::Gopen {
                    group: cfg.nodes,
                    mode: IoMode::MGlobal,
                    record_size: None,
                },
            }];
            for _ in 0..reqs {
                p.push(Stmt::Io {
                    file: 0,
                    op: IoOp::Read { size: cfg.request },
                });
            }
            p.push(Stmt::Io {
                file: 0,
                op: IoOp::Close,
            });
            p
        })
        .collect();
    workload(
        "global-init-read",
        cfg.nodes,
        vec![FileSpec {
            name: "init.dat".into(),
            initial_size: reqs * cfg.request,
        }],
        programs,
    )
}

/// Unsynchronized first-come-first-served appends to a shared log —
/// the stdout pattern (M_LOG).
pub fn log_append(cfg: &KernelConfig) -> Workload {
    let reqs = cfg.requests_per_node();
    let mut root_rng = DetRng::new(cfg.seed);
    let programs = (0..cfg.nodes)
        .map(|pid| {
            let mut rng = root_rng.fork(u64::from(pid));
            let mut p = vec![Stmt::Io {
                file: 0,
                op: IoOp::Gopen {
                    group: cfg.nodes,
                    mode: IoMode::MLog,
                    record_size: None,
                },
            }];
            for _ in 0..reqs {
                p.push(Stmt::Compute(rng.jitter(cfg.think_time, 0.5)));
                p.push(Stmt::Io {
                    file: 0,
                    op: IoOp::Write { size: cfg.request },
                });
            }
            p.push(Stmt::Io {
                file: 0,
                op: IoOp::Close,
            });
            p
        })
        .collect();
    let _ = &mut root_rng;
    workload(
        "log-append",
        cfg.nodes,
        vec![FileSpec {
            name: "app.log".into(),
            initial_size: 0,
        }],
        programs,
    )
}

/// Random small reads over a large shared file with buffering off —
/// the pathology the paper's developers tuned away from.
pub fn random_small_io(cfg: &KernelConfig) -> Workload {
    let reqs = cfg.requests_per_node();
    let extent = cfg.total_bytes.max(cfg.request * 2);
    let root_rng = DetRng::new(cfg.seed);
    let programs = (0..cfg.nodes)
        .map(|pid| {
            let mut rng = root_rng.fork(u64::from(pid));
            let mut p = vec![
                Stmt::Io {
                    file: 0,
                    op: IoOp::Gopen {
                        group: cfg.nodes,
                        mode: IoMode::MAsync,
                        record_size: None,
                    },
                },
                Stmt::Io {
                    file: 0,
                    op: IoOp::SetBuffering { enabled: false },
                },
            ];
            for _ in 0..reqs {
                let offset = rng.range_inclusive(0, extent - cfg.request);
                p.push(Stmt::Io {
                    file: 0,
                    op: IoOp::Seek { offset },
                });
                p.push(Stmt::Io {
                    file: 0,
                    op: IoOp::Read { size: cfg.request },
                });
                p.push(Stmt::Compute(cfg.think_time));
            }
            p.push(Stmt::Io {
                file: 0,
                op: IoOp::Close,
            });
            p
        })
        .collect();
    workload(
        "random-small-io",
        cfg.nodes,
        vec![FileSpec {
            name: "random.dat".into(),
            initial_size: extent,
        }],
        programs,
    )
}

/// Write staged data from all nodes (M_ASYNC), synchronize, reload it
/// collectively (M_RECORD) — ESCAT's full out-of-core staging cycle.
pub fn staging_pipeline(cfg: &KernelConfig) -> Workload {
    let record = cfg.request.max(64 << 10);
    let rounds = (cfg.total_bytes / (u64::from(cfg.nodes) * record)).max(1);
    let per_node = rounds * record;
    let programs = (0..cfg.nodes)
        .map(|pid| {
            let mut p = vec![
                Stmt::Io {
                    file: 0,
                    op: IoOp::Gopen {
                        group: cfg.nodes,
                        mode: IoMode::MAsync,
                        record_size: None,
                    },
                },
                Stmt::Io {
                    file: 0,
                    op: IoOp::Seek {
                        offset: u64::from(pid) * per_node,
                    },
                },
            ];
            for _ in 0..rounds {
                p.push(Stmt::Io {
                    file: 0,
                    op: IoOp::Write { size: record },
                });
                p.push(Stmt::Compute(cfg.think_time));
            }
            p.push(Stmt::Io {
                file: 0,
                op: IoOp::Close,
            });
            p.push(Stmt::Barrier);
            p.push(Stmt::Io {
                file: 0,
                op: IoOp::Gopen {
                    group: cfg.nodes,
                    mode: IoMode::MRecord,
                    record_size: Some(record),
                },
            });
            for _ in 0..rounds {
                p.push(Stmt::Io {
                    file: 0,
                    op: IoOp::Read { size: record },
                });
            }
            p.push(Stmt::Io {
                file: 0,
                op: IoOp::Close,
            });
            p
        })
        .collect();
    workload(
        "staging-pipeline",
        cfg.nodes,
        vec![FileSpec {
            name: "stage.dat".into(),
            initial_size: 0,
        }],
        programs,
    )
}

/// Every node contributes a variable-size result record to a shared
/// output file in node order through M_SYNC — the synchronized result
/// gather the mode exists for. Node `i` writes `request + i * 256`
/// bytes per round.
pub fn msync_result_gather(cfg: &KernelConfig) -> Workload {
    let rounds = cfg.requests_per_node().clamp(1, 512);
    let programs = (0..cfg.nodes)
        .map(|pid| {
            let my_size = cfg.request + u64::from(pid) * 256;
            let mut p = vec![Stmt::Io {
                file: 0,
                op: IoOp::Gopen {
                    group: cfg.nodes,
                    mode: IoMode::MSync,
                    record_size: None,
                },
            }];
            for _ in 0..rounds {
                p.push(Stmt::Compute(cfg.think_time));
                p.push(Stmt::Io {
                    file: 0,
                    op: IoOp::Write { size: my_size },
                });
            }
            p.push(Stmt::Io {
                file: 0,
                op: IoOp::Close,
            });
            p
        })
        .collect();
    workload(
        "msync-result-gather",
        cfg.nodes,
        vec![FileSpec {
            name: "results.dat".into(),
            initial_size: 0,
        }],
        programs,
    )
}

/// A vector-supercomputer-era workload for the §2 related-work
/// contrast: one process (the Cray had no I/O parallelism to speak
/// of) cycling through compute → burst-write → compute phases with
/// clockwork regularity — the "highly regular, cyclical, and bursty"
/// behaviour Miller & Katz reported, against which the paper's
/// Paragon workloads look irregular.
pub fn cray_cyclical(cfg: &KernelConfig, cycles: u32) -> Workload {
    let writes_per_cycle = (cfg.requests_per_node() / u64::from(cycles.max(1))).max(1);
    let mut p = vec![Stmt::Io {
        file: 0,
        op: IoOp::Open,
    }];
    for _ in 0..cycles {
        p.push(Stmt::Compute(Time::from_secs(30)));
        for _ in 0..writes_per_cycle {
            p.push(Stmt::Io {
                file: 0,
                op: IoOp::Write { size: cfg.request },
            });
        }
    }
    p.push(Stmt::Io {
        file: 0,
        op: IoOp::Close,
    });
    workload(
        "cray-cyclical",
        1,
        vec![FileSpec {
            name: "cray.dat".into(),
            initial_size: 0,
        }],
        vec![p],
    )
}

/// All kernels, with names, at one configuration.
pub fn suite(cfg: &KernelConfig) -> Vec<Workload> {
    vec![
        sequential_scan(cfg),
        strided_read(cfg),
        checkpoint_burst(cfg, 5),
        collective_reload(cfg),
        global_init_read(cfg),
        log_append(cfg),
        random_small_io(cfg),
        staging_pipeline(cfg),
        msync_result_gather(cfg),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kernels_validate() {
        let cfg = KernelConfig::small();
        for w in suite(&cfg) {
            let problems = w.validate();
            assert!(problems.is_empty(), "{}: {problems:?}", w.name);
        }
    }

    #[test]
    fn suite_has_nine_distinct_kernels() {
        let cfg = KernelConfig::small();
        let names: Vec<String> = suite(&cfg).iter().map(|w| w.name.clone()).collect();
        let set: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(set.len(), 9);
    }

    #[test]
    fn cray_kernel_is_single_node_and_cyclical() {
        let cfg = KernelConfig::small();
        let w = cray_cyclical(&cfg, 5);
        assert_eq!(w.nodes, 1);
        assert!(w.validate().is_empty());
        let computes = w.programs[0]
            .iter()
            .filter(|s| matches!(s, Stmt::Compute(_)))
            .count();
        assert_eq!(computes, 5, "one compute burst per cycle");
    }

    #[test]
    fn msync_gather_writes_node_ordered_variable_sizes() {
        let cfg = KernelConfig::small();
        let w = msync_result_gather(&cfg);
        assert!(w.validate().is_empty());
        // Node sizes differ: the M_SYNC mode's distinguishing feature.
        let size_of = |pid: usize| -> u64 {
            w.programs[pid]
                .iter()
                .find_map(|s| match s {
                    Stmt::Io {
                        op: IoOp::Write { size },
                        ..
                    } => Some(*size),
                    _ => None,
                })
                .expect("writes present")
        };
        assert_ne!(size_of(0), size_of(1));
    }

    #[test]
    fn volumes_match_configuration() {
        let cfg = KernelConfig::small();
        let (read, _) = sequential_scan(&cfg).declared_volume();
        assert_eq!(read, cfg.total_bytes);
        let (read, _) = strided_read(&cfg).declared_volume();
        assert_eq!(read, cfg.total_bytes);
        let (_, written) = log_append(&cfg).declared_volume();
        assert_eq!(written, cfg.total_bytes);
        // Staging moves the volume twice: once out, once back.
        let (read, written) = staging_pipeline(&cfg).declared_volume();
        assert_eq!(read, written);
    }

    #[test]
    fn collective_reload_tiles_records() {
        let cfg = KernelConfig::small();
        let w = collective_reload(&cfg);
        let (read, _) = w.declared_volume();
        assert_eq!(read % (u64::from(cfg.nodes) * cfg.request), 0);
    }

    #[test]
    fn checkpoint_burst_writes_through_node_zero_only() {
        let cfg = KernelConfig::small();
        let w = checkpoint_burst(&cfg, 4);
        for (pid, prog) in w.programs.iter().enumerate() {
            let writes = prog.iter().any(|s| {
                matches!(
                    s,
                    Stmt::Io {
                        op: IoOp::Write { .. },
                        ..
                    }
                )
            });
            assert_eq!(writes, pid == 0);
        }
    }

    #[test]
    fn random_kernel_is_deterministic_per_seed() {
        let cfg = KernelConfig::small();
        let a = random_small_io(&cfg);
        let b = random_small_io(&cfg);
        assert_eq!(a.programs, b.programs);
        let mut cfg2 = cfg.clone();
        cfg2.seed += 1;
        let c = random_small_io(&cfg2);
        assert_ne!(a.programs, c.programs);
    }
}
