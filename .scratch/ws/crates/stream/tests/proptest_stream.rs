//! Property tests for the bounded staging queue: byte conservation,
//! FIFO delivery, same-seed replay identity, and the equivalence of a
//! depth-unbounded channel with an effectively infinite depth.

use proptest::prelude::*;
use sioscope_sim::Time;
use sioscope_stream::{ChannelStats, PushReceipt, StagingConfig, StreamChannel, TakeReceipt};

/// Receipts, the occupancy ledger, and the final channel statistics
/// from one driven run.
type DriveOutcome = (
    Vec<(PushReceipt, TakeReceipt)>,
    Vec<(Time, u64)>,
    ChannelStats,
);

/// One driven run: push each chunk (producer clock advances to
/// `send_done` plus its gap), then take it as soon as both the chunk
/// and the consumer are ready (consumer busy for `busy_ns` per take).
fn drive(
    depth: u64,
    chunks: &[(u64, u64)], // (bytes, producer gap ns)
    busy_ns: u64,
) -> DriveOutcome {
    let mut cfg = StagingConfig::paragon(depth);
    cfg.ingest_bw = 1_000_000;
    cfg.egress_bw = 1_000_000;
    let mut c = StreamChannel::new(cfg);
    let mut now = Time::ZERO;
    let mut free = Time::ZERO;
    let mut receipts = Vec::with_capacity(chunks.len());
    for &(bytes, gap) in chunks {
        let p = c.push(now, bytes);
        now = p.send_done + Time::from_nanos(gap);
        let t = c.take(free.max(p.ready_at));
        free = t.egress_done + Time::from_nanos(busy_ns);
        receipts.push((p, t));
        assert!(c.conserves(), "mid-run ledger must conserve");
    }
    (receipts, c.occupancy_timeline(), c.stats().clone())
}

fn chunk_strategy() -> impl Strategy<Value = Vec<(u64, u64)>> {
    prop::collection::vec((1u64..=4096, 0u64..200_000), 1..48)
}

proptest! {
    #[test]
    fn bytes_are_conserved_and_fully_delivered(
        chunks in chunk_strategy(),
        depth_chunks in 1u64..8,
        busy in 0u64..2_000_000,
    ) {
        let depth = depth_chunks * 4096; // always >= the largest chunk
        let (receipts, _, stats) = drive(depth, &chunks, busy);
        let pushed: u64 = chunks.iter().map(|&(b, _)| b).sum();
        prop_assert_eq!(stats.ingested_bytes, pushed);
        prop_assert_eq!(stats.egressed_bytes, pushed);
        prop_assert_eq!(stats.ingested_chunks, chunks.len() as u64);
        prop_assert_eq!(stats.egressed_chunks, chunks.len() as u64);
        prop_assert!(stats.conserves(0, 0));
        // Every take starts no earlier than its chunk's visibility.
        for (p, t) in &receipts {
            prop_assert!(t.start >= p.ready_at);
            prop_assert!(t.egress_done >= t.start);
        }
    }

    #[test]
    fn delivery_is_fifo_in_push_order(
        chunks in chunk_strategy(),
        busy in 0u64..2_000_000,
    ) {
        let (receipts, _, _) = drive(0, &chunks, busy);
        for (i, (p, t)) in receipts.iter().enumerate() {
            prop_assert_eq!(p.seq, i as u64);
            prop_assert_eq!(t.seq, i as u64);
            prop_assert_eq!(t.bytes, chunks[i].0);
        }
        // Consumer drain starts never reorder.
        for w in receipts.windows(2) {
            prop_assert!(w[0].1.start <= w[1].1.start);
        }
    }

    #[test]
    fn same_inputs_replay_bit_identically(
        chunks in chunk_strategy(),
        depth_chunks in 0u64..6,
        busy in 0u64..2_000_000,
    ) {
        let depth = depth_chunks * 4096;
        let a = drive(depth, &chunks, busy);
        let b = drive(depth, &chunks, busy);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn unbounded_equals_effectively_infinite_depth(
        chunks in chunk_strategy(),
        busy in 0u64..2_000_000,
    ) {
        let unbounded = drive(0, &chunks, busy);
        let huge = drive(u64::MAX / 2, &chunks, busy);
        prop_assert_eq!(&unbounded, &huge);
        prop_assert_eq!(unbounded.2.producer_stall, Time::ZERO);
    }

    #[test]
    fn tighter_depth_never_reduces_stall(
        chunks in chunk_strategy(),
        busy in 0u64..2_000_000,
    ) {
        let tight = drive(4096, &chunks, busy);
        let loose = drive(8 * 4096, &chunks, busy);
        prop_assert!(tight.2.producer_stall >= loose.2.producer_stall);
    }
}
