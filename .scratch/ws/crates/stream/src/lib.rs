//! In-transit streaming primitives: bounded staging-node queues with
//! credit-based backpressure.
//!
//! The paper's workloads move checkpoint and analysis data through PFS
//! files; modern pipelines route the same producer cadence through an
//! in-transit staging layer instead, with the consumer attached to the
//! far end of a bounded queue. This crate models that layer as a pure,
//! deterministic state machine:
//!
//! * [`StagingNode`] — one staging node: a bounded byte queue fed at
//!   `ingest_bw` and drained at `egress_bw`, with admission blocking
//!   (credit-based backpressure) when the queue is full;
//! * [`StreamChannel`] — the producer/consumer facing channel over a
//!   staging node: FIFO chunk delivery with receipts, a byte-exact
//!   ledger ([`ChannelStats`]) and a queue-occupancy timeline;
//! * [`StallCalendar`] — consumer outage windows (the `consumer-crash`
//!   fault class): a frozen consumer stops granting credits, which is
//!   what ultimately stalls the producer.
//!
//! All timing arithmetic is integer nanoseconds computed in `u128`, so
//! identical inputs replay to bit-identical outputs on every platform.

#![warn(missing_docs)]

use sioscope_sim::Time;
use std::collections::VecDeque;

/// Exact transfer time of `bytes` at `bw` bytes/second, in integer
/// nanoseconds (round-up, so nonzero payloads always cost time).
pub fn transfer_time(bytes: u64, bw: u64) -> Time {
    if bytes == 0 || bw == 0 {
        return Time::ZERO;
    }
    let nanos = (u128::from(bytes) * 1_000_000_000).div_ceil(u128::from(bw));
    Time::from_nanos(nanos as u64)
}

/// Configuration of one staging node and the mesh path to it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StagingConfig {
    /// Queue capacity in bytes; `0` means unbounded (infinite
    /// credits — the producer never blocks on the queue).
    pub depth: u64,
    /// Producer-side ingest bandwidth, bytes/second.
    pub ingest_bw: u64,
    /// Consumer-side egress bandwidth, bytes/second.
    pub egress_bw: u64,
    /// Mesh latency per hop between producer partition and the
    /// staging node.
    pub hop_latency: Time,
    /// Mesh hops the payload crosses (placement-derived).
    pub hops: u32,
}

impl StagingConfig {
    /// The Paragon-class staging node the experiments use: mesh-link
    /// bandwidth (memory-to-memory, no disks in the path) and
    /// microsecond-scale hop latency.
    pub fn paragon(depth: u64) -> StagingConfig {
        StagingConfig {
            depth,
            ingest_bw: 50_000_000,
            egress_bw: 50_000_000,
            hop_latency: Time::from_nanos(10_000),
            hops: 1,
        }
    }

    /// Total mesh latency of the configured path.
    pub fn path_latency(&self) -> Time {
        Time::from_nanos(self.hop_latency.as_nanos() * u64::from(self.hops))
    }

    /// Structural validation against the largest chunk the producer
    /// will offer. A bounded queue smaller than one chunk can never
    /// admit it — that is a deadlock, not backpressure — and zero
    /// bandwidth never transfers anything. Returns problems (empty =
    /// valid).
    pub fn validate(&self, max_chunk: u64) -> Vec<String> {
        let mut problems = Vec::new();
        if self.ingest_bw == 0 {
            problems.push("ingest bandwidth must be nonzero".to_string());
        }
        if self.egress_bw == 0 {
            problems.push("egress bandwidth must be nonzero".to_string());
        }
        if self.depth > 0 && max_chunk > self.depth {
            problems.push(format!(
                "queue depth {} cannot admit a {}-byte chunk",
                self.depth, max_chunk
            ));
        }
        problems
    }
}

/// One staging node: the bounded byte queue and its drain ledger. The
/// node tracks which admitted bytes are still resident and retires
/// them as their egress completes, which is exactly when their credits
/// return to the producer.
#[derive(Debug, Clone)]
pub struct StagingNode {
    cfg: StagingConfig,
    /// Bytes admitted and not yet retired (resident in the queue).
    resident: u64,
    /// Egress completions not yet retired: `(egress_done, bytes)` in
    /// FIFO (and therefore time) order.
    draining: VecDeque<(Time, u64)>,
}

impl StagingNode {
    /// A fresh, empty staging node.
    pub fn new(cfg: StagingConfig) -> StagingNode {
        StagingNode {
            cfg,
            resident: 0,
            draining: VecDeque::new(),
        }
    }

    /// The node's configuration.
    pub fn config(&self) -> &StagingConfig {
        &self.cfg
    }

    /// Bytes currently resident as of the last `admit`/`retire_until`.
    pub fn resident(&self) -> u64 {
        self.resident
    }

    /// Retire every drained chunk whose egress completed at or before
    /// `now`, returning the credits to the queue.
    fn retire_until(&mut self, now: Time) {
        while let Some(&(done, bytes)) = self.draining.front() {
            if done > now {
                break;
            }
            self.draining.pop_front();
            self.resident -= bytes;
        }
    }

    /// Admit `bytes` wanting to enter at `at`: returns the admission
    /// instant, delayed until enough credits have returned when the
    /// queue is bounded. Panics if the chunk can never fit — callers
    /// validate via [`StagingConfig::validate`] first.
    pub fn admit(&mut self, at: Time, bytes: u64) -> Time {
        let mut start = at;
        self.retire_until(start);
        if self.cfg.depth > 0 {
            while self.resident + bytes > self.cfg.depth {
                let (done, freed) = self
                    .draining
                    .pop_front()
                    .expect("bounded queue deadlock: chunk exceeds depth (validate first)");
                start = start.max(done);
                self.resident -= freed;
            }
        }
        self.resident += bytes;
        start
    }

    /// Record a scheduled egress completion for previously admitted
    /// bytes; the credits return at `egress_done`.
    pub fn schedule_drain(&mut self, egress_done: Time, bytes: u64) {
        debug_assert!(self.draining.back().is_none_or(|&(t, _)| t <= egress_done));
        self.draining.push_back((egress_done, bytes));
    }
}

/// Receipt the producer gets back from a [`StreamChannel::push`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PushReceipt {
    /// FIFO sequence number of the chunk.
    pub seq: u64,
    /// When the send actually began (`>=` the offered instant; later
    /// exactly when backpressure blocked the producer).
    pub start: Time,
    /// When the producer finished sending and regained the CPU.
    pub send_done: Time,
    /// When the chunk is visible to the consumer (send + mesh path).
    pub ready_at: Time,
    /// Backpressure stall charged to the producer for this chunk.
    pub stalled: Time,
}

/// Receipt the consumer gets back from a [`StreamChannel::take`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TakeReceipt {
    /// FIFO sequence number of the chunk (push order).
    pub seq: u64,
    /// Chunk payload size.
    pub bytes: u64,
    /// When the chunk became visible to the consumer.
    pub ready_at: Time,
    /// When the consumer began draining it.
    pub start: Time,
    /// When the drain completed (credits return to the producer).
    pub egress_done: Time,
}

/// The channel's byte-exact ledger.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChannelStats {
    /// Bytes the producer pushed.
    pub ingested_bytes: u64,
    /// Bytes the consumer took (egress scheduled).
    pub egressed_bytes: u64,
    /// Chunks pushed.
    pub ingested_chunks: u64,
    /// Chunks taken.
    pub egressed_chunks: u64,
    /// Total producer backpressure stall.
    pub producer_stall: Time,
}

impl ChannelStats {
    /// The conservation law no schedule may break: every pushed byte
    /// and chunk is either taken or still pending in the queue.
    pub fn conserves(&self, pending_bytes: u64, pending_chunks: u64) -> bool {
        self.ingested_bytes == self.egressed_bytes + pending_bytes
            && self.ingested_chunks == self.egressed_chunks + pending_chunks
    }
}

/// A chunk pushed but not yet taken.
#[derive(Debug, Clone, Copy)]
struct PendingChunk {
    seq: u64,
    bytes: u64,
    ready_at: Time,
}

/// The producer/consumer facing stream channel over one staging node:
/// FIFO chunk delivery with blocking-on-full push semantics, a byte
/// ledger, and a queue-occupancy timeline.
///
/// The channel is driven in program order — each chunk is pushed and
/// then taken before the next chunk is pushed. That discipline is what
/// lets a coupled pair of jobs be simulated as a single deterministic
/// recurrence: a take only ever depends on earlier pushes, never on
/// later ones, so simulated time may flow backwards between calls
/// while every receipt stays causally consistent.
#[derive(Debug, Clone)]
pub struct StreamChannel {
    node: StagingNode,
    pending: VecDeque<PendingChunk>,
    pending_bytes: u64,
    next_seq: u64,
    stats: ChannelStats,
    /// Signed occupancy deltas: `(instant, +bytes)` at admission,
    /// `(instant, -bytes)` at egress completion.
    deltas: Vec<(Time, i64)>,
}

impl StreamChannel {
    /// A fresh channel over a staging node with `cfg`.
    pub fn new(cfg: StagingConfig) -> StreamChannel {
        StreamChannel {
            node: StagingNode::new(cfg),
            pending: VecDeque::new(),
            pending_bytes: 0,
            next_seq: 0,
            stats: ChannelStats::default(),
            deltas: Vec::new(),
        }
    }

    /// The staging configuration.
    pub fn config(&self) -> &StagingConfig {
        self.node.config()
    }

    /// The ledger so far.
    pub fn stats(&self) -> &ChannelStats {
        &self.stats
    }

    /// Bytes pushed but not yet taken.
    pub fn pending_bytes(&self) -> u64 {
        self.pending_bytes
    }

    /// Chunks pushed but not yet taken.
    pub fn pending_chunks(&self) -> u64 {
        self.pending.len() as u64
    }

    /// Does the ledger conserve bytes and chunks right now?
    pub fn conserves(&self) -> bool {
        self.stats
            .conserves(self.pending_bytes, self.pending.len() as u64)
    }

    /// Producer side: offer `bytes` at `at`, blocking until the queue
    /// has room. Returns the receipt; the producer resumes at
    /// `send_done`.
    pub fn push(&mut self, at: Time, bytes: u64) -> PushReceipt {
        let cfg = self.node.config().clone();
        let start = self.node.admit(at, bytes);
        let send_done = start + transfer_time(bytes, cfg.ingest_bw);
        let ready_at = send_done + cfg.path_latency();
        let stalled = start.saturating_sub(at);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pending.push_back(PendingChunk {
            seq,
            bytes,
            ready_at,
        });
        self.pending_bytes += bytes;
        self.stats.ingested_bytes += bytes;
        self.stats.ingested_chunks += 1;
        self.stats.producer_stall += stalled;
        self.deltas.push((start, bytes as i64));
        PushReceipt {
            seq,
            start,
            send_done,
            ready_at,
            stalled,
        }
    }

    /// When the oldest untaken chunk becomes visible to the consumer
    /// (`None` when everything pushed has been taken).
    pub fn next_ready(&self) -> Option<Time> {
        self.pending.front().map(|c| c.ready_at)
    }

    /// Consumer side: take the oldest chunk, beginning its drain at
    /// `start` (callers pass `max(consumer_free, next_ready())`,
    /// further delayed by any [`StallCalendar`] outage). Panics if
    /// nothing is pending or `start` precedes visibility — both are
    /// driver bugs, not simulated conditions.
    pub fn take(&mut self, start: Time) -> TakeReceipt {
        let chunk = self.pending.pop_front().expect("take on an empty channel");
        assert!(
            start >= chunk.ready_at,
            "take at {start} before chunk {} is visible at {}",
            chunk.seq,
            chunk.ready_at
        );
        let egress_done = start + transfer_time(chunk.bytes, self.node.config().egress_bw);
        self.node.schedule_drain(egress_done, chunk.bytes);
        self.pending_bytes -= chunk.bytes;
        self.stats.egressed_bytes += chunk.bytes;
        self.stats.egressed_chunks += 1;
        self.deltas.push((egress_done, -(chunk.bytes as i64)));
        TakeReceipt {
            seq: chunk.seq,
            bytes: chunk.bytes,
            ready_at: chunk.ready_at,
            start,
            egress_done,
        }
    }

    /// The queue-occupancy timeline: resident bytes after every
    /// admission and egress completion, in time order.
    pub fn occupancy_timeline(&self) -> Vec<(Time, u64)> {
        let mut deltas = self.deltas.clone();
        // Stable by instant; at equal instants apply drains first so
        // the reported occupancy is the post-transition floor.
        deltas.sort_by_key(|&(t, d)| (t, d));
        let mut resident: i64 = 0;
        deltas
            .into_iter()
            .map(|(t, d)| {
                resident += d;
                (t, resident.max(0) as u64)
            })
            .collect()
    }

    /// Peak resident bytes over the whole run.
    pub fn peak_occupancy(&self) -> u64 {
        self.occupancy_timeline()
            .into_iter()
            .map(|(_, r)| r)
            .max()
            .unwrap_or(0)
    }
}

/// Consumer outage windows — the `consumer-crash` fault class. A
/// frozen consumer cannot begin a drain, so any drain start falling
/// inside a window slides to its end; the producer feels the outage
/// only through the credits that stop returning.
#[derive(Debug, Clone, Default)]
pub struct StallCalendar {
    /// Merged, sorted, non-overlapping `(start, resume)` windows.
    windows: Vec<(Time, Time)>,
}

impl StallCalendar {
    /// Build a calendar from raw `(start, duration)` outages; windows
    /// are sorted and overlaps merged.
    pub fn new(outages: &[(Time, Time)]) -> StallCalendar {
        let mut raw: Vec<(Time, Time)> = outages
            .iter()
            .filter(|(_, d)| !d.is_zero())
            .map(|&(s, d)| (s, s + d))
            .collect();
        raw.sort_by_key(|&(s, _)| s);
        let mut windows: Vec<(Time, Time)> = Vec::with_capacity(raw.len());
        for (s, e) in raw {
            match windows.last_mut() {
                Some((_, last_end)) if s <= *last_end => *last_end = (*last_end).max(e),
                _ => windows.push((s, e)),
            }
        }
        StallCalendar { windows }
    }

    /// Is the calendar empty (no outages)?
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Total outage time across all windows.
    pub fn total_outage(&self) -> Time {
        self.windows.iter().map(|&(s, e)| e.saturating_sub(s)).sum()
    }

    /// The earliest instant `>= t` at which the consumer is awake.
    pub fn next_free(&self, t: Time) -> Time {
        // Windows are disjoint and sorted, so one pass suffices.
        let mut t = t;
        for &(s, e) in &self.windows {
            if t < s {
                break;
            }
            if t < e {
                t = e;
            }
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> Time {
        Time::from_millis(n)
    }

    fn chan(depth: u64) -> StreamChannel {
        StreamChannel::new(StagingConfig {
            depth,
            ingest_bw: 1_000_000, // 1 byte/µs
            egress_bw: 1_000_000,
            hop_latency: Time::from_nanos(1_000),
            hops: 2,
        })
    }

    #[test]
    fn transfer_time_is_exact_and_rounds_up() {
        assert_eq!(transfer_time(1_000_000, 1_000_000), Time::from_secs(1));
        assert_eq!(transfer_time(1, 1_000_000_000), Time::from_nanos(1));
        // 3 bytes at 2 B/s = 1.5 s, rounded up to the next nanosecond.
        assert_eq!(transfer_time(3, 2), Time::from_nanos(1_500_000_000));
        assert_eq!(transfer_time(0, 5), Time::ZERO);
    }

    #[test]
    fn unbounded_push_never_stalls() {
        let mut c = chan(0);
        for i in 0..8 {
            let r = c.push(ms(i), 1000);
            assert_eq!(r.stalled, Time::ZERO);
            assert_eq!(r.seq, i);
        }
        assert_eq!(c.stats().producer_stall, Time::ZERO);
        assert!(c.conserves());
    }

    #[test]
    fn bounded_push_blocks_until_credits_return() {
        let mut c = chan(1000);
        let a = c.push(Time::ZERO, 1000);
        assert_eq!(a.stalled, Time::ZERO);
        // Consumer drains chunk 0 starting the instant it is ready.
        let t = c.take(a.ready_at);
        // The second push at time zero must wait for chunk 0's egress.
        let b = c.push(Time::ZERO, 1000);
        assert_eq!(b.start, t.egress_done);
        assert_eq!(b.stalled, t.egress_done);
        assert!(c.stats().producer_stall > Time::ZERO);
    }

    #[test]
    fn fifo_order_and_ledger() {
        let mut c = chan(0);
        let sizes = [10u64, 20, 30];
        let mut pushes = Vec::new();
        for (i, &s) in sizes.iter().enumerate() {
            pushes.push(c.push(ms(i as u64), s));
        }
        let mut free = Time::ZERO;
        for (i, p) in pushes.iter().enumerate() {
            let t = c.take(free.max(p.ready_at));
            assert_eq!(t.seq, i as u64);
            assert_eq!(t.bytes, sizes[i]);
            free = t.egress_done;
        }
        assert!(c.conserves());
        assert_eq!(c.stats().ingested_bytes, 60);
        assert_eq!(c.stats().egressed_bytes, 60);
        assert_eq!(c.pending_bytes(), 0);
    }

    #[test]
    fn occupancy_timeline_tracks_residency() {
        let mut c = chan(0);
        let a = c.push(Time::ZERO, 100);
        let b = c.push(a.send_done, 50);
        let ta = c.take(a.ready_at.max(b.ready_at));
        let _tb = c.take(ta.egress_done);
        let tl = c.occupancy_timeline();
        assert_eq!(tl.len(), 4);
        assert_eq!(c.peak_occupancy(), 150);
        assert_eq!(tl.last().unwrap().1, 0, "fully drained at the end");
    }

    #[test]
    fn validate_rejects_undrainable_configs() {
        let cfg = StagingConfig::paragon(100);
        assert_eq!(cfg.validate(100), Vec::<String>::new());
        assert_eq!(cfg.validate(101).len(), 1);
        let mut dead = cfg.clone();
        dead.ingest_bw = 0;
        dead.egress_bw = 0;
        assert_eq!(dead.validate(10).len(), 2);
    }

    #[test]
    fn stall_calendar_merges_and_slides() {
        let cal = StallCalendar::new(&[(ms(10), ms(5)), (ms(12), ms(10)), (ms(40), ms(1))]);
        assert_eq!(cal.next_free(ms(9)), ms(9));
        assert_eq!(cal.next_free(ms(10)), ms(22));
        assert_eq!(cal.next_free(ms(21)), ms(22));
        assert_eq!(cal.next_free(ms(40)), ms(41));
        assert_eq!(cal.total_outage(), ms(13));
        assert!(StallCalendar::new(&[]).is_empty());
        assert!(StallCalendar::new(&[(ms(1), Time::ZERO)]).is_empty());
    }

    #[test]
    fn replay_is_bit_identical() {
        let drive = || {
            let mut c = chan(64);
            let mut receipts = Vec::new();
            let mut free = Time::ZERO;
            let mut now = Time::ZERO;
            for i in 0..32u64 {
                let p = c.push(now, 1 + (i * 7) % 60);
                now = p.send_done;
                let t = c.take(free.max(p.ready_at));
                free = t.egress_done;
                receipts.push((p, t));
            }
            (receipts, c.occupancy_timeline(), c.stats().clone())
        };
        assert_eq!(drive(), drive());
    }
}
