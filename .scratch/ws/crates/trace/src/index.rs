//! The columnar trace analytics index — built in one O(n log n) pass,
//! after which every summary and analysis query runs in logarithmic or
//! postings time instead of re-scanning the event vector.
//!
//! [`TraceIndex`] mirrors the event stream into struct-of-arrays
//! columns sorted by the canonical `(start, pid, file, offset)` key —
//! the same key, under the same stable sort, that
//! [`TraceRecorder::sort`](crate::TraceRecorder::sort) uses, so on a
//! simulator-produced (pre-sorted) trace the index order *is* the
//! event order. On top of the columns it keeps:
//!
//! * **postings lists** per kind, per file and per pid, with
//!   pre-aggregated totals — lifetime summaries, `duration_by_kind`
//!   and friends become lookups;
//! * **prefix sums** over `duration` and `bytes` per kind, both in
//!   start order and in completion order — a time-window summary is
//!   two binary searches and a prefix-sum subtraction;
//! * per `(file, kind)` offset-sorted prefix sums over the data
//!   operations — file-region summaries likewise;
//! * a **time-bucketed offset table** over the start column, so
//!   seeking to a window boundary binary-searches one bucket instead
//!   of the whole column.
//!
//! Construction parallelizes the canonical sort and the per-group
//! sub-index builds via rayon. Every parallel step is either a stable
//! sort by a total key or an order-independent integer reduction, so
//! the parallel build is byte-identical to the sequential one.
//!
//! ## Exactness of the window algebra
//!
//! For each kind, the events intersecting a window `[t0, t1)` are
//! `W = {start < t1 ∧ end > t0}`. With `A = {start < t1}` (a prefix of
//! the start-sorted column) and `B' = {end ≤ t0}` (a prefix of the
//! end-sorted column),
//!
//! ```text
//! |W| = |A| − |B'| + |C|,   C = {end ≤ t0 ∧ start ≥ t1}
//! ```
//!
//! and the same identity holds for the duration and byte sums. Since
//! `end ≥ start` always, `C` is empty whenever `t1 > t0`; for the
//! degenerate window `t0 == t1 == t` it is exactly the zero-duration
//! events starting at `t`, which the query re-counts from the (small)
//! equal-start run in the start column. Durations never need the
//! correction — every event in `C` contributes zero duration.
//!
//! Region queries need no correction at all: the per-`(file, kind)`
//! region lists hold only data events with `bytes > 0` and
//! `offset < offset ⊕ bytes` (saturating), so
//! `{end_off ≤ lo ∧ off ≥ hi}` would require `off < end_off ≤ lo ≤ hi
//! ≤ off` — a contradiction. The excluded saturated events (only
//! possible at `offset == u64::MAX`) can never satisfy `offset < hi`
//! and therefore never touch any region, matching
//! [`IoEvent::touches_region`].
//!
//! All internal accumulation is done in `u128`, so intermediate prefix
//! totals cannot overflow; results are cast back to the oracle's
//! types, which is exact wherever the naive scan itself is defined.

use crate::event::IoEvent;
use crate::jobmap::JobMap;
use crate::summary::OpStats;
use rayon::prelude::*;
use sioscope_pfs::{IoMode, OpKind};
use sioscope_sim::{FileId, JobId, Pid, Time};
use std::collections::BTreeMap;

/// Below this many events everything is built single-threaded; rayon's
/// fork/join overhead only pays for itself on large traces.
const PAR_THRESHOLD: usize = 4096;

/// Target events per bucket of the start-time offset table.
const BUCKET_TARGET: usize = 64;

/// Upper bound on the bucket count, keeping the offset table small
/// even for enormous traces.
const BUCKET_MAX: usize = 65_536;

/// Per-kind sub-index: the kind's postings plus the start- and
/// end-ordered prefix sums that answer window queries.
#[derive(Debug, Clone, Default)]
struct KindIndex {
    /// Positions into the canonical columns, ascending.
    idxs: Vec<u32>,
    /// Start instants in canonical (ascending) order.
    starts: Vec<Time>,
    /// Durations aligned with `starts`.
    durs: Vec<Time>,
    /// Request sizes aligned with `starts`.
    bytes: Vec<u64>,
    /// `pref_dur[i]` = sum of the first `i` durations (nanoseconds).
    pref_dur: Vec<u128>,
    /// `pref_bytes[i]` = sum of the first `i` byte counts.
    pref_bytes: Vec<u128>,
    /// Completion instants, ascending.
    ends_sorted: Vec<Time>,
    /// Prefix duration sums in completion order.
    pref_dur_by_end: Vec<u128>,
    /// Prefix byte sums in completion order.
    pref_bytes_by_end: Vec<u128>,
    /// Request sizes, ascending — pre-sorted CDF input.
    sizes_sorted: Vec<u64>,
    /// Total duration (nanoseconds).
    total_dur: u128,
    /// Total bytes.
    total_bytes: u128,
}

impl KindIndex {
    fn build(starts: &[Time], durs: &[Time], bytes: &[u64], ends: &[Time], idxs: Vec<u32>) -> Self {
        let n = idxs.len();
        let k_starts: Vec<Time> = idxs.iter().map(|&i| starts[i as usize]).collect();
        let k_durs: Vec<Time> = idxs.iter().map(|&i| durs[i as usize]).collect();
        let k_bytes: Vec<u64> = idxs.iter().map(|&i| bytes[i as usize]).collect();

        let mut pref_dur = Vec::with_capacity(n + 1);
        let mut pref_bytes = Vec::with_capacity(n + 1);
        let (mut d_acc, mut b_acc) = (0u128, 0u128);
        pref_dur.push(0);
        pref_bytes.push(0);
        for i in 0..n {
            d_acc += u128::from(k_durs[i].as_nanos());
            b_acc += u128::from(k_bytes[i]);
            pref_dur.push(d_acc);
            pref_bytes.push(b_acc);
        }

        // Completion-ordered view. Only the end instant participates in
        // binary searches, and searches always land on boundaries
        // between distinct end values, so the relative order of
        // equal-end rows cannot affect any query result.
        let mut end_rows: Vec<(Time, Time, u64)> = idxs
            .iter()
            .map(|&i| (ends[i as usize], durs[i as usize], bytes[i as usize]))
            .collect();
        end_rows.sort_unstable_by_key(|r| r.0);
        let mut ends_sorted = Vec::with_capacity(n);
        let mut pref_dur_by_end = Vec::with_capacity(n + 1);
        let mut pref_bytes_by_end = Vec::with_capacity(n + 1);
        let (mut d_acc, mut b_acc) = (0u128, 0u128);
        pref_dur_by_end.push(0);
        pref_bytes_by_end.push(0);
        for &(e, d, b) in &end_rows {
            ends_sorted.push(e);
            d_acc += u128::from(d.as_nanos());
            b_acc += u128::from(b);
            pref_dur_by_end.push(d_acc);
            pref_bytes_by_end.push(b_acc);
        }

        let mut sizes_sorted = k_bytes.clone();
        sizes_sorted.sort_unstable();

        let total_dur = *pref_dur.last().expect("prefix array non-empty");
        let total_bytes = *pref_bytes.last().expect("prefix array non-empty");
        KindIndex {
            idxs,
            starts: k_starts,
            durs: k_durs,
            bytes: k_bytes,
            pref_dur,
            pref_bytes,
            ends_sorted,
            pref_dur_by_end,
            pref_bytes_by_end,
            sizes_sorted,
            total_dur,
            total_bytes,
        }
    }

    /// Statistics over this kind's events intersecting `[t0, t1)`.
    fn window_stats(&self, t0: Time, t1: Time) -> OpStats {
        let a = self.starts.partition_point(|&s| s < t1);
        let b = self.ends_sorted.partition_point(|&e| e <= t0);
        // Degenerate-window correction (see the module docs): for
        // t0 == t1 == t, re-add the zero-duration events starting at t,
        // which `b` subtracts but `a` never counted.
        let (mut c_count, mut c_bytes) = (0u64, 0u128);
        if t0 == t1 {
            let lo = self.starts.partition_point(|&s| s < t0);
            let hi = self.starts.partition_point(|&s| s <= t0);
            for i in lo..hi {
                if self.durs[i].is_zero() {
                    c_count += 1;
                    c_bytes += u128::from(self.bytes[i]);
                }
            }
        }
        // Add before subtracting: the multiset identity guarantees
        // a + c ≥ b, but not a ≥ b alone.
        let count = (a as u64 + c_count) - b as u64;
        let dur = self.pref_dur[a] - self.pref_dur_by_end[b];
        let bytes = (self.pref_bytes[a] + c_bytes) - self.pref_bytes_by_end[b];
        OpStats {
            count,
            total_duration: Time::from_nanos(dur as u64),
            bytes: bytes as u64,
        }
    }
}

/// Offset-sorted prefix sums over one `(file, kind)`'s data events —
/// the spatial analog of [`KindIndex`]'s window machinery.
#[derive(Debug, Clone, Default)]
struct RegionIndex {
    /// Start offsets, ascending.
    offs: Vec<u64>,
    /// Prefix duration sums in start-offset order.
    pref_dur: Vec<u128>,
    /// Prefix byte sums in start-offset order.
    pref_bytes: Vec<u128>,
    /// Exclusive end offsets (`offset ⊕ bytes`, saturating), ascending.
    end_offs: Vec<u64>,
    /// Prefix duration sums in end-offset order.
    pref_dur_by_end: Vec<u128>,
    /// Prefix byte sums in end-offset order.
    pref_bytes_by_end: Vec<u128>,
}

impl RegionIndex {
    /// `rows` are `(offset, end_offset, duration, bytes)` tuples of the
    /// region-relevant events, in any order.
    fn build(mut rows: Vec<(u64, u64, Time, u64)>) -> Self {
        let n = rows.len();
        rows.sort_unstable_by_key(|r| r.0);
        let mut offs = Vec::with_capacity(n);
        let mut pref_dur = Vec::with_capacity(n + 1);
        let mut pref_bytes = Vec::with_capacity(n + 1);
        let (mut d_acc, mut b_acc) = (0u128, 0u128);
        pref_dur.push(0);
        pref_bytes.push(0);
        for &(o, _, d, b) in &rows {
            offs.push(o);
            d_acc += u128::from(d.as_nanos());
            b_acc += u128::from(b);
            pref_dur.push(d_acc);
            pref_bytes.push(b_acc);
        }
        rows.sort_unstable_by_key(|r| r.1);
        let mut end_offs = Vec::with_capacity(n);
        let mut pref_dur_by_end = Vec::with_capacity(n + 1);
        let mut pref_bytes_by_end = Vec::with_capacity(n + 1);
        let (mut d_acc, mut b_acc) = (0u128, 0u128);
        pref_dur_by_end.push(0);
        pref_bytes_by_end.push(0);
        for &(_, e, d, b) in &rows {
            end_offs.push(e);
            d_acc += u128::from(d.as_nanos());
            b_acc += u128::from(b);
            pref_dur_by_end.push(d_acc);
            pref_bytes_by_end.push(b_acc);
        }
        RegionIndex {
            offs,
            pref_dur,
            pref_bytes,
            end_offs,
            pref_dur_by_end,
            pref_bytes_by_end,
        }
    }

    /// Statistics over the events touching `[lo, hi)`. Exact with no
    /// correction term (see the module docs).
    fn region_stats(&self, lo: u64, hi: u64) -> OpStats {
        let a = self.offs.partition_point(|&o| o < hi);
        let b = self.end_offs.partition_point(|&e| e <= lo);
        OpStats {
            count: a as u64 - b as u64,
            total_duration: Time::from_nanos((self.pref_dur[a] - self.pref_dur_by_end[b]) as u64),
            bytes: (self.pref_bytes[a] - self.pref_bytes_by_end[b]) as u64,
        }
    }
}

/// Per-file sub-index: postings, pre-aggregated lifetime statistics
/// and the per-kind region indexes.
#[derive(Debug, Clone, Default)]
struct FileIndex {
    /// Positions into the canonical columns, ascending.
    idxs: Vec<u32>,
    /// Lifetime statistics per kind — exactly the naive
    /// `LifetimeSummary` aggregation, precomputed.
    per_kind: BTreeMap<OpKind, OpStats>,
    /// Earliest `Open`/`Gopen` start.
    first_open: Option<Time>,
    /// Latest `Close` completion.
    last_close: Option<Time>,
    /// Offset-sorted region machinery for `Read` and `Write`.
    regions: BTreeMap<OpKind, RegionIndex>,
}

impl FileIndex {
    fn build(events: &TraceIndex, idxs: Vec<u32>) -> Self {
        let mut per_kind: BTreeMap<OpKind, OpStats> = BTreeMap::new();
        let mut first_open: Option<Time> = None;
        let mut last_close: Option<Time> = None;
        let mut region_rows: BTreeMap<OpKind, Vec<(u64, u64, Time, u64)>> = BTreeMap::new();
        for &i in &idxs {
            let i = i as usize;
            let kind = events.kinds[i];
            let s = per_kind.entry(kind).or_default();
            s.count += 1;
            s.total_duration += events.durs[i];
            s.bytes += events.bytes[i];
            match kind {
                OpKind::Open | OpKind::Gopen => {
                    let start = events.starts[i];
                    first_open = Some(first_open.map_or(start, |t| t.min(start)));
                }
                OpKind::Close => {
                    let end = events.ends[i];
                    last_close = Some(last_close.map_or(end, |t| t.max(end)));
                }
                OpKind::Read | OpKind::Write => {
                    let (off, b) = (events.offsets[i], events.bytes[i]);
                    let end_off = off.saturating_add(b);
                    // Only events that can ever touch a region: data,
                    // bytes > 0, and a non-degenerate byte interval
                    // (end_off == off only at off == u64::MAX, which
                    // never satisfies `off < hi`).
                    if b > 0 && end_off > off {
                        region_rows.entry(kind).or_default().push((
                            off,
                            end_off,
                            events.durs[i],
                            b,
                        ));
                    }
                }
                _ => {}
            }
        }
        let regions = region_rows
            .into_iter()
            .map(|(k, rows)| (k, RegionIndex::build(rows)))
            .collect();
        FileIndex {
            idxs,
            per_kind,
            first_open,
            last_close,
            regions,
        }
    }
}

/// Per-pid sub-index: postings and per-kind duration totals.
#[derive(Debug, Clone, Default)]
struct PidIndex {
    /// Positions into the canonical columns, ascending.
    idxs: Vec<u32>,
    /// Total duration over all of the pid's events (nanoseconds).
    total_dur: u128,
    /// `(count, duration_ns)` per kind.
    by_kind: BTreeMap<OpKind, (u64, u128)>,
}

impl PidIndex {
    fn build(kinds: &[OpKind], durs: &[Time], idxs: Vec<u32>) -> Self {
        let mut total_dur = 0u128;
        let mut by_kind: BTreeMap<OpKind, (u64, u128)> = BTreeMap::new();
        for &i in &idxs {
            let i = i as usize;
            let d = u128::from(durs[i].as_nanos());
            total_dur += d;
            let e = by_kind.entry(kinds[i]).or_insert((0, 0));
            e.0 += 1;
            e.1 += d;
        }
        PidIndex {
            idxs,
            total_dur,
            by_kind,
        }
    }
}

/// The one-pass columnar index over a trace. Build once per trace
/// (or let [`TraceRecorder::index`](crate::TraceRecorder::index) cache
/// it), then share it across every summary and analysis query.
#[derive(Debug, Clone, Default)]
pub struct TraceIndex {
    // Canonical columns, stably sorted by (start, pid, file, offset).
    pids: Vec<Pid>,
    files: Vec<FileId>,
    kinds: Vec<OpKind>,
    starts: Vec<Time>,
    durs: Vec<Time>,
    bytes: Vec<u64>,
    offsets: Vec<u64>,
    modes: Vec<IoMode>,
    /// Completion instants aligned with the canonical columns.
    ends: Vec<Time>,
    /// All completion instants, ascending.
    ends_sorted: Vec<Time>,
    by_kind: BTreeMap<OpKind, KindIndex>,
    by_file: BTreeMap<FileId, FileIndex>,
    by_pid: BTreeMap<Pid, PidIndex>,
    /// Per-job sub-indexes, present only when the index was built with
    /// a [`JobMap`] (multi-tenant traces). Mirrors `by_pid`.
    by_job: BTreeMap<JobId, PidIndex>,
    /// Time-bucketed offset table over `starts`: `bucket_first[b]` is
    /// the first column position with `start ≥ t_min + b·width`.
    bucket_first: Vec<u32>,
    bucket_width: u64,
    t_min: Time,
    t_max: Time,
}

impl TraceIndex {
    /// Build the index from raw events, in any order. One stable
    /// O(n log n) sort plus linear aggregation passes; parallelized
    /// with rayon above a size threshold, with identical results.
    pub fn build(events: &[IoEvent]) -> Self {
        let n = events.len();
        let mut perm: Vec<u32> = (0..n as u32).collect();
        let key = |e: &IoEvent| (e.start, e.pid, e.file, e.offset);
        // Stable sorts over an initially ascending permutation are
        // equivalent to stably sorting the events themselves;
        // `par_sort_by_key` is rayon's *stable* parallel sort.
        if n >= PAR_THRESHOLD {
            perm.par_sort_by_key(|&i| key(&events[i as usize]));
        } else {
            perm.sort_by_key(|&i| key(&events[i as usize]));
        }

        let mut index = TraceIndex {
            pids: Vec::with_capacity(n),
            files: Vec::with_capacity(n),
            kinds: Vec::with_capacity(n),
            starts: Vec::with_capacity(n),
            durs: Vec::with_capacity(n),
            bytes: Vec::with_capacity(n),
            offsets: Vec::with_capacity(n),
            modes: Vec::with_capacity(n),
            ends: Vec::with_capacity(n),
            ..TraceIndex::default()
        };
        let mut kind_postings: BTreeMap<OpKind, Vec<u32>> = BTreeMap::new();
        let mut file_postings: BTreeMap<FileId, Vec<u32>> = BTreeMap::new();
        let mut pid_postings: BTreeMap<Pid, Vec<u32>> = BTreeMap::new();
        for (pos, &i) in perm.iter().enumerate() {
            let e = &events[i as usize];
            index.pids.push(e.pid);
            index.files.push(e.file);
            index.kinds.push(e.kind);
            index.starts.push(e.start);
            index.durs.push(e.duration);
            index.bytes.push(e.bytes);
            index.offsets.push(e.offset);
            index.modes.push(e.mode);
            index.ends.push(e.end());
            kind_postings.entry(e.kind).or_default().push(pos as u32);
            file_postings.entry(e.file).or_default().push(pos as u32);
            pid_postings.entry(e.pid).or_default().push(pos as u32);
        }

        index.ends_sorted = index.ends.clone();
        if n >= PAR_THRESHOLD {
            index.ends_sorted.par_sort_unstable();
        } else {
            index.ends_sorted.sort_unstable();
        }

        // Sub-indexes: independent per group, so they build in
        // parallel; collecting into BTreeMaps re-establishes the
        // deterministic key order regardless of completion order.
        let kind_groups: Vec<(OpKind, Vec<u32>)> = kind_postings.into_iter().collect();
        index.by_kind = if n >= PAR_THRESHOLD {
            kind_groups
                .into_par_iter()
                .map(|(k, idxs)| {
                    (
                        k,
                        KindIndex::build(
                            &index.starts,
                            &index.durs,
                            &index.bytes,
                            &index.ends,
                            idxs,
                        ),
                    )
                })
                .collect::<Vec<_>>()
                .into_iter()
                .collect()
        } else {
            kind_groups
                .into_iter()
                .map(|(k, idxs)| {
                    (
                        k,
                        KindIndex::build(
                            &index.starts,
                            &index.durs,
                            &index.bytes,
                            &index.ends,
                            idxs,
                        ),
                    )
                })
                .collect()
        };

        let file_groups: Vec<(FileId, Vec<u32>)> = file_postings.into_iter().collect();
        index.by_file = if n >= PAR_THRESHOLD {
            file_groups
                .into_par_iter()
                .map(|(f, idxs)| (f, FileIndex::build(&index, idxs)))
                .collect::<Vec<_>>()
                .into_iter()
                .collect()
        } else {
            file_groups
                .into_iter()
                .map(|(f, idxs)| (f, FileIndex::build(&index, idxs)))
                .collect()
        };

        index.by_pid = pid_postings
            .into_iter()
            .map(|(p, idxs)| (p, PidIndex::build(&index.kinds, &index.durs, idxs)))
            .collect();

        index.build_bucket_table();
        index
    }

    /// Build the index and additionally attribute events to jobs via
    /// `map`, populating the per-job sub-indexes. Events whose pid lies
    /// outside every range of `map` stay unattributed (they remain in
    /// every other view of the index).
    pub fn build_with_jobs(events: &[IoEvent], map: &JobMap) -> Self {
        let mut index = TraceIndex::build(events);
        let mut job_postings: BTreeMap<JobId, Vec<u32>> = BTreeMap::new();
        for (pos, &pid) in index.pids.iter().enumerate() {
            if let Some(job) = map.job_of(pid) {
                job_postings.entry(job).or_default().push(pos as u32);
            }
        }
        index.by_job = job_postings
            .into_iter()
            .map(|(j, idxs)| (j, PidIndex::build(&index.kinds, &index.durs, idxs)))
            .collect();
        index
    }

    fn build_bucket_table(&mut self) {
        let n = self.starts.len();
        if n == 0 {
            self.bucket_first = vec![0, 0];
            self.bucket_width = 1;
            self.t_min = Time::ZERO;
            self.t_max = Time::ZERO;
            return;
        }
        self.t_min = self.starts[0];
        self.t_max = self.starts[n - 1];
        let nb = (n / BUCKET_TARGET).clamp(1, BUCKET_MAX);
        let span = self.t_max.as_nanos() - self.t_min.as_nanos();
        // width · nb > span, so every start ≤ t_max falls in a bucket.
        let width = span / nb as u64 + 1;
        let mut bucket_first = Vec::with_capacity(nb + 1);
        for b in 0..=nb {
            let boundary = u128::from(self.t_min.as_nanos()) + u128::from(width) * b as u128;
            let pos = if boundary > u128::from(u64::MAX) {
                n
            } else {
                self.starts
                    .partition_point(|s| u128::from(s.as_nanos()) < boundary)
            };
            bucket_first.push(pos as u32);
        }
        self.bucket_first = bucket_first;
        self.bucket_width = width;
    }

    /// Number of indexed events.
    pub fn len(&self) -> usize {
        self.starts.len()
    }

    /// `true` iff the trace was empty.
    pub fn is_empty(&self) -> bool {
        self.starts.is_empty()
    }

    /// Reconstruct the event at canonical position `i`.
    pub fn event(&self, i: usize) -> IoEvent {
        IoEvent {
            pid: self.pids[i],
            file: self.files[i],
            kind: self.kinds[i],
            start: self.starts[i],
            duration: self.durs[i],
            bytes: self.bytes[i],
            offset: self.offsets[i],
            mode: self.modes[i],
        }
    }

    /// All events in canonical `(start, pid, file, offset)` order.
    pub fn iter(&self) -> impl Iterator<Item = IoEvent> + '_ {
        (0..self.len()).map(move |i| self.event(i))
    }

    /// Start instants in canonical (ascending) order.
    pub fn starts(&self) -> &[Time] {
        &self.starts
    }

    /// Completion instants, ascending.
    pub fn ends_sorted(&self) -> &[Time] {
        &self.ends_sorted
    }

    /// The kinds present in the trace, ascending.
    pub fn kinds_present(&self) -> impl Iterator<Item = OpKind> + '_ {
        self.by_kind.keys().copied()
    }

    /// Number of events of `kind`.
    pub fn count_of(&self, kind: OpKind) -> u64 {
        self.by_kind.get(&kind).map_or(0, |k| k.idxs.len() as u64)
    }

    /// Total duration of events of `kind`.
    pub fn duration_of(&self, kind: OpKind) -> Time {
        let total = self.by_kind.get(&kind).map_or(0, |k| k.total_dur);
        debug_assert!(total <= u128::from(u64::MAX), "duration sum overflows u64");
        Time::from_nanos(total as u64)
    }

    /// Total bytes of events of `kind`.
    pub fn bytes_of(&self, kind: OpKind) -> u64 {
        let total = self.by_kind.get(&kind).map_or(0, |k| k.total_bytes);
        debug_assert!(total <= u128::from(u64::MAX), "byte sum overflows u64");
        total as u64
    }

    /// Sum of durations per kind — the indexed
    /// [`TraceRecorder::duration_by_kind`](crate::TraceRecorder::duration_by_kind).
    pub fn duration_by_kind(&self) -> BTreeMap<OpKind, Time> {
        self.by_kind
            .keys()
            .map(|&k| (k, self.duration_of(k)))
            .collect()
    }

    /// Bytes per data kind — the indexed
    /// [`TraceRecorder::bytes_by_kind`](crate::TraceRecorder::bytes_by_kind).
    pub fn bytes_by_kind(&self) -> BTreeMap<OpKind, u64> {
        [OpKind::Read, OpKind::Write]
            .into_iter()
            .filter(|k| self.by_kind.contains_key(k))
            .map(|k| (k, self.bytes_of(k)))
            .collect()
    }

    /// Total client-observed I/O time over the whole trace.
    pub fn total_io_time(&self) -> Time {
        let total: u128 = self.by_kind.values().map(|k| k.total_dur).sum();
        debug_assert!(total <= u128::from(u64::MAX), "duration sum overflows u64");
        Time::from_nanos(total as u64)
    }

    /// Completion time of the last event (zero for an empty trace).
    pub fn last_completion(&self) -> Time {
        self.ends_sorted.last().copied().unwrap_or(Time::ZERO)
    }

    /// Request sizes of every event of `kind`, in canonical order.
    pub fn sizes_of(&self, kind: OpKind) -> Vec<u64> {
        self.by_kind
            .get(&kind)
            .map_or_else(Vec::new, |k| k.bytes.clone())
    }

    /// Request sizes of every event of `kind`, ascending — a CDF can
    /// consume this without re-sorting.
    pub fn sizes_sorted_of(&self, kind: OpKind) -> &[u64] {
        self.by_kind.get(&kind).map_or(&[], |k| &k.sizes_sorted)
    }

    /// `(start, bytes)` pairs of every event of `kind`, in canonical
    /// order.
    pub fn timeline_of(&self, kind: OpKind) -> Vec<(Time, u64)> {
        self.by_kind.get(&kind).map_or_else(Vec::new, |k| {
            k.starts
                .iter()
                .copied()
                .zip(k.bytes.iter().copied())
                .collect()
        })
    }

    /// `(start, duration)` pairs of every event of `kind`, in canonical
    /// order.
    pub fn duration_timeline_of(&self, kind: OpKind) -> Vec<(Time, Time)> {
        self.by_kind.get(&kind).map_or_else(Vec::new, |k| {
            k.starts
                .iter()
                .copied()
                .zip(k.durs.iter().copied())
                .collect()
        })
    }

    /// `(end, bytes)` pairs of every event of `kind`, ascending by
    /// completion instant — bandwidth series consume this directly.
    pub fn end_bytes_of(&self, kind: OpKind) -> impl Iterator<Item = (Time, u64)> + '_ {
        let k = self.by_kind.get(&kind);
        let n = k.map_or(0, |k| k.ends_sorted.len());
        (0..n).map(move |i| {
            let k = k.expect("non-empty range implies kind present");
            (
                k.ends_sorted[i],
                (k.pref_bytes_by_end[i + 1] - k.pref_bytes_by_end[i]) as u64,
            )
        })
    }

    /// The latest completion instant among events of `kind`.
    pub fn last_end_of(&self, kind: OpKind) -> Option<Time> {
        self.by_kind
            .get(&kind)
            .and_then(|k| k.ends_sorted.last().copied())
    }

    /// Statistics over events of `kind` intersecting `[t0, t1)` —
    /// two binary searches and a prefix-sum subtraction.
    pub fn window_stats_of(&self, kind: OpKind, t0: Time, t1: Time) -> OpStats {
        self.by_kind
            .get(&kind)
            .map_or_else(OpStats::default, |k| k.window_stats(t0, t1))
    }

    /// Per-kind statistics over all events intersecting `[t0, t1)` —
    /// the indexed body of a time-window summary. Kinds with no
    /// intersecting event are omitted, matching the naive scan.
    pub fn window_stats(&self, t0: Time, t1: Time) -> BTreeMap<OpKind, OpStats> {
        self.by_kind
            .iter()
            .map(|(&k, ki)| (k, ki.window_stats(t0, t1)))
            .filter(|(_, s)| s.count > 0)
            .collect()
    }

    /// The files present in the trace, ascending.
    pub fn files(&self) -> impl Iterator<Item = FileId> + '_ {
        self.by_file.keys().copied()
    }

    /// Pre-aggregated lifetime statistics of `file`, per kind.
    pub fn file_per_kind(&self, file: FileId) -> Option<&BTreeMap<OpKind, OpStats>> {
        self.by_file.get(&file).map(|f| &f.per_kind)
    }

    /// Earliest `Open`/`Gopen` start on `file`.
    pub fn file_first_open(&self, file: FileId) -> Option<Time> {
        self.by_file.get(&file).and_then(|f| f.first_open)
    }

    /// Latest `Close` completion on `file`.
    pub fn file_last_close(&self, file: FileId) -> Option<Time> {
        self.by_file.get(&file).and_then(|f| f.last_close)
    }

    /// Number of events touching `file`.
    pub fn file_event_count(&self, file: FileId) -> usize {
        self.by_file.get(&file).map_or(0, |f| f.idxs.len())
    }

    /// Per-kind statistics over data operations on `file` touching the
    /// byte range `[lo, hi)` — the indexed body of a file-region
    /// summary. Kinds with no touching event are omitted.
    pub fn region_stats(&self, file: FileId, lo: u64, hi: u64) -> BTreeMap<OpKind, OpStats> {
        let Some(f) = self.by_file.get(&file) else {
            return BTreeMap::new();
        };
        f.regions
            .iter()
            .map(|(&k, r)| (k, r.region_stats(lo, hi)))
            .filter(|(_, s)| s.count > 0)
            .collect()
    }

    /// The pids present in the trace, ascending.
    pub fn pids(&self) -> impl Iterator<Item = Pid> + '_ {
        self.by_pid.keys().copied()
    }

    /// Start instants of every event issued by `pid`, ascending.
    pub fn starts_of_pid(&self, pid: Pid) -> Vec<Time> {
        self.by_pid.get(&pid).map_or_else(Vec::new, |p| {
            p.idxs.iter().map(|&i| self.starts[i as usize]).collect()
        })
    }

    /// Total duration of every event issued by `pid`.
    pub fn pid_total_duration(&self, pid: Pid) -> Time {
        let total = self.by_pid.get(&pid).map_or(0, |p| p.total_dur);
        debug_assert!(total <= u128::from(u64::MAX), "duration sum overflows u64");
        Time::from_nanos(total as u64)
    }

    /// `(count, total_duration)` of `pid`'s events of `kind`.
    pub fn pid_duration_of(&self, pid: Pid, kind: OpKind) -> Option<(u64, Time)> {
        self.by_pid
            .get(&pid)
            .and_then(|p| p.by_kind.get(&kind))
            .map(|&(count, dur)| (count, Time::from_nanos(dur as u64)))
    }

    /// The jobs present in the trace, ascending — empty unless the
    /// index was built with [`TraceIndex::build_with_jobs`].
    pub fn jobs(&self) -> impl Iterator<Item = JobId> + '_ {
        self.by_job.keys().copied()
    }

    /// Number of events attributed to `job`.
    pub fn job_event_count(&self, job: JobId) -> usize {
        self.by_job.get(&job).map_or(0, |j| j.idxs.len())
    }

    /// Total client-observed I/O time of `job`'s events.
    pub fn job_total_duration(&self, job: JobId) -> Time {
        let total = self.by_job.get(&job).map_or(0, |j| j.total_dur);
        debug_assert!(total <= u128::from(u64::MAX), "duration sum overflows u64");
        Time::from_nanos(total as u64)
    }

    /// `(count, total_duration)` of `job`'s events of `kind`.
    pub fn job_duration_of(&self, job: JobId, kind: OpKind) -> Option<(u64, Time)> {
        self.by_job
            .get(&job)
            .and_then(|j| j.by_kind.get(&kind))
            .map(|&(count, dur)| (count, Time::from_nanos(dur as u64)))
    }

    /// `job`'s events in canonical order.
    pub fn events_of_job(&self, job: JobId) -> impl Iterator<Item = IoEvent> + '_ {
        self.by_job
            .get(&job)
            .map(|j| j.idxs.as_slice())
            .unwrap_or(&[])
            .iter()
            .map(move |&i| self.event(i as usize))
    }

    /// First canonical position with `start ≥ t`: a bucket lookup in
    /// the time-offset table plus a binary search within one bucket.
    pub fn first_at_or_after(&self, t: Time) -> usize {
        let n = self.len();
        if n == 0 || t <= self.t_min {
            return 0;
        }
        if t > self.t_max {
            return n;
        }
        let b = ((t.as_nanos() - self.t_min.as_nanos()) / self.bucket_width) as usize;
        let b = b.min(self.bucket_first.len() - 2);
        let lo = self.bucket_first[b] as usize;
        let hi = self.bucket_first[b + 1] as usize;
        lo + self.starts[lo..hi].partition_point(|&s| s < t)
    }

    /// Events whose start lies in `[t0, t1)`, in canonical order.
    pub fn starting_in(&self, t0: Time, t1: Time) -> impl Iterator<Item = IoEvent> + '_ {
        let lo = self.first_at_or_after(t0);
        let hi = self.first_at_or_after(t1).max(lo);
        (lo..hi).map(move |i| self.event(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(
        pid: u32,
        file: u32,
        kind: OpKind,
        start_s: u64,
        dur_s: u64,
        bytes: u64,
        offset: u64,
    ) -> IoEvent {
        IoEvent {
            pid: Pid(pid),
            file: FileId(file),
            kind,
            start: Time::from_secs(start_s),
            duration: Time::from_secs(dur_s),
            bytes,
            offset,
            mode: IoMode::MUnix,
        }
    }

    fn sample() -> Vec<IoEvent> {
        vec![
            ev(0, 0, OpKind::Open, 0, 1, 0, 0),
            ev(0, 0, OpKind::Read, 1, 2, 100, 0),
            ev(1, 1, OpKind::Read, 2, 4, 999, 0),
            ev(0, 0, OpKind::Read, 3, 2, 100, 100),
            ev(0, 0, OpKind::Write, 5, 1, 50, 200),
            ev(0, 0, OpKind::Close, 10, 1, 0, 0),
        ]
    }

    #[test]
    fn canonical_order_is_stable_sort_by_key() {
        let mut events = sample();
        events.swap(0, 3);
        events.swap(1, 5);
        let idx = TraceIndex::build(&events);
        let starts: Vec<Time> = idx.iter().map(|e| e.start).collect();
        let mut sorted = starts.clone();
        sorted.sort();
        assert_eq!(starts, sorted);
        assert_eq!(idx.len(), events.len());
    }

    #[test]
    fn kind_aggregates_match_hand_counts() {
        let idx = TraceIndex::build(&sample());
        assert_eq!(idx.count_of(OpKind::Read), 3);
        assert_eq!(idx.duration_of(OpKind::Read), Time::from_secs(8));
        assert_eq!(idx.bytes_of(OpKind::Read), 1199);
        assert_eq!(idx.total_io_time(), Time::from_secs(11));
        assert_eq!(idx.last_completion(), Time::from_secs(11));
        assert_eq!(idx.duration_by_kind()[&OpKind::Write], Time::from_secs(1));
        assert_eq!(idx.bytes_by_kind()[&OpKind::Write], 50);
        assert!(!idx.bytes_by_kind().contains_key(&OpKind::Open));
    }

    #[test]
    fn window_stats_match_the_scan() {
        let events = sample();
        let idx = TraceIndex::build(&events);
        // Window [2, 4): Read@1 ([1,3)), Read@2 ([2,6)), Read@3 ([3,5)).
        let w = idx.window_stats(Time::from_secs(2), Time::from_secs(4));
        assert_eq!(w[&OpKind::Read].count, 3);
        assert_eq!(w[&OpKind::Read].total_duration, Time::from_secs(8));
        assert_eq!(w[&OpKind::Read].bytes, 1199);
        assert!(!w.contains_key(&OpKind::Write));
        // Empty window far in the future.
        assert!(idx
            .window_stats(Time::from_secs(100), Time::from_secs(200))
            .is_empty());
    }

    #[test]
    fn degenerate_window_counts_zero_duration_starts() {
        let events = vec![
            ev(0, 0, OpKind::Read, 5, 0, 10, 0), // [5,5): in [5,5) iff never
            ev(0, 0, OpKind::Read, 3, 2, 20, 0), // [3,5): end == 5, excluded
            ev(0, 0, OpKind::Read, 4, 2, 30, 0), // [4,6): intersects
        ];
        let idx = TraceIndex::build(&events);
        let t = Time::from_secs(5);
        let w = idx.window_stats_of(OpKind::Read, t, t);
        // Oracle: e.start < 5 && e.end() > 5 — only [4,6).
        assert_eq!(w.count, 1);
        assert_eq!(w.bytes, 30);
        assert_eq!(w.total_duration, Time::from_secs(2));
    }

    #[test]
    fn region_stats_match_the_scan() {
        let events = sample();
        let idx = TraceIndex::build(&events);
        let r = idx.region_stats(FileId(0), 100, 250);
        assert_eq!(r[&OpKind::Read].count, 1);
        assert_eq!(r[&OpKind::Write].count, 1);
        assert_eq!(r[&OpKind::Write].bytes, 50);
        assert!(!r.contains_key(&OpKind::Open));
        // Saturated offsets never touch any region.
        let sat = vec![ev(0, 0, OpKind::Write, 0, 1, 10, u64::MAX)];
        let sidx = TraceIndex::build(&sat);
        assert!(sidx.region_stats(FileId(0), 0, u64::MAX).is_empty());
    }

    #[test]
    fn lifetime_lookups_match_the_scan() {
        let idx = TraceIndex::build(&sample());
        let pk = idx.file_per_kind(FileId(0)).expect("file 0 present");
        assert_eq!(pk[&OpKind::Read].count, 2);
        assert_eq!(pk[&OpKind::Read].bytes, 200);
        assert_eq!(idx.file_first_open(FileId(0)), Some(Time::ZERO));
        assert_eq!(idx.file_last_close(FileId(0)), Some(Time::from_secs(11)));
        assert_eq!(idx.file_first_open(FileId(1)), None);
        assert!(idx.file_per_kind(FileId(9)).is_none());
    }

    #[test]
    fn pid_lookups() {
        let idx = TraceIndex::build(&sample());
        assert_eq!(idx.pids().count(), 2);
        assert_eq!(idx.pid_total_duration(Pid(1)), Time::from_secs(4));
        assert_eq!(
            idx.pid_duration_of(Pid(0), OpKind::Read),
            Some((2, Time::from_secs(4)))
        );
        assert_eq!(idx.pid_duration_of(Pid(1), OpKind::Write), None);
        assert_eq!(
            idx.starts_of_pid(Pid(0)),
            vec![
                Time::ZERO,
                Time::from_secs(1),
                Time::from_secs(3),
                Time::from_secs(5),
                Time::from_secs(10)
            ]
        );
    }

    #[test]
    fn bucket_table_lower_bound_agrees_with_partition_point() {
        let events: Vec<IoEvent> = (0..500)
            .map(|i| ev(0, 0, OpKind::Read, (i * 7) % 97, 1, 1, 0))
            .collect();
        let idx = TraceIndex::build(&events);
        for t in 0..100u64 {
            let t = Time::from_secs(t);
            let expect = idx.starts().partition_point(|&s| s < t);
            assert_eq!(idx.first_at_or_after(t), expect, "at {t}");
        }
        assert_eq!(idx.first_at_or_after(Time::MAX), idx.len());
        let in_window: Vec<IoEvent> = idx
            .starting_in(Time::from_secs(10), Time::from_secs(20))
            .collect();
        assert!(in_window
            .iter()
            .all(|e| e.start >= Time::from_secs(10) && e.start < Time::from_secs(20)));
    }

    #[test]
    fn empty_trace_answers_everything_with_zeros() {
        let idx = TraceIndex::build(&[]);
        assert!(idx.is_empty());
        assert_eq!(idx.total_io_time(), Time::ZERO);
        assert_eq!(idx.last_completion(), Time::ZERO);
        assert!(idx.duration_by_kind().is_empty());
        assert!(idx.bytes_by_kind().is_empty());
        assert!(idx.window_stats(Time::ZERO, Time::MAX).is_empty());
        assert!(idx.region_stats(FileId(0), 0, u64::MAX).is_empty());
        assert_eq!(idx.first_at_or_after(Time::from_secs(5)), 0);
        assert_eq!(idx.sizes_of(OpKind::Read), Vec::<u64>::new());
        assert_eq!(idx.starting_in(Time::ZERO, Time::MAX).count(), 0);
    }

    #[test]
    fn job_sub_index_mirrors_per_pid_attribution() {
        let mut map = JobMap::new();
        map.insert(0, 1, JobId(0)); // pid 0
        map.insert(1, 2, JobId(1)); // pid 1
        let idx = TraceIndex::build_with_jobs(&sample(), &map);
        assert_eq!(idx.jobs().collect::<Vec<_>>(), vec![JobId(0), JobId(1)]);
        assert_eq!(idx.job_event_count(JobId(0)), 5);
        assert_eq!(idx.job_event_count(JobId(1)), 1);
        assert_eq!(idx.job_total_duration(JobId(0)), Time::from_secs(7));
        assert_eq!(idx.job_total_duration(JobId(1)), Time::from_secs(4));
        assert_eq!(
            idx.job_duration_of(JobId(0), OpKind::Read),
            Some((2, Time::from_secs(4)))
        );
        assert_eq!(idx.job_duration_of(JobId(1), OpKind::Write), None);
        assert!(idx
            .events_of_job(JobId(1))
            .all(|e| e.pid == Pid(1) && e.bytes == 999));
        // Unmapped pids stay unattributed; plain build has no jobs.
        assert_eq!(idx.job_event_count(JobId(9)), 0);
        assert_eq!(TraceIndex::build(&sample()).jobs().count(), 0);
    }

    #[test]
    fn parallel_build_is_identical_to_sequential() {
        // Straddle PAR_THRESHOLD: the parallel path must produce the
        // same canonical order and the same aggregates.
        let events: Vec<IoEvent> = (0..(PAR_THRESHOLD as u64 + 100))
            .map(|i| {
                let kind = match i % 5 {
                    0 => OpKind::Open,
                    1 | 2 => OpKind::Read,
                    3 => OpKind::Write,
                    _ => OpKind::Close,
                };
                ev(
                    (i % 16) as u32,
                    (i % 3) as u32,
                    kind,
                    (i * 37) % 1000,
                    i % 7,
                    (i * 13) % 4096,
                    (i * 17) % 100_000,
                )
            })
            .collect();
        let whole = TraceIndex::build(&events);
        let small = TraceIndex::build(&events[..1000]);
        // Spot-check the parallel build against per-event folds.
        let naive_dur: u64 = events.iter().map(|e| e.duration.as_nanos()).sum();
        assert_eq!(whole.total_io_time(), Time::from_nanos(naive_dur));
        let naive_read_bytes: u64 = events
            .iter()
            .filter(|e| e.kind == OpKind::Read)
            .map(|e| e.bytes)
            .sum();
        assert_eq!(whole.bytes_of(OpKind::Read), naive_read_bytes);
        let small_dur: u64 = events[..1000].iter().map(|e| e.duration.as_nanos()).sum();
        assert_eq!(small.total_io_time(), Time::from_nanos(small_dur));
        // Canonical order is sorted by start in both.
        assert!(whole.starts().windows(2).all(|w| w[0] <= w[1]));
    }
}
