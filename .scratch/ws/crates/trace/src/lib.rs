//! # sioscope-trace
//!
//! A stand-in for the Pablo performance analysis environment's I/O
//! instrumentation (§3.1 of the paper). Pablo captured, for every I/O
//! operation, "the time, duration, size, and other parameters", and
//! offered three statistical summary forms:
//!
//! * **file lifetime summaries** — per-file counts and total durations
//!   of reads, writes, seeks, opens and closes, bytes accessed, and
//!   the total time the file was open;
//! * **time window summaries** — the same data restricted to a time
//!   window;
//! * **file region summaries** — the spatial analog, restricted to a
//!   byte range of one file.
//!
//! This crate reproduces that data model: [`IoEvent`] is the raw trace
//! record, [`TraceRecorder`] the capture library, and [`summary`] the
//! three summary forms. [`export`] serializes traces as JSON and
//! [`binary`] as a compact binary record stream — the two stand-ins
//! for Pablo's SDDF self-describing data format (ASCII and binary).
//!
//! [`index`] is the analytics engine behind all of it: a columnar
//! [`TraceIndex`] built once per trace, answering every summary form
//! (and the `sioscope-analysis` passes) without re-scanning the event
//! vector.

pub mod binary;
pub mod event;
pub mod export;
pub mod index;
pub mod jobmap;
pub mod recorder;
pub mod summary;

pub use event::IoEvent;
pub use index::TraceIndex;
pub use jobmap::JobMap;
pub use recorder::TraceRecorder;
pub use summary::{FileRegionSummary, LifetimeSummary, OpStats, TimeWindowSummary};
