//! The raw trace record.

use serde::{Deserialize, Serialize};
use sioscope_pfs::{IoMode, OpKind};
use sioscope_sim::{FileId, Pid, Time};

/// One I/O operation as observed at the client — Pablo's "detailed I/O
/// event trace" record: time, duration, size, and other parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IoEvent {
    /// The process (= compute node, in the paper's workloads) that
    /// issued the operation.
    pub pid: Pid,
    /// The file operated on.
    pub file: FileId,
    /// Operation category.
    pub kind: OpKind,
    /// When the client issued the call.
    pub start: Time,
    /// Client-observed wall-clock duration of the call, including any
    /// synchronization and queueing delay.
    pub duration: Time,
    /// Bytes transferred (zero for control operations).
    pub bytes: u64,
    /// File offset touched (zero for control operations; the seek
    /// target for seeks).
    pub offset: u64,
    /// Access mode of the file at completion time — the paper's third
    /// characterization dimension (§6).
    pub mode: IoMode,
}

impl IoEvent {
    /// The completion instant.
    pub fn end(&self) -> Time {
        self.start + self.duration
    }

    /// Does this event move data?
    pub fn is_data(&self) -> bool {
        matches!(self.kind, OpKind::Read | OpKind::Write)
    }

    /// Does the event's byte range `[offset, offset+bytes)` intersect
    /// `[lo, hi)`? The end offset saturates: an event whose range runs
    /// off the end of the offset space is clamped to `u64::MAX` rather
    /// than wrapping (which would panic in debug builds and silently
    /// miss intersections in release).
    pub fn touches_region(&self, lo: u64, hi: u64) -> bool {
        self.is_data()
            && self.bytes > 0
            && self.offset < hi
            && self.offset.saturating_add(self.bytes) > lo
    }

    /// Does the event's `[start, end)` interval intersect the window
    /// `[t0, t1)`?
    pub fn in_window(&self, t0: Time, t1: Time) -> bool {
        self.start < t1 && self.end() > t0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: OpKind, start_s: u64, dur_s: u64, bytes: u64, offset: u64) -> IoEvent {
        IoEvent {
            pid: Pid(0),
            file: FileId(0),
            kind,
            start: Time::from_secs(start_s),
            duration: Time::from_secs(dur_s),
            bytes,
            offset,
            mode: IoMode::MUnix,
        }
    }

    #[test]
    fn end_and_data_classification() {
        let e = ev(OpKind::Read, 5, 2, 100, 0);
        assert_eq!(e.end(), Time::from_secs(7));
        assert!(e.is_data());
        assert!(!ev(OpKind::Open, 0, 1, 0, 0).is_data());
        assert!(!ev(OpKind::Seek, 0, 1, 0, 0).is_data());
    }

    #[test]
    fn region_intersection() {
        let e = ev(OpKind::Write, 0, 1, 100, 50); // [50,150)
        assert!(e.touches_region(0, 60));
        assert!(e.touches_region(149, 200));
        assert!(!e.touches_region(150, 200));
        assert!(!e.touches_region(0, 50));
        // Control ops never touch regions.
        assert!(!ev(OpKind::Open, 0, 1, 0, 0).touches_region(0, u64::MAX));
    }

    #[test]
    fn region_intersection_saturates_at_offset_max() {
        // offset + bytes would overflow u64; the saturating end offset
        // must neither panic nor wrap around to a tiny value.
        let e = ev(OpKind::Read, 0, 1, 10, u64::MAX);
        assert!(!e.touches_region(0, u64::MAX)); // offset < hi fails
        let near = ev(OpKind::Write, 0, 1, u64::MAX, u64::MAX - 5); // clamps to MAX
        assert!(near.touches_region(u64::MAX - 1, u64::MAX));
        assert!(!near.touches_region(0, u64::MAX - 5));
    }

    #[test]
    fn window_intersection() {
        let e = ev(OpKind::Read, 5, 2, 1, 0); // [5,7)
        assert!(e.in_window(Time::from_secs(6), Time::from_secs(10)));
        assert!(e.in_window(Time::from_secs(0), Time::from_secs(6)));
        assert!(!e.in_window(Time::from_secs(7), Time::from_secs(8)));
        assert!(!e.in_window(Time::from_secs(0), Time::from_secs(5)));
    }
}
