//! Trace serialization — the stand-in for Pablo's SDDF
//! (self-describing data format). Traces round-trip through JSON so
//! they can be archived, diffed across experiment versions, and
//! post-processed outside the simulator.

use crate::recorder::TraceRecorder;
use std::io;
use std::path::Path;

/// Serialize a trace to a JSON string.
pub fn to_json(trace: &TraceRecorder) -> serde_json::Result<String> {
    serde_json::to_string(trace)
}

/// Deserialize a trace from a JSON string.
pub fn from_json(s: &str) -> serde_json::Result<TraceRecorder> {
    serde_json::from_str(s)
}

/// Write a trace to a file as JSON.
pub fn write_file(trace: &TraceRecorder, path: &Path) -> io::Result<()> {
    let json = to_json(trace).map_err(io::Error::other)?;
    std::fs::write(path, json)
}

/// Read a trace back from a JSON file.
pub fn read_file(path: &Path) -> io::Result<TraceRecorder> {
    let s = std::fs::read_to_string(path)?;
    from_json(&s).map_err(io::Error::other)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::IoEvent;
    use sioscope_pfs::OpKind;
    use sioscope_sim::{FileId, Pid, Time};

    fn sample() -> TraceRecorder {
        let mut t = TraceRecorder::new();
        for i in 0..10 {
            t.record(IoEvent {
                pid: Pid(i % 3),
                file: FileId(i % 2),
                kind: if i % 2 == 0 {
                    OpKind::Read
                } else {
                    OpKind::Write
                },
                start: Time::from_millis(u64::from(i) * 10),
                duration: Time::from_micros(u64::from(i) + 1),
                bytes: u64::from(i) * 100,
                offset: u64::from(i) * 1000,
                mode: if i % 3 == 0 {
                    sioscope_pfs::IoMode::MAsync
                } else {
                    sioscope_pfs::IoMode::MUnix
                },
            });
        }
        t
    }

    #[test]
    fn json_round_trip_preserves_everything() {
        let t = sample();
        let json = to_json(&t).unwrap();
        let back = from_json(&json).unwrap();
        assert_eq!(back.events(), t.events());
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("sioscope_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.json");
        let t = sample();
        write_file(&t, &path).unwrap();
        let back = read_file(&path).unwrap();
        assert_eq!(back.events(), t.events());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn malformed_json_errors() {
        assert!(from_json("not json").is_err());
        assert!(from_json("{\"events\": 3}").is_err());
    }
}
