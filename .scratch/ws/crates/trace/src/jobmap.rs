//! Mapping global pids back to the jobs that owned them.
//!
//! A scheduled (multi-tenant) run assigns every dispatched job attempt
//! a contiguous range of *global* pids, so one machine-wide trace
//! interleaves the I/O of many jobs. [`JobMap`] records those ranges
//! and lets the analytics layer answer "whose operation was this?" in
//! logarithmic time, mirroring how per-pid postings answer "which
//! node?". The map is serde-declarable alongside the exported trace so
//! offline analysis keeps the attribution.

use serde::{Deserialize, Serialize};
use sioscope_sim::{JobId, Pid};

/// Half-open global-pid ranges, each owned by one job.
///
/// Ranges must be disjoint; a pid outside every range (e.g. one from a
/// crashed attempt whose events were discarded) maps to no job.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct JobMap {
    /// `(start, end, job)` triples sorted by `start`, pairwise
    /// disjoint.
    ranges: Vec<(u32, u32, JobId)>,
}

impl JobMap {
    /// An empty map (every pid unattributed).
    pub fn new() -> Self {
        JobMap::default()
    }

    /// Attribute global pids `[start, end)` to `job`.
    ///
    /// # Panics
    ///
    /// If the range is empty or overlaps an existing range.
    pub fn insert(&mut self, start: u32, end: u32, job: JobId) {
        assert!(start < end, "empty pid range for {job}");
        let at = self.ranges.partition_point(|r| r.0 < start);
        if let Some(prev) = at.checked_sub(1).map(|i| &self.ranges[i]) {
            assert!(prev.1 <= start, "pid range overlaps {}", prev.2);
        }
        if let Some(next) = self.ranges.get(at) {
            assert!(end <= next.0, "pid range overlaps {}", next.2);
        }
        self.ranges.insert(at, (start, end, job));
    }

    /// The job owning `pid`, if any.
    pub fn job_of(&self, pid: Pid) -> Option<JobId> {
        let at = self.ranges.partition_point(|r| r.1 <= pid.0);
        self.ranges.get(at).filter(|r| r.0 <= pid.0).map(|r| r.2)
    }

    /// The recorded `(start, end, job)` ranges, ascending by start.
    pub fn ranges(&self) -> &[(u32, u32, JobId)] {
        &self.ranges
    }

    /// Number of recorded ranges.
    pub fn len(&self) -> usize {
        self.ranges.len()
    }

    /// `true` iff no range was recorded.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_hits_the_owning_range() {
        let mut m = JobMap::new();
        m.insert(0, 4, JobId(0));
        m.insert(10, 12, JobId(2));
        m.insert(4, 10, JobId(1));
        assert_eq!(m.job_of(Pid(0)), Some(JobId(0)));
        assert_eq!(m.job_of(Pid(3)), Some(JobId(0)));
        assert_eq!(m.job_of(Pid(4)), Some(JobId(1)));
        assert_eq!(m.job_of(Pid(11)), Some(JobId(2)));
        assert_eq!(m.job_of(Pid(12)), None);
        assert_eq!(m.len(), 3);
        assert_eq!(m.ranges()[0], (0, 4, JobId(0)));
    }

    #[test]
    fn gaps_map_to_no_job() {
        let mut m = JobMap::new();
        m.insert(8, 16, JobId(1));
        assert_eq!(m.job_of(Pid(7)), None);
        assert_eq!(m.job_of(Pid(8)), Some(JobId(1)));
        assert_eq!(m.job_of(Pid(16)), None);
        assert!(JobMap::new().job_of(Pid(0)).is_none());
    }

    #[test]
    #[should_panic(expected = "overlaps")]
    fn overlap_is_rejected() {
        let mut m = JobMap::new();
        m.insert(0, 8, JobId(0));
        m.insert(4, 6, JobId(1));
    }
}
