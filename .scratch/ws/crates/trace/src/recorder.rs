//! The trace capture library.

use crate::event::IoEvent;
use crate::index::TraceIndex;
use serde::{Deserialize, Serialize};
use sioscope_pfs::OpKind;
use sioscope_sim::{FileId, Pid, Time};
use std::collections::BTreeMap;
use std::sync::OnceLock;

/// Collects [`IoEvent`]s during a simulation run and answers the
/// aggregate queries the paper's tables are built from.
///
/// ```
/// use sioscope_trace::{IoEvent, TraceRecorder};
/// use sioscope_pfs::{IoMode, OpKind};
/// use sioscope_sim::{FileId, Pid, Time};
///
/// let mut trace = TraceRecorder::new();
/// trace.record(IoEvent {
///     pid: Pid(0),
///     file: FileId(0),
///     kind: OpKind::Read,
///     start: Time::ZERO,
///     duration: Time::from_millis(3),
///     bytes: 4096,
///     offset: 0,
///     mode: IoMode::MUnix,
/// });
/// assert_eq!(trace.total_io_time(), Time::from_millis(3));
/// assert_eq!(trace.bytes_by_kind()[&OpKind::Read], 4096);
/// ```
///
/// Aggregate queries are answered through a lazily built, cached
/// [`TraceIndex`] (see [`TraceRecorder::index`]); recording or
/// re-sorting invalidates the cache. Per-kind extractions
/// ([`sizes_of`](TraceRecorder::sizes_of) and the timeline methods)
/// therefore come back in the canonical `(start, pid, file, offset)`
/// order rather than raw recording order — identical on simulator
/// traces, which are sorted before being returned, and a distinction
/// no downstream consumer observes (they all sort or bin their input).
#[derive(Debug, Default, Serialize, Deserialize)]
pub struct TraceRecorder {
    events: Vec<IoEvent>,
    /// Lazily built columnar index over `events`. Never serialized;
    /// a deserialized or cloned recorder starts with a cold cache.
    #[serde(skip)]
    index: OnceLock<TraceIndex>,
}

impl Clone for TraceRecorder {
    fn clone(&self) -> Self {
        TraceRecorder {
            events: self.events.clone(),
            index: OnceLock::new(),
        }
    }
}

impl TraceRecorder {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one completed operation.
    pub fn record(&mut self, event: IoEvent) {
        self.index.take();
        self.events.push(event);
    }

    /// All events, in recording order (completion order of the
    /// simulation loop).
    pub fn events(&self) -> &[IoEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` iff nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Sort events by `(start, pid, file, offset)` — the canonical
    /// order for analysis, and the same stable order
    /// [`TraceIndex::build`] establishes internally.
    pub fn sort(&mut self) {
        self.index.take();
        self.events
            .sort_by_key(|e| (e.start, e.pid, e.file, e.offset));
    }

    /// The columnar analytics index over this trace, built on first
    /// use and cached until the trace is mutated. Every aggregate
    /// query below routes through it, so multi-query consumers (the
    /// experiment reports, `characterize`) pay for one O(n log n)
    /// build instead of a scan per query.
    pub fn index(&self) -> &TraceIndex {
        self.index.get_or_init(|| TraceIndex::build(&self.events))
    }

    /// Sum of client-observed durations per operation kind — the raw
    /// material of Tables 2, 3 and 5.
    pub fn duration_by_kind(&self) -> BTreeMap<OpKind, Time> {
        self.index().duration_by_kind()
    }

    /// Total client-observed I/O time (sum over all events).
    ///
    /// Uses the index when it is already built, but never triggers a
    /// build: sweeps call this once per run, where a single O(n) pass
    /// beats constructing the index.
    pub fn total_io_time(&self) -> Time {
        match self.index.get() {
            Some(idx) => idx.total_io_time(),
            None => self.events.iter().map(|e| e.duration).sum(),
        }
    }

    /// Bytes transferred per kind (reads and writes).
    pub fn bytes_by_kind(&self) -> BTreeMap<OpKind, u64> {
        self.index().bytes_by_kind()
    }

    /// Events of one kind.
    pub fn of_kind(&self, kind: OpKind) -> impl Iterator<Item = &IoEvent> {
        self.events.iter().filter(move |e| e.kind == kind)
    }

    /// Events touching one file.
    pub fn of_file(&self, file: FileId) -> impl Iterator<Item = &IoEvent> {
        self.events.iter().filter(move |e| e.file == file)
    }

    /// Events issued by one process.
    pub fn of_pid(&self, pid: Pid) -> impl Iterator<Item = &IoEvent> {
        self.events.iter().filter(move |e| e.pid == pid)
    }

    /// The request sizes of every event of `kind`, for CDF building.
    /// Canonical (start-sorted) order; see the type-level note.
    pub fn sizes_of(&self, kind: OpKind) -> Vec<u64> {
        self.index().sizes_of(kind)
    }

    /// `(start, bytes)` pairs for every event of `kind` — the
    /// timeline scatter data of Figures 3, 4, 8 and 9.
    pub fn timeline_of(&self, kind: OpKind) -> Vec<(Time, u64)> {
        self.index().timeline_of(kind)
    }

    /// `(start, duration)` pairs for every event of `kind` — the seek
    /// duration scatter of Figure 5.
    pub fn duration_timeline_of(&self, kind: OpKind) -> Vec<(Time, Time)> {
        self.index().duration_timeline_of(kind)
    }

    /// Completion time of the last event (zero for an empty trace).
    ///
    /// Like [`total_io_time`](TraceRecorder::total_io_time), uses the
    /// index opportunistically without forcing a build.
    pub fn last_completion(&self) -> Time {
        match self.index.get() {
            Some(idx) => idx.last_completion(),
            None => self
                .events
                .iter()
                .map(|e| e.end())
                .fold(Time::ZERO, Time::max),
        }
    }

    /// Validity check: every duration non-negative by construction
    /// (unsigned), and — per pid — starts are non-decreasing when the
    /// trace is sorted. Returns the number of events violating
    /// per-event invariants (currently: data ops with zero duration
    /// *and* nonzero bytes are suspicious but legal; we only flag
    /// events whose interval overflows).
    pub fn invariant_violations(&self) -> usize {
        self.events
            .iter()
            .filter(|e| {
                e.start
                    .as_nanos()
                    .checked_add(e.duration.as_nanos())
                    .is_none()
            })
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(pid: u32, kind: OpKind, start_ms: u64, dur_ms: u64, bytes: u64) -> IoEvent {
        IoEvent {
            pid: Pid(pid),
            file: FileId(0),
            kind,
            start: Time::from_millis(start_ms),
            duration: Time::from_millis(dur_ms),
            bytes,
            offset: 0,
            mode: sioscope_pfs::IoMode::MUnix,
        }
    }

    fn sample() -> TraceRecorder {
        let mut t = TraceRecorder::new();
        t.record(ev(0, OpKind::Open, 0, 10, 0));
        t.record(ev(0, OpKind::Read, 10, 5, 100));
        t.record(ev(1, OpKind::Read, 12, 5, 200));
        t.record(ev(0, OpKind::Write, 20, 2, 50));
        t.record(ev(0, OpKind::Close, 30, 1, 0));
        t
    }

    #[test]
    fn duration_by_kind_sums() {
        let t = sample();
        let d = t.duration_by_kind();
        assert_eq!(d[&OpKind::Read], Time::from_millis(10));
        assert_eq!(d[&OpKind::Open], Time::from_millis(10));
        assert_eq!(d[&OpKind::Write], Time::from_millis(2));
        assert_eq!(t.total_io_time(), Time::from_millis(23));
    }

    #[test]
    fn bytes_by_kind_counts_only_data() {
        let t = sample();
        let b = t.bytes_by_kind();
        assert_eq!(b[&OpKind::Read], 300);
        assert_eq!(b[&OpKind::Write], 50);
        assert!(!b.contains_key(&OpKind::Open));
    }

    #[test]
    fn filters_work() {
        let t = sample();
        assert_eq!(t.of_kind(OpKind::Read).count(), 2);
        assert_eq!(t.of_pid(Pid(1)).count(), 1);
        assert_eq!(t.of_file(FileId(0)).count(), 5);
        assert_eq!(t.sizes_of(OpKind::Read), vec![100, 200]);
    }

    #[test]
    fn timelines_extract_pairs() {
        let t = sample();
        let tl = t.timeline_of(OpKind::Read);
        assert_eq!(tl.len(), 2);
        assert_eq!(tl[0], (Time::from_millis(10), 100));
        let dl = t.duration_timeline_of(OpKind::Read);
        assert_eq!(dl[0].1, Time::from_millis(5));
    }

    #[test]
    fn sort_orders_by_start() {
        let mut t = TraceRecorder::new();
        t.record(ev(0, OpKind::Read, 20, 1, 1));
        t.record(ev(0, OpKind::Read, 10, 1, 1));
        t.sort();
        assert!(t.events()[0].start < t.events()[1].start);
    }

    #[test]
    fn last_completion_and_empty() {
        let t = sample();
        assert_eq!(t.last_completion(), Time::from_millis(31));
        let e = TraceRecorder::new();
        assert!(e.is_empty());
        assert_eq!(e.last_completion(), Time::ZERO);
        assert_eq!(e.total_io_time(), Time::ZERO);
    }

    #[test]
    fn no_invariant_violations_in_sane_trace() {
        assert_eq!(sample().invariant_violations(), 0);
    }

    #[test]
    fn index_cache_invalidated_by_mutation() {
        let mut t = sample();
        assert_eq!(t.bytes_by_kind()[&OpKind::Read], 300); // builds index
        t.record(ev(2, OpKind::Read, 40, 1, 7));
        assert_eq!(t.bytes_by_kind()[&OpKind::Read], 307); // rebuilt
        t.sort();
        assert_eq!(t.index().len(), 6);
    }

    #[test]
    fn clone_starts_with_a_cold_cache_but_same_answers() {
        let t = sample();
        let _ = t.index();
        let c = t.clone();
        assert_eq!(c.duration_by_kind(), t.duration_by_kind());
        assert_eq!(c.total_io_time(), t.total_io_time());
        assert_eq!(c.last_completion(), t.last_completion());
    }
}
