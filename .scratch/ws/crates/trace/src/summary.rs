//! Pablo's three statistical summary forms (§3.1).
//!
//! Each form has two constructors: `build`, the original linear scan
//! over the event slice, and `from_index`, which answers the same
//! question from a [`TraceIndex`] — postings lookups for lifetimes,
//! binary-search + prefix-sum subtraction for windows and regions.
//! The scans are retained as oracles; property tests assert the two
//! agree on arbitrary traces.

use crate::event::IoEvent;
use crate::index::TraceIndex;
use serde::{Deserialize, Serialize};
use sioscope_pfs::OpKind;
use sioscope_sim::{FileId, Time};
use std::collections::BTreeMap;

/// Per-operation-kind aggregate statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpStats {
    /// Number of operations.
    pub count: u64,
    /// Sum of client-observed durations.
    pub total_duration: Time,
    /// Bytes transferred.
    pub bytes: u64,
}

impl OpStats {
    fn absorb(&mut self, e: &IoEvent) {
        self.count += 1;
        self.total_duration += e.duration;
        self.bytes += e.bytes;
    }

    /// Mean duration per operation (zero if no operations).
    pub fn mean_duration(&self) -> Time {
        if self.count == 0 {
            Time::ZERO
        } else {
            self.total_duration / self.count
        }
    }
}

fn stats_over<'a>(events: impl Iterator<Item = &'a IoEvent>) -> BTreeMap<OpKind, OpStats> {
    let mut per_kind: BTreeMap<OpKind, OpStats> = BTreeMap::new();
    for e in events {
        per_kind.entry(e.kind).or_default().absorb(e);
    }
    per_kind
}

/// File lifetime summary: "the number and total duration of file
/// reads, writes, seeks, opens, and closes, as well as the number of
/// bytes accessed for each file, and the total time each file was
/// open."
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LifetimeSummary {
    /// The summarized file.
    pub file: FileId,
    /// Per-kind statistics.
    pub per_kind: BTreeMap<OpKind, OpStats>,
    /// First open start, if the file was ever opened.
    pub first_open: Option<Time>,
    /// Last close end, if the file was ever closed.
    pub last_close: Option<Time>,
}

impl LifetimeSummary {
    /// Summarize every event touching `file`.
    pub fn build(events: &[IoEvent], file: FileId) -> Self {
        let relevant = events.iter().filter(|e| e.file == file);
        let per_kind = stats_over(relevant.clone());
        let first_open = relevant
            .clone()
            .filter(|e| matches!(e.kind, OpKind::Open | OpKind::Gopen))
            .map(|e| e.start)
            .min();
        let last_close = relevant
            .filter(|e| e.kind == OpKind::Close)
            .map(|e| e.end())
            .max();
        LifetimeSummary {
            file,
            per_kind,
            first_open,
            last_close,
        }
    }

    /// The indexed equivalent of [`LifetimeSummary::build`]: one
    /// postings lookup instead of a scan — the statistics were
    /// pre-aggregated at index construction.
    pub fn from_index(index: &TraceIndex, file: FileId) -> Self {
        LifetimeSummary {
            file,
            per_kind: index.file_per_kind(file).cloned().unwrap_or_default(),
            first_open: index.file_first_open(file),
            last_close: index.file_last_close(file),
        }
    }

    /// Total time the file was open (last close − first open); `None`
    /// if it was never both opened and closed.
    pub fn open_span(&self) -> Option<Time> {
        match (self.first_open, self.last_close) {
            (Some(o), Some(c)) if c >= o => Some(c - o),
            _ => None,
        }
    }

    /// Bytes accessed (reads + writes).
    pub fn bytes_accessed(&self) -> u64 {
        self.per_kind
            .iter()
            .filter(|(k, _)| matches!(k, OpKind::Read | OpKind::Write))
            .map(|(_, s)| s.bytes)
            .sum()
    }
}

/// Time window summary: the same statistics over events intersecting
/// `[t0, t1)`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimeWindowSummary {
    /// Window start (inclusive).
    pub t0: Time,
    /// Window end (exclusive).
    pub t1: Time,
    /// Per-kind statistics over intersecting events.
    pub per_kind: BTreeMap<OpKind, OpStats>,
}

impl TimeWindowSummary {
    /// Summarize events intersecting the window.
    ///
    /// # Panics
    /// Panics if `t1 < t0`.
    pub fn build(events: &[IoEvent], t0: Time, t1: Time) -> Self {
        assert!(t1 >= t0, "window end before start");
        let per_kind = stats_over(events.iter().filter(|e| e.in_window(t0, t1)));
        TimeWindowSummary { t0, t1, per_kind }
    }

    /// The indexed equivalent of [`TimeWindowSummary::build`]: two
    /// binary searches and a prefix-sum subtraction per kind instead
    /// of a scan.
    ///
    /// # Panics
    /// Panics if `t1 < t0`.
    pub fn from_index(index: &TraceIndex, t0: Time, t1: Time) -> Self {
        assert!(t1 >= t0, "window end before start");
        TimeWindowSummary {
            t0,
            t1,
            per_kind: index.window_stats(t0, t1),
        }
    }

    /// Total I/O time inside the window (durations of intersecting
    /// events, uncropped — as Pablo reported them).
    pub fn total_io_time(&self) -> Time {
        self.per_kind.values().map(|s| s.total_duration).sum()
    }
}

/// File region summary: statistics over data operations touching
/// `[lo, hi)` of one file — "the spatial analog of time window
/// summaries".
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FileRegionSummary {
    /// The summarized file.
    pub file: FileId,
    /// Region start offset (inclusive).
    pub lo: u64,
    /// Region end offset (exclusive).
    pub hi: u64,
    /// Per-kind statistics over data ops touching the region.
    pub per_kind: BTreeMap<OpKind, OpStats>,
}

impl FileRegionSummary {
    /// Summarize data operations on `file` that touch `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `hi < lo`.
    pub fn build(events: &[IoEvent], file: FileId, lo: u64, hi: u64) -> Self {
        assert!(hi >= lo, "region end before start");
        let per_kind = stats_over(
            events
                .iter()
                .filter(|e| e.file == file && e.touches_region(lo, hi)),
        );
        FileRegionSummary {
            file,
            lo,
            hi,
            per_kind,
        }
    }

    /// The indexed equivalent of [`FileRegionSummary::build`], using
    /// the per-`(file, kind)` offset-sorted prefix sums.
    ///
    /// # Panics
    /// Panics if `hi < lo`.
    pub fn from_index(index: &TraceIndex, file: FileId, lo: u64, hi: u64) -> Self {
        assert!(hi >= lo, "region end before start");
        FileRegionSummary {
            file,
            lo,
            hi,
            per_kind: index.region_stats(file, lo, hi),
        }
    }

    /// Number of accesses to the region.
    pub fn accesses(&self) -> u64 {
        self.per_kind.values().map(|s| s.count).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sioscope_sim::Pid;

    fn ev(kind: OpKind, file: u32, start_s: u64, dur_s: u64, bytes: u64, offset: u64) -> IoEvent {
        IoEvent {
            pid: Pid(0),
            file: FileId(file),
            kind,
            start: Time::from_secs(start_s),
            duration: Time::from_secs(dur_s),
            bytes,
            offset,
            mode: sioscope_pfs::IoMode::MUnix,
        }
    }

    fn trace() -> Vec<IoEvent> {
        vec![
            ev(OpKind::Open, 0, 0, 1, 0, 0),
            ev(OpKind::Read, 0, 1, 2, 100, 0),
            ev(OpKind::Read, 0, 3, 2, 100, 100),
            ev(OpKind::Write, 0, 5, 1, 50, 200),
            ev(OpKind::Close, 0, 10, 1, 0, 0),
            ev(OpKind::Read, 1, 2, 4, 999, 0), // other file
        ]
    }

    #[test]
    fn lifetime_summary_counts_one_file() {
        let s = LifetimeSummary::build(&trace(), FileId(0));
        assert_eq!(s.per_kind[&OpKind::Read].count, 2);
        assert_eq!(s.per_kind[&OpKind::Read].bytes, 200);
        assert_eq!(s.per_kind[&OpKind::Write].count, 1);
        assert_eq!(s.bytes_accessed(), 250);
        assert_eq!(s.open_span(), Some(Time::from_secs(11)));
        assert_eq!(
            s.per_kind[&OpKind::Read].mean_duration(),
            Time::from_secs(2)
        );
    }

    #[test]
    fn lifetime_summary_without_close_has_no_span() {
        let events = vec![ev(OpKind::Open, 0, 0, 1, 0, 0)];
        let s = LifetimeSummary::build(&events, FileId(0));
        assert_eq!(s.open_span(), None);
    }

    #[test]
    fn window_summary_selects_intersecting() {
        let t = trace();
        // Window [2, 4): read@1(2s) intersects, read@3 intersects,
        // file-1 read@2 intersects; write@5 does not.
        let w = TimeWindowSummary::build(&t, Time::from_secs(2), Time::from_secs(4));
        assert_eq!(w.per_kind[&OpKind::Read].count, 3);
        assert!(!w.per_kind.contains_key(&OpKind::Write));
        assert!(w.total_io_time() > Time::ZERO);
    }

    #[test]
    fn empty_window_is_empty() {
        let w = TimeWindowSummary::build(&trace(), Time::from_secs(100), Time::from_secs(200));
        assert!(w.per_kind.is_empty());
        assert_eq!(w.total_io_time(), Time::ZERO);
    }

    #[test]
    #[should_panic(expected = "window end")]
    fn inverted_window_panics() {
        TimeWindowSummary::build(&trace(), Time::from_secs(2), Time::from_secs(1));
    }

    #[test]
    fn region_summary_selects_touching_data_ops() {
        let t = trace();
        // Region [100, 250) of file 0: read@offset100 and write@200.
        let r = FileRegionSummary::build(&t, FileId(0), 100, 250);
        assert_eq!(r.per_kind[&OpKind::Read].count, 1);
        assert_eq!(r.per_kind[&OpKind::Write].count, 1);
        assert_eq!(r.accesses(), 2);
        // Opens/closes never appear in region summaries.
        assert!(!r.per_kind.contains_key(&OpKind::Open));
    }

    #[test]
    fn region_summary_excludes_other_files() {
        let r = FileRegionSummary::build(&trace(), FileId(1), 0, u64::MAX);
        assert_eq!(r.accesses(), 1);
        assert_eq!(r.per_kind[&OpKind::Read].bytes, 999);
    }

    #[test]
    fn indexed_constructors_match_the_scans() {
        let t = trace();
        let idx = TraceIndex::build(&t);
        for f in [FileId(0), FileId(1), FileId(9)] {
            assert_eq!(
                LifetimeSummary::from_index(&idx, f),
                LifetimeSummary::build(&t, f)
            );
        }
        for (a, b) in [(0, 4), (2, 4), (5, 5), (100, 200)] {
            let (t0, t1) = (Time::from_secs(a), Time::from_secs(b));
            assert_eq!(
                TimeWindowSummary::from_index(&idx, t0, t1),
                TimeWindowSummary::build(&t, t0, t1)
            );
        }
        for (lo, hi) in [(0, 100), (100, 250), (0, u64::MAX), (200, 200)] {
            assert_eq!(
                FileRegionSummary::from_index(&idx, FileId(0), lo, hi),
                FileRegionSummary::build(&t, FileId(0), lo, hi)
            );
        }
    }

    #[test]
    #[should_panic(expected = "window end")]
    fn inverted_indexed_window_panics() {
        let idx = TraceIndex::build(&trace());
        TimeWindowSummary::from_index(&idx, Time::from_secs(2), Time::from_secs(1));
    }
}
