//! Compact binary trace format — the stand-in for Pablo's SDDF binary
//! encoding. Event traces at paper scale run to hundreds of thousands
//! of records; the binary form is ~5× smaller than JSON and
//! round-trips exactly.
//!
//! Layout (little-endian):
//!
//! ```text
//! magic   : b"SIOT"            (4 bytes)
//! version : u16                (currently 2)
//! count   : u64
//! records : count × 42 bytes
//!   pid      : u32
//!   file     : u32
//!   kind     : u8   (OpKind discriminant, table-row order)
//!   mode     : u8   (IoMode discriminant, paper order)
//!   start    : u64  (ns)
//!   duration : u64  (ns)
//!   bytes    : u64
//!   offset   : u64
//! ```

use crate::event::IoEvent;
use crate::recorder::TraceRecorder;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use sioscope_pfs::{IoMode, OpKind};
use sioscope_sim::{FileId, Pid, Time};
use std::fmt;

const MAGIC: &[u8; 4] = b"SIOT";
const VERSION: u16 = 2;
const RECORD_BYTES: usize = 4 + 4 + 1 + 1 + 8 + 8 + 8 + 8;

/// Decoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BinaryError {
    /// Input does not start with the `SIOT` magic.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u16),
    /// Input ends before the declared record count.
    Truncated {
        /// Records the header declared.
        declared: u64,
        /// Bytes actually available for records.
        available: usize,
    },
    /// A record carried an invalid operation kind.
    BadKind(u8),
    /// A record carried an invalid access mode.
    BadMode(u8),
}

impl fmt::Display for BinaryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BinaryError::BadMagic => write!(f, "not a SIOT trace (bad magic)"),
            BinaryError::BadVersion(v) => write!(f, "unsupported SIOT version {v}"),
            BinaryError::Truncated {
                declared,
                available,
            } => write!(
                f,
                "truncated trace: {declared} records declared, {available} bytes available"
            ),
            BinaryError::BadKind(k) => write!(f, "invalid operation kind {k}"),
            BinaryError::BadMode(m) => write!(f, "invalid access mode {m}"),
        }
    }
}

impl std::error::Error for BinaryError {}

fn kind_to_u8(kind: OpKind) -> u8 {
    match kind {
        OpKind::Open => 0,
        OpKind::Gopen => 1,
        OpKind::Read => 2,
        OpKind::Seek => 3,
        OpKind::Write => 4,
        OpKind::Iomode => 5,
        OpKind::Flush => 6,
        OpKind::Close => 7,
    }
}

fn mode_to_u8(mode: IoMode) -> u8 {
    match mode {
        IoMode::MUnix => 0,
        IoMode::MRecord => 1,
        IoMode::MAsync => 2,
        IoMode::MGlobal => 3,
        IoMode::MSync => 4,
        IoMode::MLog => 5,
    }
}

fn mode_from_u8(v: u8) -> Result<IoMode, BinaryError> {
    Ok(match v {
        0 => IoMode::MUnix,
        1 => IoMode::MRecord,
        2 => IoMode::MAsync,
        3 => IoMode::MGlobal,
        4 => IoMode::MSync,
        5 => IoMode::MLog,
        other => return Err(BinaryError::BadMode(other)),
    })
}

fn kind_from_u8(v: u8) -> Result<OpKind, BinaryError> {
    Ok(match v {
        0 => OpKind::Open,
        1 => OpKind::Gopen,
        2 => OpKind::Read,
        3 => OpKind::Seek,
        4 => OpKind::Write,
        5 => OpKind::Iomode,
        6 => OpKind::Flush,
        7 => OpKind::Close,
        other => return Err(BinaryError::BadKind(other)),
    })
}

/// Encode a trace to the binary format.
pub fn encode(trace: &TraceRecorder) -> Bytes {
    let events = trace.events();
    let mut buf = BytesMut::with_capacity(4 + 2 + 8 + events.len() * RECORD_BYTES);
    buf.put_slice(MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_u64_le(events.len() as u64);
    for e in events {
        buf.put_u32_le(e.pid.0);
        buf.put_u32_le(e.file.0);
        buf.put_u8(kind_to_u8(e.kind));
        buf.put_u8(mode_to_u8(e.mode));
        buf.put_u64_le(e.start.as_nanos());
        buf.put_u64_le(e.duration.as_nanos());
        buf.put_u64_le(e.bytes);
        buf.put_u64_le(e.offset);
    }
    buf.freeze()
}

/// Decode a binary trace.
pub fn decode(mut data: &[u8]) -> Result<TraceRecorder, BinaryError> {
    if data.len() < 4 + 2 + 8 || &data[..4] != MAGIC {
        return Err(BinaryError::BadMagic);
    }
    data.advance(4);
    let version = data.get_u16_le();
    if version != VERSION {
        return Err(BinaryError::BadVersion(version));
    }
    let count = data.get_u64_le();
    let need = (count as usize).saturating_mul(RECORD_BYTES);
    if data.remaining() < need {
        return Err(BinaryError::Truncated {
            declared: count,
            available: data.remaining(),
        });
    }
    let mut trace = TraceRecorder::new();
    for _ in 0..count {
        let pid = Pid(data.get_u32_le());
        let file = FileId(data.get_u32_le());
        let kind = kind_from_u8(data.get_u8())?;
        let mode = mode_from_u8(data.get_u8())?;
        let start = Time::from_nanos(data.get_u64_le());
        let duration = Time::from_nanos(data.get_u64_le());
        let bytes = data.get_u64_le();
        let offset = data.get_u64_le();
        trace.record(IoEvent {
            pid,
            file,
            kind,
            start,
            duration,
            bytes,
            offset,
            mode,
        });
    }
    Ok(trace)
}

/// Write a trace to a file in binary form.
pub fn write_file(trace: &TraceRecorder, path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, encode(trace))
}

/// Incremental binary trace writer: events stream to an underlying
/// writer as they are recorded, so multi-hundred-thousand-event runs
/// never hold the whole trace in memory twice. The record count is
/// back-patched into the header on [`StreamWriter::finish`].
pub struct StreamWriter<W: std::io::Write + std::io::Seek> {
    inner: W,
    count: u64,
}

impl<W: std::io::Write + std::io::Seek> StreamWriter<W> {
    /// Start a stream, writing the header with a zero count.
    pub fn new(mut inner: W) -> std::io::Result<Self> {
        inner.write_all(MAGIC)?;
        inner.write_all(&VERSION.to_le_bytes())?;
        inner.write_all(&0u64.to_le_bytes())?;
        Ok(StreamWriter { inner, count: 0 })
    }

    /// Append one event.
    pub fn record(&mut self, e: &IoEvent) -> std::io::Result<()> {
        let mut buf = BytesMut::with_capacity(RECORD_BYTES);
        buf.put_u32_le(e.pid.0);
        buf.put_u32_le(e.file.0);
        buf.put_u8(kind_to_u8(e.kind));
        buf.put_u8(mode_to_u8(e.mode));
        buf.put_u64_le(e.start.as_nanos());
        buf.put_u64_le(e.duration.as_nanos());
        buf.put_u64_le(e.bytes);
        buf.put_u64_le(e.offset);
        self.inner.write_all(&buf)?;
        self.count += 1;
        Ok(())
    }

    /// Number of events written so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Back-patch the header count and flush; returns the writer.
    /// A stream that is dropped without `finish` keeps the zero count
    /// written by [`StreamWriter::new`], so readers see an empty (not
    /// corrupt) trace.
    pub fn finish(mut self) -> std::io::Result<W> {
        use std::io::SeekFrom;
        self.inner.seek(SeekFrom::Start(6))?;
        self.inner.write_all(&self.count.to_le_bytes())?;
        self.inner.seek(SeekFrom::End(0))?;
        self.inner.flush()?;
        Ok(self.inner)
    }
}

/// Read a binary trace file.
pub fn read_file(path: &std::path::Path) -> std::io::Result<TraceRecorder> {
    let data = std::fs::read(path)?;
    decode(&data).map_err(std::io::Error::other)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TraceRecorder {
        let mut t = TraceRecorder::new();
        for i in 0..50u32 {
            t.record(IoEvent {
                pid: Pid(i % 7),
                file: FileId(i % 3),
                kind: kind_from_u8((i % 8) as u8).expect("valid kind"),
                start: Time::from_micros(u64::from(i) * 13),
                duration: Time::from_nanos(u64::from(i) * 7 + 1),
                bytes: u64::from(i) * 1000,
                offset: u64::from(i) * 4096,
                mode: mode_from_u8((i % 6) as u8).expect("valid mode"),
            });
        }
        t
    }

    #[test]
    fn round_trip_exact() {
        let t = sample();
        let encoded = encode(&t);
        let back = decode(&encoded).expect("decodes");
        assert_eq!(back.events(), t.events());
    }

    #[test]
    fn empty_trace_round_trips() {
        let t = TraceRecorder::new();
        let back = decode(&encode(&t)).expect("decodes");
        assert!(back.is_empty());
    }

    #[test]
    fn binary_is_much_smaller_than_json() {
        let t = sample();
        let bin = encode(&t).len();
        let json = crate::export::to_json(&t).expect("json").len();
        assert!(
            bin * 2 < json,
            "binary {bin} bytes should be well under half of JSON {json}"
        );
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(decode(b"NOPE").unwrap_err(), BinaryError::BadMagic);
        assert_eq!(decode(b"").unwrap_err(), BinaryError::BadMagic);
    }

    #[test]
    fn bad_version_rejected() {
        let mut data = encode(&sample()).to_vec();
        data[4] = 99;
        assert_eq!(decode(&data).unwrap_err(), BinaryError::BadVersion(99));
    }

    #[test]
    fn truncation_rejected() {
        let data = encode(&sample());
        let cut = &data[..data.len() - 5];
        assert!(matches!(
            decode(cut).unwrap_err(),
            BinaryError::Truncated { .. }
        ));
    }

    #[test]
    fn bad_kind_rejected() {
        let t = sample();
        let mut data = encode(&t).to_vec();
        // Corrupt the first record's kind byte (after 14-byte header,
        // pid+file = 8 bytes in).
        data[14 + 8] = 42;
        assert_eq!(decode(&data).unwrap_err(), BinaryError::BadKind(42));
    }

    #[test]
    fn bad_mode_rejected() {
        let t = sample();
        let mut data = encode(&t).to_vec();
        // The mode byte follows the kind byte.
        data[14 + 9] = 99;
        assert_eq!(decode(&data).unwrap_err(), BinaryError::BadMode(99));
    }

    #[test]
    fn stream_writer_matches_batch_encoding() {
        let t = sample();
        let mut cursor = std::io::Cursor::new(Vec::new());
        {
            let mut w = StreamWriter::new(&mut cursor).expect("header");
            for e in t.events() {
                w.record(e).expect("record");
            }
            assert_eq!(w.count(), t.len() as u64);
            w.finish().expect("finish");
        }
        let streamed = cursor.into_inner();
        assert_eq!(streamed, encode(&t).to_vec());
        let back = decode(&streamed).expect("decodes");
        assert_eq!(back.events(), t.events());
    }

    #[test]
    fn stream_writer_empty_stream_is_valid() {
        let mut cursor = std::io::Cursor::new(Vec::new());
        StreamWriter::new(&mut cursor)
            .expect("header")
            .finish()
            .expect("finish");
        let back = decode(&cursor.into_inner()).expect("decodes");
        assert!(back.is_empty());
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("sioscope_binary_test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("trace.siot");
        let t = sample();
        write_file(&t, &path).expect("write");
        let back = read_file(&path).expect("read");
        assert_eq!(back.events(), t.events());
        std::fs::remove_file(&path).ok();
    }
}
