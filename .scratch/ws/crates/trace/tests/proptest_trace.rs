//! Property-based tests of the tracing layer: summaries are exact
//! aggregations of the raw events, and export round-trips.

use proptest::prelude::*;
use sioscope_pfs::{IoMode, OpKind};
use sioscope_sim::{FileId, Pid, Time};
use sioscope_trace::{export, IoEvent, LifetimeSummary, TimeWindowSummary, TraceRecorder};

fn arb_kind() -> impl Strategy<Value = OpKind> {
    prop_oneof![
        Just(OpKind::Open),
        Just(OpKind::Gopen),
        Just(OpKind::Read),
        Just(OpKind::Seek),
        Just(OpKind::Write),
        Just(OpKind::Iomode),
        Just(OpKind::Flush),
        Just(OpKind::Close),
    ]
}

fn arb_mode() -> impl Strategy<Value = IoMode> {
    prop_oneof![
        Just(IoMode::MUnix),
        Just(IoMode::MRecord),
        Just(IoMode::MAsync),
        Just(IoMode::MGlobal),
        Just(IoMode::MSync),
        Just(IoMode::MLog),
    ]
}

fn arb_event() -> impl Strategy<Value = IoEvent> {
    (
        0u32..8,
        0u32..4,
        arb_kind(),
        0u64..1_000_000,
        0u64..10_000,
        0u64..100_000,
        0u64..1_000_000,
        arb_mode(),
    )
        .prop_map(
            |(pid, file, kind, start, dur, bytes, offset, mode)| IoEvent {
                pid: Pid(pid),
                file: FileId(file),
                kind,
                start: Time::from_nanos(start),
                duration: Time::from_nanos(dur),
                bytes: if matches!(kind, OpKind::Read | OpKind::Write) {
                    bytes
                } else {
                    0
                },
                offset,
                mode,
            },
        )
}

proptest! {
    /// duration_by_kind sums exactly to total_io_time, and bytes are
    /// partitioned by kind.
    #[test]
    fn aggregates_are_exact(events in prop::collection::vec(arb_event(), 0..200)) {
        let mut t = TraceRecorder::new();
        for e in &events {
            t.record(*e);
        }
        let by_kind = t.duration_by_kind();
        let total: Time = by_kind.values().copied().sum();
        prop_assert_eq!(total, t.total_io_time());
        let manual: u64 = events.iter().map(|e| e.duration.as_nanos()).sum();
        prop_assert_eq!(total.as_nanos(), manual);

        let bytes = t.bytes_by_kind();
        let manual_read: u64 = events.iter().filter(|e| e.kind == OpKind::Read).map(|e| e.bytes).sum();
        prop_assert_eq!(bytes.get(&OpKind::Read).copied().unwrap_or(0), manual_read);
    }

    /// Lifetime summaries over every file partition the trace.
    #[test]
    fn lifetime_summaries_partition(events in prop::collection::vec(arb_event(), 0..200)) {
        let mut t = TraceRecorder::new();
        for e in &events {
            t.record(*e);
        }
        let mut count = 0u64;
        let mut duration = Time::ZERO;
        for f in 0..4u32 {
            let s = LifetimeSummary::build(t.events(), FileId(f));
            for stats in s.per_kind.values() {
                count += stats.count;
                duration += stats.total_duration;
            }
        }
        prop_assert_eq!(count, t.len() as u64);
        prop_assert_eq!(duration, t.total_io_time());
    }

    /// A window covering all time equals the whole trace; an empty
    /// window is empty.
    #[test]
    fn window_extremes(events in prop::collection::vec(arb_event(), 0..150)) {
        let mut t = TraceRecorder::new();
        for e in &events {
            t.record(*e);
        }
        let all = TimeWindowSummary::build(t.events(), Time::ZERO, Time::MAX);
        let count: u64 = all.per_kind.values().map(|s| s.count).sum();
        // Zero-duration events starting at t=0 still intersect [0, MAX).
        prop_assert!(count >= t.events().iter().filter(|e| e.duration > Time::ZERO).count() as u64);
        let none = TimeWindowSummary::build(t.events(), Time::MAX, Time::MAX);
        prop_assert_eq!(none.per_kind.len(), 0);
    }

    /// JSON export round-trips every event exactly.
    #[test]
    fn export_round_trip(events in prop::collection::vec(arb_event(), 0..100)) {
        let mut t = TraceRecorder::new();
        for e in &events {
            t.record(*e);
        }
        let json = export::to_json(&t).expect("serialize");
        let back = export::from_json(&json).expect("deserialize");
        prop_assert_eq!(back.events(), t.events());
    }

    /// Binary export round-trips every event exactly and is smaller
    /// than JSON for non-trivial traces.
    #[test]
    fn binary_round_trip(events in prop::collection::vec(arb_event(), 0..100)) {
        let mut t = TraceRecorder::new();
        for e in &events {
            t.record(*e);
        }
        let bin = sioscope_trace::binary::encode(&t);
        let back = sioscope_trace::binary::decode(&bin).expect("decode");
        prop_assert_eq!(back.events(), t.events());
        if t.len() > 4 {
            let json = export::to_json(&t).expect("json");
            prop_assert!(bin.len() < json.len());
        }
    }

    /// Sorting is stable with respect to content: same multiset of
    /// events before and after.
    #[test]
    fn sort_preserves_content(events in prop::collection::vec(arb_event(), 0..150)) {
        let mut t = TraceRecorder::new();
        for e in &events {
            t.record(*e);
        }
        let mut before: Vec<IoEvent> = t.events().to_vec();
        t.sort();
        let mut after: Vec<IoEvent> = t.events().to_vec();
        let key = |e: &IoEvent| (e.start, e.pid, e.file, e.offset, e.kind as u8, e.bytes, e.duration);
        before.sort_by_key(key);
        after.sort_by_key(key);
        prop_assert_eq!(before, after);
        for pair in t.events().windows(2) {
            prop_assert!(pair[0].start <= pair[1].start);
        }
    }
}
