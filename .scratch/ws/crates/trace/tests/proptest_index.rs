//! Property-based tests of the columnar trace index: every indexed
//! query — lifetime, window, region, and by-kind aggregates — must
//! equal the naive-scan oracle on arbitrary event vectors, including
//! empty traces, zero-duration events, and offsets at the edge of the
//! u64 range.

use proptest::prelude::*;
use sioscope_pfs::{IoMode, OpKind};
use sioscope_sim::{DetRng, FileId, Pid, Time};
use sioscope_trace::{
    FileRegionSummary, IoEvent, LifetimeSummary, TimeWindowSummary, TraceIndex, TraceRecorder,
};

fn arb_kind() -> impl Strategy<Value = OpKind> {
    prop_oneof![
        Just(OpKind::Open),
        Just(OpKind::Gopen),
        Just(OpKind::Read),
        Just(OpKind::Seek),
        Just(OpKind::Write),
        Just(OpKind::Iomode),
        Just(OpKind::Flush),
        Just(OpKind::Close),
    ]
}

fn arb_mode() -> impl Strategy<Value = IoMode> {
    prop_oneof![
        Just(IoMode::MUnix),
        Just(IoMode::MRecord),
        Just(IoMode::MAsync),
        Just(IoMode::MGlobal),
        Just(IoMode::MSync),
        Just(IoMode::MLog),
    ]
}

/// Events with deliberately nasty shapes: frequent zero durations
/// (degenerate intervals), shared start instants, and offsets at the
/// saturation edge of the u64 range.
fn arb_event() -> impl Strategy<Value = IoEvent> {
    (
        0u32..8,
        0u32..4,
        arb_kind(),
        prop_oneof![Just(0u64), 0u64..1_000_000],
        prop_oneof![Just(0u64), 0u64..10_000],
        0u64..100_000,
        prop_oneof![
            3 => 0u64..1_000_000,
            1 => Just(u64::MAX),
            1 => Just(u64::MAX - 10),
        ],
        arb_mode(),
    )
        .prop_map(
            |(pid, file, kind, start, dur, bytes, offset, mode)| IoEvent {
                pid: Pid(pid),
                file: FileId(file),
                kind,
                start: Time::from_nanos(start),
                duration: Time::from_nanos(dur),
                bytes: if matches!(kind, OpKind::Read | OpKind::Write) {
                    bytes
                } else {
                    0
                },
                offset,
                mode,
            },
        )
}

fn recorder(events: &[IoEvent]) -> TraceRecorder {
    let mut t = TraceRecorder::new();
    for e in events {
        t.record(*e);
    }
    t
}

proptest! {
    /// Lifetime summaries via the index equal the scan for every file
    /// (including files absent from the trace).
    #[test]
    fn lifetime_indexed_matches_oracle(events in prop::collection::vec(arb_event(), 0..250)) {
        let idx = TraceIndex::build(&events);
        for f in 0..5u32 {
            prop_assert_eq!(
                LifetimeSummary::from_index(&idx, FileId(f)),
                LifetimeSummary::build(&events, FileId(f))
            );
        }
    }

    /// Window summaries via the prefix-sum algebra equal the scan for
    /// arbitrary windows, including degenerate `t0 == t1` windows at
    /// instants where zero-duration events start.
    #[test]
    fn window_indexed_matches_oracle(
        events in prop::collection::vec(arb_event(), 0..250),
        a in 0u64..1_100_000,
        b in 0u64..1_100_000,
    ) {
        let idx = TraceIndex::build(&events);
        let (t0, t1) = (Time::from_nanos(a.min(b)), Time::from_nanos(a.max(b)));
        prop_assert_eq!(
            TimeWindowSummary::from_index(&idx, t0, t1),
            TimeWindowSummary::build(&events, t0, t1)
        );
        // Degenerate window at `a` — exercises the correction term.
        let t = Time::from_nanos(a);
        prop_assert_eq!(
            TimeWindowSummary::from_index(&idx, t, t),
            TimeWindowSummary::build(&events, t, t)
        );
        // Degenerate window pinned to an actual event start, where
        // zero-duration events are guaranteed to sit when present.
        if let Some(e) = events.first() {
            prop_assert_eq!(
                TimeWindowSummary::from_index(&idx, e.start, e.start),
                TimeWindowSummary::build(&events, e.start, e.start)
            );
        }
    }

    /// Region summaries via the offset-sorted prefix sums equal the
    /// scan for arbitrary regions, including regions reaching
    /// `u64::MAX` against events whose byte ranges saturate.
    #[test]
    fn region_indexed_matches_oracle(
        events in prop::collection::vec(arb_event(), 0..250),
        file in 0u32..4,
        a in prop_oneof![Just(0u64), Just(u64::MAX), 0u64..2_000_000],
        b in prop_oneof![Just(0u64), Just(u64::MAX), 0u64..2_000_000],
    ) {
        let idx = TraceIndex::build(&events);
        let (lo, hi) = (a.min(b), a.max(b));
        prop_assert_eq!(
            FileRegionSummary::from_index(&idx, FileId(file), lo, hi),
            FileRegionSummary::build(&events, FileId(file), lo, hi)
        );
    }

    /// The recorder's routed aggregates equal naive per-event folds.
    #[test]
    fn recorder_aggregates_match_naive_folds(events in prop::collection::vec(arb_event(), 0..250)) {
        let mut t = recorder(&events);
        t.sort(); // canonical order: routed extractions == filtered scans
        let sorted = t.events().to_vec();

        let by_kind = t.duration_by_kind();
        for (&k, &d) in &by_kind {
            let manual: u64 = sorted.iter().filter(|e| e.kind == k).map(|e| e.duration.as_nanos()).sum();
            prop_assert_eq!(d.as_nanos(), manual);
        }
        prop_assert_eq!(by_kind.len(), {
            let mut kinds: Vec<OpKind> = sorted.iter().map(|e| e.kind).collect();
            kinds.sort_unstable();
            kinds.dedup();
            kinds.len()
        });

        let bytes = t.bytes_by_kind();
        for k in [OpKind::Read, OpKind::Write] {
            let manual: u64 = sorted.iter().filter(|e| e.kind == k).map(|e| e.bytes).sum();
            prop_assert_eq!(bytes.get(&k).copied().unwrap_or(0), manual);
            let manual_sizes: Vec<u64> =
                sorted.iter().filter(|e| e.kind == k).map(|e| e.bytes).collect();
            prop_assert_eq!(t.sizes_of(k), manual_sizes);
            let manual_tl: Vec<(Time, u64)> =
                sorted.iter().filter(|e| e.kind == k).map(|e| (e.start, e.bytes)).collect();
            prop_assert_eq!(t.timeline_of(k), manual_tl);
            let manual_dtl: Vec<(Time, Time)> =
                sorted.iter().filter(|e| e.kind == k).map(|e| (e.start, e.duration)).collect();
            prop_assert_eq!(t.duration_timeline_of(k), manual_dtl);
        }

        let manual_total: u64 = sorted.iter().map(|e| e.duration.as_nanos()).sum();
        prop_assert_eq!(t.total_io_time().as_nanos(), manual_total);
        let manual_last = sorted.iter().map(|e| e.end()).fold(Time::ZERO, Time::max);
        prop_assert_eq!(t.last_completion(), manual_last);
        // And the same two answers once the index is warm.
        let _ = t.index();
        prop_assert_eq!(t.total_io_time().as_nanos(), manual_total);
        prop_assert_eq!(t.last_completion(), manual_last);
    }

    /// The index's canonical event order is exactly the recorder's
    /// stable `(start, pid, file, offset)` sort.
    #[test]
    fn index_order_is_the_canonical_sort(events in prop::collection::vec(arb_event(), 0..250)) {
        let idx = TraceIndex::build(&events);
        let mut t = recorder(&events);
        t.sort();
        let indexed: Vec<IoEvent> = idx.iter().collect();
        prop_assert_eq!(indexed, t.events().to_vec());
    }

    /// `starting_in` (bucket-table lookups) equals the filtered scan
    /// over the sorted trace.
    #[test]
    fn starting_in_matches_filtered_scan(
        events in prop::collection::vec(arb_event(), 0..250),
        a in 0u64..1_100_000,
        b in 0u64..1_100_000,
    ) {
        let idx = TraceIndex::build(&events);
        let mut t = recorder(&events);
        t.sort();
        let (t0, t1) = (Time::from_nanos(a.min(b)), Time::from_nanos(a.max(b)));
        let via_index: Vec<IoEvent> = idx.starting_in(t0, t1).collect();
        let via_scan: Vec<IoEvent> = t
            .events()
            .iter()
            .filter(|e| e.start >= t0 && e.start < t1)
            .copied()
            .collect();
        prop_assert_eq!(via_index, via_scan);
    }
}

/// Deterministic large-trace check crossing the parallel-build
/// threshold: the rayon path must agree with the oracle scans exactly.
#[test]
fn large_parallel_build_matches_oracles() {
    let mut rng = DetRng::new(0x1DEC5);
    let mut events = Vec::with_capacity(6000);
    for _ in 0..6000 {
        let kind = match rng.range_inclusive(0, 7) {
            0 => OpKind::Open,
            1 => OpKind::Gopen,
            2 | 3 => OpKind::Read,
            4 => OpKind::Seek,
            5 => OpKind::Write,
            6 => OpKind::Flush,
            _ => OpKind::Close,
        };
        let data = matches!(kind, OpKind::Read | OpKind::Write);
        events.push(IoEvent {
            pid: Pid(rng.range_inclusive(0, 31) as u32),
            file: FileId(rng.range_inclusive(0, 5) as u32),
            kind,
            start: Time::from_nanos(rng.range_inclusive(0, 10_000_000)),
            duration: Time::from_nanos(rng.range_inclusive(0, 50_000)),
            bytes: if data {
                rng.range_inclusive(0, 65_536)
            } else {
                0
            },
            offset: rng.range_inclusive(0, 1 << 30),
            mode: IoMode::MUnix,
        });
    }
    let idx = TraceIndex::build(&events);
    assert_eq!(idx.len(), events.len());
    for f in 0..6u32 {
        assert_eq!(
            LifetimeSummary::from_index(&idx, FileId(f)),
            LifetimeSummary::build(&events, FileId(f))
        );
    }
    for (a, b) in [(0, 10_000_000), (1_000_000, 2_000_000), (5_000, 5_000)] {
        let (t0, t1) = (Time::from_nanos(a), Time::from_nanos(b));
        assert_eq!(
            TimeWindowSummary::from_index(&idx, t0, t1),
            TimeWindowSummary::build(&events, t0, t1)
        );
    }
    for (lo, hi) in [(0u64, 1 << 29), (1 << 20, 1 << 21), (0, u64::MAX)] {
        assert_eq!(
            FileRegionSummary::from_index(&idx, FileId(2), lo, hi),
            FileRegionSummary::build(&events, FileId(2), lo, hi)
        );
    }
}
