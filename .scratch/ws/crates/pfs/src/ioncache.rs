//! The I/O-node block cache.
//!
//! Each Paragon I/O node ran a full OSF/1 server with a file block
//! cache in front of its RAID-3 array. Blocks recently read from, or
//! written to, the array are served from I/O-node memory — which is
//! why 128 compute nodes each re-reading the same small initialization
//! file (the ESCAT/PRISM version-A pattern) was slow because of
//! *serialization*, not because the array performed thousands of
//! physical reads.
//!
//! The cache is a FIFO set of `(file, block)` pairs with fixed
//! capacity, at stripe-unit granularity.

use sioscope_sim::FileId;
use std::collections::{HashSet, VecDeque};

/// FIFO block cache for one I/O node.
#[derive(Debug, Clone)]
pub struct IonCache {
    capacity: usize,
    present: HashSet<(FileId, u64)>,
    order: VecDeque<(FileId, u64)>,
    hits: u64,
    misses: u64,
}

impl IonCache {
    /// A cache holding at most `capacity` blocks (zero disables
    /// caching entirely).
    pub fn new(capacity: usize) -> Self {
        IonCache {
            capacity,
            present: HashSet::new(),
            order: VecDeque::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Probe for a block, counting the access. Does not insert.
    pub fn probe(&mut self, file: FileId, block: u64) -> bool {
        let hit = self.present.contains(&(file, block));
        if hit {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
        hit
    }

    /// Insert a block (after a read miss brings it in, or a write
    /// deposits it). Evicts the oldest block when full.
    pub fn insert(&mut self, file: FileId, block: u64) {
        if self.capacity == 0 || self.present.contains(&(file, block)) {
            return;
        }
        if self.order.len() == self.capacity {
            if let Some(old) = self.order.pop_front() {
                self.present.remove(&old);
            }
        }
        self.present.insert((file, block));
        self.order.push_back((file, block));
    }

    /// Number of resident blocks.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// `true` iff no blocks are resident.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// `(hits, misses)` counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_then_probe_hits() {
        let mut c = IonCache::new(4);
        assert!(!c.probe(FileId(0), 0));
        c.insert(FileId(0), 0);
        assert!(c.probe(FileId(0), 0));
        assert!(!c.probe(FileId(0), 1));
        assert!(!c.probe(FileId(1), 0));
        assert_eq!(c.stats(), (1, 3));
    }

    #[test]
    fn fifo_eviction_at_capacity() {
        let mut c = IonCache::new(2);
        c.insert(FileId(0), 0);
        c.insert(FileId(0), 1);
        c.insert(FileId(0), 2); // evicts block 0
        assert!(!c.probe(FileId(0), 0));
        assert!(c.probe(FileId(0), 1));
        assert!(c.probe(FileId(0), 2));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn duplicate_insert_is_idempotent() {
        let mut c = IonCache::new(2);
        c.insert(FileId(0), 7);
        c.insert(FileId(0), 7);
        assert_eq!(c.len(), 1);
        assert!(!c.is_empty());
    }

    #[test]
    fn zero_capacity_disables_cache() {
        let mut c = IonCache::new(0);
        c.insert(FileId(0), 0);
        assert!(!c.probe(FileId(0), 0));
        assert!(c.is_empty());
    }
}
