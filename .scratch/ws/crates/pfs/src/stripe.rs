//! File striping across I/O nodes.
//!
//! PFS declusters every file across the machine's I/O nodes in
//! fixed-size stripe units (64 KB by default on the Caltech machine).
//! A request touching byte range `[offset, offset+len)` is decomposed
//! into per-I/O-node segments; the segments transfer in parallel, so a
//! stripe-aligned 128 KB request on a 16-array system keeps two arrays
//! busy with one full stripe unit each, while a 200-byte request costs
//! a full positioning delay on one array.

use serde::{Deserialize, Serialize};

/// A contiguous piece of a request that lands on one I/O node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Segment {
    /// Index of the I/O node serving this piece.
    pub ion: u32,
    /// Byte offset within the file where the piece begins.
    pub offset: u64,
    /// Piece length in bytes.
    pub len: u64,
}

/// Round-robin stripe layout.
///
/// ```
/// use sioscope_pfs::StripeLayout;
///
/// let layout = StripeLayout::paragon_default(); // 64 KB over 16 I/O nodes
/// // A 128 KB request starting at zero spans exactly two I/O nodes —
/// // the configuration ESCAT's developers tuned their reads to.
/// assert_eq!(layout.fanout(0, 128 * 1024), 2);
/// assert!(layout.aligned(0, 128 * 1024));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StripeLayout {
    /// Stripe unit in bytes (PFS default: 64 KB).
    pub unit: u64,
    /// Number of I/O nodes the file is striped across.
    pub io_nodes: u32,
}

impl StripeLayout {
    /// The Caltech default: 64 KB units over 16 I/O nodes.
    pub fn paragon_default() -> Self {
        StripeLayout {
            unit: 64 * 1024,
            io_nodes: 16,
        }
    }

    /// Construct a layout.
    ///
    /// # Panics
    /// Panics if `unit` or `io_nodes` is zero.
    pub fn new(unit: u64, io_nodes: u32) -> Self {
        assert!(unit > 0, "stripe unit must be positive");
        assert!(io_nodes > 0, "need at least one I/O node");
        StripeLayout { unit, io_nodes }
    }

    /// The I/O node holding the stripe unit that contains `offset`.
    pub fn ion_of(&self, offset: u64) -> u32 {
        ((offset / self.unit) % u64::from(self.io_nodes)) as u32
    }

    /// Decompose `[offset, offset+len)` into per-I/O-node segments, in
    /// file order. Adjacent stripe units on the same I/O node are *not*
    /// merged: each unit is a separate disk request, matching how the
    /// stripe directory dispatched transfers.
    pub fn segments(&self, offset: u64, len: u64) -> Vec<Segment> {
        self.segments_iter(offset, len).collect()
    }

    /// Iterator form of [`StripeLayout::segments`]: the same segments
    /// in the same order, without allocating. The server's transfer
    /// loop walks every request through this, so the per-request `Vec`
    /// would otherwise be the hottest allocation in a run.
    pub fn segments_iter(&self, offset: u64, len: u64) -> SegmentIter {
        SegmentIter {
            layout: *self,
            cur: offset,
            end: offset + len,
        }
    }

    /// Number of *distinct* I/O nodes touched by a request — the
    /// request's effective parallelism.
    ///
    /// Round-robin placement assigns consecutive stripe units to
    /// consecutive I/O nodes, so the distinct-node count of a
    /// contiguous range is simply `min(units touched, io_nodes)` — no
    /// materialized segment list needed.
    pub fn fanout(&self, offset: u64, len: u64) -> u32 {
        if len == 0 {
            return 0;
        }
        let first_unit = offset / self.unit;
        let last_unit = (offset + len - 1) / self.unit;
        (last_unit - first_unit + 1).min(u64::from(self.io_nodes)) as u32
    }

    /// Map a byte offset to its stripe coordinates: the I/O node
    /// holding it, the block index within that node's local sequence
    /// of stripe units, and the byte position within the unit.
    /// [`StripeLayout::offset_of`] is the exact inverse.
    pub fn locate(&self, offset: u64) -> (u32, u64, u64) {
        let unit_index = offset / self.unit;
        let ion = (unit_index % u64::from(self.io_nodes)) as u32;
        let block = unit_index / u64::from(self.io_nodes);
        (ion, block, offset % self.unit)
    }

    /// Reassemble a byte offset from stripe coordinates (inverse of
    /// [`StripeLayout::locate`]).
    ///
    /// # Panics
    /// Panics if `ion` or `within` is out of range for this layout.
    pub fn offset_of(&self, ion: u32, block: u64, within: u64) -> u64 {
        assert!(ion < self.io_nodes, "ion out of range");
        assert!(within < self.unit, "within-unit offset out of range");
        (block * u64::from(self.io_nodes) + u64::from(ion)) * self.unit + within
    }

    /// `true` iff a request of `len` bytes starting at `offset` is
    /// stripe-aligned (starts on a unit boundary and is a whole number
    /// of units) — the condition §4.2 says M_RECORD wants for good
    /// performance.
    pub fn aligned(&self, offset: u64, len: u64) -> bool {
        offset.is_multiple_of(self.unit) && len.is_multiple_of(self.unit) && len > 0
    }
}

/// Allocation-free segment walk (see [`StripeLayout::segments_iter`]).
#[derive(Debug, Clone)]
pub struct SegmentIter {
    layout: StripeLayout,
    cur: u64,
    end: u64,
}

impl Iterator for SegmentIter {
    type Item = Segment;

    fn next(&mut self) -> Option<Segment> {
        if self.cur >= self.end {
            return None;
        }
        let unit_end = (self.cur / self.layout.unit + 1) * self.layout.unit;
        let seg_end = unit_end.min(self.end);
        let seg = Segment {
            ion: self.layout.ion_of(self.cur),
            offset: self.cur,
            len: seg_end - self.cur,
        };
        self.cur = seg_end;
        Some(seg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_request_stays_on_one_ion() {
        let l = StripeLayout::paragon_default();
        let segs = l.segments(0, 2048);
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].ion, 0);
        assert_eq!(segs[0].len, 2048);
        assert_eq!(l.fanout(0, 2048), 1);
    }

    #[test]
    fn two_stripe_request_spans_two_ions() {
        let l = StripeLayout::paragon_default();
        let segs = l.segments(0, 128 * 1024);
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[0].ion, 0);
        assert_eq!(segs[1].ion, 1);
        assert_eq!(l.fanout(0, 128 * 1024), 2);
        assert!(l.aligned(0, 128 * 1024));
    }

    #[test]
    fn unaligned_request_splits_at_boundaries() {
        let l = StripeLayout::new(100, 4);
        let segs = l.segments(50, 200);
        // [50,100) on ion0, [100,200) on ion1, [200,250) on ion2.
        assert_eq!(segs.len(), 3);
        assert_eq!(
            segs[0],
            Segment {
                ion: 0,
                offset: 50,
                len: 50
            }
        );
        assert_eq!(
            segs[1],
            Segment {
                ion: 1,
                offset: 100,
                len: 100
            }
        );
        assert_eq!(
            segs[2],
            Segment {
                ion: 2,
                offset: 200,
                len: 50
            }
        );
    }

    #[test]
    fn round_robin_wraps() {
        let l = StripeLayout::new(10, 3);
        assert_eq!(l.ion_of(0), 0);
        assert_eq!(l.ion_of(10), 1);
        assert_eq!(l.ion_of(20), 2);
        assert_eq!(l.ion_of(30), 0);
    }

    #[test]
    fn segments_conserve_bytes() {
        let l = StripeLayout::new(64 * 1024, 16);
        for (off, len) in [(0u64, 1u64), (63, 131072), (65536, 40), (1, 1_000_000)] {
            let total: u64 = l.segments(off, len).iter().map(|s| s.len).sum();
            assert_eq!(total, len, "offset {off} len {len}");
        }
    }

    #[test]
    fn zero_length_request_is_empty() {
        let l = StripeLayout::paragon_default();
        assert!(l.segments(123, 0).is_empty());
        assert_eq!(l.fanout(123, 0), 0);
        assert!(!l.aligned(0, 0));
    }

    #[test]
    fn alignment_requires_boundary_and_multiple() {
        let l = StripeLayout::paragon_default();
        assert!(l.aligned(65536, 65536));
        assert!(!l.aligned(1, 65536));
        assert!(!l.aligned(0, 65537));
    }

    #[test]
    fn iterator_matches_vec_form_and_fanout_matches_dedup() {
        for (unit, ions) in [(100u64, 4u32), (64 << 10, 16), (1, 1), (7, 3)] {
            let l = StripeLayout::new(unit, ions);
            for (off, len) in [
                (0u64, 1u64),
                (50, 200),
                (63, 131_072),
                (unit - 1, 2 * unit + 3),
            ] {
                let from_iter: Vec<Segment> = l.segments_iter(off, len).collect();
                assert_eq!(from_iter, l.segments(off, len), "unit {unit} off {off}");
                // The arithmetic fanout equals the distinct-ion count
                // of the materialized segments.
                let mut ions_seen: Vec<u32> = from_iter.iter().map(|s| s.ion).collect();
                ions_seen.sort_unstable();
                ions_seen.dedup();
                assert_eq!(l.fanout(off, len) as usize, ions_seen.len());
            }
        }
    }

    #[test]
    fn locate_offset_round_trip() {
        let l = StripeLayout::new(100, 4);
        for offset in [0u64, 1, 99, 100, 399, 400, 12_345, u64::from(u32::MAX)] {
            let (ion, block, within) = l.locate(offset);
            assert_eq!(l.offset_of(ion, block, within), offset, "offset {offset}");
            assert_eq!(ion, l.ion_of(offset));
        }
    }

    #[test]
    #[should_panic(expected = "stripe unit")]
    fn zero_unit_panics() {
        StripeLayout::new(0, 4);
    }
}
