//! PFS error type.

use sioscope_sim::{FileId, Pid};
use std::fmt;

/// Misuse of the PFS API. In the real system these were runtime
/// errors; in the simulation they indicate a malformed workload and
/// abort the experiment rather than silently producing wrong traces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PfsError {
    /// Operation on a file id that was never created.
    NoSuchFile(FileId),
    /// Data operation by a process that has not opened the file.
    NotOpen { file: FileId, pid: Pid },
    /// Open of a file the process already has open.
    AlreadyOpen { file: FileId, pid: Pid },
    /// M_RECORD operation whose size differs from the file's fixed
    /// record size.
    RecordSizeMismatch {
        /// The offending file.
        file: FileId,
        /// Record size fixed at mode-set time.
        expected: u64,
        /// Size the caller attempted.
        got: u64,
    },
    /// Collective operation issued with a declared group size that
    /// does not match the file's current opener count.
    GroupMismatch {
        /// The offending file.
        file: FileId,
        /// Group size the op declared.
        declared: u32,
        /// Actual number of current openers.
        openers: u32,
    },
    /// An I/O mode that does not exist in the configured OS release
    /// (M_ASYNC before OSF/1 R1.3).
    ModeUnavailable {
        /// The requested mode name.
        mode: &'static str,
    },
    /// Seek on a shared-pointer file (the shared pointer is advanced
    /// collectively, not seekable per process).
    SeekOnSharedPointer { file: FileId, pid: Pid },
}

impl fmt::Display for PfsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PfsError::NoSuchFile(id) => write!(f, "no such file: {id}"),
            PfsError::NotOpen { file, pid } => {
                write!(f, "{pid} performed I/O on {file} without opening it")
            }
            PfsError::AlreadyOpen { file, pid } => {
                write!(f, "{pid} opened {file} twice")
            }
            PfsError::RecordSizeMismatch { file, expected, got } => write!(
                f,
                "{file}: M_RECORD request of {got} bytes, record size is {expected}"
            ),
            PfsError::GroupMismatch {
                file,
                declared,
                openers,
            } => write!(
                f,
                "{file}: collective op declared group {declared} but {openers} processes have it open"
            ),
            PfsError::ModeUnavailable { mode } => {
                write!(f, "I/O mode {mode} is not available in this OS release")
            }
            PfsError::SeekOnSharedPointer { file, pid } => {
                write!(f, "{pid} attempted seek on shared-pointer {file}")
            }
        }
    }
}

impl std::error::Error for PfsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = PfsError::NotOpen {
            file: FileId(3),
            pid: Pid(7),
        };
        assert!(e.to_string().contains("file3"));
        assert!(e.to_string().contains("pid7"));
        let e = PfsError::RecordSizeMismatch {
            file: FileId(1),
            expected: 65536,
            got: 100,
        };
        assert!(e.to_string().contains("65536"));
        let e = PfsError::ModeUnavailable { mode: "M_ASYNC" };
        assert!(e.to_string().contains("M_ASYNC"));
    }
}
