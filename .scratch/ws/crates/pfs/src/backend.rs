//! The pluggable storage-backend boundary.
//!
//! The paper characterized I/O pathologies of one 1996 file system;
//! the evolutionary question — which pathologies are *artifacts of
//! that tier* and which are intrinsic to the request streams — needs
//! the same workloads replayed against different storage models. This
//! module defines the seam: a [`StorageBackend`] is anything that can
//! accept the simulator's file creations and operation submissions and
//! return completion instants on the shared simulated timeline.
//!
//! Three backends implement it:
//!
//! * the striped [`Pfs`] itself (the measured system — the trait impl
//!   is pure delegation, so trait-routed runs are bit-identical to
//!   direct calls);
//! * [`crate::object::ObjectStore`] — a flat-namespace PUT/GET tier
//!   with a sharded metadata service and no shared-pointer modes;
//! * [`crate::burst::BurstBuffer`] — a host-side log in front of the
//!   PFS that absorbs writes locally and drains them asynchronously.

use crate::burst::{BurstBuffer, BurstBufferConfig};
use crate::error::PfsError;
use crate::object::{ObjectStore, ObjectStoreConfig};
use crate::op::{Completion, IoOp};
use crate::resilience::ResilienceStats;
use crate::server::{Pfs, PfsConfig};
use sioscope_faults::Tier;
use sioscope_machine::MachineConfig;
use sioscope_sim::{FileId, Pid, Time};
use std::fmt;

/// A storage tier the simulation event loop can drive.
///
/// The contract mirrors what the loop already asked of [`Pfs`]: create
/// the workload's files up front, then submit one operation at a time
/// and receive absolute completion instants. Completions may cover
/// several processes (collective groups); `Ok(false)` parks the caller
/// until a later submission releases it. Everything must be a pure
/// function of the submission sequence — no wall clocks, no global
/// state — so same-workload runs stay bit-identical.
pub trait StorageBackend {
    /// Which tier this is.
    fn kind(&self) -> BackendKind;

    /// Create a file pre-populated with `size` bytes. File ids are
    /// assigned densely in creation order (`FileId(0)`, `FileId(1)`,
    /// ...), matching the workload's file-index convention.
    fn create_file_with_size(&mut self, name: &str, size: u64) -> FileId;

    /// Submit one operation at simulation instant `now`, appending any
    /// completions to `out`. Returns `Ok(true)` when the operation
    /// completed, `Ok(false)` when the caller joined a still-forming
    /// collective group; on `Ok(false)` and on errors nothing is
    /// pushed.
    fn submit_into(
        &mut self,
        now: Time,
        pid: Pid,
        fid: FileId,
        op: &IoOp,
        out: &mut Vec<Completion>,
    ) -> Result<bool, PfsError>;

    /// Instants at which a fault window opens or closes, for
    /// interleaving with the event calendar. Backends without a fault
    /// model report none.
    fn fault_transition_times(&self) -> Vec<Time> {
        Vec::new()
    }

    /// Collective groups still forming (deadlock detection). Backends
    /// without collective semantics always report zero.
    fn forming_collectives(&self) -> usize {
        0
    }

    /// Resilience actions taken so far.
    fn resilience_stats(&self) -> ResilienceStats {
        ResilienceStats::default()
    }

    /// The instant at which data committed by `now` is durable, or
    /// [`Time::MAX`] if some of it was destroyed (a burst-node crash
    /// ate resident log bytes) and the commit can never be restored.
    /// Queries form a cursor: each call covers the window since the
    /// previous call. Backends with no volatile staging are durable
    /// immediately.
    fn durable_instant(&mut self, now: Time) -> Time {
        now
    }

    /// Flush any asynchronous background work (burst-buffer drains) to
    /// completion, returning the instant the backend is fully quiet.
    /// Backends with no background activity are quiet immediately.
    fn quiesce(&mut self, now: Time) -> Time {
        now
    }

    /// Tier-specific counters accumulated so far.
    fn stats(&self) -> BackendStats {
        BackendStats::default()
    }
}

/// Tier-specific accounting every backend can report. PFS runs leave
/// it at the default; the object store counts PUT/GET traffic; the
/// burst buffer tracks its log and drain.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BackendStats {
    /// Bytes absorbed into the host-side log (burst buffer).
    pub bytes_logged: u64,
    /// Bytes drained from the log to the backing store.
    pub bytes_drained: u64,
    /// Bytes still resident in the log (`logged - drained - lost`).
    pub bytes_resident: u64,
    /// Bytes destroyed by a burst-node crash while resident in the
    /// log — logged, never drained, never recoverable.
    pub bytes_lost: u64,
    /// Operations absorbed locally instead of hitting the backing
    /// store.
    pub absorbed_ops: u64,
    /// Operations passed through to the backing store unchanged.
    pub passthrough_ops: u64,
    /// Object PUTs served.
    pub puts: u64,
    /// Object GETs served.
    pub gets: u64,
    /// Instant the last background drain completed (zero when nothing
    /// ever drained).
    pub drain_complete: Time,
}

impl BackendStats {
    /// The burst-buffer conservation law: every logged byte is
    /// drained, still resident, or destroyed by a burst-node crash.
    pub fn conserves_bytes(&self) -> bool {
        self.bytes_logged == self.bytes_drained + self.bytes_resident + self.bytes_lost
    }
}

/// The storage tiers addressable by stable id (campaign specs, CLI
/// flags, canonical config lines — renaming one orphans cached
/// results and must be treated as a breaking change).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// The striped Intel PFS the paper measured.
    Pfs,
    /// A flat-namespace object store (PUT/GET, per-object metadata).
    Object,
    /// A host-side burst-buffer log over the PFS.
    Burst,
}

impl BackendKind {
    /// All backends, in presentation order.
    pub fn all() -> Vec<BackendKind> {
        vec![BackendKind::Pfs, BackendKind::Object, BackendKind::Burst]
    }

    /// Stable string id.
    pub fn id(self) -> &'static str {
        match self {
            BackendKind::Pfs => "pfs",
            BackendKind::Object => "object",
            BackendKind::Burst => "burst",
        }
    }

    /// Parse a stable id.
    pub fn from_id(id: &str) -> Option<BackendKind> {
        BackendKind::all().into_iter().find(|b| b.id() == id)
    }
}

impl fmt::Display for BackendKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// Configuration for one backend instance — the value the core run
/// drivers select a tier with.
#[derive(Debug, Clone)]
pub enum BackendConfig {
    /// The measured striped PFS.
    Pfs(PfsConfig),
    /// The flat-namespace object store.
    Object(ObjectStoreConfig),
    /// The host-side burst buffer over a PFS.
    Burst(BurstBufferConfig),
}

impl BackendConfig {
    /// Which tier this configures.
    pub fn kind(&self) -> BackendKind {
        match self {
            BackendConfig::Pfs(_) => BackendKind::Pfs,
            BackendConfig::Object(_) => BackendKind::Object,
            BackendConfig::Burst(_) => BackendKind::Burst,
        }
    }

    /// The machine the compute partition talks to the tier over — the
    /// PFS/burst machines carry the mesh and I/O complement; the
    /// object store's machine carries the mesh its gateways sit on.
    pub fn machine(&self) -> &MachineConfig {
        match self {
            BackendConfig::Pfs(c) => &c.machine,
            BackendConfig::Object(c) => &c.machine,
            BackendConfig::Burst(c) => &c.pfs.machine,
        }
    }

    /// Mutable access to the same machine (run drivers size
    /// `compute_nodes` to the workload).
    pub fn machine_mut(&mut self) -> &mut MachineConfig {
        match self {
            BackendConfig::Pfs(c) => &mut c.machine,
            BackendConfig::Object(c) => &mut c.machine,
            BackendConfig::Burst(c) => &mut c.pfs.machine,
        }
    }

    /// Validate every fault schedule this configuration carries
    /// against its own tier: the PFS schedule against the I/O-node
    /// complement, the object schedule against the metadata-shard
    /// count, the burst schedule against the burst tier's fault
    /// classes (plus the inner PFS schedule against the PFS tier).
    /// One message per problem; empty = valid.
    pub fn validate_faults(&self, compute_nodes: u32) -> Vec<String> {
        match self {
            BackendConfig::Pfs(c) => {
                c.faults
                    .validate_for_tier(Tier::Pfs, c.machine.io_nodes, compute_nodes)
            }
            BackendConfig::Object(c) => {
                c.faults
                    .validate_for_tier(Tier::Object, c.md_shards.max(1) as u32, compute_nodes)
            }
            BackendConfig::Burst(c) => {
                let mut msgs = c.faults.validate_for_tier(Tier::Burst, 0, compute_nodes);
                msgs.extend(
                    c.pfs
                        .faults
                        .validate_for_tier(Tier::Pfs, c.pfs.machine.io_nodes, compute_nodes)
                        .into_iter()
                        .map(|m| format!("inner pfs: {m}")),
                );
                msgs
            }
        }
    }

    /// Build the backend this configuration describes.
    pub fn build(&self) -> Box<dyn StorageBackend> {
        match self {
            BackendConfig::Pfs(c) => Box::new(Pfs::new(c.clone())),
            BackendConfig::Object(c) => Box::new(ObjectStore::new(c.clone())),
            BackendConfig::Burst(c) => Box::new(BurstBuffer::new(c.clone())),
        }
    }
}

impl StorageBackend for Pfs {
    fn kind(&self) -> BackendKind {
        BackendKind::Pfs
    }

    fn create_file_with_size(&mut self, name: &str, size: u64) -> FileId {
        Pfs::create_file_with_size(self, name, size)
    }

    fn submit_into(
        &mut self,
        now: Time,
        pid: Pid,
        fid: FileId,
        op: &IoOp,
        out: &mut Vec<Completion>,
    ) -> Result<bool, PfsError> {
        Pfs::submit_into(self, now, pid, fid, op, out)
    }

    fn fault_transition_times(&self) -> Vec<Time> {
        self.fault_state()
            .map(|s| s.transitions().to_vec())
            .unwrap_or_default()
    }

    fn forming_collectives(&self) -> usize {
        Pfs::forming_collectives(self)
    }

    fn resilience_stats(&self) -> ResilienceStats {
        Pfs::resilience_stats(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_ids_round_trip() {
        for b in BackendKind::all() {
            assert_eq!(BackendKind::from_id(b.id()), Some(b));
        }
        assert_eq!(BackendKind::from_id("tape"), None);
        let ids: Vec<&str> = BackendKind::all().iter().map(|b| b.id()).collect();
        assert_eq!(ids, vec!["pfs", "object", "burst"]);
    }

    #[test]
    fn pfs_trait_impl_delegates() {
        let mut pfs = Pfs::new(PfsConfig::tiny());
        let backend: &mut dyn StorageBackend = &mut pfs;
        assert_eq!(backend.kind(), BackendKind::Pfs);
        let fid = backend.create_file_with_size("f", 1 << 20);
        assert_eq!(fid, FileId(0));
        let mut out = Vec::new();
        let done = backend
            .submit_into(Time::ZERO, Pid(0), fid, &IoOp::Open, &mut out)
            .unwrap();
        assert!(done);
        assert_eq!(out.len(), 1);
        assert!(backend.fault_transition_times().is_empty());
        assert_eq!(backend.forming_collectives(), 0);
        assert!(backend.resilience_stats().is_quiet());
        assert_eq!(backend.quiesce(Time::from_secs(1)), Time::from_secs(1));
        assert_eq!(backend.stats(), BackendStats::default());
    }

    #[test]
    fn stats_conservation_law() {
        let mut s = BackendStats::default();
        assert!(s.conserves_bytes());
        s.bytes_logged = 100;
        s.bytes_drained = 60;
        s.bytes_resident = 40;
        assert!(s.conserves_bytes());
        s.bytes_resident = 39;
        assert!(!s.conserves_bytes());
        s.bytes_lost = 1;
        assert!(s.conserves_bytes(), "lost bytes balance the ledger");
    }

    #[test]
    fn fault_validation_is_tier_aware() {
        use sioscope_faults::{FaultKind, FaultSchedule};

        let mut pfs_faults = FaultSchedule::empty();
        pfs_faults.push(
            Time::from_secs(1),
            FaultKind::DrainStall {
                duration: Time::from_secs(2),
            },
        );
        let mut pfs_cfg = PfsConfig::tiny();
        pfs_cfg.faults = pfs_faults.clone();
        let msgs = BackendConfig::Pfs(pfs_cfg).validate_faults(4);
        assert_eq!(msgs.len(), 1);
        assert!(msgs[0].contains("not a fault of the pfs tier"), "{msgs:?}");

        let mut obj_cfg = ObjectStoreConfig::modern(4);
        obj_cfg.faults = pfs_faults.clone();
        let msgs = BackendConfig::Object(obj_cfg).validate_faults(4);
        assert_eq!(msgs.len(), 1);
        assert!(msgs[0].contains("object tier"), "{msgs:?}");

        // The burst config carries two schedules; each is checked
        // against its own tier, inner messages prefixed.
        let mut burst_cfg = BurstBufferConfig::over(PfsConfig::tiny());
        burst_cfg.faults = pfs_faults;
        burst_cfg.pfs.faults.push(
            Time::from_secs(1),
            FaultKind::DrainStall {
                duration: Time::from_secs(2),
            },
        );
        let msgs = BackendConfig::Burst(burst_cfg.clone()).validate_faults(4);
        assert_eq!(msgs.len(), 1, "{msgs:?}");
        assert!(msgs[0].starts_with("inner pfs:"), "{msgs:?}");

        burst_cfg.pfs.faults = FaultSchedule::empty();
        assert!(BackendConfig::Burst(burst_cfg)
            .validate_faults(4)
            .is_empty());
    }
}
