//! PFS software cost parameters.
//!
//! These constants capture the *relative* expense of PFS control
//! operations that the paper documents qualitatively:
//!
//! * `open` is an expensive, serialized metadata operation — Table 2
//!   (ESCAT A: 53.7% of I/O time in `open`) and Table 5 (PRISM A:
//!   75.4%) both show concurrent opens by all nodes dominating I/O
//!   time.
//! * `gopen` performs the metadata work once for the whole group and
//!   also sets the I/O mode, eliminating separate `setiomode` calls
//!   (§5.1).
//! * `setiomode` is itself a synchronizing, costly call (PRISM B:
//!   17.75% of I/O time).
//! * A seek on an M_UNIX-shared file is a file-server round trip that
//!   funnels through the file's atomicity token (ESCAT B: seek 63.2%
//!   of I/O time); a seek under M_ASYNC/M_RECORD is a local pointer
//!   update (ESCAT C: seek 1.75%).

use serde::{Deserialize, Serialize};
use sioscope_sim::Time;

/// Per-operation software costs of the PFS control and data paths.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PfsCosts {
    /// Serialized metadata service time for one `open` (the stripe
    /// directory update every open funnels through).
    pub open_service: Time,
    /// Client-side component of one `open`, paid concurrently by each
    /// caller: pathname resolution, attribute fetch, stripe-map
    /// download. This is the bulk of an open's latency but does not
    /// stagger the callers.
    pub open_local: Time,
    /// Base metadata service time for one *collective* `gopen`.
    pub gopen_base: Time,
    /// Additional `gopen` service per group member (the collective
    /// must register every participant's pointer state).
    pub gopen_per_member: Time,
    /// Base collective `setiomode` service time.
    pub iomode_base: Time,
    /// Additional `setiomode` service per group member.
    pub iomode_per_member: Time,
    /// Metadata service time for one `close`.
    pub close_service: Time,
    /// File-server service time for a seek on a serializing
    /// (M_UNIX/M_LOG) shared file: a round trip through the file's
    /// atomicity token.
    pub seek_server_service: Time,
    /// Cost of a seek that is a purely local pointer update
    /// (M_ASYNC/M_RECORD private pointers, or any single-opener file).
    pub seek_local: Time,
    /// Client-library software overhead added to every data operation.
    pub client_overhead: Time,
    /// Service time to acquire/release the atomicity token for one
    /// serialized data request (M_UNIX/M_LOG concurrent access).
    pub token_service: Time,
    /// Cost of a read satisfied from the client buffer cache.
    pub cache_hit: Time,
    /// Size of the client buffer-cache block fetched on a miss when
    /// buffering is enabled (OSF/1 buffered small reads in large
    /// blocks; we use one stripe unit).
    pub buffer_block: u64,
    /// Cost of an explicit `flush` call (plus any write-behind drain,
    /// charged separately).
    pub flush_service: Time,
    /// Fixed I/O-node service overhead for absorbing one write request
    /// into the I/O node's write cache (writes do not pay disk
    /// positioning synchronously; the array destages in the
    /// background).
    pub ion_write_overhead: Time,
    /// Rate (bytes/s) at which an I/O node absorbs write data into its
    /// cache.
    pub ion_write_bw: f64,
    /// Capacity of each I/O node's block cache, in stripe-unit-sized
    /// blocks. Recently read or written blocks are served from I/O-node
    /// memory instead of the disk array; this is what kept 128 nodes
    /// re-reading the same initialization file from melting the
    /// arrays. FIFO eviction.
    pub ion_cache_blocks: usize,
    /// Fixed service overhead for an I/O-node cache hit.
    pub ion_cache_overhead: Time,
    /// Rate (bytes/s) at which an I/O node serves cached data.
    pub ion_cache_bw: f64,
    /// Memory-copy rate (bytes/s) charged to *large* reads that go
    /// through an enabled client buffer — the extra copy OSF/1 imposed
    /// on buffered I/O, and the reason the PRISM developers disabled
    /// buffering for the 155,584-byte restart-body reads (§5.1).
    pub buffered_copy_bw: f64,
}

impl PfsCosts {
    /// Calibrated values for the Caltech Paragon under OSF/1.
    ///
    /// Provenance: chosen so that (a) 128 concurrent `open`s of one
    /// file accumulate client-observed time comparable to reading tens
    /// of megabytes, matching Table 2-A/Table 5-A dominance of `open`;
    /// (b) per-cycle M_UNIX seeks by 128 nodes accumulate to dominate
    /// ESCAT version B (Table 2-B); (c) M_ASYNC seeks are three orders
    /// of magnitude cheaper (Fig. 5 B vs C y-axis scales: seconds vs
    /// tenths).
    pub fn paragon_osf() -> Self {
        Self::for_os(crate::mode::OsRelease::Osf13)
    }

    /// Costs per OS release. The study's two applications were
    /// measured under different releases (Table 1: ESCAT A/B under
    /// OSF/1 R1.2 with Pablo Beta, ESCAT C and all of PRISM under
    /// R1.3 with Pablo 4.0), and their published open-time shares are
    /// only reconcilable if the R1.3 metadata path is substantially
    /// more expensive per call — consistent with R1.3's added file
    /// system functionality. EXPERIMENTS.md discusses this
    /// calibration choice.
    pub fn for_os(os: crate::mode::OsRelease) -> Self {
        // R1.3's metadata path carried more per-call work (new access
        // modes, larger stripe state) — the serialized share is what
        // staggers concurrent openers.
        let (open_service, open_local) = match os {
            crate::mode::OsRelease::Osf12 => (Time::from_millis(2), Time::from_millis(220)),
            crate::mode::OsRelease::Osf13 => (Time::from_millis(2), Time::from_millis(900)),
        };
        PfsCosts {
            open_service,
            open_local,
            gopen_base: Time::from_millis(1),
            gopen_per_member: Time::from_micros(60),
            iomode_base: Time::from_millis(1),
            iomode_per_member: Time::from_micros(90),
            close_service: Time::from_millis(1),
            seek_server_service: Time::from_millis(4),
            seek_local: Time::from_micros(30),
            client_overhead: Time::from_micros(150),
            token_service: Time::from_micros(100),
            cache_hit: Time::from_micros(25),
            buffer_block: 64 * 1024,
            flush_service: Time::from_millis(2),
            ion_write_overhead: Time::from_micros(700),
            ion_write_bw: 20.0e6,
            // 32 MB of block cache per I/O node (512 × 64 KB) — the
            // Paragon's I/O nodes carried 32 MB of memory. Staging
            // data written in one phase and re-read in the next (the
            // ESCAT ethylene quadrature) stays largely resident; the
            // carbon monoxide dataset overflows it and goes to disk.
            ion_cache_blocks: 512,
            ion_cache_overhead: Time::from_micros(400),
            ion_cache_bw: 50.0e6,
            buffered_copy_bw: 15.0e6,
        }
    }
}

impl Default for PfsCosts {
    fn default() -> Self {
        PfsCosts::paragon_osf()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_magnitudes_match_paper() {
        let c = PfsCosts::paragon_osf();
        // open is an expensive metadata operation per caller; a gopen
        // at the paper's 128-node scale is far cheaper than 128
        // serialized opens.
        assert!(c.open_service >= Time::from_millis(2));
        let gopen_128 = c.gopen_base + c.gopen_per_member * 128;
        assert!(gopen_128 < c.open_service * 128);
        // A server seek is >> a local seek (Fig. 5: seconds vs. sub-second).
        assert!(
            c.seek_server_service.as_nanos() >= 50 * c.seek_local.as_nanos(),
            "server seeks must dwarf local seeks"
        );
        // Cache hits are far cheaper than any disk positioning.
        assert!(c.cache_hit < Time::from_millis(1));
        assert_eq!(c.buffer_block, 64 * 1024);
    }

    #[test]
    fn default_is_paragon() {
        let d = PfsCosts::default();
        assert_eq!(d.open_service, PfsCosts::paragon_osf().open_service);
    }
}
