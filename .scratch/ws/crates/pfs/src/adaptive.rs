//! Adaptive policy selection.
//!
//! §5.4 of the paper points to PPFS (Huber et al. [6]) as the way out
//! of manual tuning: *"A file system that dynamically tunes its policy
//! to match the requirements of the application access patterns and
//! disk performance characteristics is a promising alternative."*
//!
//! This module implements that idea over the §7 policy mechanisms:
//! a per-(process, file) access-pattern detector classifies the
//! request stream on line, and the server enables read-ahead for
//! detected sequential read runs and write aggregation for detected
//! small sequential write runs — without the application asking.

use serde::{Deserialize, Serialize};

/// On-line classification of one process's access stream to one file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AccessPattern {
    /// Too few observations to judge.
    Unknown,
    /// Consecutive operations at consecutive offsets.
    Sequential,
    /// Constant non-zero gap between operations.
    Strided,
    /// No detected regularity.
    Random,
}

/// Streaming pattern detector. Feed it `(offset, len)` per operation;
/// it tracks the run structure with O(1) state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PatternDetector {
    last_end: Option<u64>,
    last_gap: Option<i64>,
    seq_run: u32,
    stride_run: u32,
    observations: u32,
}

impl Default for PatternDetector {
    fn default() -> Self {
        Self::new()
    }
}

impl PatternDetector {
    /// A fresh detector.
    pub fn new() -> Self {
        PatternDetector {
            last_end: None,
            last_gap: None,
            seq_run: 0,
            stride_run: 0,
            observations: 0,
        }
    }

    /// Observe one operation.
    pub fn observe(&mut self, offset: u64, len: u64) {
        self.observations += 1;
        if let Some(end) = self.last_end {
            let gap = offset as i64 - end as i64;
            if gap == 0 {
                self.seq_run += 1;
                self.stride_run = 0;
                self.last_gap = Some(0);
            } else if self.last_gap == Some(gap) {
                self.stride_run += 1;
                self.seq_run = 0;
            } else {
                self.seq_run = 0;
                self.stride_run = 0;
                self.last_gap = Some(gap);
            }
        }
        self.last_end = Some(offset + len);
    }

    /// Current classification. Requires a run of at least
    /// `confidence` matching transitions before leaving `Unknown` /
    /// `Random`.
    pub fn pattern(&self, confidence: u32) -> AccessPattern {
        if self.observations < 2 {
            AccessPattern::Unknown
        } else if self.seq_run >= confidence {
            AccessPattern::Sequential
        } else if self.stride_run >= confidence {
            AccessPattern::Strided
        } else if self.observations <= confidence {
            AccessPattern::Unknown
        } else {
            AccessPattern::Random
        }
    }

    /// Length of the current sequential run.
    pub fn sequential_run(&self) -> u32 {
        self.seq_run
    }

    /// Number of operations observed.
    pub fn observations(&self) -> u32 {
        self.observations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_detector_is_unknown() {
        let d = PatternDetector::new();
        assert_eq!(d.pattern(3), AccessPattern::Unknown);
        assert_eq!(d.observations(), 0);
    }

    #[test]
    fn sequential_run_detected() {
        let mut d = PatternDetector::new();
        let mut off = 0;
        for _ in 0..6 {
            d.observe(off, 100);
            off += 100;
        }
        assert_eq!(d.pattern(3), AccessPattern::Sequential);
        assert_eq!(d.sequential_run(), 5);
    }

    #[test]
    fn strided_run_detected() {
        let mut d = PatternDetector::new();
        // Read 100 bytes every 1000: gaps of 900 between end and next
        // offset.
        for i in 0..6u64 {
            d.observe(i * 1000, 100);
        }
        assert_eq!(d.pattern(3), AccessPattern::Strided);
    }

    #[test]
    fn irregular_stream_is_random() {
        let mut d = PatternDetector::new();
        for &off in &[0u64, 5000, 40, 9999, 123, 77777, 42, 31337] {
            d.observe(off, 10);
        }
        assert_eq!(d.pattern(3), AccessPattern::Random);
    }

    #[test]
    fn pattern_recovers_after_disruption() {
        let mut d = PatternDetector::new();
        let mut off = 0;
        for _ in 0..5 {
            d.observe(off, 100);
            off += 100;
        }
        // One wild seek...
        d.observe(1 << 30, 100);
        assert_ne!(d.pattern(3), AccessPattern::Sequential);
        // ...then sequential again from there.
        let mut off = (1 << 30) + 100;
        for _ in 0..5 {
            d.observe(off, 100);
            off += 100;
        }
        assert_eq!(d.pattern(3), AccessPattern::Sequential);
    }

    #[test]
    fn zero_gap_after_stride_resets_stride() {
        let mut d = PatternDetector::new();
        d.observe(0, 10);
        d.observe(100, 10); // gap 90
        d.observe(200, 10); // gap 90 -> stride_run 1
        d.observe(210, 10); // gap 0 -> sequential restart
        assert_eq!(d.sequential_run(), 1);
    }
}
