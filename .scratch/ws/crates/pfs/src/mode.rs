//! The six PFS file access modes and their semantic axes.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A PFS file access mode (§3.2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IoMode {
    /// Standard UNIX sharing semantics; private pointers; atomicity
    /// preserved (serializing); any request size. The default.
    MUnix,
    /// Private pointers; fixed-size records; node-ordered concurrent
    /// operation. The record size is fixed at `setiomode`/`gopen` time.
    MRecord,
    /// Private pointers; variable sizes; no atomicity preserved.
    /// Introduced in OSF/1 R1.3.
    MAsync,
    /// Shared pointer; all processes access the same data
    /// synchronously; identical requests aggregated to one disk I/O.
    MGlobal,
    /// Shared pointer; node-ordered; synchronized; variable sizes.
    MSync,
    /// Shared pointer; first-come-first-served; unsynchronized;
    /// variable sizes. Used for stdin/stdout/stderr.
    MLog,
}

impl IoMode {
    /// Does every process carry its own file pointer?
    pub fn private_pointer(self) -> bool {
        matches!(self, IoMode::MUnix | IoMode::MRecord | IoMode::MAsync)
    }

    /// Is a data operation in this mode collective (all openers must
    /// participate before any transfer begins)?
    pub fn collective_data(self) -> bool {
        matches!(self, IoMode::MRecord | IoMode::MGlobal | IoMode::MSync)
    }

    /// Does the mode preserve request atomicity by serializing
    /// concurrent requests through a per-file token?
    pub fn serializes(self) -> bool {
        matches!(self, IoMode::MUnix | IoMode::MLog)
    }

    /// Does the mode require all participants to issue identical
    /// request sizes?
    pub fn fixed_size(self) -> bool {
        matches!(self, IoMode::MRecord | IoMode::MGlobal)
    }

    /// All modes, in the paper's presentation order.
    pub fn all() -> [IoMode; 6] {
        [
            IoMode::MUnix,
            IoMode::MRecord,
            IoMode::MAsync,
            IoMode::MGlobal,
            IoMode::MSync,
            IoMode::MLog,
        ]
    }

    /// The PFS-style name (`M_UNIX`, `M_RECORD`, ...).
    pub fn name(self) -> &'static str {
        match self {
            IoMode::MUnix => "M_UNIX",
            IoMode::MRecord => "M_RECORD",
            IoMode::MAsync => "M_ASYNC",
            IoMode::MGlobal => "M_GLOBAL",
            IoMode::MSync => "M_SYNC",
            IoMode::MLog => "M_LOG",
        }
    }

    /// Whether the mode exists in the given OSF/1 release. M_ASYNC was
    /// introduced with OSF/1 R1.3 (§4.1: "Intel introduced the more
    /// efficient M_ASYNC mode in the OSF/1 1.3 operating system
    /// release").
    pub fn available_in(self, os: OsRelease) -> bool {
        match self {
            IoMode::MAsync => os >= OsRelease::Osf13,
            _ => true,
        }
    }
}

impl fmt::Display for IoMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The operating-system releases the study spanned (Table 1: versions
/// A and B ran under OSF 1.2, version C under OSF 1.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum OsRelease {
    /// OSF/1 R1.2 — no M_ASYNC.
    Osf12,
    /// OSF/1 R1.3 — adds M_ASYNC.
    Osf13,
}

impl fmt::Display for OsRelease {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OsRelease::Osf12 => f.write_str("OSF/1 R1.2"),
            OsRelease::Osf13 => f.write_str("OSF/1 R1.3"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pointer_privacy_matches_paper() {
        assert!(IoMode::MUnix.private_pointer());
        assert!(IoMode::MRecord.private_pointer());
        assert!(IoMode::MAsync.private_pointer());
        assert!(!IoMode::MGlobal.private_pointer());
        assert!(!IoMode::MSync.private_pointer());
        assert!(!IoMode::MLog.private_pointer());
    }

    #[test]
    fn collectivity_matches_paper() {
        assert!(!IoMode::MUnix.collective_data());
        assert!(IoMode::MRecord.collective_data());
        assert!(!IoMode::MAsync.collective_data());
        assert!(IoMode::MGlobal.collective_data());
        assert!(IoMode::MSync.collective_data());
        assert!(!IoMode::MLog.collective_data());
    }

    #[test]
    fn serialization_matches_paper() {
        assert!(IoMode::MUnix.serializes());
        assert!(!IoMode::MAsync.serializes());
        assert!(IoMode::MLog.serializes());
    }

    #[test]
    fn masync_needs_osf13() {
        assert!(!IoMode::MAsync.available_in(OsRelease::Osf12));
        assert!(IoMode::MAsync.available_in(OsRelease::Osf13));
        assert!(IoMode::MUnix.available_in(OsRelease::Osf12));
    }

    #[test]
    fn names_render() {
        assert_eq!(IoMode::MUnix.to_string(), "M_UNIX");
        assert_eq!(IoMode::MRecord.to_string(), "M_RECORD");
        assert_eq!(IoMode::all().len(), 6);
    }
}
