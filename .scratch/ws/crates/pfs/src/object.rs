//! A flat-namespace object store.
//!
//! The modern tier the evolutionary comparison replays the 1996
//! request streams against (after "Exploring Scientific Application
//! Performance Using Large Scale Object Storage"): every file becomes
//! one object on a single target, PUTs and GETs are whole-request
//! round trips through a sharded metadata service, and there are *no
//! shared-pointer access modes* — `gopen`/`setiomode` carry no
//! collective semantics, so the M_UNIX atomicity-token serialization
//! and gopen rendezvous stalls of the PFS cannot occur here by
//! construction. What survives is whatever the request stream itself
//! imposes: small requests still pay the per-request metadata and
//! network overheads, and mapping a whole object to one target turns
//! the PFS's striping parallelism into single-target serialization.
//!
//! Timing model (all analytic, FIFO calendars):
//!
//! * metadata op (`open`/`gopen`/`close`): client → shard queue
//!   (`md_service`) → client, one `net_latency` each way;
//! * GET: metadata lookup on the object's shard, then the transfer on
//!   the object's target at `bandwidth_bps`, then the return latency;
//! * PUT: the same with an extra client-side `put_overhead`
//!   (marshalling, erasure-coding prep) before the lookup;
//! * `seek`/`setiomode`/`setbuffering`/`flush`: client-local at
//!   `client_overhead` — there is no shared state to update.

use crate::backend::{BackendKind, BackendStats, StorageBackend};
use crate::error::PfsError;
use crate::mode::IoMode;
use crate::op::{Completion, IoOp};
use crate::resilience::{ResilienceConfig, ResilienceStats};
use sioscope_faults::{FaultSchedule, ObjectFaultState};
use sioscope_machine::MachineConfig;
use sioscope_sim::{CalendarPool, DetHashMap, FileId, Pid, Time};

/// Object-store sizing and timing.
#[derive(Debug, Clone)]
pub struct ObjectStoreConfig {
    /// Mesh the gateways sit on (compute-node count is sized to the
    /// workload by the run driver, like the PFS machine).
    pub machine: MachineConfig,
    /// Storage targets; an object lives wholly on `id % targets`.
    pub targets: usize,
    /// Metadata-service shards; an object's metadata lives on
    /// `id % md_shards`.
    pub md_shards: usize,
    /// Service demand of one metadata operation on its shard.
    pub md_service: Time,
    /// Client-side cost of preparing a PUT before it leaves the node.
    pub put_overhead: Time,
    /// One-way client/service network latency, paid each direction.
    pub net_latency: Time,
    /// Client-local cost of pointer and mode bookkeeping.
    pub client_overhead: Time,
    /// Sequential bandwidth of one target, bytes per second.
    pub bandwidth_bps: u64,
    /// Injected fault scenario (object-tier classes: metadata-shard
    /// outages and degraded-service windows). An empty, disengaged
    /// schedule keeps every computation bit-identical to a build
    /// without the fault machinery.
    pub faults: FaultSchedule,
    /// How clients react to a dark metadata shard (timeouts, retries,
    /// re-route to the replica shard).
    pub resilience: ResilienceConfig,
}

impl ObjectStoreConfig {
    /// A contemporary disaggregated store fronting the same mesh the
    /// Paragon workloads ran on: per-target bandwidth ~30x a 1996
    /// RAID-3 array, metadata an order of magnitude faster than the
    /// PFS metadata server, but every request still pays a network
    /// round trip.
    pub fn modern(compute_nodes: u32) -> Self {
        ObjectStoreConfig {
            machine: MachineConfig::caltech_paragon(compute_nodes),
            targets: 16,
            md_shards: 4,
            md_service: Time::from_micros(10),
            put_overhead: Time::from_micros(30),
            net_latency: Time::from_micros(100),
            client_overhead: Time::from_micros(1),
            bandwidth_bps: 1_000_000_000,
            faults: FaultSchedule::empty(),
            resilience: ResilienceConfig::standard(),
        }
    }
}

/// Per-object metadata, maintained by the metadata service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObjectMeta {
    /// Object name (flat namespace; no directories).
    pub name: String,
    /// Logical size in bytes (grows monotonically under PUTs).
    pub size: u64,
    /// Instant of the last completed PUT.
    pub mtime: Time,
    /// Process whose PUT completed last.
    pub last_writer: Option<Pid>,
    /// PUTs served against this object.
    pub puts: u64,
    /// GETs served against this object.
    pub gets: u64,
}

/// The flat-namespace store itself.
#[derive(Debug, Clone)]
pub struct ObjectStore {
    cfg: ObjectStoreConfig,
    objects: Vec<ObjectMeta>,
    /// Private pointer per (object, process); also the open-handle set.
    handles: DetHashMap<(FileId, Pid), u64>,
    md: CalendarPool,
    targets: CalendarPool,
    stats: BackendStats,
    /// Compiled fault windows; `None` when the schedule does not
    /// engage, so fault-free runs never touch the fault machinery.
    fault_state: Option<ObjectFaultState>,
    resilience: ResilienceStats,
}

impl ObjectStore {
    /// Build an empty store.
    pub fn new(cfg: ObjectStoreConfig) -> Self {
        let md = CalendarPool::new(cfg.md_shards.max(1));
        let targets = CalendarPool::new(cfg.targets.max(1));
        let fault_state = cfg
            .faults
            .engages()
            .then(|| ObjectFaultState::new(&cfg.faults, cfg.md_shards.max(1) as u32));
        ObjectStore {
            cfg,
            objects: Vec::new(),
            handles: DetHashMap::default(),
            md,
            targets,
            stats: BackendStats::default(),
            fault_state,
            resilience: ResilienceStats::default(),
        }
    }

    /// The configuration this store was built with.
    pub fn config(&self) -> &ObjectStoreConfig {
        &self.cfg
    }

    /// Metadata of one object, as the metadata service sees it.
    pub fn object_meta(&self, fid: FileId) -> Option<&ObjectMeta> {
        self.objects.get(fid.index())
    }

    fn shard(&self, fid: FileId) -> usize {
        fid.index() % self.md.len()
    }

    fn target(&self, fid: FileId) -> usize {
        fid.index() % self.targets.len()
    }

    fn transfer_time(&self, bytes: u64) -> Time {
        let ns =
            (u128::from(bytes) * 1_000_000_000u128) / u128::from(self.cfg.bandwidth_bps.max(1));
        Time::from_nanos(ns as u64)
    }

    fn check_exists(&self, fid: FileId) -> Result<(), PfsError> {
        if fid.index() < self.objects.len() {
            Ok(())
        } else {
            Err(PfsError::NoSuchFile(fid))
        }
    }

    /// Reserve the object's metadata shard at `arrival`, returning the
    /// service finish. With faults engaged this is where the failover
    /// ladder runs: a dark shard costs one timeout, then bounded
    /// retries with exponential backoff; if the shard is still dark
    /// the request re-routes to the lowest-numbered healthy replica
    /// shard (service scaled by `reroute_penalty`), and only when the
    /// whole metadata service is dark does it stall until the shard
    /// returns. Degraded-service windows scale the service demand.
    /// Every branch is a pure function of `(arrival, fid)` and the
    /// compiled windows, so replays are bit-identical.
    fn md_reserve(&mut self, arrival: Time, fid: FileId) -> Time {
        let shard = self.shard(fid);
        let service = self.cfg.md_service;
        let rz = self.cfg.resilience;
        match &self.fault_state {
            None => self.md.reserve(shard, arrival, service).finish,
            Some(state) => {
                let mut shard = shard as u32;
                let mut t = arrival;
                let mut penalty = 1.0f64;
                if state.is_shard_down(shard, t) {
                    self.resilience.timeouts += 1;
                    t = t.saturating_add(rz.request_timeout);
                    let mut backoff = rz.backoff_base;
                    let mut tries = 0;
                    while tries < rz.max_retries && state.is_shard_down(shard, t) {
                        self.resilience.retries += 1;
                        t = t.saturating_add(backoff);
                        backoff = backoff.scale(rz.backoff_multiplier);
                        tries += 1;
                    }
                    if state.is_shard_down(shard, t) {
                        match state.first_healthy_shard(t, shard).filter(|_| rz.reroute) {
                            Some(alt) => {
                                self.resilience.reroutes += 1;
                                shard = alt;
                                penalty = rz.reroute_penalty;
                            }
                            None => {
                                self.resilience.aborts += 1;
                                t = state.shard_down_until(shard, t).unwrap_or(t);
                            }
                        }
                    }
                }
                let factor = state.service_factor(t) * penalty;
                let service = if factor > 1.0 {
                    service.scale(factor)
                } else {
                    service
                };
                self.md.reserve(shard as usize, t, service).finish
            }
        }
    }

    /// Scale a target transfer by the degraded-service factor in
    /// force at its start. Identity when no window covers `at`.
    fn degraded_xfer(&self, xfer: Time, at: Time) -> Time {
        match &self.fault_state {
            Some(state) => {
                let factor = state.service_factor(at);
                if factor > 1.0 {
                    xfer.scale(factor)
                } else {
                    xfer
                }
            }
            None => xfer,
        }
    }

    /// Metadata round trip: client → shard → client.
    fn metadata_op(&mut self, now: Time, fid: FileId) -> Time {
        let finish = self.md_reserve(now + self.cfg.net_latency, fid);
        finish + self.cfg.net_latency
    }
}

impl StorageBackend for ObjectStore {
    fn kind(&self) -> BackendKind {
        BackendKind::Object
    }

    fn create_file_with_size(&mut self, name: &str, size: u64) -> FileId {
        let id = FileId(self.objects.len() as u32);
        self.objects.push(ObjectMeta {
            name: name.to_string(),
            size,
            mtime: Time::ZERO,
            last_writer: None,
            puts: 0,
            gets: 0,
        });
        id
    }

    fn submit_into(
        &mut self,
        now: Time,
        pid: Pid,
        fid: FileId,
        op: &IoOp,
        out: &mut Vec<Completion>,
    ) -> Result<bool, PfsError> {
        self.check_exists(fid)?;
        let key = (fid, pid);
        let open = self.handles.contains_key(&key);

        let completion = |finish: Time, bytes: u64, offset: u64| Completion {
            pid,
            finish,
            bytes,
            offset,
            kind: op.kind(),
            // The store is non-collective and async by construction;
            // 1996 shared-pointer modes do not exist here.
            mode: IoMode::MAsync,
        };

        match op {
            IoOp::Open | IoOp::Gopen { .. } => {
                if open {
                    return Err(PfsError::AlreadyOpen { file: fid, pid });
                }
                // gopen degenerates to a per-process open: no group
                // rendezvous, no mode to set. Completes independently.
                let finish = self.metadata_op(now, fid);
                self.handles.insert(key, 0);
                out.push(completion(finish, 0, 0));
                Ok(true)
            }
            IoOp::Close => {
                if !open {
                    return Err(PfsError::NotOpen { file: fid, pid });
                }
                let finish = self.metadata_op(now, fid);
                self.handles.remove(&key);
                out.push(completion(finish, 0, 0));
                Ok(true)
            }
            IoOp::Seek { offset } => {
                if !open {
                    return Err(PfsError::NotOpen { file: fid, pid });
                }
                self.handles.insert(key, *offset);
                out.push(completion(now + self.cfg.client_overhead, 0, *offset));
                Ok(true)
            }
            IoOp::SetIoMode { .. } | IoOp::SetBuffering { .. } | IoOp::Flush => {
                if !open {
                    return Err(PfsError::NotOpen { file: fid, pid });
                }
                // No shared modes to change, nothing buffered
                // server-side to flush: client-local bookkeeping.
                let ptr = self.handles[&key];
                out.push(completion(now + self.cfg.client_overhead, 0, ptr));
                Ok(true)
            }
            IoOp::Read { size } => {
                if !open {
                    return Err(PfsError::NotOpen { file: fid, pid });
                }
                let ptr = self.handles[&key];
                let avail = self.objects[fid.index()].size.saturating_sub(ptr);
                let bytes = (*size).min(avail);
                let md_done = self.md_reserve(now + self.cfg.net_latency, fid);
                let xfer = self.degraded_xfer(self.transfer_time(bytes), md_done);
                let tgt = self.target(fid);
                let finish = self.targets.reserve(tgt, md_done, xfer).finish + self.cfg.net_latency;
                let meta = &mut self.objects[fid.index()];
                meta.gets += 1;
                self.stats.gets += 1;
                self.handles.insert(key, ptr + bytes);
                out.push(completion(finish, bytes, ptr));
                Ok(true)
            }
            IoOp::Write { size } => {
                if !open {
                    return Err(PfsError::NotOpen { file: fid, pid });
                }
                let ptr = self.handles[&key];
                let md_done =
                    self.md_reserve(now + self.cfg.put_overhead + self.cfg.net_latency, fid);
                let xfer = self.degraded_xfer(self.transfer_time(*size), md_done);
                let tgt = self.target(fid);
                let finish = self.targets.reserve(tgt, md_done, xfer).finish + self.cfg.net_latency;
                let meta = &mut self.objects[fid.index()];
                meta.size = meta.size.max(ptr + *size);
                meta.mtime = finish;
                meta.last_writer = Some(pid);
                meta.puts += 1;
                self.stats.puts += 1;
                self.handles.insert(key, ptr + *size);
                out.push(completion(finish, *size, ptr));
                Ok(true)
            }
        }
    }

    fn fault_transition_times(&self) -> Vec<Time> {
        self.fault_state
            .as_ref()
            .map(|s| s.transitions().to_vec())
            .unwrap_or_default()
    }

    fn resilience_stats(&self) -> ResilienceStats {
        self.resilience
    }

    fn stats(&self) -> BackendStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sioscope_faults::FaultKind;

    fn store() -> ObjectStore {
        ObjectStore::new(ObjectStoreConfig::modern(4))
    }

    fn one(
        s: &mut ObjectStore,
        now: Time,
        pid: Pid,
        fid: FileId,
        op: &IoOp,
    ) -> Result<Completion, PfsError> {
        let mut out = Vec::new();
        let done = s.submit_into(now, pid, fid, op, &mut out)?;
        assert!(done, "object ops never block");
        assert_eq!(out.len(), 1);
        Ok(out[0])
    }

    #[test]
    fn put_get_round_trip_with_metadata() {
        let mut s = store();
        let fid = s.create_file_with_size("obj", 0);
        let p = Pid(0);
        one(&mut s, Time::ZERO, p, fid, &IoOp::Open).unwrap();
        let w = one(&mut s, Time::ZERO, p, fid, &IoOp::Write { size: 4096 }).unwrap();
        assert_eq!(w.bytes, 4096);
        assert_eq!(w.offset, 0);
        let meta = s.object_meta(fid).unwrap();
        assert_eq!(meta.size, 4096);
        assert_eq!(meta.mtime, w.finish);
        assert_eq!(meta.last_writer, Some(p));
        // Read back from the start: read-your-writes.
        one(&mut s, w.finish, p, fid, &IoOp::Seek { offset: 0 }).unwrap();
        let r = one(&mut s, w.finish, p, fid, &IoOp::Read { size: 8192 }).unwrap();
        assert_eq!(r.bytes, 4096, "GET truncates at object size");
        assert_eq!(s.stats().puts, 1);
        assert_eq!(s.stats().gets, 1);
    }

    #[test]
    fn gopen_is_per_process_and_never_blocks() {
        let mut s = store();
        let fid = s.create_file_with_size("shared", 1 << 20);
        for p in 0..4 {
            let op = IoOp::Gopen {
                group: 4,
                mode: IoMode::MRecord,
                record_size: Some(512),
            };
            let c = one(&mut s, Time::ZERO, Pid(p), fid, &op).unwrap();
            assert_eq!(c.mode, IoMode::MAsync, "shared-pointer modes do not exist");
        }
        assert_eq!(s.forming_collectives(), 0);
    }

    #[test]
    fn misuse_is_rejected_like_the_pfs() {
        let mut s = store();
        let fid = s.create_file_with_size("f", 0);
        let p = Pid(1);
        assert!(matches!(
            one(&mut s, Time::ZERO, p, fid, &IoOp::Read { size: 1 }),
            Err(PfsError::NotOpen { .. })
        ));
        one(&mut s, Time::ZERO, p, fid, &IoOp::Open).unwrap();
        assert!(matches!(
            one(&mut s, Time::ZERO, p, fid, &IoOp::Open),
            Err(PfsError::AlreadyOpen { .. })
        ));
        assert!(matches!(
            one(&mut s, Time::ZERO, p, FileId(9), &IoOp::Open),
            Err(PfsError::NoSuchFile(_))
        ));
    }

    fn drive(s: &mut ObjectStore) -> Vec<Completion> {
        let fid = s.create_file_with_size("obj", 0);
        let p = Pid(0);
        let mut cs = Vec::new();
        cs.push(one(s, Time::ZERO, p, fid, &IoOp::Open).unwrap());
        cs.push(one(s, Time::ZERO, p, fid, &IoOp::Write { size: 4096 }).unwrap());
        let t = cs.last().unwrap().finish;
        cs.push(one(s, t, p, fid, &IoOp::Seek { offset: 0 }).unwrap());
        cs.push(one(s, t, p, fid, &IoOp::Read { size: 4096 }).unwrap());
        cs.push(one(s, t, p, fid, &IoOp::Close).unwrap());
        cs
    }

    #[test]
    fn engaged_empty_schedule_is_bit_neutral() {
        let mut plain = store();
        let mut cfg = ObjectStoreConfig::modern(4);
        cfg.faults = FaultSchedule::engaged_empty();
        let mut engaged = ObjectStore::new(cfg);
        assert!(engaged.fault_state.is_some(), "hooks are in the loop");
        assert_eq!(drive(&mut plain), drive(&mut engaged));
        assert!(engaged.resilience_stats().is_quiet());
        assert!(engaged.fault_transition_times().is_empty());
    }

    #[test]
    fn shard_outage_engages_the_failover_ladder() {
        let mut cfg = ObjectStoreConfig::modern(4);
        // FileId(0) maps to shard 0; keep it dark for a long window so
        // the ladder exhausts its retries and re-routes to shard 1.
        cfg.faults.push(
            Time::ZERO,
            FaultKind::MetadataShardOutage {
                shard: 0,
                duration: Time::from_secs(100),
            },
        );
        let mut s = ObjectStore::new(cfg);
        let fault_free = drive(&mut store());
        let faulted = drive(&mut s);
        let rs = s.resilience_stats();
        assert_eq!(rs.timeouts, 4, "open, put, get, close each time out");
        assert_eq!(rs.retries, 4 * 4);
        assert_eq!(rs.reroutes, 4, "replica shard serves every one");
        assert_eq!(rs.aborts, 0);
        // Same bytes and offsets, later completions.
        for (a, b) in fault_free.iter().zip(&faulted) {
            assert_eq!(a.bytes, b.bytes);
            assert_eq!(a.offset, b.offset);
        }
        assert!(faulted[0].finish > fault_free[0].finish);
        assert_eq!(
            s.fault_transition_times(),
            vec![Time::ZERO, Time::from_secs(100)]
        );
        // Deterministic replay.
        let mut cfg2 = ObjectStoreConfig::modern(4);
        cfg2.faults = s.config().faults.clone();
        assert_eq!(drive(&mut ObjectStore::new(cfg2)), faulted);
    }

    #[test]
    fn whole_dark_metadata_service_stalls_until_restart() {
        let mut cfg = ObjectStoreConfig::modern(4);
        let until = Time::from_secs(30);
        for shard in 0..4 {
            cfg.faults.push(
                Time::ZERO,
                FaultKind::MetadataShardOutage {
                    shard,
                    duration: until,
                },
            );
        }
        let mut s = ObjectStore::new(cfg);
        let fid = s.create_file_with_size("obj", 0);
        let c = one(&mut s, Time::ZERO, Pid(0), fid, &IoOp::Open).unwrap();
        assert!(c.finish > until, "request waits out the outage");
        let rs = s.resilience_stats();
        assert_eq!(rs.aborts, 1);
        assert_eq!(rs.reroutes, 0);
    }

    #[test]
    fn degraded_service_slows_without_changing_semantics() {
        let mut cfg = ObjectStoreConfig::modern(4);
        cfg.faults.push(
            Time::ZERO,
            FaultKind::DegradedService {
                duration: Time::from_secs(100),
                factor: 4.0,
            },
        );
        let mut slow = ObjectStore::new(cfg);
        let fault_free = drive(&mut store());
        let degraded = drive(&mut slow);
        for (a, b) in fault_free.iter().zip(&degraded) {
            assert_eq!(a.bytes, b.bytes, "PUT/GET semantics survive degradation");
            assert_eq!(a.offset, b.offset);
            assert_eq!(a.kind, b.kind);
        }
        assert!(
            degraded[1].finish > fault_free[1].finish,
            "PUT pays the factor"
        );
        assert!(
            degraded[3].finish > fault_free[3].finish,
            "GET pays the factor"
        );
        assert!(
            slow.resilience_stats().is_quiet(),
            "degradation is not a failover action"
        );
    }

    #[test]
    fn whole_object_maps_to_one_target() {
        let mut s = store();
        let a = s.create_file_with_size("a", 0);
        let p = Pid(0);
        one(&mut s, Time::ZERO, p, a, &IoOp::Open).unwrap();
        let w1 = one(&mut s, Time::ZERO, p, a, &IoOp::Write { size: 1 << 20 }).unwrap();
        // A second writer to the same object queues on the same
        // target: no striping parallelism within one object.
        let q = Pid(1);
        one(&mut s, Time::ZERO, q, a, &IoOp::Open).unwrap();
        let w2 = one(&mut s, Time::ZERO, q, a, &IoOp::Write { size: 1 << 20 }).unwrap();
        assert!(w2.finish > w1.finish);
    }
}
