//! # sioscope-pfs
//!
//! A model of the Intel Paragon Parallel File System (PFS) as
//! described in §3.2 of Smirni et al. (HPDC 1996), faithful to the six
//! documented file access modes:
//!
//! * **M_UNIX** — the default. Standard UNIX sharing semantics: each
//!   process has a private file pointer, any request size, and request
//!   atomicity is preserved — which serializes concurrent accesses to
//!   the same file and makes multi-node access expensive.
//! * **M_RECORD** — private pointers, *fixed-size* records, concurrent
//!   operations in node order. Each process operates on its own file
//!   region in a parallel, highly structured fashion. Performs well
//!   when the record size is a multiple of the stripe unit.
//! * **M_ASYNC** — private pointers, variable sizes, *no* atomicity:
//!   the system overhead of atomicity is avoided and seeks become
//!   local pointer updates.
//! * **M_GLOBAL** — one shared pointer, all processes access the same
//!   data in a synchronized fashion; identical requests are aggregated
//!   so the data moves from disk only once and is broadcast.
//! * **M_SYNC** — one shared pointer, requests processed in node
//!   order, synchronized, sizes may vary per node.
//! * **M_LOG** — one shared pointer, first-come-first-served,
//!   unsynchronized, variable sizes (the stdout/stderr mode).
//!
//! On top of the measured PFS behaviour, [`policy`] implements the
//! file-system design principles the paper advocates in §7 — request
//! aggregation, prefetching, and write-behind — so their effect can be
//! quantified in ablation benchmarks.
//!
//! The PFS is one of three storage tiers behind the [`backend`] seam;
//! [`object`] and [`burst`] are the modern comparison points the
//! evolutionary experiments replay the same workloads against.

pub mod adaptive;
pub mod backend;
pub mod burst;
pub mod cache;
pub mod costs;
pub mod error;
pub mod file;
pub mod ioncache;
pub mod mode;
pub mod object;
pub mod op;
pub mod policy;
pub mod resilience;
pub mod server;
pub mod stripe;

pub use adaptive::{AccessPattern, PatternDetector};
pub use backend::{BackendConfig, BackendKind, BackendStats, StorageBackend};
pub use burst::{BurstAbsorb, BurstBuffer, BurstBufferConfig};
pub use costs::PfsCosts;
pub use error::PfsError;
pub use mode::IoMode;
pub use object::{ObjectMeta, ObjectStore, ObjectStoreConfig};
pub use op::{Completion, IoOp, OpKind, Outcome};
pub use policy::PolicyConfig;
pub use resilience::{ResilienceConfig, ResilienceStats};
pub use server::{Pfs, PfsConfig};
pub use stripe::StripeLayout;
