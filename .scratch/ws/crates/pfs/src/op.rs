//! PFS operation requests and completions.

use crate::mode::IoMode;
use serde::{Deserialize, Serialize};
use sioscope_sim::{Pid, Time};
use std::fmt;

/// One file-system call, as issued by an application process. The
/// target file travels alongside (see [`crate::Pfs::submit`]).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum IoOp {
    /// `open()` — non-collective metadata operation; serialized on the
    /// metadata server. Opens the file in [`IoMode::MUnix`].
    Open,
    /// `gopen()` — collective open by `group` processes; pays the
    /// metadata cost once and sets the I/O mode as a side effect
    /// (§5.1: "Because it also sets the file mode, the gopen call
    /// eliminates expensive file mode operations").
    Gopen {
        /// Number of processes participating in this collective open.
        group: u32,
        /// Mode the file is opened in.
        mode: IoMode,
        /// Fixed record size; required iff `mode` is M_RECORD.
        record_size: Option<u64>,
    },
    /// `setiomode()` — collective mode change by `group` processes.
    SetIoMode {
        /// Number of participating processes.
        group: u32,
        /// New mode.
        mode: IoMode,
        /// Fixed record size; required iff `mode` is M_RECORD.
        record_size: Option<u64>,
    },
    /// Read `size` bytes at the current pointer (private or shared,
    /// per the file's mode).
    Read {
        /// Request size in bytes.
        size: u64,
    },
    /// Write `size` bytes at the current pointer.
    Write {
        /// Request size in bytes.
        size: u64,
    },
    /// Set this process's private file pointer to an absolute offset.
    Seek {
        /// Absolute byte offset.
        offset: u64,
    },
    /// Enable or disable client-side buffering for this process's view
    /// of the file (PRISM version C disabled buffering on the restart
    /// file, §5.1).
    SetBuffering {
        /// `true` to buffer reads through the client cache.
        enabled: bool,
    },
    /// Flush client-side state to the I/O nodes.
    Flush,
    /// Close the file.
    Close,
}

impl IoOp {
    /// The trace/table category this op falls into.
    pub fn kind(&self) -> OpKind {
        match self {
            IoOp::Open => OpKind::Open,
            IoOp::Gopen { .. } => OpKind::Gopen,
            IoOp::SetIoMode { .. } => OpKind::Iomode,
            IoOp::Read { .. } => OpKind::Read,
            IoOp::Write { .. } => OpKind::Write,
            IoOp::Seek { .. } => OpKind::Seek,
            IoOp::SetBuffering { .. } => OpKind::Iomode,
            IoOp::Flush => OpKind::Flush,
            IoOp::Close => OpKind::Close,
        }
    }

    /// Bytes moved by the op (zero for control operations).
    pub fn bytes(&self) -> u64 {
        match self {
            IoOp::Read { size } | IoOp::Write { size } => *size,
            _ => 0,
        }
    }
}

/// Operation categories — exactly the rows of the paper's Tables 2, 3
/// and 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// Non-collective `open`.
    Open,
    /// Collective `gopen`.
    Gopen,
    /// Data read.
    Read,
    /// Pointer seek.
    Seek,
    /// Data write.
    Write,
    /// `setiomode` / buffering control.
    Iomode,
    /// Explicit flush.
    Flush,
    /// File close.
    Close,
}

impl OpKind {
    /// All categories in the paper's table row order.
    pub fn all() -> [OpKind; 8] {
        [
            OpKind::Open,
            OpKind::Gopen,
            OpKind::Read,
            OpKind::Seek,
            OpKind::Write,
            OpKind::Iomode,
            OpKind::Flush,
            OpKind::Close,
        ]
    }

    /// The row label used in the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            OpKind::Open => "open",
            OpKind::Gopen => "gopen",
            OpKind::Read => "read",
            OpKind::Seek => "seek",
            OpKind::Write => "write",
            OpKind::Iomode => "iomode",
            OpKind::Flush => "flush",
            OpKind::Close => "close",
        }
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A finished operation for one process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Completion {
    /// The process whose call completed.
    pub pid: Pid,
    /// Completion instant. The caller computes the client-observed
    /// duration as `finish - issue_time`, which deliberately includes
    /// rendezvous waits and token-queueing delay — Pablo measured
    /// wall-clock call durations at the client.
    pub finish: Time,
    /// Bytes actually transferred for this process.
    pub bytes: u64,
    /// File offset the transfer touched (zero for control operations);
    /// feeds the Pablo-style file-region summaries.
    pub offset: u64,
    /// Category for trace accounting.
    pub kind: OpKind,
    /// The file's access mode when the operation completed — the
    /// paper's third characterization dimension (§6: request size,
    /// I/O parallelism, access modes).
    pub mode: IoMode,
}

/// Result of submitting an op to the PFS.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// The op (and possibly a whole collective group) finished;
    /// completions may cover several processes.
    Done(Vec<Completion>),
    /// The caller joined a still-forming collective group and must
    /// block; its completion will be delivered by the arrival that
    /// completes the group.
    Blocked,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_map_to_table_rows() {
        assert_eq!(IoOp::Open.kind(), OpKind::Open);
        assert_eq!(
            IoOp::Gopen {
                group: 4,
                mode: IoMode::MUnix,
                record_size: None
            }
            .kind(),
            OpKind::Gopen
        );
        assert_eq!(IoOp::Read { size: 10 }.kind(), OpKind::Read);
        assert_eq!(IoOp::Seek { offset: 0 }.kind(), OpKind::Seek);
        assert_eq!(IoOp::Flush.kind(), OpKind::Flush);
        assert_eq!(IoOp::Close.kind(), OpKind::Close);
    }

    #[test]
    fn bytes_counts_only_data_ops() {
        assert_eq!(IoOp::Read { size: 7 }.bytes(), 7);
        assert_eq!(IoOp::Write { size: 9 }.bytes(), 9);
        assert_eq!(IoOp::Open.bytes(), 0);
        assert_eq!(IoOp::Seek { offset: 100 }.bytes(), 0);
    }

    #[test]
    fn labels_match_paper() {
        let labels: Vec<_> = OpKind::all().iter().map(|k| k.label()).collect();
        assert_eq!(
            labels,
            vec!["open", "gopen", "read", "seek", "write", "iomode", "flush", "close"]
        );
    }
}
