//! Per-file PFS state: mode, pointers, openers, serialization token.

use crate::mode::IoMode;
use crate::stripe::StripeLayout;
use sioscope_sim::{Calendar, FileId, Pid};
use std::collections::HashMap;

/// Server-side state for one PFS file.
#[derive(Debug, Clone)]
pub struct FileState {
    /// The file's id.
    pub id: FileId,
    /// Human-readable name (for traces and reports).
    pub name: String,
    /// Current access mode. `open` leaves an existing mode alone
    /// unless this is the first opener; `gopen`/`setiomode` set it.
    pub mode: IoMode,
    /// Fixed record size when `mode` is M_RECORD.
    pub record_size: Option<u64>,
    /// Current file size in bytes (writes extend it).
    pub size: u64,
    /// Stripe layout.
    pub layout: StripeLayout,
    /// Shared file pointer (M_GLOBAL/M_SYNC/M_LOG) and the base offset
    /// for M_RECORD rounds.
    pub shared_ptr: u64,
    /// The per-file atomicity token: M_UNIX/M_LOG requests serialize
    /// through this calendar.
    pub token: Calendar,
    openers: Vec<Pid>,
    private_ptrs: HashMap<Pid, u64>,
    /// Per-process counter of collective operations issued on this
    /// file; used to key rendezvous groups so successive collective
    /// rounds never collide.
    collective_seq: HashMap<Pid, u32>,
}

impl FileState {
    /// A new, empty file.
    pub fn new(id: FileId, name: String, layout: StripeLayout) -> Self {
        FileState {
            id,
            name,
            mode: IoMode::MUnix,
            record_size: None,
            size: 0,
            layout,
            shared_ptr: 0,
            token: Calendar::new(),
            openers: Vec::new(),
            private_ptrs: HashMap::new(),
            collective_seq: HashMap::new(),
        }
    }

    /// Register `pid` as an opener. Returns `false` if already open
    /// by this pid.
    pub fn add_opener(&mut self, pid: Pid) -> bool {
        if self.openers.contains(&pid) {
            return false;
        }
        let pos = self.openers.partition_point(|&p| p < pid);
        self.openers.insert(pos, pid);
        self.private_ptrs.insert(pid, 0);
        true
    }

    /// Deregister `pid`. Returns `false` if it was not an opener.
    pub fn remove_opener(&mut self, pid: Pid) -> bool {
        match self.openers.iter().position(|&p| p == pid) {
            Some(i) => {
                self.openers.remove(i);
                self.private_ptrs.remove(&pid);
                true
            }
            None => false,
        }
    }

    /// Is the file currently open by `pid`?
    pub fn is_open_by(&self, pid: Pid) -> bool {
        self.openers.binary_search(&pid).is_ok()
    }

    /// Number of current openers.
    pub fn opener_count(&self) -> u32 {
        self.openers.len() as u32
    }

    /// Current openers in ascending pid order.
    pub fn openers(&self) -> &[Pid] {
        &self.openers
    }

    /// Rank of `pid` among current openers (node order for M_RECORD /
    /// M_SYNC).
    pub fn rank(&self, pid: Pid) -> Option<u32> {
        self.openers.binary_search(&pid).ok().map(|i| i as u32)
    }

    /// This process's private pointer.
    pub fn private_ptr(&self, pid: Pid) -> u64 {
        self.private_ptrs.get(&pid).copied().unwrap_or(0)
    }

    /// Set this process's private pointer.
    pub fn set_private_ptr(&mut self, pid: Pid, offset: u64) {
        self.private_ptrs.insert(pid, offset);
    }

    /// Advance this process's private pointer by `len`, returning the
    /// offset the transfer started at.
    pub fn advance_private(&mut self, pid: Pid, len: u64) -> u64 {
        let p = self.private_ptrs.entry(pid).or_insert(0);
        let at = *p;
        *p += len;
        at
    }

    /// Advance the shared pointer by `len`, returning its old value.
    pub fn advance_shared(&mut self, len: u64) -> u64 {
        let at = self.shared_ptr;
        self.shared_ptr += len;
        at
    }

    /// Extend the file size to cover a write of `len` at `offset`.
    pub fn note_write(&mut self, offset: u64, len: u64) {
        self.size = self.size.max(offset + len);
    }

    /// Next collective-round sequence number for `pid` (post-
    /// incremented). All participants issue the same collective ops in
    /// the same order, so equal sequence numbers identify one round.
    pub fn next_collective_seq(&mut self, pid: Pid) -> u32 {
        let c = self.collective_seq.entry(pid).or_insert(0);
        let v = *c;
        *c += 1;
        v
    }

    /// Rendezvous key for collective round `seq` of this file.
    pub fn rendezvous_key(&self, seq: u32) -> u64 {
        (u64::from(self.id.0) << 32) | u64::from(seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file() -> FileState {
        FileState::new(FileId(0), "f".into(), StripeLayout::paragon_default())
    }

    #[test]
    fn openers_sorted_and_ranked() {
        let mut f = file();
        assert!(f.add_opener(Pid(5)));
        assert!(f.add_opener(Pid(1)));
        assert!(f.add_opener(Pid(3)));
        assert!(!f.add_opener(Pid(3)), "double open rejected");
        assert_eq!(f.openers(), &[Pid(1), Pid(3), Pid(5)]);
        assert_eq!(f.rank(Pid(1)), Some(0));
        assert_eq!(f.rank(Pid(3)), Some(1));
        assert_eq!(f.rank(Pid(5)), Some(2));
        assert_eq!(f.rank(Pid(2)), None);
        assert_eq!(f.opener_count(), 3);
    }

    #[test]
    fn remove_opener_clears_pointer() {
        let mut f = file();
        f.add_opener(Pid(2));
        f.set_private_ptr(Pid(2), 100);
        assert!(f.remove_opener(Pid(2)));
        assert!(!f.remove_opener(Pid(2)));
        assert_eq!(f.private_ptr(Pid(2)), 0, "pointer reset after close");
    }

    #[test]
    fn private_pointer_advances() {
        let mut f = file();
        f.add_opener(Pid(0));
        assert_eq!(f.advance_private(Pid(0), 10), 0);
        assert_eq!(f.advance_private(Pid(0), 5), 10);
        assert_eq!(f.private_ptr(Pid(0)), 15);
        f.set_private_ptr(Pid(0), 100);
        assert_eq!(f.advance_private(Pid(0), 1), 100);
    }

    #[test]
    fn shared_pointer_advances() {
        let mut f = file();
        assert_eq!(f.advance_shared(100), 0);
        assert_eq!(f.advance_shared(50), 100);
        assert_eq!(f.shared_ptr, 150);
    }

    #[test]
    fn write_extends_size() {
        let mut f = file();
        f.note_write(100, 50);
        assert_eq!(f.size, 150);
        f.note_write(0, 10);
        assert_eq!(f.size, 150, "size never shrinks");
    }

    #[test]
    fn collective_seq_counts_per_pid() {
        let mut f = file();
        assert_eq!(f.next_collective_seq(Pid(0)), 0);
        assert_eq!(f.next_collective_seq(Pid(0)), 1);
        assert_eq!(f.next_collective_seq(Pid(1)), 0);
        let k0 = f.rendezvous_key(0);
        let k1 = f.rendezvous_key(1);
        assert_ne!(k0, k1);
    }

    #[test]
    fn rendezvous_keys_distinct_across_files() {
        let f0 = FileState::new(FileId(0), "a".into(), StripeLayout::paragon_default());
        let f1 = FileState::new(FileId(1), "b".into(), StripeLayout::paragon_default());
        assert_ne!(f0.rendezvous_key(0), f1.rendezvous_key(0));
    }
}
