//! File-system design-principle policies (§7 of the paper).
//!
//! The paper concludes that *"request aggregation, prefetching, and
//! write behind are possible approaches"* to relieving applications of
//! manual I/O tuning. The measured PFS had none of them at the client;
//! [`PolicyConfig`] lets experiments switch each one on independently
//! so the ablation benchmarks can quantify what the developers were
//! compensating for by hand:
//!
//! * **read-ahead (prefetching)** — on a buffered read miss whose
//!   access pattern is sequential, the client fetches the *next*
//!   buffer block in the background; a later read that lands in the
//!   prefetched block waits only for the remaining fetch time.
//! * **write aggregation** — small sequential writes coalesce in a
//!   client buffer and reach the I/O nodes as one large, stripe-
//!   friendly request when the buffer fills (or on flush/close/
//!   non-sequential write).
//! * **write-behind** — the drain of the aggregation buffer is
//!   asynchronous: the client's write call returns after the memory
//!   copy, and only `flush`/`close` wait for outstanding drains.

use serde::{Deserialize, Serialize};

/// Client-side policy switches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PolicyConfig {
    /// Prefetch the next buffer block on sequential read misses.
    pub read_ahead: bool,
    /// Coalesce small sequential writes into buffer-block-sized
    /// requests.
    pub write_aggregation: bool,
    /// Drain the write buffer asynchronously (implies the client does
    /// not wait for disk on individual writes). Only meaningful when
    /// `write_aggregation` is on.
    pub write_behind: bool,
    /// Dynamically enable read-ahead and write aggregation per stream
    /// when the on-line pattern detector classifies the stream as
    /// sequential — the PPFS-style adaptive policy the paper points to
    /// in §5.4.
    pub adaptive: bool,
}

impl PolicyConfig {
    /// The PFS as measured in the paper: no client-side policies.
    pub fn measured_pfs() -> Self {
        PolicyConfig {
            read_ahead: false,
            write_aggregation: false,
            write_behind: false,
            adaptive: false,
        }
    }

    /// Adaptive policy selection: nothing is enabled statically; the
    /// pattern detector turns read-ahead and write aggregation on per
    /// stream.
    pub fn adaptive() -> Self {
        PolicyConfig {
            adaptive: true,
            ..Self::measured_pfs()
        }
    }

    /// Everything on — the §7 recommendation.
    pub fn recommended() -> Self {
        PolicyConfig {
            read_ahead: true,
            write_aggregation: true,
            write_behind: true,
            adaptive: false,
        }
    }

    /// Only prefetching.
    pub fn prefetch_only() -> Self {
        PolicyConfig {
            read_ahead: true,
            ..Self::measured_pfs()
        }
    }

    /// Only write aggregation (synchronous drain).
    pub fn aggregation_only() -> Self {
        PolicyConfig {
            write_aggregation: true,
            ..Self::measured_pfs()
        }
    }

    /// Aggregation with asynchronous (write-behind) drain.
    pub fn write_behind_only() -> Self {
        PolicyConfig {
            write_aggregation: true,
            write_behind: true,
            ..Self::measured_pfs()
        }
    }
}

impl Default for PolicyConfig {
    fn default() -> Self {
        PolicyConfig::measured_pfs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_consistent() {
        assert_eq!(PolicyConfig::default(), PolicyConfig::measured_pfs());
        let r = PolicyConfig::recommended();
        assert!(r.read_ahead && r.write_aggregation && r.write_behind);
        let p = PolicyConfig::prefetch_only();
        assert!(p.read_ahead && !p.write_aggregation && !p.write_behind);
        let a = PolicyConfig::aggregation_only();
        assert!(!a.read_ahead && a.write_aggregation && !a.write_behind);
        let wb = PolicyConfig::write_behind_only();
        assert!(wb.write_aggregation && wb.write_behind);
        let ad = PolicyConfig::adaptive();
        assert!(ad.adaptive && !ad.read_ahead && !ad.write_aggregation);
    }
}
