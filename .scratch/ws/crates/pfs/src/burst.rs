//! A host-side burst buffer over the PFS.
//!
//! The second modern tier (after "ParaLog: Consistent Host-side
//! Logging for Parallel Checkpoints"): writes to *absorbed* files land
//! in a node-local log at memory-class bandwidth and the foreground
//! process continues immediately; a background drain channel then
//! replays the log to the underlying PFS in FIFO order on the same
//! simulated timeline. Checkpoint commits — the PR-3 recovery
//! machinery's dominant foreground cost — are the intended absorbees:
//! with the log in front, the checkpoint-interval U-curve flattens
//! because committing more often no longer costs foreground time.
//!
//! Files *not* absorbed delegate verbatim to the inner [`Pfs`] — same
//! calls, same calendars — so a burst buffer that absorbs nothing is
//! bit-identical to the plain PFS (the differential suite pins this).
//!
//! Accounting obeys a conservation law checked by proptests:
//! `bytes_logged == bytes_drained + bytes_resident + bytes_lost`, and
//! the drain preserves per-file write order (it is a single global
//! FIFO).
//!
//! Burst-tier faults (ParaLog's failure modes): a *drain stall*
//! freezes the background channel for a window — stall windows delay
//! transfer starts, never in-flight transfers — and a *burst-node
//! crash* destroys every resident (not yet drained) byte and takes
//! the log down for a repair window, during which absorbed writes
//! fall through synchronously to the PFS drain channel (counted as
//! `writethroughs`). A checkpoint whose interval logged a lost byte
//! is never restorable; [`StorageBackend::durable_instant`] surfaces
//! that to the recovery driver.

use crate::backend::{BackendKind, BackendStats, StorageBackend};
use crate::error::PfsError;
use crate::mode::IoMode;
use crate::op::{Completion, IoOp};
use crate::resilience::ResilienceStats;
use crate::server::{Pfs, PfsConfig};
use sioscope_faults::{BurstFaultState, FaultSchedule};
use sioscope_sim::{Calendar, DetHashMap, FileId, Pid, Time};
use std::collections::VecDeque;

/// Which files the log absorbs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BurstAbsorb {
    /// Absorb writes to every file.
    All,
    /// Absorb writes only to the named file ids (e.g. the checkpoint
    /// files). `Files(vec![])` absorbs nothing — pure passthrough.
    Files(Vec<u32>),
}

/// Burst-buffer sizing and timing over an inner PFS.
#[derive(Debug, Clone)]
pub struct BurstBufferConfig {
    /// The backing store (and the machine/mesh the run executes on).
    pub pfs: PfsConfig,
    /// Which files the log absorbs.
    pub absorb: BurstAbsorb,
    /// Local log append/lookup latency (NVMe-class).
    pub log_latency: Time,
    /// Per-process log bandwidth, bytes per second.
    pub log_bandwidth_bps: u64,
    /// Background drain bandwidth to the PFS, bytes per second.
    pub drain_bandwidth_bps: u64,
    /// Injected *burst-tier* fault scenario (drain stalls, burst-node
    /// crashes). Faults of the inner PFS live in `pfs.faults`; the
    /// two schedules are validated against their own tiers.
    pub faults: FaultSchedule,
}

impl BurstBufferConfig {
    /// A node-local NVMe log over the given PFS: microsecond appends,
    /// ~2 GB/s absorb, drained at roughly a 1996 I/O node's pace.
    pub fn over(pfs: PfsConfig) -> Self {
        BurstBufferConfig {
            pfs,
            absorb: BurstAbsorb::All,
            log_latency: Time::from_micros(5),
            log_bandwidth_bps: 2_000_000_000,
            drain_bandwidth_bps: 300_000_000,
            faults: FaultSchedule::empty(),
        }
    }

    /// Same log, absorbing only the named files.
    pub fn absorbing(pfs: PfsConfig, files: Vec<u32>) -> Self {
        let mut cfg = BurstBufferConfig::over(pfs);
        cfg.absorb = BurstAbsorb::Files(files);
        cfg
    }
}

/// One logged write awaiting retirement.
#[derive(Debug, Clone, Copy)]
struct DrainEntry {
    len: u64,
    /// Instant the entry leaves the pending set: its drain completion,
    /// or the crash instant that destroyed it. Computed eagerly at
    /// append time from the same FIFO recurrence the lazy scan used —
    /// `start = clock.max(ready)` (pushed past stall windows),
    /// `finish = start + xfer` — so fault-free retirement instants are
    /// bit-identical to the old on-demand computation.
    retire: Time,
    /// `true` iff a burst-node crash struck while the entry was
    /// resident (`ready <= crash < finish`): its bytes are lost.
    lost: bool,
}

/// The burst buffer: an absorbing log plus the inner PFS.
pub struct BurstBuffer {
    absorb: BurstAbsorb,
    log_latency: Time,
    log_bandwidth_bps: u64,
    drain_bandwidth_bps: u64,
    inner: Pfs,
    /// Private pointer per (file, process) for absorbed files; also
    /// the open-handle set.
    handles: DetHashMap<(FileId, Pid), u64>,
    /// Logical size of each absorbed file as the log sees it.
    sizes: DetHashMap<FileId, u64>,
    /// One log append channel per process (node-local device).
    logs: DetHashMap<Pid, Calendar>,
    /// Global drain FIFO (preserves per-file write order).
    pending: VecDeque<DrainEntry>,
    /// Virtual drain clock: the instant the channel frees up after
    /// every append scheduled so far (advanced at append time).
    drain_virtual: Time,
    /// Compiled burst-tier fault windows; `None` when the schedule
    /// does not engage.
    faults: Option<BurstFaultState>,
    /// Log-append completion instants of lost entries, for the
    /// per-commit durability verdict.
    lost_readies: Vec<Time>,
    /// High-water mark of [`StorageBackend::durable_instant`] queries:
    /// each commit's durability window is `(cursor, commit]`.
    durable_cursor: Time,
    /// Burst-local failover counters (write-throughs); merged with the
    /// inner PFS's stats on report.
    resilience: ResilienceStats,
    stats: BackendStats,
}

impl BurstBuffer {
    /// Build the buffer and its inner PFS.
    pub fn new(cfg: BurstBufferConfig) -> Self {
        let faults = cfg
            .faults
            .engages()
            .then(|| BurstFaultState::new(&cfg.faults));
        BurstBuffer {
            absorb: cfg.absorb,
            log_latency: cfg.log_latency,
            log_bandwidth_bps: cfg.log_bandwidth_bps.max(1),
            drain_bandwidth_bps: cfg.drain_bandwidth_bps.max(1),
            inner: Pfs::new(cfg.pfs),
            handles: DetHashMap::default(),
            sizes: DetHashMap::default(),
            logs: DetHashMap::default(),
            pending: VecDeque::new(),
            drain_virtual: Time::ZERO,
            faults,
            lost_readies: Vec::new(),
            durable_cursor: Time::ZERO,
            resilience: ResilienceStats::default(),
            stats: BackendStats::default(),
        }
    }

    /// The backing PFS (for its calendars and fault state).
    pub fn inner(&self) -> &Pfs {
        &self.inner
    }

    fn absorbs(&self, fid: FileId) -> bool {
        match &self.absorb {
            BurstAbsorb::All => true,
            BurstAbsorb::Files(ids) => ids.contains(&fid.0),
        }
    }

    fn xfer(bytes: u64, bps: u64) -> Time {
        let ns = (u128::from(bytes) * 1_000_000_000u128) / u128::from(bps);
        Time::from_nanos(ns as u64)
    }

    /// Schedule one appended entry on the drain channel: push the
    /// start past stall windows, then check whether a burst-node
    /// crash destroys the entry while resident. Returns the entry's
    /// retirement instant and lost verdict, advancing the virtual
    /// clock (a crash frees the channel at the crash instant).
    fn schedule_drain(&mut self, ready: Time, len: u64) -> (Time, bool) {
        let xfer = Self::xfer(len, self.drain_bandwidth_bps);
        match &self.faults {
            None => {
                let start = self.drain_virtual.max(ready);
                let finish = start + xfer;
                self.drain_virtual = finish;
                (finish, false)
            }
            Some(state) => {
                let start = state.drain_clear(self.drain_virtual.max(ready));
                let finish = start.saturating_add(xfer);
                let crash = state
                    .crashes()
                    .iter()
                    .find(|&&(at, _)| ready <= at && at < finish);
                match crash {
                    Some(&(at, _)) => {
                        self.drain_virtual = self.drain_virtual.max(at);
                        self.lost_readies.push(ready);
                        (at, true)
                    }
                    None => {
                        self.drain_virtual = finish;
                        (finish, false)
                    }
                }
            }
        }
    }

    /// Retire every pending entry whose retirement instant is by
    /// `now`: drained entries move to `bytes_drained`, lost entries to
    /// `bytes_lost` at their crash instant.
    fn advance_drain(&mut self, now: Time) {
        while let Some(front) = self.pending.front().copied() {
            if front.retire > now {
                break;
            }
            self.stats.bytes_resident -= front.len;
            if front.lost {
                self.stats.bytes_lost += front.len;
            } else {
                self.stats.bytes_drained += front.len;
                self.stats.drain_complete = front.retire;
            }
            self.pending.pop_front();
        }
    }

    fn check_exists(&self, fid: FileId) -> Result<(), PfsError> {
        if self.inner.file(fid).is_some() {
            Ok(())
        } else {
            Err(PfsError::NoSuchFile(fid))
        }
    }
}

impl StorageBackend for BurstBuffer {
    fn kind(&self) -> BackendKind {
        BackendKind::Burst
    }

    fn create_file_with_size(&mut self, name: &str, size: u64) -> FileId {
        // Every file exists on the backing PFS (dense ids, and the
        // drain needs somewhere to land); absorbed files additionally
        // track their logical size log-side.
        let fid = self.inner.create_file_with_size(name, size);
        if self.absorbs(fid) {
            self.sizes.insert(fid, size);
        }
        fid
    }

    fn submit_into(
        &mut self,
        now: Time,
        pid: Pid,
        fid: FileId,
        op: &IoOp,
        out: &mut Vec<Completion>,
    ) -> Result<bool, PfsError> {
        if !self.absorbs(fid) {
            // Verbatim passthrough: same call the plain PFS would see.
            let r = self.inner.submit_into(now, pid, fid, op, out);
            if r.is_ok() {
                self.stats.passthrough_ops += 1;
            }
            return r;
        }

        self.check_exists(fid)?;
        self.advance_drain(now);
        let key = (fid, pid);
        let open = self.handles.contains_key(&key);

        let completion = |finish: Time, bytes: u64, offset: u64| Completion {
            pid,
            finish,
            bytes,
            offset,
            kind: op.kind(),
            // The log is exactly the PFS's M_LOG promise, kept: local
            // append, background ordering.
            mode: IoMode::MLog,
        };

        match op {
            IoOp::Open | IoOp::Gopen { .. } => {
                if open {
                    return Err(PfsError::AlreadyOpen { file: fid, pid });
                }
                // The log has no collective state: gopen completes
                // per-process at append latency.
                self.handles.insert(key, 0);
                self.stats.absorbed_ops += 1;
                out.push(completion(now + self.log_latency, 0, 0));
                Ok(true)
            }
            IoOp::Close => {
                if !open {
                    return Err(PfsError::NotOpen { file: fid, pid });
                }
                self.handles.remove(&key);
                self.stats.absorbed_ops += 1;
                out.push(completion(now + self.log_latency, 0, 0));
                Ok(true)
            }
            IoOp::Seek { offset } => {
                if !open {
                    return Err(PfsError::NotOpen { file: fid, pid });
                }
                self.handles.insert(key, *offset);
                self.stats.absorbed_ops += 1;
                out.push(completion(now + self.log_latency, 0, *offset));
                Ok(true)
            }
            IoOp::SetIoMode { .. } | IoOp::SetBuffering { .. } | IoOp::Flush => {
                if !open {
                    return Err(PfsError::NotOpen { file: fid, pid });
                }
                let ptr = self.handles[&key];
                self.stats.absorbed_ops += 1;
                out.push(completion(now + self.log_latency, 0, ptr));
                Ok(true)
            }
            IoOp::Read { size } => {
                if !open {
                    return Err(PfsError::NotOpen { file: fid, pid });
                }
                // Absorbed files are read back from the log itself
                // (it caches what it absorbed), at log bandwidth.
                let ptr = self.handles[&key];
                let avail = self.sizes[&fid].saturating_sub(ptr);
                let bytes = (*size).min(avail);
                let cal = self.logs.entry(pid).or_default();
                let res = cal.reserve(
                    now + self.log_latency,
                    Self::xfer(bytes, self.log_bandwidth_bps),
                );
                self.stats.absorbed_ops += 1;
                self.handles.insert(key, ptr + bytes);
                out.push(completion(res.finish, bytes, ptr));
                Ok(true)
            }
            IoOp::Write { size } => {
                if !open {
                    return Err(PfsError::NotOpen { file: fid, pid });
                }
                let ptr = self.handles[&key];
                // Log down (crashed, not yet repaired): the write
                // falls through synchronously to the PFS drain
                // channel — foreground pays drain-class bandwidth,
                // but the bytes are durable on arrival and never
                // enter the log's accounting.
                let down = self
                    .faults
                    .as_ref()
                    .is_some_and(|state| state.log_down_until(now).is_some());
                if down {
                    let state = self.faults.as_ref().expect("checked above");
                    let start = state.drain_clear(self.drain_virtual.max(now));
                    let finish = start.saturating_add(Self::xfer(*size, self.drain_bandwidth_bps));
                    self.drain_virtual = finish;
                    self.resilience.writethroughs += 1;
                    self.stats.passthrough_ops += 1;
                    let sz = self.sizes.get_mut(&fid).expect("absorbed file size");
                    *sz = (*sz).max(ptr + *size);
                    self.handles.insert(key, ptr + *size);
                    out.push(completion(finish, *size, ptr));
                    return Ok(true);
                }
                let cal = self.logs.entry(pid).or_default();
                let res = cal.reserve(
                    now + self.log_latency,
                    Self::xfer(*size, self.log_bandwidth_bps),
                );
                let ready = res.finish;
                self.stats.bytes_logged += *size;
                self.stats.bytes_resident += *size;
                self.stats.absorbed_ops += 1;
                let (retire, lost) = self.schedule_drain(ready, *size);
                self.pending.push_back(DrainEntry {
                    len: *size,
                    retire,
                    lost,
                });
                let sz = self.sizes.get_mut(&fid).expect("absorbed file size");
                *sz = (*sz).max(ptr + *size);
                self.handles.insert(key, ptr + *size);
                out.push(completion(ready, *size, ptr));
                Ok(true)
            }
        }
    }

    fn fault_transition_times(&self) -> Vec<Time> {
        let mut ts = self
            .inner
            .fault_state()
            .map(|s| s.transitions().to_vec())
            .unwrap_or_default();
        if let Some(state) = &self.faults {
            ts.extend_from_slice(state.transitions());
            ts.sort_unstable();
            ts.dedup();
        }
        ts
    }

    fn forming_collectives(&self) -> usize {
        self.inner.forming_collectives()
    }

    fn resilience_stats(&self) -> ResilienceStats {
        let mut rs = self.inner.resilience_stats();
        rs.merge(&self.resilience);
        rs
    }

    fn durable_instant(&mut self, now: Time) -> Time {
        let from = self.durable_cursor;
        self.durable_cursor = self.durable_cursor.max(now);
        // A commit is durable unless one of the bytes logged in its
        // window — appends completing in `(previous commit, now]` —
        // was later destroyed by a burst-node crash while resident.
        if self
            .lost_readies
            .iter()
            .any(|&ready| ready > from && ready <= now)
        {
            Time::MAX
        } else {
            now
        }
    }

    fn quiesce(&mut self, now: Time) -> Time {
        while let Some(front) = self.pending.pop_front() {
            self.stats.bytes_resident -= front.len;
            if front.lost {
                self.stats.bytes_lost += front.len;
            } else {
                self.stats.bytes_drained += front.len;
                self.stats.drain_complete = front.retire;
            }
        }
        now.max(self.stats.drain_complete)
    }

    fn stats(&self) -> BackendStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sioscope_faults::FaultKind;

    fn buffer(absorb: BurstAbsorb) -> BurstBuffer {
        let mut cfg = BurstBufferConfig::over(PfsConfig::tiny());
        cfg.absorb = absorb;
        BurstBuffer::new(cfg)
    }

    fn one(
        b: &mut BurstBuffer,
        now: Time,
        pid: Pid,
        fid: FileId,
        op: &IoOp,
    ) -> Result<Completion, PfsError> {
        let mut out = Vec::new();
        let done = b.submit_into(now, pid, fid, op, &mut out)?;
        assert!(done);
        assert_eq!(out.len(), 1);
        Ok(out[0])
    }

    #[test]
    fn absorbed_writes_complete_at_log_speed_and_drain_later() {
        let mut b = buffer(BurstAbsorb::All);
        let fid = b.create_file_with_size("ckpt", 0);
        let p = Pid(0);
        one(&mut b, Time::ZERO, p, fid, &IoOp::Open).unwrap();
        let w = one(&mut b, Time::ZERO, p, fid, &IoOp::Write { size: 1 << 20 }).unwrap();
        assert_eq!(w.mode, IoMode::MLog);
        let s = b.stats();
        assert_eq!(s.bytes_logged, 1 << 20);
        assert_eq!(s.bytes_resident, 1 << 20);
        assert_eq!(s.bytes_drained, 0);
        assert!(s.conserves_bytes());
        let quiet = b.quiesce(w.finish);
        let s = b.stats();
        assert_eq!(s.bytes_drained, 1 << 20);
        assert_eq!(s.bytes_resident, 0);
        assert!(s.conserves_bytes());
        assert!(quiet >= w.finish, "drain at 300 MB/s outlives the append");
        assert_eq!(s.drain_complete, quiet);
    }

    #[test]
    fn unabsorbed_files_pass_through_to_the_pfs() {
        let mut b = buffer(BurstAbsorb::Files(vec![]));
        let mut plain = Pfs::new(PfsConfig::tiny());
        let fid = b.create_file_with_size("data", 1 << 20);
        let fid2 = plain.create_file_with_size("data", 1 << 20);
        assert_eq!(fid, fid2);
        let p = Pid(0);
        for op in [
            IoOp::Open,
            IoOp::Read { size: 4096 },
            IoOp::Write { size: 4096 },
            IoOp::Close,
        ] {
            let via_buffer = one(&mut b, Time::ZERO, p, fid, &op).unwrap();
            let mut direct = Vec::new();
            plain
                .submit_into(Time::ZERO, p, fid2, &op, &mut direct)
                .unwrap();
            assert_eq!(via_buffer, direct[0], "passthrough must be verbatim");
        }
        assert_eq!(b.stats().bytes_logged, 0);
        assert_eq!(b.stats().passthrough_ops, 4);
    }

    #[test]
    fn engaged_empty_burst_schedule_is_bit_neutral() {
        let mut plain = buffer(BurstAbsorb::All);
        let mut cfg = BurstBufferConfig::over(PfsConfig::tiny());
        cfg.faults = FaultSchedule::engaged_empty();
        let mut hooked = BurstBuffer::new(cfg);
        let fid = plain.create_file_with_size("ckpt", 0);
        assert_eq!(hooked.create_file_with_size("ckpt", 0), fid);
        let p = Pid(0);
        let ops = [
            IoOp::Open,
            IoOp::Write { size: 1 << 20 },
            IoOp::Write { size: 1 << 18 },
            IoOp::Seek { offset: 0 },
            IoOp::Read { size: 4096 },
            IoOp::Close,
        ];
        for op in &ops {
            let a = one(&mut plain, Time::ZERO, p, fid, op).unwrap();
            let b = one(&mut hooked, Time::ZERO, p, fid, op).unwrap();
            assert_eq!(a, b, "engaged-empty run must be bit-identical");
        }
        assert_eq!(
            plain.quiesce(Time::from_secs(1)),
            hooked.quiesce(Time::from_secs(1))
        );
        assert_eq!(plain.stats(), hooked.stats());
        assert!(hooked.resilience_stats().is_quiet());
        let t = Time::from_secs(2);
        assert_eq!(hooked.durable_instant(t), t, "nothing lost, all durable");
    }

    #[test]
    fn drain_stall_delays_retirement_but_loses_nothing() {
        let mut cfg = BurstBufferConfig::over(PfsConfig::tiny());
        cfg.faults.push(
            Time::ZERO,
            FaultKind::DrainStall {
                duration: Time::from_secs(2),
            },
        );
        let mut stalled = BurstBuffer::new(cfg);
        let mut plain = buffer(BurstAbsorb::All);
        let fid = plain.create_file_with_size("ckpt", 0);
        assert_eq!(stalled.create_file_with_size("ckpt", 0), fid);
        let p = Pid(0);
        for b in [&mut plain, &mut stalled] {
            one(b, Time::ZERO, p, fid, &IoOp::Open).unwrap();
            // Foreground append completes at log speed either way.
            let w = one(b, Time::ZERO, p, fid, &IoOp::Write { size: 300_000_000 }).unwrap();
            assert!(w.finish < Time::from_secs(1));
        }
        let soon = Time::from_secs(1);
        let q_plain = plain.quiesce(soon);
        let q_stalled = stalled.quiesce(soon);
        // Plain drain: ~1 s at 300 MB/s. Stalled drain starts only
        // once the 2 s window clears.
        assert!(q_stalled > q_plain, "stall must delay the drain");
        assert!(q_stalled >= Time::from_secs(3));
        let s = stalled.stats();
        assert_eq!(s.bytes_drained, 300_000_000);
        assert_eq!(s.bytes_lost, 0);
        assert!(s.conserves_bytes());
    }

    #[test]
    fn burst_crash_destroys_resident_bytes_and_breaks_durability() {
        let mut cfg = BurstBufferConfig::over(PfsConfig::tiny());
        cfg.faults.push(
            Time::from_millis(500),
            FaultKind::BurstNodeCrash {
                repair: Time::from_secs(10),
            },
        );
        let mut b = BurstBuffer::new(cfg);
        let fid = b.create_file_with_size("ckpt", 0);
        let p = Pid(0);
        one(&mut b, Time::ZERO, p, fid, &IoOp::Open).unwrap();
        // Appended before the crash, still draining when it hits:
        // ready ~0.15 s, drain finish ~1.15 s, crash at 0.5 s => lost.
        let w = one(
            &mut b,
            Time::ZERO,
            p,
            fid,
            &IoOp::Write { size: 300_000_000 },
        )
        .unwrap();
        assert!(w.finish < Time::from_millis(500));
        assert_eq!(
            b.durable_instant(Time::from_millis(400)),
            Time::MAX,
            "commit covering the lost bytes can never be restored"
        );

        // While the log is down, writes fall through to the drain
        // channel: durable on arrival, never logged.
        let wt = one(
            &mut b,
            Time::from_secs(1),
            p,
            fid,
            &IoOp::Write { size: 1 << 20 },
        )
        .unwrap();
        assert!(wt.finish > Time::from_secs(1));
        assert_eq!(b.resilience_stats().writethroughs, 1);

        // After repair (10.5 s) the log absorbs again.
        let w2 = one(
            &mut b,
            Time::from_secs(11),
            p,
            fid,
            &IoOp::Write { size: 1 << 20 },
        )
        .unwrap();
        assert!(w2.finish < Time::from_secs(12));
        assert_eq!(
            b.durable_instant(Time::from_secs(12)),
            Time::from_secs(12),
            "post-repair commits are durable again"
        );

        b.quiesce(Time::from_secs(60));
        let s = b.stats();
        assert_eq!(
            s.bytes_lost, 300_000_000,
            "resident bytes died in the crash"
        );
        assert_eq!(s.bytes_logged, 300_000_000 + (1 << 20));
        assert_eq!(s.bytes_drained, 1 << 20);
        assert_eq!(s.bytes_resident, 0);
        assert!(s.conserves_bytes());
        assert_eq!(s.passthrough_ops, 1, "the write-through bypassed the log");
    }

    #[test]
    fn burst_fault_runs_replay_bit_identically() {
        let run = || {
            let mut cfg = BurstBufferConfig::over(PfsConfig::tiny());
            cfg.faults.push(
                Time::from_millis(200),
                FaultKind::DrainStall {
                    duration: Time::from_millis(700),
                },
            );
            cfg.faults.push(
                Time::from_millis(900),
                FaultKind::BurstNodeCrash {
                    repair: Time::from_secs(2),
                },
            );
            let mut b = BurstBuffer::new(cfg);
            let fid = b.create_file_with_size("ckpt", 0);
            let p = Pid(0);
            let mut finishes = Vec::new();
            one(&mut b, Time::ZERO, p, fid, &IoOp::Open).unwrap();
            for i in 0..6u64 {
                let w = one(
                    &mut b,
                    Time::from_millis(i * 150),
                    p,
                    fid,
                    &IoOp::Write { size: 64 << 20 },
                )
                .unwrap();
                finishes.push(w.finish);
            }
            let quiet = b.quiesce(Time::from_secs(30));
            (finishes, quiet, b.stats(), b.resilience_stats())
        };
        assert_eq!(run(), run(), "same schedule, same bits");
    }

    #[test]
    fn drain_is_fifo_and_lazy() {
        let mut b = buffer(BurstAbsorb::All);
        let fid = b.create_file_with_size("f", 0);
        let p = Pid(0);
        one(&mut b, Time::ZERO, p, fid, &IoOp::Open).unwrap();
        let w1 = one(
            &mut b,
            Time::ZERO,
            p,
            fid,
            &IoOp::Write { size: 300_000_000 },
        )
        .unwrap();
        one(&mut b, w1.finish, p, fid, &IoOp::Write { size: 1000 }).unwrap();
        // First entry drains in ~1s; probing well past that retires it
        // but not necessarily instantly at the second append.
        one(
            &mut b,
            Time::from_secs(10),
            p,
            fid,
            &IoOp::Seek { offset: 0 },
        )
        .unwrap();
        let s = b.stats();
        assert_eq!(s.bytes_drained, 300_001_000);
        assert_eq!(s.bytes_resident, 0);
        assert!(s.conserves_bytes());
    }
}
