//! Client-side per-process, per-file buffering state.
//!
//! OSF/1 buffered file reads through a client cache: a small read
//! fetches a whole buffer block, and subsequent reads inside the block
//! are memory copies. PRISM's developers disabled this buffering for
//! the restart file in version C — the paper shows the consequence
//! (Table 5: read jumps to 83.9% of I/O time because every sub-40-byte
//! header read now pays a full disk access). [`ClientFileState`]
//! models exactly that switch, plus the prefetch/write-aggregation
//! policies of [`crate::policy`].

use crate::adaptive::PatternDetector;
use serde::{Deserialize, Serialize};
use sioscope_sim::Time;

/// Result of probing the read cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadProbe {
    /// The whole range is in the cached block: pure memory copy.
    Hit,
    /// The range is inside a block that was prefetched; the fetch
    /// completes at the stored time.
    PrefetchHit {
        /// When the in-flight prefetched block arrives.
        ready_at: Time,
    },
    /// Not cached: the caller must fetch from the I/O nodes.
    Miss,
}

/// A pending coalesced write range.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WriteBuf {
    /// File offset where the buffered range begins.
    pub start: u64,
    /// Buffered length in bytes.
    pub len: u64,
}

impl WriteBuf {
    /// End offset (exclusive).
    pub fn end(&self) -> u64 {
        self.start + self.len
    }
}

/// Per-(process, file) client state.
#[derive(Debug, Clone)]
pub struct ClientFileState {
    /// Is read buffering enabled? Defaults to `true` (OSF/1 default);
    /// PRISM version C turns it off for the restart file.
    pub buffering: bool,
    /// The currently cached read block, as `(offset, len)`.
    cached: Option<(u64, u64)>,
    /// An in-flight prefetched block: `(offset, len, ready_at)`.
    prefetched: Option<(u64, u64, Time)>,
    /// Pending coalesced writes (aggregation policy).
    pub write_buf: Option<WriteBuf>,
    /// When the last asynchronous write-behind drain completes
    /// (flush/close must wait for it).
    pub drain_done_at: Time,
    /// Offset one past the end of the last read, for sequential-
    /// pattern detection.
    last_read_end: Option<u64>,
    /// On-line pattern detector over the read stream (adaptive
    /// policy).
    pub read_pattern: PatternDetector,
    /// On-line pattern detector over the write stream.
    pub write_pattern: PatternDetector,
}

impl Default for ClientFileState {
    fn default() -> Self {
        ClientFileState {
            buffering: true,
            cached: None,
            prefetched: None,
            write_buf: None,
            drain_done_at: Time::ZERO,
            last_read_end: None,
            read_pattern: PatternDetector::new(),
            write_pattern: PatternDetector::new(),
        }
    }
}

impl ClientFileState {
    /// Fresh state (buffering on).
    pub fn new() -> Self {
        Self::default()
    }

    /// Probe the cache for a read of `[offset, offset+len)`.
    pub fn probe_read(&self, offset: u64, len: u64) -> ReadProbe {
        if !self.buffering || len == 0 {
            return ReadProbe::Miss;
        }
        if let Some((s, l)) = self.cached {
            if offset >= s && offset + len <= s + l {
                return ReadProbe::Hit;
            }
        }
        if let Some((s, l, ready)) = self.prefetched {
            if offset >= s && offset + len <= s + l {
                return ReadProbe::PrefetchHit { ready_at: ready };
            }
        }
        ReadProbe::Miss
    }

    /// Install a freshly fetched block as the cached block.
    pub fn install_block(&mut self, offset: u64, len: u64) {
        self.cached = Some((offset, len));
    }

    /// Record an in-flight prefetch of `[offset, offset+len)` that
    /// completes at `ready_at`.
    pub fn install_prefetch(&mut self, offset: u64, len: u64, ready_at: Time) {
        self.prefetched = Some((offset, len, ready_at));
    }

    /// Promote the prefetched block to the cached block (called when a
    /// prefetch hit is consumed). Returns the block range.
    pub fn promote_prefetch(&mut self) -> Option<(u64, u64)> {
        let (s, l, _) = self.prefetched.take()?;
        self.cached = Some((s, l));
        Some((s, l))
    }

    /// Is a read at `offset` sequential with respect to the previous
    /// read?
    pub fn read_is_sequential(&self, offset: u64) -> bool {
        self.last_read_end == Some(offset)
    }

    /// Record the end of a completed read.
    pub fn note_read(&mut self, offset: u64, len: u64) {
        self.last_read_end = Some(offset + len);
    }

    /// Try to append a write of `[offset, offset+len)` to the
    /// aggregation buffer. Returns `true` on success; `false` when the
    /// write is not contiguous with the buffered range (caller must
    /// drain first).
    pub fn append_write(&mut self, offset: u64, len: u64) -> bool {
        match &mut self.write_buf {
            None => {
                self.write_buf = Some(WriteBuf { start: offset, len });
                true
            }
            Some(buf) if buf.end() == offset => {
                buf.len += len;
                true
            }
            Some(_) => false,
        }
    }

    /// Take the pending write buffer for draining.
    pub fn take_write_buf(&mut self) -> Option<WriteBuf> {
        self.write_buf.take()
    }

    /// Drop all cached read state (close, or buffering turned off).
    pub fn invalidate_reads(&mut self) {
        self.cached = None;
        self.prefetched = None;
        self.last_read_end = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_cache_misses() {
        let c = ClientFileState::new();
        assert_eq!(c.probe_read(0, 10), ReadProbe::Miss);
    }

    #[test]
    fn installed_block_hits_within_range() {
        let mut c = ClientFileState::new();
        c.install_block(100, 50);
        assert_eq!(c.probe_read(100, 50), ReadProbe::Hit);
        assert_eq!(c.probe_read(120, 10), ReadProbe::Hit);
        assert_eq!(c.probe_read(90, 20), ReadProbe::Miss);
        assert_eq!(c.probe_read(140, 20), ReadProbe::Miss);
    }

    #[test]
    fn disabled_buffering_never_hits() {
        let mut c = ClientFileState::new();
        c.install_block(0, 1000);
        c.buffering = false;
        assert_eq!(c.probe_read(0, 10), ReadProbe::Miss);
    }

    #[test]
    fn prefetch_hit_reports_ready_time() {
        let mut c = ClientFileState::new();
        let t = Time::from_millis(30);
        c.install_prefetch(200, 100, t);
        assert_eq!(
            c.probe_read(220, 10),
            ReadProbe::PrefetchHit { ready_at: t }
        );
        let promoted = c.promote_prefetch().unwrap();
        assert_eq!(promoted, (200, 100));
        assert_eq!(c.probe_read(220, 10), ReadProbe::Hit);
        assert!(c.promote_prefetch().is_none());
    }

    #[test]
    fn sequential_detection() {
        let mut c = ClientFileState::new();
        assert!(!c.read_is_sequential(0));
        c.note_read(0, 100);
        assert!(c.read_is_sequential(100));
        assert!(!c.read_is_sequential(50));
    }

    #[test]
    fn write_buffer_coalesces_contiguous() {
        let mut c = ClientFileState::new();
        assert!(c.append_write(0, 10));
        assert!(c.append_write(10, 20));
        assert_eq!(c.write_buf, Some(WriteBuf { start: 0, len: 30 }));
        assert!(!c.append_write(100, 5), "gap forces drain");
        let buf = c.take_write_buf().unwrap();
        assert_eq!(buf.end(), 30);
        assert!(c.write_buf.is_none());
    }

    #[test]
    fn invalidate_clears_read_state() {
        let mut c = ClientFileState::new();
        c.install_block(0, 10);
        c.note_read(0, 10);
        c.invalidate_reads();
        assert_eq!(c.probe_read(0, 5), ReadProbe::Miss);
        assert!(!c.read_is_sequential(10));
    }

    #[test]
    fn zero_length_read_misses() {
        let mut c = ClientFileState::new();
        c.install_block(0, 10);
        assert_eq!(c.probe_read(0, 0), ReadProbe::Miss);
    }
}
