//! Resilience policy: how clients survive injected faults.
//!
//! The measured PFS had no client-visible fault handling — a dead I/O
//! node simply hung the caller. This module supplies the policy layer
//! the §7 recommendations imply a production file system needs:
//! per-request timeouts, bounded retry with exponential backoff,
//! re-routing away from crashed I/O nodes (data reconstructed from the
//! surviving stripes + parity, at a service-time premium), and a
//! reduced-stripe-width fast path for reads that skips the full retry
//! ladder. Every decision is a pure function of the fault state and
//! the request instant, so runs stay deterministic.

use serde::{Deserialize, Serialize};
use sioscope_sim::Time;

/// Knobs for the client-side fault-handling policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResilienceConfig {
    /// How long a request waits on an unresponsive I/O node before the
    /// client declares a timeout and starts the retry ladder.
    pub request_timeout: Time,
    /// Retries after the initial timeout before giving up on the node.
    pub max_retries: u32,
    /// Backoff before the first retry.
    pub backoff_base: Time,
    /// Multiplier applied to the backoff after each retry.
    pub backoff_multiplier: f64,
    /// After exhausting retries, re-route the request to a healthy
    /// I/O node instead of stalling until restart.
    pub reroute: bool,
    /// Reads skip the retry ladder: after the first timeout and one
    /// probing retry they fall back to reconstructing the stripe from
    /// the surviving nodes (reads can be served from parity; writes
    /// cannot).
    pub reduced_stripe_reads: bool,
    /// Service-time factor on re-routed requests — the serving node
    /// must reconstruct the missing stripe from parity.
    pub reroute_penalty: f64,
}

impl ResilienceConfig {
    /// Defaults sized against Paragon-era service times: a 50 ms
    /// timeout clears healthy queueing, four retries with 20 ms
    /// doubling backoff span ~0.3 s before re-routing.
    pub fn standard() -> Self {
        ResilienceConfig {
            request_timeout: Time::from_millis(50),
            max_retries: 4,
            backoff_base: Time::from_millis(20),
            backoff_multiplier: 2.0,
            reroute: true,
            reduced_stripe_reads: true,
            reroute_penalty: 1.5,
        }
    }
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        Self::standard()
    }
}

/// Counters of every resilience action a run took. All-zero on a
/// fault-free run by construction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResilienceStats {
    /// Requests that hit the per-request timeout on a crashed node.
    pub timeouts: u64,
    /// Retry attempts issued (including the probing retry before a
    /// reduced-stripe read).
    pub retries: u64,
    /// Requests re-routed to a healthy I/O node.
    pub reroutes: u64,
    /// Reads served via the reduced-stripe-width reconstruction path.
    pub degraded_reads: u64,
    /// Requests that found no healthy node and stalled until restart.
    pub aborts: u64,
    /// Writes that fell through to the backing store while the
    /// burst-buffer log was down (crashed, not yet repaired).
    #[serde(default)]
    pub writethroughs: u64,
}

impl ResilienceStats {
    /// `true` iff no resilience machinery fired.
    pub fn is_quiet(&self) -> bool {
        *self == Self::default()
    }

    /// Sum of all counters — a scalar "how eventful was this run".
    pub fn total_actions(&self) -> u64 {
        self.timeouts
            + self.retries
            + self.reroutes
            + self.degraded_reads
            + self.aborts
            + self.writethroughs
    }

    /// Accumulate another run's counters into this one.
    pub fn merge(&mut self, other: &ResilienceStats) {
        self.timeouts += other.timeouts;
        self.retries += other.retries;
        self.reroutes += other.reroutes;
        self.degraded_reads += other.degraded_reads;
        self.aborts += other.aborts;
        self.writethroughs += other.writethroughs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_is_standard() {
        let d = ResilienceConfig::default();
        assert_eq!(d, ResilienceConfig::standard());
        assert!(d.reroute);
        assert!(d.reduced_stripe_reads);
        assert!(d.reroute_penalty > 1.0);
        assert!(d.backoff_multiplier > 1.0);
    }

    #[test]
    fn stats_start_quiet_and_merge() {
        let mut a = ResilienceStats::default();
        assert!(a.is_quiet());
        assert_eq!(a.total_actions(), 0);
        let b = ResilienceStats {
            timeouts: 1,
            retries: 4,
            reroutes: 1,
            degraded_reads: 2,
            aborts: 0,
            writethroughs: 3,
        };
        a.merge(&b);
        a.merge(&b);
        assert!(!a.is_quiet());
        assert_eq!(a.retries, 8);
        assert_eq!(a.writethroughs, 6);
        assert_eq!(a.total_actions(), 22);
    }
}
