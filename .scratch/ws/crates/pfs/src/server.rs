//! The PFS server: composes file state, mode semantics, the machine's
//! device models, and client-side buffering into end-to-end operation
//! costs.
//!
//! The server is *passive*: the simulation event loop (in the
//! `sioscope` core crate) calls [`Pfs::submit`] whenever a process
//! issues an I/O call, and the server returns either the completion(s)
//! or `Blocked` (the process joined a still-forming collective group
//! and will be completed by the arrival that closes the group).
//!
//! All queueing — the metadata server, each file's atomicity token,
//! and each I/O node's disk — is modelled with calendar resources, so
//! client-observed durations naturally include contention delay. That
//! is exactly what the Pablo instrumentation measured, and it is what
//! makes e.g. 128 concurrent `open`s expensive (Table 2, version A)
//! without any special-case code.

use crate::cache::{ClientFileState, ReadProbe};
use crate::costs::PfsCosts;
use crate::error::PfsError;
use crate::file::FileState;
use crate::ioncache::IonCache;
use crate::mode::{IoMode, OsRelease};
use crate::op::{Completion, IoOp, OpKind, Outcome};
use crate::policy::PolicyConfig;
use crate::resilience::{ResilienceConfig, ResilienceStats};
use crate::stripe::StripeLayout;
use sioscope_faults::{FaultSchedule, FaultState};
use sioscope_machine::{DiskModel, MachineConfig, MeshModel};
use sioscope_sim::{
    Calendar, CalendarPool, DetHashMap, FileId, NodeId, Pid, RendezvousOutcome, RendezvousTable,
    Time,
};

/// Full PFS configuration.
#[derive(Debug, Clone)]
pub struct PfsConfig {
    /// The machine the file system runs on.
    pub machine: MachineConfig,
    /// Software cost constants.
    pub costs: PfsCosts,
    /// Operating-system release (governs M_ASYNC availability).
    pub os: OsRelease,
    /// Stripe unit for newly created files (PFS default: 64 KB).
    pub stripe_unit: u64,
    /// Client-side policy switches (all off = the measured PFS).
    pub policy: PolicyConfig,
    /// Injected fault scenario. An empty, disengaged schedule (the
    /// default) keeps every computation bit-identical to a build
    /// without the fault machinery.
    pub faults: FaultSchedule,
    /// How clients react to faults (timeouts, retries, re-routing).
    pub resilience: ResilienceConfig,
}

impl PfsConfig {
    /// The Caltech configuration under a given OS release.
    pub fn caltech(compute_nodes: u32, os: OsRelease) -> Self {
        PfsConfig {
            machine: MachineConfig::caltech_paragon(compute_nodes),
            costs: PfsCosts::for_os(os),
            os,
            stripe_unit: 64 * 1024,
            policy: PolicyConfig::measured_pfs(),
            faults: FaultSchedule::empty(),
            resilience: ResilienceConfig::standard(),
        }
    }

    /// Tiny configuration for unit tests.
    pub fn tiny() -> Self {
        PfsConfig {
            machine: MachineConfig::tiny(),
            costs: PfsCosts::paragon_osf(),
            os: OsRelease::Osf13,
            stripe_unit: 64 * 1024,
            policy: PolicyConfig::measured_pfs(),
            faults: FaultSchedule::empty(),
            resilience: ResilienceConfig::standard(),
        }
    }
}

/// The parallel file system.
///
/// ```
/// use sioscope_pfs::{IoOp, Outcome, Pfs, PfsConfig};
/// use sioscope_sim::{Pid, Time};
///
/// let mut pfs = Pfs::new(PfsConfig::tiny());
/// let file = pfs.create_file_with_size("input", 1 << 20);
/// let opened = match pfs.submit(Time::ZERO, Pid(0), file, &IoOp::Open).unwrap() {
///     Outcome::Done(cs) => cs[0].finish,
///     Outcome::Blocked => unreachable!("open is not collective"),
/// };
/// let read = pfs.submit(opened, Pid(0), file, &IoOp::Read { size: 4096 }).unwrap();
/// assert!(matches!(read, Outcome::Done(_)));
/// ```
pub struct Pfs {
    cfg: PfsConfig,
    mesh: MeshModel,
    disk: DiskModel,
    files: Vec<FileState>,
    by_name: DetHashMap<String, FileId>,
    /// The metadata server: opens/gopens/setiomode/close serialize here.
    metadata: Calendar,
    /// One disk calendar per I/O node.
    ions: CalendarPool,
    /// Last `(file, end_offset)` transferred per I/O node, for
    /// sequential-positioning detection.
    ion_last: Vec<Option<(FileId, u64)>>,
    /// Per-I/O-node block caches.
    ion_caches: Vec<IonCache>,
    /// Per-I/O-node mesh injection links: data returned to (or sent
    /// by) many clients serializes on the I/O node's single link.
    ion_links: CalendarPool,
    rdv: RendezvousTable,
    /// Per-rendezvous-round context: each member's request size.
    pending_sizes: DetHashMap<u64, Vec<(Pid, u64)>>,
    clients: DetHashMap<(Pid, FileId), ClientFileState>,
    /// Reused per-I/O-node `(total service, request count)` scratch for
    /// the batched transfer path — cleared on entry, never reallocated.
    transfer_scratch: Vec<(Time, u64)>,
    /// Compiled fault state; `None` iff the schedule does not engage,
    /// which is the guarantee that fault-free runs skip every hook.
    faults: Option<FaultState>,
    /// Resilience actions taken so far.
    res_stats: ResilienceStats,
}

impl Pfs {
    /// Build a file system over `cfg`.
    pub fn new(cfg: PfsConfig) -> Self {
        let mesh = MeshModel::new(cfg.machine.mesh);
        let disk = DiskModel::new(cfg.machine.disk);
        let n_ions = cfg.machine.io_nodes as usize;
        let faults = cfg
            .faults
            .engages()
            .then(|| FaultState::new(&cfg.faults, cfg.machine.io_nodes));
        Pfs {
            mesh,
            disk,
            files: Vec::new(),
            by_name: DetHashMap::default(),
            metadata: Calendar::new(),
            ions: CalendarPool::new(n_ions),
            ion_last: vec![None; n_ions],
            ion_caches: vec![IonCache::new(cfg.costs.ion_cache_blocks); n_ions],
            ion_links: CalendarPool::new(n_ions),
            rdv: RendezvousTable::new(),
            pending_sizes: DetHashMap::default(),
            clients: DetHashMap::default(),
            transfer_scratch: vec![(Time::ZERO, 0); n_ions],
            faults,
            res_stats: ResilienceStats::default(),
            cfg,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &PfsConfig {
        &self.cfg
    }

    /// Register (or clear) the mesh placement of one compute node —
    /// the batch scheduler calls this as it allocates and frees
    /// sub-mesh partitions, so client↔I/O-node message times reflect
    /// where each job actually sits on the shared mesh. Dedicated runs
    /// never call it and keep the row-major default.
    pub fn place_compute_node(&mut self, node: NodeId, pos: Option<(u32, u32)>) {
        self.cfg.machine.place_node(node, pos);
    }

    /// Create an empty file striped over all I/O nodes.
    pub fn create_file(&mut self, name: &str) -> FileId {
        self.create_file_with_size(name, 0)
    }

    /// Create a file pre-populated with `size` bytes (input files that
    /// exist before the application starts).
    pub fn create_file_with_size(&mut self, name: &str, size: u64) -> FileId {
        assert!(
            !self.by_name.contains_key(name),
            "file {name:?} already exists"
        );
        let id = FileId(self.files.len() as u32);
        let layout = StripeLayout::new(self.cfg.stripe_unit, self.cfg.machine.io_nodes);
        let mut f = FileState::new(id, name.to_string(), layout);
        f.size = size;
        self.files.push(f);
        self.by_name.insert(name.to_string(), id);
        id
    }

    /// Look up a file by name.
    pub fn file_by_name(&self, name: &str) -> Option<FileId> {
        self.by_name.get(name).copied()
    }

    /// Inspect a file's state.
    pub fn file(&self, id: FileId) -> Option<&FileState> {
        self.files.get(id.index())
    }

    /// Number of rendezvous groups still forming (must be zero when an
    /// experiment's event queue drains; otherwise the workload
    /// deadlocked).
    pub fn forming_collectives(&self) -> usize {
        self.rdv.forming()
    }

    /// Total busy time across the I/O-node disks.
    pub fn ion_busy_time(&self) -> Time {
        self.ions.total_busy()
    }

    /// Per-I/O-node utilization over `[0, horizon]`.
    pub fn ion_utilizations(&self, horizon: Time) -> Vec<f64> {
        (0..self.cfg.machine.io_nodes as usize)
            .map(|i| {
                self.ions
                    .get(i)
                    .map(|c| c.utilization(horizon))
                    .unwrap_or(0.0)
            })
            .collect()
    }

    /// Aggregate I/O-node block-cache `(hits, misses)`.
    pub fn ion_cache_stats(&self) -> (u64, u64) {
        self.ion_caches.iter().fold((0, 0), |(h, m), c| {
            let (ch, cm) = c.stats();
            (h + ch, m + cm)
        })
    }

    /// Busy time of the metadata server (open/gopen/setiomode storms).
    pub fn metadata_busy_time(&self) -> Time {
        self.metadata.busy_time()
    }

    /// Resilience actions taken so far (all zero on fault-free runs).
    pub fn resilience_stats(&self) -> ResilienceStats {
        self.res_stats
    }

    /// The compiled fault state, when the schedule engages.
    pub fn fault_state(&self) -> Option<&FaultState> {
        self.faults.as_ref()
    }

    /// Total busy time across the I/O-node mesh injection links.
    pub fn ion_link_busy_time(&self) -> Time {
        self.ion_links.total_busy()
    }

    /// Submit one operation. `now` is the current simulation time;
    /// the returned completions' `finish` fields are absolute times
    /// (>= `now`).
    ///
    /// Convenience wrapper over [`Pfs::submit_into`] that allocates a
    /// fresh completion vector per call; the simulation event loop
    /// calls `submit_into` with one reused buffer instead.
    pub fn submit(
        &mut self,
        now: Time,
        pid: Pid,
        fid: FileId,
        op: &IoOp,
    ) -> Result<Outcome, PfsError> {
        let mut out = Vec::new();
        Ok(if self.submit_into(now, pid, fid, op, &mut out)? {
            Outcome::Done(out)
        } else {
            Outcome::Blocked
        })
    }

    /// Allocation-free submission: completions are *appended* to
    /// `out`. Returns `Ok(true)` when the operation completed (its
    /// completions were pushed), `Ok(false)` when the caller joined a
    /// still-forming collective group and will be completed by the
    /// arrival that closes the group. On `Ok(false)` and on errors
    /// nothing is pushed.
    pub fn submit_into(
        &mut self,
        now: Time,
        pid: Pid,
        fid: FileId,
        op: &IoOp,
        out: &mut Vec<Completion>,
    ) -> Result<bool, PfsError> {
        if fid.index() >= self.files.len() {
            return Err(PfsError::NoSuchFile(fid));
        }
        match op {
            IoOp::Open => self.do_open(now, pid, fid, out),
            IoOp::Gopen {
                group,
                mode,
                record_size,
            } => self.do_gopen(now, pid, fid, *group, *mode, *record_size, out),
            IoOp::SetIoMode {
                group,
                mode,
                record_size,
            } => self.do_setiomode(now, pid, fid, *group, *mode, *record_size, out),
            IoOp::Read { size } => self.do_data(now, pid, fid, *size, false, out),
            IoOp::Write { size } => self.do_data(now, pid, fid, *size, true, out),
            IoOp::Seek { offset } => self.do_seek(now, pid, fid, *offset, out),
            IoOp::SetBuffering { enabled } => self.do_set_buffering(now, pid, fid, *enabled, out),
            IoOp::Flush => self.do_flush(now, pid, fid, out),
            IoOp::Close => self.do_close(now, pid, fid, out),
        }
    }

    // ----- control operations -------------------------------------------

    fn do_open(
        &mut self,
        now: Time,
        pid: Pid,
        fid: FileId,
        out: &mut Vec<Completion>,
    ) -> Result<bool, PfsError> {
        let service = self.cfg.costs.open_service;
        let overhead = self.cfg.costs.client_overhead;
        let file = &mut self.files[fid.index()];
        if file.is_open_by(pid) {
            return Err(PfsError::AlreadyOpen { file: fid, pid });
        }
        // Every open pays the client-side path concurrently, plus a
        // serialized slice of the metadata server; concurrent opens by
        // many nodes are the version-A bottleneck in both
        // applications.
        let res = self.metadata.reserve(now, service);
        file.add_opener(pid);
        let mode = file.mode;
        self.clients.insert((pid, fid), ClientFileState::new());
        out.push(Completion {
            pid,
            finish: res.finish + self.cfg.costs.open_local + overhead,
            bytes: 0,
            offset: 0,
            kind: OpKind::Open,
            mode,
        });
        Ok(true)
    }

    fn do_gopen(
        &mut self,
        now: Time,
        pid: Pid,
        fid: FileId,
        group: u32,
        mode: IoMode,
        record_size: Option<u64>,
        out: &mut Vec<Completion>,
    ) -> Result<bool, PfsError> {
        if !mode.available_in(self.cfg.os) {
            return Err(PfsError::ModeUnavailable { mode: mode.name() });
        }
        if mode == IoMode::MRecord && record_size.is_none() {
            return Err(PfsError::RecordSizeMismatch {
                file: fid,
                expected: 0,
                got: 0,
            });
        }
        let key = {
            let file = &mut self.files[fid.index()];
            if file.is_open_by(pid) {
                return Err(PfsError::AlreadyOpen { file: fid, pid });
            }
            let seq = file.next_collective_seq(pid);
            file.rendezvous_key(seq)
        };
        match self.rdv.arrive(key, pid, now, group as usize) {
            RendezvousOutcome::Waiting => Ok(false),
            RendezvousOutcome::Complete { arrivals, release } => {
                // One metadata operation for the whole group.
                let service =
                    self.cfg.costs.gopen_base + self.cfg.costs.gopen_per_member * u64::from(group);
                let res = self.metadata.reserve(release, service);
                let finish = res.finish + self.cfg.costs.client_overhead;
                let file = &mut self.files[fid.index()];
                file.mode = mode;
                file.record_size = record_size;
                file.shared_ptr = 0;
                out.reserve(arrivals.len());
                for (p, _) in arrivals {
                    file.add_opener(p);
                    self.clients.insert((p, fid), ClientFileState::new());
                    out.push(Completion {
                        pid: p,
                        finish,
                        bytes: 0,
                        offset: 0,
                        kind: OpKind::Gopen,
                        mode,
                    });
                }
                Ok(true)
            }
        }
    }

    fn do_setiomode(
        &mut self,
        now: Time,
        pid: Pid,
        fid: FileId,
        group: u32,
        mode: IoMode,
        record_size: Option<u64>,
        out: &mut Vec<Completion>,
    ) -> Result<bool, PfsError> {
        if !mode.available_in(self.cfg.os) {
            return Err(PfsError::ModeUnavailable { mode: mode.name() });
        }
        let key = {
            let file = &mut self.files[fid.index()];
            if !file.is_open_by(pid) {
                return Err(PfsError::NotOpen { file: fid, pid });
            }
            let seq = file.next_collective_seq(pid);
            file.rendezvous_key(seq)
        };
        match self.rdv.arrive(key, pid, now, group as usize) {
            RendezvousOutcome::Waiting => Ok(false),
            RendezvousOutcome::Complete { arrivals, release } => {
                // Group-vs-openers consistency can only be judged once
                // the whole group has arrived: members may legitimately
                // join the collective before every participant has
                // opened the file.
                let openers = self.files[fid.index()].opener_count();
                if openers != group {
                    return Err(PfsError::GroupMismatch {
                        file: fid,
                        declared: group,
                        openers,
                    });
                }
                let service = self.cfg.costs.iomode_base
                    + self.cfg.costs.iomode_per_member * u64::from(group);
                let res = self.metadata.reserve(release, service);
                let finish = res.finish + self.cfg.costs.client_overhead;
                let file = &mut self.files[fid.index()];
                file.mode = mode;
                if record_size.is_some() {
                    file.record_size = record_size;
                }
                file.shared_ptr = 0;
                out.extend(arrivals.into_iter().map(|(p, _)| Completion {
                    pid: p,
                    finish,
                    bytes: 0,
                    offset: 0,
                    kind: OpKind::Iomode,
                    mode,
                }));
                Ok(true)
            }
        }
    }

    fn do_seek(
        &mut self,
        now: Time,
        pid: Pid,
        fid: FileId,
        offset: u64,
        out: &mut Vec<Completion>,
    ) -> Result<bool, PfsError> {
        let costs = self.cfg.costs;
        let file = &mut self.files[fid.index()];
        if !file.is_open_by(pid) {
            return Err(PfsError::NotOpen { file: fid, pid });
        }
        if !file.mode.private_pointer() {
            return Err(PfsError::SeekOnSharedPointer { file: fid, pid });
        }
        // With client-side write aggregation (the §7 policy, static or
        // adaptive), a seek is a buffered pointer update: the server
        // sees only drained ranges, so no round trip is needed. On the
        // measured PFS, a seek on a UNIX-shared file is a file-server
        // round trip through the atomicity token — the ESCAT
        // version-B bottleneck (Table 2: seek 63.2% of I/O time).
        let aggregating = self.cfg.policy.write_aggregation || self.cfg.policy.adaptive;
        let finish = if file.mode == IoMode::MUnix && file.opener_count() > 1 && !aggregating {
            let res = file.token.reserve(now, costs.seek_server_service);
            res.finish + costs.client_overhead
        } else {
            now + costs.seek_local
        };
        file.set_private_ptr(pid, offset);
        let mode = file.mode;
        out.push(Completion {
            pid,
            finish,
            bytes: 0,
            offset,
            kind: OpKind::Seek,
            mode,
        });
        Ok(true)
    }

    fn do_set_buffering(
        &mut self,
        now: Time,
        pid: Pid,
        fid: FileId,
        enabled: bool,
        out: &mut Vec<Completion>,
    ) -> Result<bool, PfsError> {
        let file = &self.files[fid.index()];
        if !file.is_open_by(pid) {
            return Err(PfsError::NotOpen { file: fid, pid });
        }
        let client = self.clients.entry((pid, fid)).or_default();
        client.buffering = enabled;
        client.invalidate_reads();
        let mode = self.files[fid.index()].mode;
        out.push(Completion {
            pid,
            finish: now + self.cfg.costs.seek_local,
            bytes: 0,
            offset: 0,
            kind: OpKind::Iomode,
            mode,
        });
        Ok(true)
    }

    fn do_flush(
        &mut self,
        now: Time,
        pid: Pid,
        fid: FileId,
        out: &mut Vec<Completion>,
    ) -> Result<bool, PfsError> {
        if !self.files[fid.index()].is_open_by(pid) {
            return Err(PfsError::NotOpen { file: fid, pid });
        }
        let drained = self.drain_write_buf(now, pid, fid);
        let pending = self
            .clients
            .get(&(pid, fid))
            .map(|c| c.drain_done_at)
            .unwrap_or(Time::ZERO);
        let finish = now.max(drained).max(pending) + self.cfg.costs.flush_service;
        let mode = self.files[fid.index()].mode;
        out.push(Completion {
            pid,
            finish,
            bytes: 0,
            offset: 0,
            kind: OpKind::Flush,
            mode,
        });
        Ok(true)
    }

    fn do_close(
        &mut self,
        now: Time,
        pid: Pid,
        fid: FileId,
        out: &mut Vec<Completion>,
    ) -> Result<bool, PfsError> {
        if !self.files[fid.index()].is_open_by(pid) {
            return Err(PfsError::NotOpen { file: fid, pid });
        }
        let drained = self.drain_write_buf(now, pid, fid);
        let pending = self
            .clients
            .remove(&(pid, fid))
            .map(|c| c.drain_done_at)
            .unwrap_or(Time::ZERO);
        // Closes update metadata asynchronously; the client pays only
        // a fixed service cost (unlike opens, they did not measure as
        // serialized storms — Tables 2/5 show close at a few percent).
        let finish = now.max(drained).max(pending)
            + self.cfg.costs.close_service
            + self.cfg.costs.client_overhead;
        let file = &mut self.files[fid.index()];
        // Record the mode the file was closed under, before any reset.
        let mode = file.mode;
        file.remove_opener(pid);
        if file.opener_count() == 0 {
            // Fresh opens start over: default mode, pointers rewound.
            file.mode = IoMode::MUnix;
            file.record_size = None;
            file.shared_ptr = 0;
        }
        out.push(Completion {
            pid,
            finish,
            bytes: 0,
            offset: 0,
            kind: OpKind::Close,
            mode,
        });
        Ok(true)
    }

    // ----- data operations ----------------------------------------------

    fn do_data(
        &mut self,
        now: Time,
        pid: Pid,
        fid: FileId,
        size: u64,
        write: bool,
        out: &mut Vec<Completion>,
    ) -> Result<bool, PfsError> {
        let mode = {
            let file = &self.files[fid.index()];
            if !file.is_open_by(pid) {
                return Err(PfsError::NotOpen { file: fid, pid });
            }
            file.mode
        };
        match mode {
            IoMode::MUnix | IoMode::MAsync => {
                if write {
                    self.private_write(now, pid, fid, size, out)
                } else {
                    self.private_read(now, pid, fid, size, out)
                }
            }
            IoMode::MLog => self.log_data(now, pid, fid, size, write, out),
            IoMode::MRecord | IoMode::MGlobal | IoMode::MSync => {
                self.collective_data(now, pid, fid, size, write, mode, out)
            }
        }
    }

    /// May reads of this file pass through the client cache? Reading
    /// is coherence-safe for both private-pointer modes: block fetches
    /// still serialize through the M_UNIX token, but repeated small
    /// reads within a fetched block are local. The structured
    /// collective modes move whole records and never cache.
    fn read_cache_allowed(&self, fid: FileId) -> bool {
        matches!(self.files[fid.index()].mode, IoMode::MUnix | IoMode::MAsync)
    }

    /// May writes coalesce in the client buffer by default? Only for a
    /// single-opener M_UNIX file — standard UNIX write-back buffering.
    /// Shared M_UNIX writes must reach the servers synchronously to
    /// preserve atomicity, and M_ASYNC applications "write the data
    /// directly" (§4.3).
    fn write_buffer_allowed(&self, fid: FileId) -> bool {
        let file = &self.files[fid.index()];
        file.mode == IoMode::MUnix && file.opener_count() <= 1
    }

    /// Reads in the private-pointer modes (M_UNIX, M_ASYNC), through
    /// the client buffer cache when enabled.
    fn private_read(
        &mut self,
        now: Time,
        pid: Pid,
        fid: FileId,
        size: u64,
        out: &mut Vec<Completion>,
    ) -> Result<bool, PfsError> {
        let costs = self.cfg.costs;
        let policy = self.cfg.policy;
        let t0 = now + costs.client_overhead;
        let offset = self.files[fid.index()].private_ptr(pid);
        let cache_allowed = self.read_cache_allowed(fid);
        let client = self.clients.entry((pid, fid)).or_default();
        let buffering_on = client.buffering && cache_allowed;
        let buffered = buffering_on && size < costs.buffer_block && size > 0;
        // Adaptive policy: enable read-ahead once this stream is
        // classified sequential.
        client.read_pattern.observe(offset, size);
        let read_ahead = policy.read_ahead
            || (policy.adaptive
                && client.read_pattern.pattern(3) == crate::adaptive::AccessPattern::Sequential);

        let finish = if size == 0 {
            t0
        } else if buffered {
            match client.probe_read(offset, size) {
                ReadProbe::Hit => t0 + costs.cache_hit,
                ReadProbe::PrefetchHit { ready_at } => {
                    let promoted = client.promote_prefetch();
                    let f = t0.max(ready_at) + costs.cache_hit;
                    if read_ahead {
                        // Prefetch the block AFTER the one just
                        // promoted, not the block the hit landed in.
                        let next = promoted.map(|(s, l)| s + l).unwrap_or(offset + size);
                        self.issue_prefetch(f, pid, fid, next);
                    }
                    f
                }
                ReadProbe::Miss => {
                    let sequential = client.read_is_sequential(offset);
                    let block_start = offset - offset % costs.buffer_block;
                    let file_end = self.files[fid.index()].size.max(offset + size);
                    let block_len = costs.buffer_block.min(file_end - block_start);
                    let end = self.fetch(t0, pid, fid, block_start, block_len, false)?;
                    let client = self
                        .clients
                        .get_mut(&(pid, fid))
                        .expect("client state present");
                    client.install_block(block_start, block_len);
                    if read_ahead && sequential {
                        self.issue_prefetch(end, pid, fid, block_start + block_len);
                    }
                    end
                }
            }
        } else {
            // Unbuffered (or large) read. A *large* read through an
            // enabled client buffer pays an extra memory copy — the
            // penalty the PRISM developers disabled buffering to avoid.
            let end = self.fetch(t0, pid, fid, offset, size, false)?;
            if buffering_on && size >= costs.buffer_block {
                end + Time::from_secs_f64(size as f64 / costs.buffered_copy_bw)
            } else {
                end
            }
        };

        let file = &mut self.files[fid.index()];
        file.advance_private(pid, size);
        if let Some(client) = self.clients.get_mut(&(pid, fid)) {
            client.note_read(offset, size);
        }
        let mode = self.files[fid.index()].mode;
        out.push(Completion {
            pid,
            finish,
            bytes: size,
            offset,
            kind: OpKind::Read,
            mode,
        });
        Ok(true)
    }

    /// Start an asynchronous prefetch of the buffer block beginning at
    /// `from` (aligned down), recording its completion time in the
    /// client state.
    fn issue_prefetch(&mut self, start: Time, pid: Pid, fid: FileId, from: u64) {
        let block = self.cfg.costs.buffer_block;
        let block_start = from - from % block;
        let file_size = self.files[fid.index()].size;
        if block_start >= file_size {
            return;
        }
        // Never refetch a block the client already holds or has in
        // flight.
        if let Some(client) = self.clients.get(&(pid, fid)) {
            use crate::cache::ReadProbe;
            if !matches!(client.probe_read(block_start, 1), ReadProbe::Miss) {
                return;
            }
        }
        let block_len = block.min(file_size - block_start);
        // Prefetches bypass the atomicity token (they are server
        // read-ahead, not client requests), and they are *background*
        // traffic: their ready time reflects the I/O nodes' current
        // backlog, but they do not reserve capacity ahead of demand
        // requests. (A future-dated reservation on an analytic
        // calendar would leapfrog demand requests that arrive in the
        // interim — the opposite of how a real scheduler prioritizes.)
        let end = self.transfer_background(start, fid, block_start, block_len);
        let arrival = self.net_arrival_background(end, pid, fid, block_start, block_len);
        if let Some(client) = self.clients.get_mut(&(pid, fid)) {
            client.install_prefetch(block_start, block_len, arrival);
        }
    }

    /// Completion-time estimate for a background (prefetch) transfer:
    /// queue behind the I/O nodes' current backlog but do not occupy
    /// the calendar. Slightly optimistic under saturation — background
    /// reads ride the arrays' idle capacity.
    fn transfer_background(&mut self, start: Time, fid: FileId, offset: u64, len: u64) -> Time {
        if len == 0 {
            return start;
        }
        let layout = self.files[fid.index()].layout;
        let costs = self.cfg.costs;
        let mut end = start;
        for seg in layout.segments_iter(offset, len) {
            let ion = seg.ion as usize;
            // Background traffic has no client to time out: a prefetch
            // aimed at a crashed node simply waits for the restart.
            let seg_start = match &self.faults {
                Some(s) => s.down_until(seg.ion, start).unwrap_or(start).max(start),
                None => start,
            };
            let disturb = self
                .faults
                .as_ref()
                .map(|s| s.disk_disturbance(seg.ion, seg_start));
            let block = seg.offset / layout.unit;
            let cache_hit = self.ion_caches[ion].probe(fid, block);
            let service = if cache_hit {
                costs.ion_cache_overhead + Time::from_secs_f64(seg.len as f64 / costs.ion_cache_bw)
            } else {
                let sequential = self.ion_last[ion] == Some((fid, seg.offset));
                match &disturb {
                    Some(d) => self.disk.service_time_disturbed(seg.len, sequential, d),
                    None => self.disk.service_time(seg.len, sequential),
                }
            };
            let service = match &disturb {
                Some(d) if cache_hit && d.slow_factor != 1.0 => service.scale(d.slow_factor),
                _ => service,
            };
            self.ion_caches[ion].insert(fid, block);
            let begin = seg_start.max(self.ions.get(ion).map(|c| c.free_at()).unwrap_or(seg_start));
            end = end.max(begin + service);
        }
        end
    }

    /// Writes in the private-pointer modes, through the aggregation /
    /// write-behind buffer when enabled.
    fn private_write(
        &mut self,
        now: Time,
        pid: Pid,
        fid: FileId,
        size: u64,
        out: &mut Vec<Completion>,
    ) -> Result<bool, PfsError> {
        let costs = self.cfg.costs;
        let policy = self.cfg.policy;
        let t0 = now + costs.client_overhead;
        let offset = self.files[fid.index()].private_ptr(pid);

        // Small writes coalesce in the client buffer when either (a)
        // standard UNIX buffering applies — M_UNIX with a single
        // opener and buffering on (drains are asynchronous, like the
        // OSF/1 buffer cache; this is how ESCAT version A's node zero
        // wrote megabytes in sub-3 KB requests cheaply), or (b) the §7
        // write-aggregation policy extends coalescing to the parallel
        // modes.
        let mode = self.files[fid.index()].mode;
        let unix_buffered = mode == IoMode::MUnix
            && self.write_buffer_allowed(fid)
            && self
                .clients
                .get(&(pid, fid))
                .map(|c| c.buffering)
                .unwrap_or(true);
        // Adaptive policy: coalesce once the write stream is
        // classified sequential.
        let adaptive_agg = policy.adaptive && {
            let client = self.clients.entry((pid, fid)).or_default();
            client.write_pattern.observe(offset, size);
            client.write_pattern.pattern(3) == crate::adaptive::AccessPattern::Sequential
        };
        let coalesce = size > 0
            && size < costs.buffer_block
            && (unix_buffered || policy.write_aggregation || adaptive_agg);
        // UNIX buffering and the adaptive path drain behind the
        // caller's back; the explicit policy path drains per its
        // write_behind flag.
        let behind = if unix_buffered || adaptive_agg {
            true
        } else {
            policy.write_behind
        };

        let finish = if size == 0 {
            t0
        } else if coalesce {
            // Coalesce into the client write buffer.
            let mut sync_drain_delay = Time::ZERO;
            let needs_flush_first = {
                let client = self.clients.entry((pid, fid)).or_default();
                !client.append_write(offset, size)
            };
            if needs_flush_first {
                // Non-contiguous: drain the old range first.
                let buf = self
                    .clients
                    .get_mut(&(pid, fid))
                    .and_then(|c| c.take_write_buf());
                if let Some(buf) = buf {
                    sync_drain_delay = self.drain_range(t0, pid, fid, buf.start, buf.len, behind);
                }
                let client = self
                    .clients
                    .get_mut(&(pid, fid))
                    .expect("client state present");
                assert!(client.append_write(offset, size), "empty buffer accepts");
            }
            // Drain when the buffer reaches a full block.
            let mut full_drain_delay = Time::ZERO;
            let need_drain = {
                let client = self.clients.get(&(pid, fid)).expect("client state");
                client
                    .write_buf
                    .map(|b| b.len >= costs.buffer_block)
                    .unwrap_or(false)
            };
            if need_drain {
                let buf = self
                    .clients
                    .get_mut(&(pid, fid))
                    .and_then(|c| c.take_write_buf());
                if let Some(buf) = buf {
                    full_drain_delay = self.drain_range(t0, pid, fid, buf.start, buf.len, behind);
                }
            }
            // The client's call returns after the memory copy, plus
            // any synchronous drain it triggered.
            t0 + costs.cache_hit + sync_drain_delay.max(full_drain_delay)
        } else {
            self.fetch(t0, pid, fid, offset, size, true)?
        };

        let file = &mut self.files[fid.index()];
        file.advance_private(pid, size);
        file.note_write(offset, size);
        out.push(Completion {
            pid,
            finish,
            bytes: size,
            offset,
            kind: OpKind::Write,
            mode,
        });
        Ok(true)
    }

    /// Synchronously drain any pending coalesced writes for
    /// `(pid, fid)` — used by flush and close, which must not return
    /// until the data is at the I/O nodes. Returns the drain end time
    /// (`Time::ZERO` when nothing was buffered).
    fn drain_write_buf(&mut self, now: Time, pid: Pid, fid: FileId) -> Time {
        let buf = self
            .clients
            .get_mut(&(pid, fid))
            .and_then(|c| c.take_write_buf());
        match buf {
            Some(buf) => {
                let end = self.transfer(now, fid, buf.start, buf.len, true);
                self.files[fid.index()].note_write(buf.start, buf.len);
                end
            }
            None => Time::ZERO,
        }
    }

    /// Drain a coalesced write range to the I/O nodes. Returns the
    /// *additional* synchronous delay charged to the triggering call
    /// (zero when the drain happens behind the caller's back).
    fn drain_range(
        &mut self,
        start: Time,
        pid: Pid,
        fid: FileId,
        offset: u64,
        len: u64,
        behind: bool,
    ) -> Time {
        let end = self.transfer(start, fid, offset, len, true);
        self.files[fid.index()].note_write(offset, len);
        if behind {
            if let Some(client) = self.clients.get_mut(&(pid, fid)) {
                client.drain_done_at = client.drain_done_at.max(end);
            }
            Time::ZERO
        } else {
            end.saturating_sub(start)
        }
    }

    /// M_LOG: shared pointer, FCFS, serialized through the token.
    fn log_data(
        &mut self,
        now: Time,
        pid: Pid,
        fid: FileId,
        size: u64,
        write: bool,
        out: &mut Vec<Completion>,
    ) -> Result<bool, PfsError> {
        let costs = self.cfg.costs;
        let t0 = now + costs.client_overhead;
        let offset = self.files[fid.index()].advance_shared(size);
        let finish = self.serialized_transfer(t0, pid, fid, offset, size, write);
        if write {
            self.files[fid.index()].note_write(offset, size);
        }
        out.push(Completion {
            pid,
            finish,
            bytes: size,
            offset,
            kind: if write { OpKind::Write } else { OpKind::Read },
            mode: IoMode::MLog,
        });
        Ok(true)
    }

    /// Direct (uncached) data path for private modes: serialized
    /// through the token under M_UNIX sharing, parallel under M_ASYNC.
    fn fetch(
        &mut self,
        start: Time,
        pid: Pid,
        fid: FileId,
        offset: u64,
        len: u64,
        write: bool,
    ) -> Result<Time, PfsError> {
        let serializes = {
            let file = &self.files[fid.index()];
            file.mode.serializes() && file.opener_count() > 1
        };
        let end = if serializes {
            self.serialized_transfer(start, pid, fid, offset, len, write)
        } else {
            let end = self.transfer(start, fid, offset, len, write);
            self.net_arrival(end, pid, fid, offset, len)
        };
        Ok(end)
    }

    /// Transfer holding the file's atomicity token for the duration.
    fn serialized_transfer(
        &mut self,
        start: Time,
        pid: Pid,
        fid: FileId,
        offset: u64,
        len: u64,
        write: bool,
    ) -> Time {
        // The token serializes the atomicity *bookkeeping* (ordering
        // the request against all other sharers); once ordered, the
        // data moves on the I/O nodes in parallel with other requests.
        // Holding the token through the transfer would overstate the
        // contention the paper measured by an order of magnitude.
        let token_service = self.cfg.costs.token_service;
        let res = self.files[fid.index()].token.reserve(start, token_service);
        let data_end = self.transfer(res.finish, fid, offset, len, write);
        self.net_arrival(data_end, pid, fid, offset, len)
    }

    /// Resolve a segment's I/O node under the resilience policy: if
    /// the node is crashed at `start`, the client times out, walks the
    /// retry ladder with exponential backoff, and finally re-routes to
    /// a healthy node (reads may short-circuit via the reduced-stripe
    /// reconstruction path) or stalls until restart. Returns the
    /// serving node, the instant service can begin, and a service-time
    /// factor (> 1 when the serving node must reconstruct from
    /// parity). The no-fault path returns the inputs untouched.
    fn engage_ion(&mut self, ion: u32, start: Time, write: bool) -> (u32, Time, f64) {
        let Some(state) = &self.faults else {
            return (ion, start, 1.0);
        };
        let Some(back_up) = state.down_until(ion, start) else {
            return (ion, start, 1.0);
        };
        let r = self.cfg.resilience;
        self.res_stats.timeouts += 1;
        let mut t = start.saturating_add(r.request_timeout);
        // Reads can be reconstructed from the surviving stripes +
        // parity; one probing retry, then fall back at reduced width.
        if !write && r.reduced_stripe_reads && r.reroute {
            if let Some(alt) = state.first_healthy_ion(t, ion) {
                self.res_stats.retries += 1;
                self.res_stats.degraded_reads += 1;
                self.res_stats.reroutes += 1;
                return (alt, t.saturating_add(r.backoff_base), r.reroute_penalty);
            }
        }
        let mut backoff = r.backoff_base;
        for _ in 0..r.max_retries {
            self.res_stats.retries += 1;
            t = t.saturating_add(backoff);
            backoff = backoff.scale(r.backoff_multiplier);
            if !state.is_down(ion, t) {
                // The node restarted while the client was backing off.
                return (ion, t, 1.0);
            }
        }
        if r.reroute {
            if let Some(alt) = state.first_healthy_ion(t, ion) {
                self.res_stats.reroutes += 1;
                return (alt, t, r.reroute_penalty);
            }
        }
        // Nowhere to go: stall until the node comes back.
        self.res_stats.aborts += 1;
        (ion, t.max(back_up), 1.0)
    }

    /// Raw striped transfer: reserve every segment on its I/O node's
    /// calendar starting no earlier than `start`; returns the latest
    /// segment finish. Reads pay disk positioning (sequential detection
    /// per I/O node); writes are absorbed by the I/O-node write cache.
    fn transfer(&mut self, start: Time, fid: FileId, offset: u64, len: u64, write: bool) -> Time {
        if len == 0 {
            return start;
        }
        if self.faults.is_none() {
            return self.transfer_batched(start, fid, offset, len, write);
        }
        let layout = self.files[fid.index()].layout;
        let costs = self.cfg.costs;
        let mut end = start;
        for seg in layout.segments_iter(offset, len) {
            let (serving, seg_start, route_factor) = self.engage_ion(seg.ion, start, write);
            let ion = serving as usize;
            let disturb = self
                .faults
                .as_ref()
                .map(|s| s.disk_disturbance(serving, seg_start));
            let block = seg.offset / layout.unit;
            let cache_hit = !write && self.ion_caches[ion].probe(fid, block);
            let service = if write {
                costs.ion_write_overhead + Time::from_secs_f64(seg.len as f64 / costs.ion_write_bw)
            } else if cache_hit {
                // Served from I/O-node memory: no disk positioning.
                costs.ion_cache_overhead + Time::from_secs_f64(seg.len as f64 / costs.ion_cache_bw)
            } else {
                let sequential = self.ion_last[ion] == Some((fid, seg.offset));
                match &disturb {
                    Some(d) => self.disk.service_time_disturbed(seg.len, sequential, d),
                    None => self.disk.service_time(seg.len, sequential),
                }
            };
            // Node-level slowdowns hit the cache and write paths too —
            // the I/O-node daemon itself is starved, not just the disk
            // (the disk branch already applied the factor inside
            // `service_time_disturbed`).
            let service = match &disturb {
                Some(d) if (write || cache_hit) && d.slow_factor != 1.0 => {
                    service.scale(d.slow_factor)
                }
                _ => service,
            };
            let service = if route_factor == 1.0 {
                service
            } else {
                service.scale(route_factor)
            };
            // Reads bring the block in; writes deposit it.
            self.ion_caches[ion].insert(fid, block);
            let res = self.ions.reserve(ion, seg_start, service);
            self.ion_last[ion] = Some((fid, seg.offset + seg.len));
            end = end.max(res.finish);
        }
        end
    }

    /// Fault-free transfer fast path: walk the segments once computing
    /// each per-segment service exactly as the general path does (same
    /// cache probes, same sequential detection, in the same order),
    /// accumulate per-I/O-node `(total service, count)`, then issue a
    /// single batched calendar reservation per touched node.
    ///
    /// Bit-identical to the general path with no faults engaged: every
    /// segment there starts at `start` with factor 1, so per node the
    /// reservations chain back-to-back from `max(start, free_at)` —
    /// exactly what [`Calendar::reserve_n`] computes — and the maximum
    /// finish over segments equals the maximum over per-node batch
    /// finishes because each node's last segment finishes latest.
    fn transfer_batched(
        &mut self,
        start: Time,
        fid: FileId,
        offset: u64,
        len: u64,
        write: bool,
    ) -> Time {
        let layout = self.files[fid.index()].layout;
        let costs = self.cfg.costs;
        self.transfer_scratch.clear();
        self.transfer_scratch
            .resize(self.ions.len(), (Time::ZERO, 0));
        for seg in layout.segments_iter(offset, len) {
            let ion = seg.ion as usize;
            let block = seg.offset / layout.unit;
            let cache_hit = !write && self.ion_caches[ion].probe(fid, block);
            let service = if write {
                costs.ion_write_overhead + Time::from_secs_f64(seg.len as f64 / costs.ion_write_bw)
            } else if cache_hit {
                costs.ion_cache_overhead + Time::from_secs_f64(seg.len as f64 / costs.ion_cache_bw)
            } else {
                let sequential = self.ion_last[ion] == Some((fid, seg.offset));
                self.disk.service_time(seg.len, sequential)
            };
            self.ion_caches[ion].insert(fid, block);
            self.transfer_scratch[ion].0 += service;
            self.transfer_scratch[ion].1 += 1;
            self.ion_last[ion] = Some((fid, seg.offset + seg.len));
        }
        let mut end = start;
        for ion in 0..self.transfer_scratch.len() {
            let (total, n) = self.transfer_scratch[ion];
            if n > 0 {
                let res = self.ions.reserve_n(ion, start, total, n);
                end = end.max(res.finish);
            }
        }
        end
    }

    /// Absolute arrival time at the client for data leaving the I/O
    /// node holding the first byte of the range at `data_ready`. The
    /// payload serializes on the I/O node's single mesh injection
    /// link (fan-in contention when many clients pull from one
    /// array); the header pipeline and software setup overlap across
    /// streams.
    fn net_arrival(
        &mut self,
        data_ready: Time,
        pid: Pid,
        fid: FileId,
        offset: u64,
        len: u64,
    ) -> Time {
        let layout = self.files[fid.index()].layout;
        let to = self.cfg.machine.compute_position(NodeId(pid.0));
        let params = *self.mesh.params();
        if len == 0 {
            return data_ready + params.sw_setup;
        }
        let congestion = self
            .faults
            .as_ref()
            .map_or(1.0, |s| s.link_factor(data_ready));
        // Each stripe segment streams out of its own I/O node's link;
        // the client receives when the last segment lands.
        let mut last = data_ready;
        let mut max_hops = 0;
        for seg in layout.segments_iter(offset, len) {
            let wire = if congestion == 1.0 {
                Time::from_secs_f64(seg.len as f64 / params.bandwidth_bps)
            } else {
                Time::from_secs_f64(seg.len as f64 * congestion / params.bandwidth_bps)
            };
            let res = self.ion_links.reserve(seg.ion as usize, data_ready, wire);
            last = last.max(res.finish);
            let from = self.cfg.machine.io_position(seg.ion);
            max_hops = max_hops.max(self.mesh.hops(from, to));
        }
        last + params.sw_setup + params.per_hop * u64::from(max_hops)
    }

    /// Like [`Pfs::net_arrival`] but for background (prefetch)
    /// traffic: queues behind the link's current backlog without
    /// reserving it.
    fn net_arrival_background(
        &self,
        data_ready: Time,
        pid: Pid,
        fid: FileId,
        offset: u64,
        len: u64,
    ) -> Time {
        let layout = self.files[fid.index()].layout;
        let to = self.cfg.machine.compute_position(NodeId(pid.0));
        let params = self.mesh.params();
        let congestion = self
            .faults
            .as_ref()
            .map_or(1.0, |s| s.link_factor(data_ready));
        let mut last = data_ready;
        let mut max_hops = 0;
        for seg in layout.segments_iter(offset, len) {
            let wire = if congestion == 1.0 {
                Time::from_secs_f64(seg.len as f64 / params.bandwidth_bps)
            } else {
                Time::from_secs_f64(seg.len as f64 * congestion / params.bandwidth_bps)
            };
            let begin = data_ready.max(
                self.ion_links
                    .get(seg.ion as usize)
                    .map(|c| c.free_at())
                    .unwrap_or(data_ready),
            );
            last = last.max(begin + wire);
            let from = self.cfg.machine.io_position(seg.ion);
            max_hops = max_hops.max(self.mesh.hops(from, to));
        }
        last + params.sw_setup + params.per_hop * u64::from(max_hops)
    }

    /// Collective data operations: M_RECORD, M_GLOBAL, M_SYNC.
    fn collective_data(
        &mut self,
        now: Time,
        pid: Pid,
        fid: FileId,
        size: u64,
        write: bool,
        mode: IoMode,
        out: &mut Vec<Completion>,
    ) -> Result<bool, PfsError> {
        // Validate before joining the group.
        if mode == IoMode::MRecord {
            let expected = self.files[fid.index()].record_size.unwrap_or(0);
            if size != expected {
                return Err(PfsError::RecordSizeMismatch {
                    file: fid,
                    expected,
                    got: size,
                });
            }
        }
        let (key, group) = {
            let file = &mut self.files[fid.index()];
            let group = file.opener_count();
            let seq = file.next_collective_seq(pid);
            (file.rendezvous_key(seq), group)
        };
        self.pending_sizes.entry(key).or_default().push((pid, size));
        match self.rdv.arrive(key, pid, now, group as usize) {
            RendezvousOutcome::Waiting => Ok(false),
            RendezvousOutcome::Complete { release, .. } => {
                let members = self.pending_sizes.remove(&key).expect("sizes recorded");
                self.run_collective(release, fid, mode, write, members, out);
                Ok(true)
            }
        }
    }

    /// Execute a completed collective round at `release`, appending
    /// every member's completion to `out`.
    fn run_collective(
        &mut self,
        release: Time,
        fid: FileId,
        mode: IoMode,
        write: bool,
        members: Vec<(Pid, u64)>,
        out: &mut Vec<Completion>,
    ) {
        let overhead = self.cfg.costs.client_overhead;
        let kind = if write { OpKind::Write } else { OpKind::Read };
        match mode {
            IoMode::MGlobal => {
                // Identical requests aggregate to one transfer; reads
                // are then broadcast to the whole group.
                let size = members.first().map(|&(_, s)| s).unwrap_or(0);
                let offset = self.files[fid.index()].advance_shared(size);
                let data_end = self.transfer(release, fid, offset, size, write);
                if write {
                    self.files[fid.index()].note_write(offset, size);
                }
                let extra = if write {
                    Time::ZERO
                } else {
                    match &self.faults {
                        Some(s) => self.mesh.broadcast_time_congested(
                            members.len() as u32,
                            size,
                            s.link_factor(data_end),
                        ),
                        None => self.mesh.broadcast_time(members.len() as u32, size),
                    }
                };
                let finish = data_end + extra + overhead;
                out.extend(members.into_iter().map(|(p, s)| Completion {
                    pid: p,
                    finish,
                    bytes: s,
                    offset,
                    kind,
                    mode,
                }));
            }
            IoMode::MRecord => {
                // Node-ordered disjoint records from a common base.
                let record = self.files[fid.index()].record_size.unwrap_or(0);
                let base = self.files[fid.index()].advance_shared(record * members.len() as u64);
                // Transfers proceed in node (rank) order.
                let mut ranked: Vec<(u32, Pid, u64)> = members
                    .into_iter()
                    .map(|(p, s)| {
                        let rank = self.files[fid.index()].rank(p).unwrap_or(0);
                        (rank, p, s)
                    })
                    .collect();
                ranked.sort_unstable_by_key(|&(rank, _, _)| rank);
                out.reserve(ranked.len());
                for (rank, p, s) in ranked {
                    let offset = base + u64::from(rank) * record;
                    let data_end = self.transfer(release, fid, offset, record, write);
                    if write {
                        self.files[fid.index()].note_write(offset, record);
                    }
                    let arrival = self.net_arrival(data_end, p, fid, offset, record);
                    out.push(Completion {
                        pid: p,
                        finish: arrival + overhead,
                        bytes: s,
                        offset,
                        kind,
                        mode,
                    });
                }
            }
            IoMode::MSync => {
                // Shared pointer, node-ordered, variable sizes:
                // consecutive ranges served strictly in rank order.
                let mut ranked: Vec<(u32, Pid, u64)> = members
                    .into_iter()
                    .map(|(p, s)| {
                        let rank = self.files[fid.index()].rank(p).unwrap_or(0);
                        (rank, p, s)
                    })
                    .collect();
                ranked.sort_unstable_by_key(|&(rank, _, _)| rank);
                out.reserve(ranked.len());
                let mut cursor = release;
                for (_, p, s) in ranked {
                    let offset = self.files[fid.index()].advance_shared(s);
                    let data_end = self.transfer(cursor, fid, offset, s, write);
                    if write {
                        self.files[fid.index()].note_write(offset, s);
                    }
                    cursor = data_end;
                    let arrival = self.net_arrival(data_end, p, fid, offset, s);
                    out.push(Completion {
                        pid: p,
                        finish: arrival + overhead,
                        bytes: s,
                        offset,
                        kind,
                        mode,
                    });
                }
            }
            _ => unreachable!("non-collective mode in run_collective"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pfs() -> Pfs {
        Pfs::new(PfsConfig::tiny())
    }

    fn only(outcome: Outcome) -> Completion {
        match outcome {
            Outcome::Done(v) if v.len() == 1 => v[0],
            other => panic!("expected one completion, got {other:?}"),
        }
    }

    #[test]
    fn open_read_close_roundtrip() {
        let mut p = pfs();
        let f = p.create_file_with_size("input", 1 << 20);
        let c = only(p.submit(Time::ZERO, Pid(0), f, &IoOp::Open).unwrap());
        assert_eq!(c.kind, OpKind::Open);
        assert!(c.finish > Time::ZERO);
        let c2 = only(
            p.submit(c.finish, Pid(0), f, &IoOp::Read { size: 4096 })
                .unwrap(),
        );
        assert_eq!(c2.bytes, 4096);
        assert!(c2.finish > c.finish);
        let c3 = only(p.submit(c2.finish, Pid(0), f, &IoOp::Close).unwrap());
        assert_eq!(c3.kind, OpKind::Close);
    }

    #[test]
    fn read_without_open_errors() {
        let mut p = pfs();
        let f = p.create_file("x");
        let e = p
            .submit(Time::ZERO, Pid(0), f, &IoOp::Read { size: 10 })
            .unwrap_err();
        assert!(matches!(e, PfsError::NotOpen { .. }));
    }

    #[test]
    fn unknown_file_errors() {
        let mut p = pfs();
        let e = p
            .submit(Time::ZERO, Pid(0), FileId(99), &IoOp::Open)
            .unwrap_err();
        assert!(matches!(e, PfsError::NoSuchFile(_)));
    }

    #[test]
    fn double_open_errors() {
        let mut p = pfs();
        let f = p.create_file("x");
        p.submit(Time::ZERO, Pid(0), f, &IoOp::Open).unwrap();
        let e = p.submit(Time::ZERO, Pid(0), f, &IoOp::Open).unwrap_err();
        assert!(matches!(e, PfsError::AlreadyOpen { .. }));
    }

    #[test]
    fn concurrent_opens_serialize_on_metadata_server() {
        let mut p = pfs();
        let f = p.create_file("shared");
        let c0 = only(p.submit(Time::ZERO, Pid(0), f, &IoOp::Open).unwrap());
        let c1 = only(p.submit(Time::ZERO, Pid(1), f, &IoOp::Open).unwrap());
        let c2 = only(p.submit(Time::ZERO, Pid(2), f, &IoOp::Open).unwrap());
        assert!(c1.finish >= c0.finish + p.config().costs.open_service);
        assert!(c2.finish >= c1.finish + p.config().costs.open_service);
    }

    #[test]
    fn gopen_blocks_until_group_complete() {
        let mut p = pfs();
        let f = p.create_file("g");
        let op = IoOp::Gopen {
            group: 2,
            mode: IoMode::MAsync,
            record_size: None,
        };
        assert_eq!(
            p.submit(Time::ZERO, Pid(0), f, &op).unwrap(),
            Outcome::Blocked
        );
        match p.submit(Time::from_secs(1), Pid(1), f, &op).unwrap() {
            Outcome::Done(cs) => {
                assert_eq!(cs.len(), 2);
                assert_eq!(cs[0].finish, cs[1].finish);
                assert!(cs[0].finish >= Time::from_secs(1));
            }
            Outcome::Blocked => panic!("group complete"),
        }
        assert_eq!(p.forming_collectives(), 0);
        assert_eq!(p.file(f).unwrap().mode, IoMode::MAsync);
    }

    #[test]
    fn gopen_is_cheaper_than_n_opens() {
        // The version-B optimization: one gopen vs. N serialized
        // opens. At paper-scale groups the serialized metadata queue
        // dwarfs the single collective operation.
        let n = 16;
        let mut p1 = pfs();
        let f1 = p1.create_file("a");
        let mut worst = Time::ZERO;
        let mut open_sum = Time::ZERO;
        for i in 0..n {
            let c = only(p1.submit(Time::ZERO, Pid(i), f1, &IoOp::Open).unwrap());
            worst = worst.max(c.finish);
            open_sum += c.finish;
        }
        let mut p2 = pfs();
        let f2 = p2.create_file("b");
        let op = IoOp::Gopen {
            group: n,
            mode: IoMode::MUnix,
            record_size: None,
        };
        let mut gopen_finish = Time::ZERO;
        for i in 0..n {
            if let Outcome::Done(cs) = p2.submit(Time::ZERO, Pid(i), f2, &op).unwrap() {
                gopen_finish = cs[0].finish;
            }
        }
        assert!(
            gopen_finish < worst,
            "gopen {gopen_finish} should beat serialized opens {worst}"
        );
        // Aggregate client-observed time is where the real win is.
        let gopen_sum = gopen_finish * u64::from(n);
        assert!(gopen_sum < open_sum);
    }

    #[test]
    fn masync_unavailable_under_osf12() {
        let mut cfg = PfsConfig::tiny();
        cfg.os = OsRelease::Osf12;
        let mut p = Pfs::new(cfg);
        let f = p.create_file("x");
        let e = p
            .submit(
                Time::ZERO,
                Pid(0),
                f,
                &IoOp::Gopen {
                    group: 1,
                    mode: IoMode::MAsync,
                    record_size: None,
                },
            )
            .unwrap_err();
        assert!(matches!(e, PfsError::ModeUnavailable { .. }));
    }

    #[test]
    fn munix_shared_seek_is_expensive_masync_seek_is_cheap() {
        let mut p = pfs();
        let f = p.create_file("s");
        for i in 0..2 {
            p.submit(Time::ZERO, Pid(i), f, &IoOp::Open).unwrap();
        }
        let t = Time::from_secs(10);
        let c_unix = only(p.submit(t, Pid(0), f, &IoOp::Seek { offset: 0 }).unwrap());
        let unix_seek = c_unix.finish - t;

        let mut p2 = pfs();
        let f2 = p2.create_file("s2");
        let gop = IoOp::Gopen {
            group: 2,
            mode: IoMode::MAsync,
            record_size: None,
        };
        for i in 0..2 {
            p2.submit(Time::ZERO, Pid(i), f2, &gop).unwrap();
        }
        let c_async = only(p2.submit(t, Pid(0), f2, &IoOp::Seek { offset: 0 }).unwrap());
        let async_seek = c_async.finish - t;
        assert!(
            unix_seek.as_nanos() > 10 * async_seek.as_nanos(),
            "M_UNIX shared seek {unix_seek} must dwarf M_ASYNC seek {async_seek}"
        );
    }

    #[test]
    fn seek_on_shared_pointer_mode_errors() {
        let mut p = pfs();
        let f = p.create_file("g");
        let gop = IoOp::Gopen {
            group: 1,
            mode: IoMode::MGlobal,
            record_size: None,
        };
        p.submit(Time::ZERO, Pid(0), f, &gop).unwrap();
        let e = p
            .submit(Time::ZERO, Pid(0), f, &IoOp::Seek { offset: 4 })
            .unwrap_err();
        assert!(matches!(e, PfsError::SeekOnSharedPointer { .. }));
    }

    #[test]
    fn mglobal_read_is_one_disk_io_plus_broadcast() {
        let mut p = pfs();
        let f = p.create_file_with_size("init", 1 << 20);
        let gop = IoOp::Gopen {
            group: 2,
            mode: IoMode::MGlobal,
            record_size: None,
        };
        let mut t = Time::ZERO;
        for i in 0..2 {
            if let Outcome::Done(cs) = p.submit(Time::ZERO, Pid(i), f, &gop).unwrap() {
                t = cs[0].finish;
            }
        }
        let busy_before = p.ion_busy_time();
        let rd = IoOp::Read { size: 65536 };
        assert_eq!(p.submit(t, Pid(0), f, &rd).unwrap(), Outcome::Blocked);
        let cs = match p.submit(t, Pid(1), f, &rd).unwrap() {
            Outcome::Done(cs) => cs,
            _ => panic!(),
        };
        assert_eq!(cs.len(), 2);
        // One 64 KB disk read total, not two.
        let busy = p.ion_busy_time() - busy_before;
        let one_read = DiskModel::new(p.config().machine.disk).service_time(65536, false);
        assert!(busy <= one_read, "M_GLOBAL must aggregate to one disk I/O");
        // Shared pointer advanced once.
        assert_eq!(p.file(f).unwrap().shared_ptr, 65536);
    }

    #[test]
    fn mrecord_requires_exact_record_size() {
        let mut p = pfs();
        let f = p.create_file_with_size("q", 1 << 20);
        let gop = IoOp::Gopen {
            group: 1,
            mode: IoMode::MRecord,
            record_size: Some(65536),
        };
        p.submit(Time::ZERO, Pid(0), f, &gop).unwrap();
        let e = p
            .submit(Time::ZERO, Pid(0), f, &IoOp::Read { size: 100 })
            .unwrap_err();
        assert!(matches!(e, PfsError::RecordSizeMismatch { .. }));
    }

    #[test]
    fn mrecord_members_read_disjoint_node_ordered_records() {
        let mut p = pfs();
        let f = p.create_file_with_size("q", 1 << 20);
        let rec = 65536u64;
        let gop = IoOp::Gopen {
            group: 2,
            mode: IoMode::MRecord,
            record_size: Some(rec),
        };
        let mut t = Time::ZERO;
        for i in 0..2 {
            if let Outcome::Done(cs) = p.submit(Time::ZERO, Pid(i), f, &gop).unwrap() {
                t = cs[0].finish;
            }
        }
        let rd = IoOp::Read { size: rec };
        assert_eq!(p.submit(t, Pid(1), f, &rd).unwrap(), Outcome::Blocked);
        let cs = match p.submit(t, Pid(0), f, &rd).unwrap() {
            Outcome::Done(cs) => cs,
            _ => panic!(),
        };
        assert_eq!(cs.len(), 2);
        // Base advanced by group * record.
        assert_eq!(p.file(f).unwrap().shared_ptr, 2 * rec);
        // Second collective round keys differently (no panic) and
        // advances again.
        assert_eq!(p.submit(t, Pid(0), f, &rd).unwrap(), Outcome::Blocked);
        let _ = p.submit(t, Pid(1), f, &rd).unwrap();
        assert_eq!(p.file(f).unwrap().shared_ptr, 4 * rec);
    }

    #[test]
    fn msync_serves_in_rank_order_with_variable_sizes() {
        let mut p = pfs();
        let f = p.create_file("out");
        let gop = IoOp::Gopen {
            group: 2,
            mode: IoMode::MSync,
            record_size: None,
        };
        let mut t = Time::ZERO;
        for i in 0..2 {
            if let Outcome::Done(cs) = p.submit(Time::ZERO, Pid(i), f, &gop).unwrap() {
                t = cs[0].finish;
            }
        }
        // Different sizes per member; pid1 arrives first.
        assert_eq!(
            p.submit(t, Pid(1), f, &IoOp::Write { size: 100 }).unwrap(),
            Outcome::Blocked
        );
        let cs = match p.submit(t, Pid(0), f, &IoOp::Write { size: 300 }).unwrap() {
            Outcome::Done(cs) => cs,
            _ => panic!(),
        };
        // Rank order: pid0's 300 bytes land at offset 0, pid1's at 300.
        assert_eq!(p.file(f).unwrap().shared_ptr, 400);
        assert_eq!(p.file(f).unwrap().size, 400);
        // pid0 (rank 0) completes no later than pid1 (rank 1).
        let f0 = cs.iter().find(|c| c.pid == Pid(0)).unwrap().finish;
        let f1 = cs.iter().find(|c| c.pid == Pid(1)).unwrap().finish;
        assert!(f0 <= f1);
    }

    #[test]
    fn buffered_small_reads_hit_cache_unbuffered_pay_disk() {
        let mut p = pfs();
        let f = p.create_file_with_size("restart", 1 << 20);
        let c = only(p.submit(Time::ZERO, Pid(0), f, &IoOp::Open).unwrap());
        // First small read: miss, fetches a 64 KB block.
        let r1 = only(
            p.submit(c.finish, Pid(0), f, &IoOp::Read { size: 40 })
                .unwrap(),
        );
        // Second small read: within the block, nearly free.
        let r2 = only(
            p.submit(r1.finish, Pid(0), f, &IoOp::Read { size: 40 })
                .unwrap(),
        );
        let d1 = r1.finish - c.finish;
        let d2 = r2.finish - r1.finish;
        assert!(
            d1.as_nanos() > 20 * d2.as_nanos(),
            "miss {d1} must dwarf hit {d2}"
        );

        // Now disable buffering (the PRISM-C pathology) and read from a
        // region no cache has seen: the small read pays a full disk
        // access.
        let sb = only(
            p.submit(r2.finish, Pid(0), f, &IoOp::SetBuffering { enabled: false })
                .unwrap(),
        );
        let sk = only(
            p.submit(sb.finish, Pid(0), f, &IoOp::Seek { offset: 512 * 1024 })
                .unwrap(),
        );
        let r3 = only(
            p.submit(sk.finish, Pid(0), f, &IoOp::Read { size: 40 })
                .unwrap(),
        );
        let r4 = only(
            p.submit(r3.finish, Pid(0), f, &IoOp::Read { size: 40 })
                .unwrap(),
        );
        let d3 = r3.finish - sk.finish;
        let d4 = r4.finish - r3.finish;
        assert!(
            d3 > d2 * 20,
            "cold unbuffered read {d3} must dwarf hit {d2}"
        );
        // The follow-up read is served by the I/O-node cache, so it is
        // far cheaper than d3 — but every unbuffered read still pays a
        // network + I/O-node round trip, well above a client cache hit.
        assert!(d4 > d2 * 2, "every unbuffered read pays a round trip: {d4}");
    }

    #[test]
    fn write_extends_file_size() {
        let mut p = pfs();
        let f = p.create_file("w");
        let c = only(p.submit(Time::ZERO, Pid(0), f, &IoOp::Open).unwrap());
        p.submit(c.finish, Pid(0), f, &IoOp::Write { size: 1000 })
            .unwrap();
        assert_eq!(p.file(f).unwrap().size, 1000);
    }

    #[test]
    fn write_aggregation_reduces_client_latency_and_disk_ops() {
        let mut base_cfg = PfsConfig::tiny();
        base_cfg.policy = PolicyConfig::write_behind_only();
        let mut p = Pfs::new(base_cfg);
        let f = p.create_file("agg");
        let c = only(p.submit(Time::ZERO, Pid(0), f, &IoOp::Open).unwrap());
        let mut t = c.finish;
        let mut max_d = Time::ZERO;
        for _ in 0..16 {
            let w = only(p.submit(t, Pid(0), f, &IoOp::Write { size: 2048 }).unwrap());
            max_d = max_d.max(w.finish - t);
            t = w.finish;
        }
        // Buffered small writes return in ~copy time.
        assert!(max_d < Time::from_millis(1), "buffered write took {max_d}");
        // Flush waits for the drain.
        let fl = only(p.submit(t, Pid(0), f, &IoOp::Flush).unwrap());
        assert!(fl.finish >= t);
        // Close drains the remaining buffer and bumps file size.
        let cl = only(p.submit(fl.finish, Pid(0), f, &IoOp::Close).unwrap());
        assert!(cl.finish > fl.finish);
        assert_eq!(p.file(f).unwrap().size, 16 * 2048);
    }

    #[test]
    fn prefetch_accelerates_sequential_big_scan() {
        let scan = |policy: PolicyConfig| -> Time {
            let mut cfg = PfsConfig::tiny();
            cfg.policy = policy;
            let mut p = Pfs::new(cfg);
            let f = p.create_file_with_size("data", 4 << 20);
            let c = only(p.submit(Time::ZERO, Pid(0), f, &IoOp::Open).unwrap());
            let mut t = c.finish;
            for _ in 0..256 {
                let r = only(p.submit(t, Pid(0), f, &IoOp::Read { size: 8192 }).unwrap());
                t = r.finish;
            }
            t
        };
        let plain = scan(PolicyConfig::measured_pfs());
        let ahead = scan(PolicyConfig::prefetch_only());
        assert!(
            ahead < plain,
            "read-ahead {ahead} should beat plain {plain}"
        );
    }

    #[test]
    fn setiomode_group_mismatch_errors_at_completion() {
        let mut p = pfs();
        let f = p.create_file("x");
        for i in 0..3 {
            p.submit(Time::ZERO, Pid(i), f, &IoOp::Open).unwrap();
        }
        // Only two of the three openers join the collective; the
        // mismatch is detected when the declared group completes.
        let op = IoOp::SetIoMode {
            group: 2,
            mode: IoMode::MGlobal,
            record_size: None,
        };
        assert_eq!(
            p.submit(Time::ZERO, Pid(0), f, &op).unwrap(),
            Outcome::Blocked
        );
        let e = p.submit(Time::ZERO, Pid(1), f, &op).unwrap_err();
        assert!(matches!(e, PfsError::GroupMismatch { .. }));
    }

    #[test]
    fn setiomode_allows_arrival_before_all_open() {
        // A member may join the collective before its peers have
        // opened the file — the PRISM version-B pattern.
        let mut p = pfs();
        let f = p.create_file("y");
        p.submit(Time::ZERO, Pid(0), f, &IoOp::Open).unwrap();
        let op = IoOp::SetIoMode {
            group: 2,
            mode: IoMode::MGlobal,
            record_size: None,
        };
        assert_eq!(
            p.submit(Time::ZERO, Pid(0), f, &op).unwrap(),
            Outcome::Blocked
        );
        // Pid 1 opens late, then joins; the group now completes.
        p.submit(Time::ZERO, Pid(1), f, &IoOp::Open).unwrap();
        match p.submit(Time::ZERO, Pid(1), f, &op).unwrap() {
            Outcome::Done(cs) => assert_eq!(cs.len(), 2),
            Outcome::Blocked => panic!("group should complete"),
        }
        assert_eq!(p.file(f).unwrap().mode, IoMode::MGlobal);
    }

    #[test]
    fn close_resets_mode_when_last_opener_leaves() {
        let mut p = pfs();
        let f = p.create_file("m");
        let gop = IoOp::Gopen {
            group: 1,
            mode: IoMode::MGlobal,
            record_size: None,
        };
        let c = match p.submit(Time::ZERO, Pid(0), f, &gop).unwrap() {
            Outcome::Done(cs) => cs[0],
            _ => panic!(),
        };
        assert_eq!(p.file(f).unwrap().mode, IoMode::MGlobal);
        p.submit(c.finish, Pid(0), f, &IoOp::Close).unwrap();
        assert_eq!(p.file(f).unwrap().mode, IoMode::MUnix);
        assert_eq!(p.file(f).unwrap().opener_count(), 0);
    }

    #[test]
    fn munix_shared_reads_cache_but_fetches_serialize() {
        // Read-only sharing is coherence-safe: each node's block
        // fetches go through the file token (serialized), but repeated
        // small reads inside the fetched block are local hits.
        let mut p = pfs();
        let f = p.create_file_with_size("init", 1 << 20);
        let c0 = only(p.submit(Time::ZERO, Pid(0), f, &IoOp::Open).unwrap());
        let c1 = only(p.submit(Time::ZERO, Pid(1), f, &IoOp::Open).unwrap());
        let t = c0.finish.max(c1.finish);
        // Both nodes fetch the first block concurrently: the fetches
        // serialize through the token.
        let r0 = only(p.submit(t, Pid(0), f, &IoOp::Read { size: 1024 }).unwrap());
        let r1 = only(p.submit(t, Pid(1), f, &IoOp::Read { size: 1024 }).unwrap());
        let d_first = (r0.finish - t).max(r1.finish - t);
        // Subsequent small reads hit each node's private block copy.
        let r2 = only(
            p.submit(
                r0.finish.max(r1.finish),
                Pid(0),
                f,
                &IoOp::Read { size: 1024 },
            )
            .unwrap(),
        );
        let d_hit = r2.finish - r0.finish.max(r1.finish);
        assert!(
            d_first.as_nanos() > 5 * d_hit.as_nanos(),
            "fetch {d_first} must dwarf hit {d_hit}"
        );
        assert!(d_hit < Time::from_millis(1), "hit should be local: {d_hit}");
    }

    #[test]
    fn munix_single_opener_coalesces_small_writes_by_default() {
        // Standard UNIX buffering: node zero streaming small writes
        // (the ESCAT version-A phase-two pattern) pays ~copy time.
        let mut p = pfs();
        let f = p.create_file("quad");
        let c = only(p.submit(Time::ZERO, Pid(0), f, &IoOp::Open).unwrap());
        let mut t = c.finish;
        let mut worst = Time::ZERO;
        for _ in 0..64 {
            let w = only(p.submit(t, Pid(0), f, &IoOp::Write { size: 2048 }).unwrap());
            worst = worst.max(w.finish - t);
            t = w.finish;
        }
        assert!(
            worst < Time::from_millis(1),
            "buffered UNIX write took {worst}"
        );
        // Close drains what remains.
        p.submit(t, Pid(0), f, &IoOp::Close).unwrap();
        assert_eq!(p.file(f).unwrap().size, 64 * 2048);
    }

    #[test]
    fn masync_small_writes_go_direct() {
        // "The individual nodes write the data directly using the
        // M_ASYNC mode" — no client coalescing without the §7 policy.
        let mut p = pfs();
        let f = p.create_file("quad");
        let gop = IoOp::Gopen {
            group: 1,
            mode: IoMode::MAsync,
            record_size: None,
        };
        let c = match p.submit(Time::ZERO, Pid(0), f, &gop).unwrap() {
            Outcome::Done(cs) => cs[0],
            _ => panic!(),
        };
        let w = only(
            p.submit(c.finish, Pid(0), f, &IoOp::Write { size: 2048 })
                .unwrap(),
        );
        let d = w.finish - c.finish;
        assert!(
            d > Time::from_micros(500),
            "direct M_ASYNC write must pay network + I/O node, got {d}"
        );
    }

    #[test]
    fn buffered_large_read_pays_copy_penalty() {
        let run = |buffered: bool| -> Time {
            let mut p = pfs();
            let f = p.create_file_with_size("restart", 4 << 20);
            let gop = IoOp::Gopen {
                group: 1,
                mode: IoMode::MAsync,
                record_size: None,
            };
            let c = match p.submit(Time::ZERO, Pid(0), f, &gop).unwrap() {
                Outcome::Done(cs) => cs[0],
                _ => panic!(),
            };
            let mut t = c.finish;
            if !buffered {
                let sb = only(
                    p.submit(t, Pid(0), f, &IoOp::SetBuffering { enabled: false })
                        .unwrap(),
                );
                t = sb.finish;
            }
            let start = t;
            let r = only(
                p.submit(t, Pid(0), f, &IoOp::Read { size: 155_584 })
                    .unwrap(),
            );
            r.finish - start
        };
        let with_buf = run(true);
        let without = run(false);
        assert!(
            with_buf > without,
            "buffered large read {with_buf} must exceed unbuffered {without}"
        );
    }

    #[test]
    fn adaptive_policy_matches_explicit_tuning_on_sequential_streams() {
        // An M_ASYNC stream of small sequential writes: the measured
        // PFS pays per-write round trips; the adaptive policy detects
        // the run and coalesces without being asked, approaching the
        // explicitly tuned configuration.
        let run_with = |policy: PolicyConfig| -> Time {
            let mut cfg = PfsConfig::tiny();
            cfg.policy = policy;
            let mut p = Pfs::new(cfg);
            let f = p.create_file("stream");
            let gop = IoOp::Gopen {
                group: 1,
                mode: IoMode::MAsync,
                record_size: None,
            };
            let mut t = match p.submit(Time::ZERO, Pid(0), f, &gop).unwrap() {
                Outcome::Done(cs) => cs[0].finish,
                _ => unreachable!(),
            };
            for _ in 0..256 {
                if let Outcome::Done(cs) =
                    p.submit(t, Pid(0), f, &IoOp::Write { size: 2048 }).unwrap()
                {
                    t = cs[0].finish;
                }
            }
            if let Outcome::Done(cs) = p.submit(t, Pid(0), f, &IoOp::Close).unwrap() {
                t = cs[0].finish;
            }
            t
        };
        let measured = run_with(PolicyConfig::measured_pfs());
        let adaptive = run_with(PolicyConfig::adaptive());
        let tuned = run_with(PolicyConfig::write_behind_only());
        assert!(
            adaptive < measured.scale(0.5),
            "adaptive {adaptive} should beat measured {measured}"
        );
        assert!(
            adaptive < tuned.scale(2.0),
            "adaptive {adaptive} should approach tuned {tuned}"
        );
    }

    #[test]
    fn adaptive_policy_leaves_random_streams_alone() {
        // Random-offset writes must not be coalesced (non-contiguous
        // appends would thrash the buffer); the detector never
        // classifies them sequential, so behaviour matches measured.
        let run_with = |policy: PolicyConfig| -> Time {
            let mut cfg = PfsConfig::tiny();
            cfg.policy = policy;
            let mut p = Pfs::new(cfg);
            let f = p.create_file_with_size("rand", 64 << 20);
            let gop = IoOp::Gopen {
                group: 1,
                mode: IoMode::MAsync,
                record_size: None,
            };
            let mut t = match p.submit(Time::ZERO, Pid(0), f, &gop).unwrap() {
                Outcome::Done(cs) => cs[0].finish,
                _ => unreachable!(),
            };
            let mut offset = 7u64;
            for _ in 0..64 {
                offset = (offset.wrapping_mul(2654435761)) % (32 << 20);
                if let Outcome::Done(cs) = p.submit(t, Pid(0), f, &IoOp::Seek { offset }).unwrap() {
                    t = cs[0].finish;
                }
                if let Outcome::Done(cs) =
                    p.submit(t, Pid(0), f, &IoOp::Write { size: 512 }).unwrap()
                {
                    t = cs[0].finish;
                }
            }
            t
        };
        let measured = run_with(PolicyConfig::measured_pfs());
        let adaptive = run_with(PolicyConfig::adaptive());
        // Identical behaviour (the detector never fires).
        assert_eq!(measured, adaptive);
    }

    #[test]
    fn flush_waits_for_write_behind_drain() {
        let mut cfg = PfsConfig::tiny();
        cfg.policy = PolicyConfig::write_behind_only();
        let mut p = Pfs::new(cfg);
        let f = p.create_file("wb");
        let c = only(p.submit(Time::ZERO, Pid(0), f, &IoOp::Open).unwrap());
        // Buffer a full block so an async drain is in flight.
        let mut t = c.finish;
        for _ in 0..40 {
            let w = only(p.submit(t, Pid(0), f, &IoOp::Write { size: 2048 }).unwrap());
            t = w.finish;
        }
        let fl = only(p.submit(t, Pid(0), f, &IoOp::Flush).unwrap());
        // The flush cannot complete before the drained data is on the
        // I/O nodes: its duration far exceeds the bare flush service.
        assert!(
            fl.finish > t + p.config().costs.flush_service,
            "flush must wait for the in-flight drain"
        );
    }

    #[test]
    fn reopen_after_close_starts_fresh() {
        let mut p = pfs();
        let f = p.create_file_with_size("fresh", 1 << 20);
        let c = only(p.submit(Time::ZERO, Pid(0), f, &IoOp::Open).unwrap());
        let r = only(
            p.submit(c.finish, Pid(0), f, &IoOp::Read { size: 100 })
                .unwrap(),
        );
        assert_eq!(r.offset, 0);
        let cl = only(p.submit(r.finish, Pid(0), f, &IoOp::Close).unwrap());
        // Reopen: pointer rewound to zero.
        let c2 = only(p.submit(cl.finish, Pid(0), f, &IoOp::Open).unwrap());
        let r2 = only(
            p.submit(c2.finish, Pid(0), f, &IoOp::Read { size: 100 })
                .unwrap(),
        );
        assert_eq!(r2.offset, 0, "fresh open reads from the start");
    }

    #[test]
    fn mglobal_write_deposits_once() {
        let mut p = pfs();
        let f = p.create_file("gw");
        let gop = IoOp::Gopen {
            group: 2,
            mode: IoMode::MGlobal,
            record_size: None,
        };
        let mut t = Time::ZERO;
        for i in 0..2 {
            if let Outcome::Done(cs) = p.submit(Time::ZERO, Pid(i), f, &gop).unwrap() {
                t = cs[0].finish;
            }
        }
        let w = IoOp::Write { size: 4096 };
        assert_eq!(p.submit(t, Pid(0), f, &w).unwrap(), Outcome::Blocked);
        let cs = match p.submit(t, Pid(1), f, &w).unwrap() {
            Outcome::Done(cs) => cs,
            _ => panic!(),
        };
        assert_eq!(cs.len(), 2);
        // Identical writes aggregate: the file grows by one request,
        // not two.
        assert_eq!(p.file(f).unwrap().size, 4096);
        assert_eq!(p.file(f).unwrap().shared_ptr, 4096);
    }

    #[test]
    fn zero_size_data_ops_complete_quickly() {
        let mut p = pfs();
        let f = p.create_file("z");
        let c = only(p.submit(Time::ZERO, Pid(0), f, &IoOp::Open).unwrap());
        let r = only(
            p.submit(c.finish, Pid(0), f, &IoOp::Read { size: 0 })
                .unwrap(),
        );
        assert_eq!(r.bytes, 0);
        assert!(r.finish - c.finish < Time::from_millis(1));
        let w = only(
            p.submit(r.finish, Pid(0), f, &IoOp::Write { size: 0 })
                .unwrap(),
        );
        assert_eq!(p.file(f).unwrap().size, 0);
        assert!(w.finish >= r.finish);
    }

    #[test]
    fn degraded_array_slows_reads_through_that_ion() {
        let run_read = |degraded: bool| -> Time {
            let mut cfg = PfsConfig::tiny();
            if degraded {
                cfg.faults = FaultSchedule::degraded_from_start(&[0, 1]);
            }
            let mut p = Pfs::new(cfg);
            let f = p.create_file_with_size("d", 4 << 20);
            let gop = IoOp::Gopen {
                group: 1,
                mode: IoMode::MAsync,
                record_size: None,
            };
            let t = match p.submit(Time::ZERO, Pid(0), f, &gop).unwrap() {
                Outcome::Done(cs) => cs[0].finish,
                _ => unreachable!(),
            };
            let r = only(
                p.submit(t, Pid(0), f, &IoOp::Read { size: 1 << 20 })
                    .unwrap(),
            );
            r.finish - t
        };
        let healthy = run_read(false);
        let degraded = run_read(true);
        assert!(
            degraded > healthy,
            "degraded {degraded} vs healthy {healthy}"
        );
        assert!(degraded < healthy * 3, "degradation bounded");
    }

    /// Drive one pid through open + a string of reads and return the
    /// final completion time plus the server itself.
    fn read_mb(cfg: PfsConfig) -> (Time, Pfs) {
        let mut p = Pfs::new(cfg);
        let f = p.create_file_with_size("r", 8 << 20);
        let c = only(p.submit(Time::ZERO, Pid(0), f, &IoOp::Open).unwrap());
        let mut t = c.finish;
        for _ in 0..16 {
            let r = only(
                p.submit(t, Pid(0), f, &IoOp::Read { size: 128 << 10 })
                    .unwrap(),
            );
            t = r.finish;
        }
        (t, p)
    }

    /// Doubles as the batched-transfer equivalence check: the engaged
    /// (but empty) schedule takes the general per-segment transfer
    /// path while the plain run takes the per-ion `reserve_n` fast
    /// path, and every observable — completion times, disk busy time,
    /// cache hit counts — must still agree exactly.
    #[test]
    fn engaged_empty_schedule_is_bit_identical() {
        let (plain, p1) = read_mb(PfsConfig::tiny());
        let mut cfg = PfsConfig::tiny();
        cfg.faults = FaultSchedule::engaged_empty();
        let (hooked, p2) = read_mb(cfg);
        assert!(p2.fault_state().is_some(), "hooks are in the loop");
        assert_eq!(plain, hooked, "empty schedule must not move a single ns");
        assert_eq!(p1.ion_busy_time(), p2.ion_busy_time());
        assert_eq!(p1.ion_cache_stats(), p2.ion_cache_stats());
        assert!(p2.resilience_stats().is_quiet());
    }

    #[test]
    fn crashed_ion_triggers_timeout_and_reroute() {
        use sioscope_faults::FaultKind;
        let mut cfg = PfsConfig::tiny();
        cfg.faults.push(
            Time::ZERO,
            FaultKind::IonCrash {
                ion: 0,
                restart: Time::from_secs(30),
            },
        );
        let (faulty, p) = read_mb(cfg);
        let (healthy, _) = read_mb(PfsConfig::tiny());
        let stats = p.resilience_stats();
        assert!(stats.timeouts > 0, "{stats:?}");
        assert!(stats.retries > 0, "{stats:?}");
        assert!(stats.reroutes > 0, "{stats:?}");
        assert!(
            stats.degraded_reads > 0,
            "reads use the reduced-stripe path"
        );
        assert_eq!(stats.aborts, 0, "a healthy node was available");
        assert!(faulty > healthy, "faults cost time: {faulty} vs {healthy}");
    }

    #[test]
    fn crash_of_every_ion_stalls_until_restart() {
        use sioscope_faults::FaultKind;
        let mut cfg = PfsConfig::tiny();
        for ion in 0..cfg.machine.io_nodes {
            cfg.faults.push(
                Time::ZERO,
                FaultKind::IonCrash {
                    ion,
                    restart: Time::from_secs(5),
                },
            );
        }
        let (faulty, p) = read_mb(cfg);
        let stats = p.resilience_stats();
        assert!(stats.aborts > 0, "{stats:?}");
        assert!(
            faulty > Time::from_secs(5),
            "run waited out the restart: {faulty}"
        );
    }

    #[test]
    fn link_congestion_inflates_transfers() {
        use sioscope_faults::FaultKind;
        let mut cfg = PfsConfig::tiny();
        cfg.faults.push(
            Time::ZERO,
            FaultKind::LinkCongestion {
                duration: Time::from_secs(1_000),
                factor: 4.0,
            },
        );
        let (jammed, p) = read_mb(cfg);
        let (healthy, _) = read_mb(PfsConfig::tiny());
        assert!(jammed > healthy, "{jammed} vs {healthy}");
        assert!(
            p.resilience_stats().is_quiet(),
            "congestion needs no recovery actions"
        );
    }

    #[test]
    fn prefetch_stops_at_end_of_file() {
        let mut cfg = PfsConfig::tiny();
        cfg.policy = PolicyConfig::prefetch_only();
        let mut p = Pfs::new(cfg);
        // One block exactly: prefetch of the next block must be a
        // no-op, and scanning past it must not panic.
        let f = p.create_file_with_size("short", 64 * 1024);
        let c = only(p.submit(Time::ZERO, Pid(0), f, &IoOp::Open).unwrap());
        let mut t = c.finish;
        for _ in 0..16 {
            let r = only(p.submit(t, Pid(0), f, &IoOp::Read { size: 4096 }).unwrap());
            t = r.finish;
        }
        assert!(t > c.finish);
    }

    #[test]
    fn observability_counters_track_activity() {
        let mut p = pfs();
        let f = p.create_file_with_size("obs", 1 << 20);
        let c = only(p.submit(Time::ZERO, Pid(0), f, &IoOp::Open).unwrap());
        let mut t = c.finish;
        for _ in 0..8 {
            let r = only(p.submit(t, Pid(0), f, &IoOp::Read { size: 4096 }).unwrap());
            t = r.finish;
        }
        assert!(p.ion_busy_time() > Time::ZERO);
        assert!(
            p.metadata_busy_time() > Time::ZERO,
            "the open used metadata"
        );
        let (hits, misses) = p.ion_cache_stats();
        assert!(misses > 0, "first block fetch misses the I/O-node cache");
        let utils = p.ion_utilizations(t);
        assert_eq!(utils.len(), p.config().machine.io_nodes as usize);
        assert!(utils.iter().all(|&u| (0.0..=1.0).contains(&u)));
        assert!(utils.iter().any(|&u| u > 0.0));
        let _ = hits;
    }

    #[test]
    fn mlog_appends_fcfs() {
        let mut p = pfs();
        let f = p.create_file("stdout");
        let gop = IoOp::Gopen {
            group: 2,
            mode: IoMode::MLog,
            record_size: None,
        };
        let mut t = Time::ZERO;
        for i in 0..2 {
            if let Outcome::Done(cs) = p.submit(Time::ZERO, Pid(i), f, &gop).unwrap() {
                t = cs[0].finish;
            }
        }
        let w1 = only(p.submit(t, Pid(1), f, &IoOp::Write { size: 50 }).unwrap());
        let w0 = only(p.submit(t, Pid(0), f, &IoOp::Write { size: 70 }).unwrap());
        // FCFS: pid1 got offset 0, pid0 got offset 50.
        assert_eq!(p.file(f).unwrap().shared_ptr, 120);
        assert!(
            w0.finish >= w1.finish,
            "second arrival serializes behind first"
        );
    }

    #[test]
    fn submit_into_reuses_one_buffer_and_matches_submit() {
        let mut a = pfs();
        let mut b = pfs();
        let fa = a.create_file_with_size("r", 1 << 20);
        let fb = b.create_file_with_size("r", 1 << 20);
        let ops = [
            IoOp::Open,
            IoOp::Read { size: 4096 },
            IoOp::Seek { offset: 256 * 1024 },
            IoOp::Write { size: 2048 },
            IoOp::Flush,
            IoOp::Close,
        ];
        let mut buf = Vec::new();
        let mut t = Time::ZERO;
        for op in &ops {
            let via_submit = match a.submit(t, Pid(0), fa, op).unwrap() {
                Outcome::Done(cs) => cs,
                Outcome::Blocked => unreachable!("no collectives here"),
            };
            buf.clear();
            assert!(b.submit_into(t, Pid(0), fb, op, &mut buf).unwrap());
            assert_eq!(buf, via_submit, "{op:?}");
            t = via_submit.last().unwrap().finish;
        }
        // Errors leave the reused buffer untouched.
        buf.clear();
        let err = b.submit_into(t, Pid(7), fb, &IoOp::Close, &mut buf);
        assert!(err.is_err());
        assert!(buf.is_empty(), "failed ops must not push completions");
    }
}
