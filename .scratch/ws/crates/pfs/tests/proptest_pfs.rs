//! Property-based tests of the PFS model.

use proptest::prelude::*;
use sioscope_pfs::{
    AccessPattern, IoMode, IoOp, Outcome, PatternDetector, Pfs, PfsConfig, StripeLayout,
};
use sioscope_sim::{Pid, Time};

proptest! {
    /// Stripe decomposition conserves bytes, keeps every segment
    /// within one stripe unit, maps segments to the round-robin I/O
    /// node, and covers the range contiguously in order.
    #[test]
    fn stripe_segments_conserve_and_cover(
        unit_k in 1u64..256,
        ions in 1u32..64,
        offset in 0u64..10_000_000,
        len in 0u64..5_000_000,
    ) {
        let unit = unit_k * 1024;
        let layout = StripeLayout::new(unit, ions);
        let segs = layout.segments(offset, len);
        let total: u64 = segs.iter().map(|s| s.len).sum();
        prop_assert_eq!(total, len);
        let mut cursor = offset;
        for seg in &segs {
            prop_assert_eq!(seg.offset, cursor, "gap or overlap");
            prop_assert!(seg.len > 0);
            // Never crosses a unit boundary.
            prop_assert_eq!(seg.offset / unit, (seg.offset + seg.len - 1) / unit);
            // Round-robin placement.
            prop_assert_eq!(seg.ion, ((seg.offset / unit) % u64::from(ions)) as u32);
            cursor += seg.len;
        }
        // Fanout never exceeds the I/O node count nor the segment count.
        let fanout = layout.fanout(offset, len);
        prop_assert!(fanout <= ions);
        prop_assert!(fanout as usize <= segs.len().max(1));
    }

    /// Any single-process sequence of open/read/write/seek/close on
    /// one file completes with nondecreasing completion times and
    /// never errors.
    #[test]
    fn single_process_op_sequences_complete(
        ops in prop::collection::vec(0u8..5, 1..60),
        sizes in prop::collection::vec(1u64..300_000, 60),
    ) {
        let mut pfs = Pfs::new(PfsConfig::tiny());
        let f = pfs.create_file_with_size("f", 8 << 20);
        let pid = Pid(0);
        let mut t = Time::ZERO;
        let mut open = false;
        for (i, &op) in ops.iter().enumerate() {
            let size = sizes[i % sizes.len()];
            let io = match op {
                0 => {
                    if open { continue; }
                    open = true;
                    IoOp::Open
                }
                1 => {
                    if !open { continue; }
                    IoOp::Read { size: size.min(1 << 20) }
                }
                2 => {
                    if !open { continue; }
                    IoOp::Write { size: size.min(1 << 20) }
                }
                3 => {
                    if !open { continue; }
                    IoOp::Seek { offset: size % (4 << 20) }
                }
                _ => {
                    if !open { continue; }
                    open = false;
                    IoOp::Close
                }
            };
            match pfs.submit(t, pid, f, &io) {
                Ok(Outcome::Done(cs)) => {
                    prop_assert_eq!(cs.len(), 1);
                    prop_assert!(cs[0].finish >= t, "time went backwards");
                    t = cs[0].finish;
                }
                Ok(Outcome::Blocked) => prop_assert!(false, "single process blocked"),
                Err(e) => prop_assert!(false, "unexpected error: {e}"),
            }
        }
        prop_assert_eq!(pfs.forming_collectives(), 0);
    }

    /// The private file pointer advances by exactly the bytes read or
    /// written, and seeks reposition it exactly.
    #[test]
    fn pointer_semantics(moves in prop::collection::vec((0u8..3, 1u64..100_000), 1..40)) {
        let mut pfs = Pfs::new(PfsConfig::tiny());
        let f = pfs.create_file_with_size("f", 32 << 20);
        let pid = Pid(0);
        let mut t = match pfs.submit(Time::ZERO, pid, f, &IoOp::Open).unwrap() {
            Outcome::Done(cs) => cs[0].finish,
            _ => unreachable!(),
        };
        let mut expected = 0u64;
        for (kind, amount) in moves {
            let io = match kind {
                0 => { expected += amount; IoOp::Read { size: amount } }
                1 => { expected += amount; IoOp::Write { size: amount } }
                _ => { expected = amount; IoOp::Seek { offset: amount } }
            };
            if let Ok(Outcome::Done(cs)) = pfs.submit(t, pid, f, &io) {
                t = cs[0].finish;
            }
            prop_assert_eq!(pfs.file(f).unwrap().private_ptr(pid), expected);
        }
    }

    /// M_GLOBAL collective reads by any group size aggregate to one
    /// transfer: shared pointer advances once per round, and everyone
    /// finishes at the same instant.
    #[test]
    fn mglobal_rounds_aggregate(n in 2u32..12, rounds in 1u32..6, size in 1u64..100_000) {
        let mut pfs = Pfs::new(PfsConfig::tiny());
        let f = pfs.create_file_with_size("g", 64 << 20);
        let gop = IoOp::Gopen { group: n, mode: IoMode::MGlobal, record_size: None };
        let mut t = Time::ZERO;
        for i in 0..n {
            if let Ok(Outcome::Done(cs)) = pfs.submit(Time::ZERO, Pid(i), f, &gop) {
                t = cs[0].finish;
            }
        }
        for round in 1..=rounds {
            let mut finishes = Vec::new();
            for i in 0..n {
                match pfs.submit(t, Pid(i), f, &IoOp::Read { size }).unwrap() {
                    Outcome::Done(cs) => finishes.extend(cs.iter().map(|c| c.finish)),
                    Outcome::Blocked => {}
                }
            }
            prop_assert_eq!(finishes.len(), n as usize);
            let first = finishes[0];
            prop_assert!(finishes.iter().all(|&x| x == first), "synchronized release");
            prop_assert_eq!(pfs.file(f).unwrap().shared_ptr, u64::from(round) * size);
            t = first;
        }
    }

    /// M_RECORD rounds give member `r` the offset `base + r*record`,
    /// disjointly tiling the file.
    #[test]
    fn mrecord_tiles_disjointly(n in 2u32..10, rounds in 1u32..5, rec_k in 1u64..5) {
        let record = rec_k * 64 * 1024;
        let mut pfs = Pfs::new(PfsConfig::tiny());
        let f = pfs.create_file("q");
        let gop = IoOp::Gopen { group: n, mode: IoMode::MRecord, record_size: Some(record) };
        let mut t = Time::ZERO;
        for i in 0..n {
            if let Ok(Outcome::Done(cs)) = pfs.submit(Time::ZERO, Pid(i), f, &gop) {
                t = cs[0].finish;
            }
        }
        let mut offsets = std::collections::HashSet::new();
        for _ in 0..rounds {
            let mut next_t = t;
            for i in 0..n {
                match pfs.submit(t, Pid(i), f, &IoOp::Write { size: record }).unwrap() {
                    Outcome::Done(cs) => {
                        for c in cs {
                            prop_assert!(offsets.insert(c.offset), "offset reused");
                            prop_assert_eq!(c.offset % record, 0);
                            next_t = next_t.max(c.finish);
                        }
                    }
                    Outcome::Blocked => {}
                }
            }
            t = next_t;
        }
        prop_assert_eq!(offsets.len(), (n * rounds) as usize);
        prop_assert_eq!(
            pfs.file(f).unwrap().size,
            u64::from(n) * u64::from(rounds) * record
        );
    }

    /// Whatever the op mix, completions never precede their issue
    /// time, and the file size equals the highest written byte.
    #[test]
    fn size_tracks_highest_write(writes in prop::collection::vec((0u64..1_000_000, 1u64..50_000), 1..30)) {
        let mut pfs = Pfs::new(PfsConfig::tiny());
        let f = pfs.create_file("w");
        let pid = Pid(0);
        let mut t = match pfs.submit(Time::ZERO, pid, f, &IoOp::Open).unwrap() {
            Outcome::Done(cs) => cs[0].finish,
            _ => unreachable!(),
        };
        let mut high = 0u64;
        for (offset, len) in writes {
            if let Ok(Outcome::Done(cs)) =
                pfs.submit(t, pid, f, &IoOp::Seek { offset })
            {
                t = cs[0].finish;
            }
            if let Ok(Outcome::Done(cs)) = pfs.submit(t, pid, f, &IoOp::Write { size: len }) {
                prop_assert!(cs[0].finish >= t);
                t = cs[0].finish;
            }
            high = high.max(offset + len);
        }
        // Close drains any write-behind buffer before we check size.
        pfs.submit(t, pid, f, &IoOp::Close).unwrap();
        prop_assert_eq!(pfs.file(f).unwrap().size, high);
    }
}

proptest! {
    /// Any strictly sequential stream of length >= confidence + 2 is
    /// classified sequential, from any starting offset and with any
    /// (positive) request sizes.
    #[test]
    fn detector_finds_sequential_runs(
        start in 0u64..1_000_000,
        lens in prop::collection::vec(1u64..100_000, 6..40),
    ) {
        let mut d = PatternDetector::new();
        let mut off = start;
        for &len in &lens {
            d.observe(off, len);
            off += len;
        }
        prop_assert_eq!(d.pattern(3), AccessPattern::Sequential);
        prop_assert_eq!(d.sequential_run() as usize, lens.len() - 1);
    }

    /// Constant-stride streams are classified strided, never
    /// sequential.
    #[test]
    fn detector_finds_strides(
        start in 0u64..1_000_000,
        len in 1u64..1_000,
        stride in 1_001u64..50_000,
        n in 6usize..40,
    ) {
        let mut d = PatternDetector::new();
        for i in 0..n as u64 {
            d.observe(start + i * stride, len);
        }
        prop_assert_eq!(d.pattern(3), AccessPattern::Strided);
    }

    /// The detector never reports a run longer than the number of
    /// observations.
    #[test]
    fn detector_run_bounded(offsets in prop::collection::vec((0u64..1_000_000, 1u64..10_000), 0..60)) {
        let mut d = PatternDetector::new();
        for &(off, len) in &offsets {
            d.observe(off, len);
        }
        prop_assert_eq!(d.observations() as usize, offsets.len());
        prop_assert!((d.sequential_run() as usize) < offsets.len().max(1));
    }
}
