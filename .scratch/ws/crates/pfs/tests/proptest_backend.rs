//! Property tests for the modern storage tiers, each checked against
//! a naive in-memory oracle:
//!
//! * the object store's PUT/GET round trip — read-your-writes,
//!   last-writer-wins metadata, monotone object size, and exact
//!   PUT/GET accounting;
//! * the burst buffer's drain — the conservation law
//!   `bytes_logged == bytes_drained + bytes_resident` at every
//!   observation point, and FIFO drain progress matching an oracle
//!   that replays the same entries in submission order (which implies
//!   per-file write order is preserved);
//! * the chaos properties the fault subsystem promises: the
//!   four-term conservation law
//!   `bytes_logged == bytes_drained + bytes_resident + bytes_lost`
//!   under *any* seeded burst fault schedule, and PUT/GET semantic
//!   equivalence under a degraded-service latency window.

use proptest::prelude::*;
use sioscope_faults::{FaultGen, FaultKind, FaultSchedule};
use sioscope_pfs::{
    BurstAbsorb, BurstBuffer, BurstBufferConfig, IoOp, ObjectStore, ObjectStoreConfig, PfsConfig,
    StorageBackend,
};
use sioscope_sim::{FileId, Pid, Time};
use std::collections::BTreeMap;

/// One generated client action, interpreted against live open state.
#[derive(Debug, Clone, Copy)]
enum Action {
    Open,
    Close,
    Seek(u64),
    Put(u64),
    Get(u64),
}

fn action() -> impl Strategy<Value = Action> {
    prop_oneof![
        1 => Just(Action::Open),
        1 => Just(Action::Close),
        2 => (0u64..1 << 16).prop_map(Action::Seek),
        4 => (1u64..1 << 16).prop_map(Action::Put),
        4 => (1u64..1 << 16).prop_map(Action::Get),
    ]
}

fn steps() -> impl Strategy<Value = Vec<(u8, u8, Action)>> {
    proptest::collection::vec((0u8..3, 0u8..2, action()), 1..48)
}

/// The naive oracle: plain maps, no calendars, no timing.
#[derive(Default)]
struct NaiveStore {
    sizes: BTreeMap<u32, u64>,
    pointers: BTreeMap<(u32, u32), u64>,
    last_writer: BTreeMap<u32, u32>,
    puts: u64,
    gets: u64,
}

proptest! {
    #[test]
    fn object_put_get_round_trip_matches_the_naive_oracle(steps in steps()) {
        let mut store = ObjectStore::new(ObjectStoreConfig::modern(4));
        let mut oracle = NaiveStore::default();
        for fid in 0..2u32 {
            store.create_file_with_size(&format!("obj-{fid}"), 0);
            oracle.sizes.insert(fid, 0);
        }
        let mut open: BTreeMap<(u32, u32), bool> = BTreeMap::new();
        let mut now = Time::ZERO;
        let mut last_put: BTreeMap<u32, Time> = BTreeMap::new();

        for &(pid, fid, act) in &steps {
            let key = (fid.into(), pid.into());
            let is_open = open.get(&key).copied().unwrap_or(false);
            // Interpret the action against live state so every submit
            // is legal; the oracle mirrors the interpretation.
            let op = match act {
                Action::Open if is_open => continue,
                Action::Open => IoOp::Open,
                Action::Close if !is_open => continue,
                Action::Close => IoOp::Close,
                _ if !is_open => continue,
                Action::Seek(offset) => IoOp::Seek { offset },
                Action::Put(size) => IoOp::Write { size },
                Action::Get(size) => IoOp::Read { size },
            };
            let mut out = Vec::new();
            store
                .submit_into(now, Pid(pid.into()), FileId(fid.into()), &op, &mut out)
                .expect("interpreted ops are always legal");
            prop_assert_eq!(out.len(), 1);
            let c = out[0];
            prop_assert!(c.finish >= now, "completions never precede submission");
            now = now.max(c.finish);

            match op {
                IoOp::Open => {
                    open.insert(key, true);
                    oracle.pointers.insert(key, 0);
                }
                IoOp::Close => {
                    open.insert(key, false);
                }
                IoOp::Seek { offset } => {
                    oracle.pointers.insert(key, offset);
                }
                IoOp::Write { size } => {
                    let ptr = oracle.pointers[&key];
                    let sz = oracle.sizes.get_mut(&u32::from(fid)).unwrap();
                    // Monotone growth: a PUT never shrinks an object.
                    *sz = (*sz).max(ptr + size);
                    oracle.pointers.insert(key, ptr + size);
                    oracle.last_writer.insert(fid.into(), pid.into());
                    oracle.puts += 1;
                    last_put.insert(fid.into(), c.finish);
                    prop_assert_eq!(c.bytes, size);
                    prop_assert_eq!(c.offset, ptr);
                }
                IoOp::Read { size } => {
                    let ptr = oracle.pointers[&key];
                    let avail = oracle.sizes[&u32::from(fid)].saturating_sub(ptr);
                    let expect = size.min(avail);
                    oracle.pointers.insert(key, ptr + expect);
                    oracle.gets += 1;
                    // Read-your-writes: a GET sees every byte any
                    // completed PUT placed below the size watermark.
                    prop_assert_eq!(c.bytes, expect, "GET truncates at object size");
                    prop_assert_eq!(c.offset, ptr);
                }
                _ => unreachable!(),
            }

            for fid in 0..2u32 {
                let meta = store.object_meta(FileId(fid)).unwrap();
                prop_assert_eq!(meta.size, oracle.sizes[&fid]);
                prop_assert_eq!(
                    meta.last_writer.map(|p| p.0),
                    oracle.last_writer.get(&fid).copied(),
                    "last writer wins"
                );
                if let Some(&t) = last_put.get(&fid) {
                    prop_assert_eq!(meta.mtime, t, "mtime is the last PUT's completion");
                }
            }
        }
        prop_assert_eq!(store.stats().puts, oracle.puts);
        prop_assert_eq!(store.stats().gets, oracle.gets);
    }

    #[test]
    fn burst_drain_conserves_bytes_and_is_fifo(
        writes in proptest::collection::vec((0u8..3, 0u8..2, 1u64..1 << 22), 1..32),
        probe_gap_ns in 0u64..3_000_000_000,
    ) {
        let mut cfg = BurstBufferConfig::over(PfsConfig::tiny());
        cfg.absorb = BurstAbsorb::All;
        let drain_bps = cfg.drain_bandwidth_bps;
        let mut buffer = BurstBuffer::new(cfg);
        for fid in 0..2u32 {
            buffer.create_file_with_size(&format!("log-{fid}"), 0);
        }
        let mut now = Time::ZERO;
        let mut opened: BTreeMap<(u32, u32), bool> = BTreeMap::new();
        // The oracle replays the same entries strictly in submission
        // order: (len, ready). Any reordering in the real drain shows
        // up as a progress mismatch at some probe instant.
        let mut entries: Vec<(u64, Time)> = Vec::new();
        let mut logged = 0u64;

        for &(pid, fid, size) in &writes {
            let (p, f) = (Pid(pid.into()), FileId(fid.into()));
            if !opened.get(&(fid.into(), pid.into())).copied().unwrap_or(false) {
                let mut out = Vec::new();
                buffer.submit_into(now, p, f, &IoOp::Open, &mut out).unwrap();
                opened.insert((fid.into(), pid.into()), true);
            }
            let mut out = Vec::new();
            buffer
                .submit_into(now, p, f, &IoOp::Write { size }, &mut out)
                .unwrap();
            entries.push((size, out[0].finish));
            logged += size;
            let s = buffer.stats();
            prop_assert!(s.conserves_bytes(), "conservation after every append: {s:?}");
            prop_assert_eq!(s.bytes_logged, logged);
            now = now + Time::from_nanos(probe_gap_ns / writes.len() as u64);
        }

        // Probe the lazy drain mid-flight: progress must match the
        // FIFO oracle exactly at an arbitrary instant.
        let probe = now + Time::from_nanos(probe_gap_ns);
        let (pid0, fid0, _) = writes[0];
        let mut out = Vec::new();
        buffer
            .submit_into(probe, Pid(pid0.into()), FileId(fid0.into()), &IoOp::Seek { offset: 0 }, &mut out)
            .unwrap();
        let oracle_drained_by = |t: Time| -> u64 {
            let mut clock = Time::ZERO;
            let mut drained = 0;
            for &(len, ready) in &entries {
                let finish = clock.max(ready)
                    + Time::from_nanos(
                        ((u128::from(len) * 1_000_000_000u128) / u128::from(drain_bps)) as u64,
                    );
                if finish > t {
                    break;
                }
                clock = finish;
                drained += len;
            }
            drained
        };
        let s = buffer.stats();
        prop_assert!(s.conserves_bytes());
        prop_assert_eq!(s.bytes_drained, oracle_drained_by(probe), "FIFO drain progress");

        // Quiesce retires everything; the drain end matches the
        // oracle's full replay.
        let quiet = buffer.quiesce(probe);
        let s = buffer.stats();
        prop_assert!(s.conserves_bytes());
        prop_assert_eq!(s.bytes_logged, logged);
        prop_assert_eq!(s.bytes_drained, logged);
        prop_assert_eq!(s.bytes_resident, 0);
        prop_assert!(quiet >= probe);
        prop_assert!(quiet >= s.drain_complete);
    }

    /// Chaos form of the conservation law: under *any* seeded burst
    /// fault schedule (drain stalls, burst-node crashes), every
    /// logged byte is drained, resident, or lost — at every
    /// observation point and after quiesce — and only a crash may
    /// populate the loss column.
    #[test]
    fn burst_conservation_holds_under_any_seeded_fault_schedule(
        seed in any::<u64>(),
        events in 1usize..6,
        writes in proptest::collection::vec((0u8..3, 1u64..1 << 22), 1..24),
    ) {
        let mut cfg = BurstBufferConfig::over(PfsConfig::tiny());
        cfg.absorb = BurstAbsorb::All;
        let horizon = Time::from_secs(8);
        let io_nodes = cfg.pfs.machine.io_nodes;
        cfg.faults = FaultGen::new(seed, horizon, io_nodes)
            .with_events(events)
            .burst_schedule();
        let crashes = cfg
            .faults
            .events
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::BurstNodeCrash { .. }))
            .count();
        let mut buffer = BurstBuffer::new(cfg);
        let fid = buffer.create_file_with_size("chaos-log", 0);
        let step = horizon.scale(1.0 / (writes.len() as f64 + 1.0));
        let mut now = Time::ZERO;
        let mut opened = [false; 3];
        for &(pid, size) in &writes {
            let p = Pid(pid.into());
            if !opened[pid as usize] {
                let mut out = Vec::new();
                buffer.submit_into(now, p, fid, &IoOp::Open, &mut out).unwrap();
                opened[pid as usize] = true;
            }
            let mut out = Vec::new();
            buffer
                .submit_into(now, p, fid, &IoOp::Write { size }, &mut out)
                .unwrap();
            let s = buffer.stats();
            prop_assert!(s.conserves_bytes(), "conservation after every append: {s:?}");
            now = now + step;
        }
        let quiet = buffer.quiesce(now + horizon);
        let s = buffer.stats();
        prop_assert!(s.conserves_bytes(), "conservation after quiesce: {s:?}");
        prop_assert_eq!(s.bytes_resident, 0, "a quiesced log holds nothing resident");
        if crashes == 0 {
            prop_assert_eq!(s.bytes_lost, 0, "only a burst-node crash loses bytes");
        }
        prop_assert!(quiet >= s.drain_complete);
    }

    /// A degraded-service window taxes PUT/GET latency but must not
    /// change semantics: over any interpreted action sequence, the
    /// degraded store returns the same sizes, offsets, metadata and
    /// op counters as the fault-free store — only its clock runs
    /// behind.
    #[test]
    fn object_put_get_semantics_survive_degraded_latency(steps in steps()) {
        let mut slow_cfg = ObjectStoreConfig::modern(4);
        slow_cfg.faults = FaultSchedule::empty();
        slow_cfg.faults.push(
            Time::ZERO,
            FaultKind::DegradedService {
                duration: Time::from_secs(1 << 20),
                factor: 3.0,
            },
        );
        let mut clean = ObjectStore::new(ObjectStoreConfig::modern(4));
        let mut slow = ObjectStore::new(slow_cfg);
        for fid in 0..2u32 {
            clean.create_file_with_size(&format!("obj-{fid}"), 0);
            slow.create_file_with_size(&format!("obj-{fid}"), 0);
        }
        let mut open: BTreeMap<(u32, u32), bool> = BTreeMap::new();
        let (mut now_clean, mut now_slow) = (Time::ZERO, Time::ZERO);
        for &(pid, fid, act) in &steps {
            let key = (fid.into(), pid.into());
            let is_open = open.get(&key).copied().unwrap_or(false);
            let op = match act {
                Action::Open if is_open => continue,
                Action::Open => {
                    open.insert(key, true);
                    IoOp::Open
                }
                Action::Close if !is_open => continue,
                Action::Close => {
                    open.insert(key, false);
                    IoOp::Close
                }
                _ if !is_open => continue,
                Action::Seek(offset) => IoOp::Seek { offset },
                Action::Put(size) => IoOp::Write { size },
                Action::Get(size) => IoOp::Read { size },
            };
            let (p, f) = (Pid(pid.into()), FileId(fid.into()));
            let mut a = Vec::new();
            clean.submit_into(now_clean, p, f, &op, &mut a).unwrap();
            let mut b = Vec::new();
            slow.submit_into(now_slow, p, f, &op, &mut b).unwrap();
            prop_assert_eq!(a[0].bytes, b[0].bytes, "degraded latency must not change sizes");
            prop_assert_eq!(a[0].offset, b[0].offset, "degraded latency must not move pointers");
            now_clean = now_clean.max(a[0].finish);
            now_slow = now_slow.max(b[0].finish);
        }
        for fid in 0..2u32 {
            let ca = clean.object_meta(FileId(fid)).unwrap();
            let cb = slow.object_meta(FileId(fid)).unwrap();
            prop_assert_eq!(ca.size, cb.size, "object sizes agree");
            prop_assert_eq!(
                ca.last_writer.map(|p| p.0),
                cb.last_writer.map(|p| p.0),
                "last-writer-wins agrees"
            );
        }
        prop_assert_eq!(clean.stats().puts, slow.stats().puts);
        prop_assert_eq!(clean.stats().gets, slow.stats().gets);
        prop_assert!(now_slow >= now_clean, "the degraded clock never runs ahead");
    }
}
