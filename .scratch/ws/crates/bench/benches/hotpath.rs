//! Hot-path microbenchmarks guarding the optimization trajectory
//! recorded in `BENCH_*.json` (see EXPERIMENTS.md § Benchmarks).
//!
//! Four benches, chosen to cover each layer the optimization pass
//! touches:
//!
//! * `calendar_push_pop` — the event queue alone: interleaved
//!   schedule/pop of a large synthetic event population, the inner
//!   loop of every simulation.
//! * `escat_c_single_run` — one cold ESCAT version-C run end-to-end
//!   (workload build + simulate), the PFS server hot path.
//! * `full_registry_cold` — all 25 registry experiments with the run
//!   memoization caches cleared every iteration; this is the headline
//!   number the ≥1.5× acceptance bar is measured on.
//! * `fault_engaged_run` — a PRISM run under an injected fault
//!   schedule, exercising the resilience ladder and timeline scaling.
//!
//! A second group, `analysis`, measures the trace analytics engine on
//! a 120k-event synthetic trace: the one-time `TraceIndex` build, the
//! window and region summary queries both as naive scans and through
//! the index (the before/after pair the indexed path is judged on),
//! and a full indexed characterization pass.
//!
//! A third group, `sched`, measures the batch scheduler: raw 2-D
//! partition allocator churn on a 512-node mesh, and a 64-job
//! contention schedule end-to-end through the multi-job driver.
//!
//! Capture results into a numbered baseline with
//! `scripts/capture_bench.sh` after running
//! `cargo bench -p sioscope-bench --bench hotpath`.

use criterion::{criterion_group, criterion_main, Criterion};
use sioscope::experiments::{clear_run_caches, contention, run_experiment, Experiment, Scale};
use sioscope::schedule::run_schedule;
use sioscope::simulator::{run, SimOptions};
use sioscope_faults::{FaultGen, FaultSchedule};
use sioscope_pfs::{IoMode, OpKind, PfsConfig};
use sioscope_sched::{AllocPolicy, Partition, PartitionAllocator, QueuePolicy};
use sioscope_sim::{DetRng, EventQueue, FileId, Pid, Time};
use sioscope_trace::{FileRegionSummary, IoEvent, TimeWindowSummary, TraceIndex};
use std::hint::black_box;

/// Interleaved schedule/pop against a queue preloaded with `n` events:
/// repeatedly pop the earliest event and schedule a replacement at a
/// pseudorandom (deterministic) future time, like a simulation step.
fn calendar_churn(n: usize, steps: usize) -> u64 {
    let mut q: EventQueue<u64> = EventQueue::new();
    let mut rng = DetRng::new(0xC0FFEE);
    for i in 0..n {
        q.schedule(Time::from_nanos(rng.range_inclusive(0, 999_999)), i as u64);
    }
    let mut acc = 0u64;
    for _ in 0..steps {
        let ev = q.pop().expect("queue never drains");
        acc = acc.wrapping_add(ev.payload);
        let dt = Time::from_nanos(rng.range_inclusive(1, 9_999));
        q.schedule_after(dt, ev.payload);
    }
    acc
}

fn bench_calendar(c: &mut Criterion) {
    let mut group = c.benchmark_group("hotpath");
    group.bench_function("calendar_push_pop", |b| {
        b.iter(|| black_box(calendar_churn(black_box(4096), black_box(100_000))))
    });
    group.finish();
}

fn bench_escat_c(c: &mut Criterion) {
    use sioscope_workloads::{EscatConfig, EscatVersion};
    let workload = EscatConfig::tiny(EscatVersion::C).build();
    let mut group = c.benchmark_group("hotpath");
    group.bench_function("escat_c_single_run", |b| {
        b.iter(|| {
            let cfg = PfsConfig::caltech(workload.nodes, workload.os);
            black_box(run(&workload, cfg, SimOptions::default()).expect("runs"))
        })
    });
    group.finish();
}

fn bench_full_registry(c: &mut Criterion) {
    let mut group = c.benchmark_group("hotpath");
    group.sample_size(10);
    group.bench_function("full_registry_cold", |b| {
        b.iter(|| {
            clear_run_caches();
            for e in Experiment::all() {
                black_box(run_experiment(black_box(e), Scale::Smoke));
            }
        })
    });
    group.finish();
}

fn bench_fault_engaged(c: &mut Criterion) {
    use sioscope_workloads::{PrismConfig, PrismVersion};
    let workload = PrismConfig::tiny(PrismVersion::B).build();
    let healthy_cfg = PfsConfig::caltech(workload.nodes, workload.os);
    let horizon = run(&workload, healthy_cfg.clone(), SimOptions::default())
        .expect("healthy run")
        .exec_time;
    let mut cfg = PfsConfig::caltech(workload.nodes, workload.os);
    cfg.faults = FaultGen::new(0xF417, horizon, cfg.machine.io_nodes)
        .with_events(8)
        .schedule();
    let mut group = c.benchmark_group("hotpath");
    group.bench_function("fault_engaged_run", |b| {
        b.iter(|| black_box(run(&workload, cfg.clone(), SimOptions::default()).expect("runs")))
    });
    group.finish();
}

/// A deterministic synthetic trace large enough (120k events) that
/// the indexed queries' asymptotic advantage over the naive scans is
/// unambiguous, with the kind/file/pid mix of a real workload trace.
fn synthetic_trace(n: usize) -> Vec<IoEvent> {
    let mut rng = DetRng::new(0x51055C09);
    let mut events = Vec::with_capacity(n);
    for _ in 0..n {
        let kind = match rng.range_inclusive(0, 9) {
            0 => OpKind::Open,
            1 => OpKind::Gopen,
            2..=5 => OpKind::Read,
            6 => OpKind::Seek,
            7 | 8 => OpKind::Write,
            _ => OpKind::Close,
        };
        let data = matches!(kind, OpKind::Read | OpKind::Write);
        events.push(IoEvent {
            pid: Pid(rng.range_inclusive(0, 63) as u32),
            file: FileId(rng.range_inclusive(0, 15) as u32),
            kind,
            start: Time::from_nanos(rng.range_inclusive(0, 600_000_000_000)),
            duration: Time::from_nanos(rng.range_inclusive(1_000, 40_000_000)),
            bytes: if data {
                rng.range_inclusive(64, 262_144)
            } else {
                0
            },
            offset: if data {
                rng.range_inclusive(0, 1 << 34)
            } else {
                0
            },
            mode: IoMode::MUnix,
        });
    }
    events
}

/// The query mix both window benches run: 64 windows spread across
/// the trace's 600 s span, from 100 ms slices up to 10 s slices.
fn window_queries() -> Vec<(Time, Time)> {
    (0..64u64)
        .map(|i| {
            let t0 = Time::from_nanos(i * 9_000_000_000);
            let len = Time::from_millis(100 + (i % 10) * 990);
            (t0, t0.saturating_add(len))
        })
        .collect()
}

/// The query mix both region benches run: 64 byte ranges per file
/// across the 16 GiB offset space.
fn region_queries() -> Vec<(FileId, u64, u64)> {
    (0..64u64)
        .map(|i| {
            let lo = i * (1 << 28);
            (FileId((i % 16) as u32), lo, lo + (1 << 27))
        })
        .collect()
}

fn bench_analysis(c: &mut Criterion) {
    let events = synthetic_trace(120_000);
    let index = TraceIndex::build(&events);
    let windows = window_queries();
    let regions = region_queries();

    let mut group = c.benchmark_group("analysis");
    group.bench_function("index_build", |b| {
        b.iter(|| black_box(TraceIndex::build(black_box(&events))))
    });
    group.bench_function("window_query_scan", |b| {
        b.iter(|| {
            for &(t0, t1) in &windows {
                black_box(TimeWindowSummary::build(black_box(&events), t0, t1));
            }
        })
    });
    group.bench_function("window_query_indexed", |b| {
        b.iter(|| {
            for &(t0, t1) in &windows {
                black_box(TimeWindowSummary::from_index(black_box(&index), t0, t1));
            }
        })
    });
    group.bench_function("region_query_scan", |b| {
        b.iter(|| {
            for &(f, lo, hi) in &regions {
                black_box(FileRegionSummary::build(black_box(&events), f, lo, hi));
            }
        })
    });
    group.bench_function("region_query_indexed", |b| {
        b.iter(|| {
            for &(f, lo, hi) in &regions {
                black_box(FileRegionSummary::from_index(black_box(&index), f, lo, hi));
            }
        })
    });
    // The end-to-end analytics cost of a characterize/report run:
    // build the index once, then answer the full §6 query battery
    // from it — what every multi-query consumer now pays.
    group.bench_function("characterize_full", |b| {
        use sioscope_analysis::{
            detect_phases_indexed, interarrival, BandwidthSeries, Cdf, ConcurrencyProfile,
            LogHistogram, ModeUsage, NodeBalance,
        };
        b.iter(|| {
            let idx = TraceIndex::build(black_box(&events));
            black_box(Cdf::of_kind(&idx, OpKind::Read));
            black_box(Cdf::of_kind(&idx, OpKind::Write));
            black_box(LogHistogram::of_kind(&idx, OpKind::Read));
            black_box(ConcurrencyProfile::from_index(&idx));
            black_box(NodeBalance::from_index(&idx));
            black_box(ModeUsage::from_index(&idx));
            black_box(detect_phases_indexed(&idx, Time::from_secs(30)));
            black_box(interarrival::per_process_indexed(&idx));
            black_box(BandwidthSeries::from_index(&idx, Time::from_secs(10)));
        })
    });
    group.finish();
}

/// Allocator churn: fill a 16×32 mesh with mixed-size partitions,
/// then repeatedly free one and allocate a replacement — the
/// fragmentation/coalescing pattern a long-running scheduler sees.
fn alloc_churn(policy: AllocPolicy, steps: usize) -> u32 {
    let mut alloc = PartitionAllocator::new(16, 32, 512, policy);
    let mut rng = DetRng::new(0xA110C);
    let sizes = [4u32, 8, 16, 32, 64];
    let mut held: Vec<Partition> = Vec::new();
    let mut acc = 0u32;
    for _ in 0..steps {
        if !held.is_empty() && (held.len() >= 24 || rng.range_inclusive(0, 1) == 0) {
            let victim = rng.range_inclusive(0, held.len() as u64 - 1) as usize;
            alloc.free(&held.swap_remove(victim));
        }
        let n = sizes[rng.range_inclusive(0, sizes.len() as u64 - 1) as usize];
        if let Some(p) = alloc.allocate(n) {
            acc = acc.wrapping_add(p.x + p.y * 32 + p.nodes);
            held.push(p);
        }
    }
    for p in &held {
        alloc.free(p);
    }
    acc
}

fn bench_sched(c: &mut Criterion) {
    let mut group = c.benchmark_group("sched");
    group.bench_function("alloc_churn_512", |b| {
        b.iter(|| {
            black_box(alloc_churn(
                black_box(AllocPolicy::BestFit),
                black_box(10_000),
            ))
        })
    });

    // A 64-job Poisson contention mix scheduled end-to-end: arrival
    // generation, partition placement, the shared-PFS event loop, and
    // the per-job stats/trace assembly.
    let mut stream = contention::bench_stream();
    stream.count = 64;
    let cfg = contention::bench_machine();
    group.sample_size(10);
    group.bench_function("contention_run_64_jobs", |b| {
        b.iter(|| {
            black_box(
                run_schedule(
                    black_box(&stream),
                    QueuePolicy::EasyBackfill,
                    AllocPolicy::FirstFit,
                    &FaultSchedule::empty(),
                    cfg.clone(),
                    SimOptions::default(),
                )
                .expect("schedules"),
            )
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_calendar,
    bench_escat_c,
    bench_full_registry,
    bench_fault_engaged,
    bench_analysis,
    bench_sched
);
criterion_main!(benches);
