//! Microbenchmarks of the discrete-event kernel.

use criterion::{criterion_group, criterion_main, Criterion};
use sioscope_sim::{Calendar, DetRng, EventQueue, Pid, RendezvousTable, Time};
use std::hint::black_box;

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("event-queue");
    group.bench_function("schedule-pop-1k", |b| {
        b.iter(|| {
            let mut q: EventQueue<u32> = EventQueue::new();
            for i in 0..1000u32 {
                q.schedule(Time::from_nanos(u64::from(i.wrapping_mul(2654435761))), i);
            }
            let mut acc = 0u64;
            while let Some(e) = q.pop() {
                acc = acc.wrapping_add(u64::from(e.payload));
            }
            black_box(acc)
        })
    });
    group.finish();
}

fn bench_calendar(c: &mut Criterion) {
    c.bench_function("calendar-reserve", |b| {
        let mut cal = Calendar::new();
        let mut t = Time::ZERO;
        b.iter(|| {
            let r = cal.reserve(t, Time::from_micros(10));
            t = r.finish;
            black_box(r)
        })
    });
}

fn bench_rendezvous(c: &mut Criterion) {
    c.bench_function("rendezvous-128", |b| {
        let mut table = RendezvousTable::new();
        let mut key = 0u64;
        b.iter(|| {
            key += 1;
            for i in 0..128 {
                black_box(table.arrive(key, Pid(i), Time::ZERO, 128));
            }
        })
    });
}

fn bench_rng(c: &mut Criterion) {
    c.bench_function("detrng-jitter", |b| {
        let mut rng = DetRng::new(42);
        b.iter(|| black_box(rng.jitter(Time::from_secs(10), 0.2)))
    });
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_calendar,
    bench_rendezvous,
    bench_rng
);
criterion_main!(benches);
