//! Ablation benchmarks for the design choices DESIGN.md calls out:
//! each §7 policy (and the adaptive selector) against the measured
//! PFS, timed on the synthetic kernels that exercise it.
//!
//! Criterion times the *simulation* of each configuration; the
//! simulated I/O-time improvements themselves are asserted by the
//! ablation experiments (`repro ablation-*`). Benchmarking here keeps
//! the policy machinery's simulation overhead visible: a policy that
//! made simulation 10× slower would be caught even if its simulated
//! results were good.

use criterion::{criterion_group, criterion_main, Criterion};
use sioscope::simulator::{run, SimOptions};
use sioscope_pfs::{PfsConfig, PolicyConfig};
use sioscope_workloads::synthetic::{
    collective_reload, log_append, sequential_scan, staging_pipeline, KernelConfig,
};
use sioscope_workloads::Workload;
use std::hint::black_box;

fn run_with(w: &Workload, policy: PolicyConfig) -> sioscope::simulator::RunResult {
    let mut cfg = PfsConfig::caltech(w.nodes, w.os);
    cfg.policy = policy;
    run(w, cfg, SimOptions::default()).expect("kernel runs")
}

fn bench_policies(c: &mut Criterion) {
    let mut kcfg = KernelConfig::small();
    kcfg.request = 8 << 10;
    let scan = sequential_scan(&kcfg);

    let mut group = c.benchmark_group("policy-on-sequential-scan");
    group.sample_size(10);
    for (name, policy) in [
        ("measured", PolicyConfig::measured_pfs()),
        ("prefetch", PolicyConfig::prefetch_only()),
        ("aggregation", PolicyConfig::aggregation_only()),
        ("write-behind", PolicyConfig::write_behind_only()),
        ("recommended", PolicyConfig::recommended()),
        ("adaptive", PolicyConfig::adaptive()),
    ] {
        group.bench_function(name, |b| b.iter(|| black_box(run_with(&scan, policy))));
    }
    group.finish();
}

fn bench_kernels(c: &mut Criterion) {
    let kcfg = KernelConfig::small();
    let mut group = c.benchmark_group("synthetic-kernel");
    group.sample_size(10);
    for w in [
        sequential_scan(&kcfg),
        collective_reload(&kcfg),
        log_append(&kcfg),
        staging_pipeline(&kcfg),
    ] {
        let name = w.name.trim_start_matches("synthetic/").to_string();
        group.bench_function(name, |b| {
            b.iter(|| black_box(run_with(&w, PolicyConfig::measured_pfs())))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_policies, bench_kernels);
criterion_main!(benches);
