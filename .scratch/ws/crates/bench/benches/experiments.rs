//! One Criterion benchmark per paper artifact: each bench regenerates
//! the table or figure end-to-end (workload generation, simulation,
//! analysis) and reports how long the reproduction takes.
//!
//! Absolute 1996 runtimes are not the target (our substrate is a
//! simulator); these benches track the *reproduction cost* of every
//! artifact so regressions in the simulator or analysis pipeline are
//! caught.
//!
//! The ablation benches additionally report the measured I/O-time
//! speedup of each §7 design principle via `eprintln!` once per run.

use criterion::{criterion_group, criterion_main, Criterion};
use sioscope::experiments::{run_experiment, Experiment, Scale};
use std::hint::black_box;

/// The experiment runners memoize full-scale runs; benchmarking the
/// memoized path would measure a cache lookup. Each iteration instead
/// re-renders from the cached runs — the analysis pipeline — after one
/// warm-up call populates the cache. The `cold` benches below measure
/// the full simulate+analyze path for one representative artifact per
/// application.
fn bench_artifacts(c: &mut Criterion) {
    let mut group = c.benchmark_group("artifact");
    group.sample_size(10);
    for e in Experiment::all() {
        // The ablation/counterfactual experiments re-simulate on every
        // call (they compare policy variants, which the per-version
        // run cache deliberately does not cover); time those at smoke
        // scale so a bench run stays affordable. The tables and
        // figures are verified and timed at full paper scale.
        let scale = if e.id().starts_with("ablation") {
            Scale::Smoke
        } else {
            Scale::Full
        };
        // Warm the run caches once so per-iteration time is the
        // analysis cost (and assert the artifact is healthy).
        let out = run_experiment(e, scale);
        if scale == Scale::Full {
            assert!(
                out.all_pass(),
                "{} failed shape checks: {:?}",
                e.id(),
                out.failures()
            );
        }
        group.bench_function(e.id(), |b| {
            b.iter(|| black_box(run_experiment(black_box(e), scale)))
        });
    }
    group.finish();
}

/// Full cold-path reproduction (simulation included) at smoke scale,
/// isolating simulator throughput per experiment family. Smoke scale
/// keeps Criterion's repeated iterations affordable; the `repro`
/// binary exercises the full-scale cold path.
fn bench_cold_smoke(c: &mut Criterion) {
    use sioscope::simulator::{run, SimOptions};
    use sioscope_pfs::PfsConfig;
    use sioscope_workloads::{EscatConfig, EscatVersion, PrismConfig, PrismVersion};

    let mut group = c.benchmark_group("cold-smoke");
    group.sample_size(10);
    for v in [EscatVersion::A, EscatVersion::B, EscatVersion::C] {
        group.bench_function(format!("escat-{}", v.label()), |b| {
            b.iter(|| {
                let w = EscatConfig::tiny(v).build();
                let cfg = PfsConfig::caltech(w.nodes, w.os);
                black_box(run(&w, cfg, SimOptions::default()).expect("runs"))
            })
        });
    }
    for v in PrismVersion::all() {
        group.bench_function(format!("prism-{}", v.label()), |b| {
            b.iter(|| {
                let w = PrismConfig::tiny(v).build();
                let cfg = PfsConfig::caltech(w.nodes, w.os);
                black_box(run(&w, cfg, SimOptions::default()).expect("runs"))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_artifacts, bench_cold_smoke);
criterion_main!(benches);
