//! Microbenchmarks of the PFS fast paths: the per-operation costs that
//! bound whole-study simulation throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use sioscope_pfs::{IoMode, IoOp, Outcome, Pfs, PfsConfig, StripeLayout};
use sioscope_sim::{Pid, Time};
use std::hint::black_box;

fn bench_stripe(c: &mut Criterion) {
    let layout = StripeLayout::paragon_default();
    let mut group = c.benchmark_group("stripe");
    group.bench_function("segments-small", |b| {
        b.iter(|| black_box(layout.segments(black_box(12345), black_box(2048))))
    });
    group.bench_function("segments-2stripes", |b| {
        b.iter(|| black_box(layout.segments(black_box(0), black_box(128 * 1024))))
    });
    group.bench_function("segments-1MB-unaligned", |b| {
        b.iter(|| black_box(layout.segments(black_box(777), black_box(1 << 20))))
    });
    group.finish();
}

fn bench_data_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("pfs-data-path");

    // Buffered small reads: mostly client cache hits.
    group.bench_function("read-cached-2k", |b| {
        let mut pfs = Pfs::new(PfsConfig::tiny());
        let f = pfs.create_file_with_size("data", 1 << 30);
        let mut t = match pfs.submit(Time::ZERO, Pid(0), f, &IoOp::Open).unwrap() {
            Outcome::Done(cs) => cs[0].finish,
            _ => unreachable!(),
        };
        b.iter(|| {
            let out = pfs
                .submit(t, Pid(0), f, &IoOp::Read { size: 2048 })
                .expect("read");
            if let Outcome::Done(cs) = out {
                t = cs[0].finish;
            }
            black_box(t)
        })
    });

    // Direct M_ASYNC writes.
    group.bench_function("write-masync-2k", |b| {
        let mut pfs = Pfs::new(PfsConfig::tiny());
        let f = pfs.create_file("out");
        let gop = IoOp::Gopen {
            group: 1,
            mode: IoMode::MAsync,
            record_size: None,
        };
        let mut t = match pfs.submit(Time::ZERO, Pid(0), f, &gop).unwrap() {
            Outcome::Done(cs) => cs[0].finish,
            _ => unreachable!(),
        };
        b.iter(|| {
            let out = pfs
                .submit(t, Pid(0), f, &IoOp::Write { size: 2048 })
                .expect("write");
            if let Outcome::Done(cs) = out {
                t = cs[0].finish;
            }
            black_box(t)
        })
    });

    // A full M_RECORD collective round across 8 members.
    group.bench_function("mrecord-round-8x128k", |b| {
        let mut pfs = Pfs::new(PfsConfig::tiny());
        let f = pfs.create_file_with_size("quad", 1 << 30);
        let rec = 128 * 1024;
        let gop = IoOp::Gopen {
            group: 8,
            mode: IoMode::MRecord,
            record_size: Some(rec),
        };
        let mut t = Time::ZERO;
        for i in 0..8 {
            if let Outcome::Done(cs) = pfs.submit(Time::ZERO, Pid(i), f, &gop).unwrap() {
                t = cs[0].finish;
            }
        }
        b.iter(|| {
            let mut end = t;
            for i in 0..8 {
                if let Outcome::Done(cs) = pfs
                    .submit(t, Pid(i), f, &IoOp::Read { size: rec })
                    .expect("collective read")
                {
                    end = cs.iter().map(|c| c.finish).max().unwrap_or(end);
                }
            }
            t = end;
            black_box(end)
        })
    });

    group.finish();
}

criterion_group!(benches, bench_stripe, bench_data_paths);
criterion_main!(benches);
