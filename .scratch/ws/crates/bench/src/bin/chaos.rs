//! Seeded chaos/soak harness: fuzz fault schedules across the three
//! storage tiers plus the streaming pipeline and hold every run to
//! the fault subsystem's hard invariants (byte conservation, golden
//! bit-identity, hook neutrality, replay identity, recovery-TTS
//! sanity; for the stream tier: queue-ledger conservation, replay
//! identity, crash monotonicity, unbounded-queue equivalence).
//!
//! ```text
//! # The CI chaos-smoke budget: 64 schedules x 4 tiers.
//! cargo run -p sioscope-bench --bin chaos --release -- \
//!     --seeds 64 --out artifacts/chaos-verdicts.txt
//! # One tier, a different seed window:
//! cargo run -p sioscope-bench --bin chaos --release -- \
//!     --tiers stream --start 1000 --seeds 16
//! ```
//!
//! Exit codes follow the repro contract: `0` every case passed, `2`
//! unusable arguments, `3` an I/O failure, `4` the soak ran but at
//! least one invariant was violated. The verdict artifact is plain
//! text, one `PASS`/`FAIL` line per (tier, seed) case with any
//! violations indented beneath it — deterministic bytes for a given
//! seed window, so CI can diff soaks across commits.

use sioscope::chaos::{chaos_soak, parse_golden_baseline, ChaosTier, ChaosVerdict};
use sioscope_bench::{exit_with, write_atomic, CliError};
use std::collections::BTreeMap;
use std::path::PathBuf;

const USAGE: &str = "usage: chaos [--seeds N] [--start S] [--tiers pfs,object,burst,stream] [--golden FILE] [--out FILE]";

struct Cli {
    seeds: u64,
    start: u64,
    tiers: Vec<ChaosTier>,
    golden: Option<PathBuf>,
    out: Option<PathBuf>,
}

fn parse(args: &[String]) -> Result<Cli, CliError> {
    let mut cli = Cli {
        seeds: 64,
        start: 0,
        tiers: ChaosTier::all(),
        golden: None,
        out: None,
    };
    let mut i = 0;
    let value_of = |args: &[String], i: &mut usize, flag: &str| -> Result<String, CliError> {
        *i += 1;
        args.get(*i)
            .cloned()
            .ok_or_else(|| CliError::BadArgs(format!("{flag} requires a value\n{USAGE}")))
    };
    while i < args.len() {
        let a = &args[i];
        if a == "--seeds" {
            let v = value_of(args, &mut i, "--seeds")?;
            cli.seeds = v
                .parse()
                .map_err(|_| CliError::BadArgs(format!("bad --seeds value `{v}`")))?;
            if cli.seeds == 0 {
                return Err(CliError::BadArgs("--seeds must be >= 1".into()));
            }
        } else if a == "--start" {
            let v = value_of(args, &mut i, "--start")?;
            cli.start = v
                .parse()
                .map_err(|_| CliError::BadArgs(format!("bad --start value `{v}`")))?;
        } else if a == "--tiers" {
            let v = value_of(args, &mut i, "--tiers")?;
            cli.tiers = v
                .split(',')
                .filter(|t| !t.is_empty())
                .map(|t| {
                    ChaosTier::from_id(t).ok_or_else(|| {
                        CliError::BadArgs(format!(
                            "unknown tier `{t}` (expected one of: pfs, object, burst, stream)"
                        ))
                    })
                })
                .collect::<Result<_, _>>()?;
            if cli.tiers.is_empty() {
                return Err(CliError::BadArgs("--tiers selected no tier".into()));
            }
        } else if a == "--golden" {
            cli.golden = Some(PathBuf::from(value_of(args, &mut i, "--golden")?));
        } else if a == "--out" {
            cli.out = Some(PathBuf::from(value_of(args, &mut i, "--out")?));
        } else {
            return Err(CliError::BadArgs(format!(
                "unknown argument `{a}`\n{USAGE}"
            )));
        }
        i += 1;
    }
    Ok(cli)
}

fn real_main() -> Result<(), CliError> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = parse(&args)?;

    // The committed fault-free fingerprints, when available: an
    // explicit --golden path, else the repo-layout default. The soak
    // still runs without them (every other invariant is intrinsic).
    let golden_path = cli.golden.clone().or_else(|| {
        let default = PathBuf::from("tests/golden/backend_baseline.txt");
        default.is_file().then_some(default)
    });
    let golden: Option<BTreeMap<String, String>> = match &golden_path {
        Some(p) => {
            let text = std::fs::read_to_string(p).map_err(|e| CliError::io(p, e))?;
            Some(parse_golden_baseline(&text))
        }
        None => None,
    };

    let tier_ids: Vec<&str> = cli.tiers.iter().map(|t| t.id()).collect();
    println!(
        "chaos soak: {} schedules x {} tiers ({}), seeds [{}, {}){}",
        cli.seeds,
        cli.tiers.len(),
        tier_ids.join(", "),
        cli.start,
        cli.start + cli.seeds,
        match &golden_path {
            Some(p) => format!(", golden baseline {}", p.display()),
            None => ", no golden baseline".to_string(),
        }
    );

    let verdicts = chaos_soak(&cli.tiers, cli.start, cli.seeds, golden.as_ref());
    let failures: Vec<&ChaosVerdict> = verdicts.iter().filter(|v| !v.pass()).collect();

    let mut artifact = String::new();
    for v in &verdicts {
        artifact.push_str(&v.render());
        artifact.push('\n');
    }
    artifact.push_str(&format!(
        "summary: {} cases, {} passed, {} failed\n",
        verdicts.len(),
        verdicts.len() - failures.len(),
        failures.len()
    ));
    if let Some(out) = &cli.out {
        if let Some(dir) = out.parent().filter(|d| !d.as_os_str().is_empty()) {
            std::fs::create_dir_all(dir).map_err(|e| CliError::io(dir, e))?;
        }
        write_atomic(out, &artifact)?;
        println!(
            "wrote {} verdict lines to {}",
            verdicts.len(),
            out.display()
        );
    }

    for v in &failures {
        eprintln!("{}", v.render());
    }
    println!(
        "chaos soak: {}/{} cases passed",
        verdicts.len() - failures.len(),
        verdicts.len()
    );
    if !failures.is_empty() {
        return Err(CliError::GoldenMismatch(format!(
            "{} of {} chaos cases violated an invariant",
            failures.len(),
            verdicts.len()
        )));
    }
    Ok(())
}

fn main() {
    if let Err(e) = real_main() {
        exit_with(e);
    }
}
