//! Offline trace characterization — the Pablo post-processing toolkit
//! as a command-line tool.
//!
//! ```text
//! # Simulate and export a trace:
//! cargo run -p sioscope-bench --bin characterize --release -- --demo trace.siot
//! # The same request stream through a modern tier:
//! cargo run -p sioscope-bench --bin characterize --release -- --backend object --demo trace.siot
//! # Fault-engaged demo (tier-checked; prints resilience counters):
//! cargo run -p sioscope-bench --bin characterize --release -- --backend object --faults md-shard-outage@0.3 --demo trace.siot
//! # Characterize any exported trace (binary .siot or .json):
//! cargo run -p sioscope-bench --bin characterize --release -- trace.siot
//! ```
//!
//! Prints the full §6 characterization: request-size distribution
//! (histogram + CDF landmarks), I/O parallelism (concurrency, node
//! balance), access-mode usage, Miller–Katz classification, detected
//! phases, and windowed bandwidth/burstiness.

use sioscope_analysis::classify::class_totals;
use sioscope_analysis::{
    classify_all, detect_phases_indexed, phases, BandwidthSeries, Cdf, ConcurrencyProfile,
    LogHistogram, ModeUsage, NodeBalance,
};
use sioscope_bench::{exit_with, CliError};
use sioscope_pfs::OpKind;
use sioscope_sim::{Pid, Time};
use sioscope_trace::TraceRecorder;
use std::path::Path;

fn load(path: &Path) -> TraceRecorder {
    let result = if path.extension().and_then(|e| e.to_str()) == Some("json") {
        sioscope_trace::export::read_file(path)
    } else {
        sioscope_trace::binary::read_file(path)
    };
    result.unwrap_or_else(|e| exit_with(CliError::io(path, e)))
}

fn write_demo(path: &Path, backend: sioscope_pfs::BackendKind, fault_spec: Option<&str>) {
    use sioscope::simulator::{run_backend, SimOptions};
    use sioscope_bench::{fault_mismatch_error, parse_fault_spec};
    use sioscope_faults::FaultSchedule;
    use sioscope_pfs::{
        BackendConfig, BackendKind, BurstBufferConfig, ObjectStoreConfig, PfsConfig,
    };
    use sioscope_workloads::{EscatConfig, EscatVersion};
    let w = EscatConfig::tiny(EscatVersion::B).build();
    let cfg = |faults: FaultSchedule| match backend {
        BackendKind::Pfs => {
            let mut c = PfsConfig::caltech(w.nodes, w.os);
            c.faults = faults;
            BackendConfig::Pfs(c)
        }
        BackendKind::Object => {
            let mut c = ObjectStoreConfig::modern(w.nodes);
            c.faults = faults;
            BackendConfig::Object(c)
        }
        BackendKind::Burst => {
            let mut c = BurstBufferConfig::over(PfsConfig::caltech(w.nodes, w.os));
            c.faults = faults;
            BackendConfig::Burst(c)
        }
    };
    let faults = match fault_spec {
        None => FaultSchedule::empty(),
        Some(spec) => {
            // The horizon the spec's fractional placements scale to:
            // the fault-free run of the same demo.
            let horizon = run_backend(&w, &cfg(FaultSchedule::empty()), SimOptions::default())
                .expect("fault-free demo run")
                .exec_time;
            let faults = parse_fault_spec(spec, horizon).unwrap_or_else(|e| exit_with(e));
            // Fail fast, exit 2, naming the tier's valid fault set —
            // before any faulted simulation runs.
            let problems = cfg(faults.clone()).validate_faults(w.nodes);
            if !problems.is_empty() {
                exit_with(fault_mismatch_error(backend, &problems));
            }
            faults
        }
    };
    let r = run_backend(&w, &cfg(faults), SimOptions::default()).expect("demo runs");
    if let Err(e) = sioscope_trace::binary::write_file(&r.trace, path) {
        exit_with(CliError::io(path, e));
    }
    println!(
        "wrote demo trace ({} events from {} on the {} tier) to {}",
        r.trace.len(),
        r.name,
        backend.id(),
        path.display()
    );
    if fault_spec.is_some() {
        // Per-tier resilience counters: on the object tier these are
        // the metadata failover ladder, on the burst tier the
        // write-through fallback, on the PFS the retry/reroute policy.
        let z = r.resilience;
        println!(
            "resilience ({} tier): {} timeouts, {} retries, {} reroutes, {} degraded reads, {} aborts, {} writethroughs ({} fault transitions)",
            backend.id(),
            z.timeouts,
            z.retries,
            z.reroutes,
            z.degraded_reads,
            z.aborts,
            z.writethroughs,
            r.fault_transitions,
        );
        let s = r.backend_stats;
        if backend == BackendKind::Burst {
            println!(
                "burst ledger: {} B logged = {} drained + {} resident + {} lost; {} passthrough ops",
                s.bytes_logged, s.bytes_drained, s.bytes_resident, s.bytes_lost, s.passthrough_ops
            );
        }
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // --backend <id> selects the storage tier the --demo simulation
    // runs against (characterization itself is tier-agnostic).
    let mut backend = sioscope_pfs::BackendKind::Pfs;
    if let Some(i) = args.iter().position(|a| a == "--backend") {
        let id = match args.get(i + 1) {
            Some(id) => id.clone(),
            None => exit_with(CliError::BadArgs(
                "--backend requires a tier id (pfs, object, burst)".into(),
            )),
        };
        backend = match sioscope_pfs::BackendKind::from_id(&id) {
            Some(b) => b,
            None => exit_with(CliError::BadArgs(format!(
                "unknown backend `{id}` (expected one of: pfs, object, burst)"
            ))),
        };
        args.drain(i..=i + 1);
    }
    // --faults <spec> injects a fault schedule into the --demo run:
    // a comma list of label@frac events (e.g. `ion-crash@0.3`), each
    // validated against the chosen tier's fault vocabulary before
    // anything simulates.
    let mut fault_spec: Option<String> = None;
    if let Some(i) = args.iter().position(|a| a == "--faults") {
        match args.get(i + 1) {
            Some(spec) => fault_spec = Some(spec.clone()),
            None => exit_with(CliError::BadArgs(
                "--faults requires a schedule spec (label@frac, comma-separated)".into(),
            )),
        }
        args.drain(i..=i + 1);
    }
    if args.is_empty() {
        exit_with(CliError::BadArgs(
            "usage: characterize [--backend <pfs|object|burst>] [--faults <label@frac,...>] [--demo] <trace.siot|trace.json>"
                .into(),
        ));
    }
    let (demo, path) = if args[0] == "--demo" {
        match args.get(1) {
            Some(p) => (true, Path::new(p).to_path_buf()),
            None => exit_with(CliError::BadArgs("--demo requires an output path".into())),
        }
    } else {
        (false, Path::new(&args[0]).to_path_buf())
    };
    if fault_spec.is_some() && !demo {
        exit_with(CliError::BadArgs(
            "--faults only applies to a --demo simulation (an exported trace has no fault process)"
                .into(),
        ));
    }
    if demo {
        write_demo(&path, backend, fault_spec.as_deref());
    }
    let trace = load(&path);
    let events = trace.events();
    // One O(n log n) index build; every query below is a postings
    // lookup or a binary search against it instead of a fresh scan.
    let index = trace.index();
    println!(
        "trace: {} events, {} total I/O time, last completion {}\n",
        trace.len(),
        trace.total_io_time(),
        trace.last_completion()
    );

    // Request sizes.
    let reads = Cdf::of_kind(index, OpKind::Read);
    let writes = Cdf::of_kind(index, OpKind::Write);
    println!(
        "reads : {} requests, median {} B, p95 {} B, <=2 KB {:.1}%",
        reads.n(),
        reads.quantile(0.5).unwrap_or(0),
        reads.quantile(0.95).unwrap_or(0),
        100.0 * reads.fraction_leq(2048),
    );
    println!(
        "writes: {} requests, median {} B, p95 {} B",
        writes.n(),
        writes.quantile(0.5).unwrap_or(0),
        writes.quantile(0.95).unwrap_or(0),
    );
    let hist = LogHistogram::of_kind(index, OpKind::Read);
    println!("\n{}", hist.render("read-size histogram (log2 bins):", 40));

    // Parallelism.
    let conc = ConcurrencyProfile::from_index(index);
    let bal = NodeBalance::from_index(index);
    println!(
        "parallelism: peak {} concurrent calls, {:.1} mean while active; gini {:.2}, node-0 share {:.0}%",
        conc.peak,
        conc.mean_active,
        bal.gini(),
        100.0 * bal.share(Pid(0)),
    );

    // Modes.
    let modes = ModeUsage::from_index(index);
    println!("\n{}", modes.render("access-mode usage:"));

    // Classification.
    let classes = classify_all(events, Time::from_secs(30));
    println!("Miller-Katz classes:");
    for (label, (bytes, time)) in class_totals(&classes) {
        println!(
            "  {label:<22} {:>10.1} MB {:>10.2}s",
            bytes as f64 / 1e6,
            time.as_secs_f64()
        );
    }

    // Phases.
    let detected = detect_phases_indexed(index, Time::from_secs(30));
    println!("\ndetected phases (30 s gap threshold):");
    print!("{}", phases::render(&detected));

    // Interarrival regularity (per-node median CV).
    let ias = sioscope_analysis::interarrival::per_process_indexed(index);
    if !ias.is_empty() {
        let mut cvs: Vec<f64> = ias.values().map(|ia| ia.cv).collect();
        cvs.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        let median_cv = cvs[cvs.len() / 2];
        println!(
            "\ninterarrival: median per-node CV {median_cv:.2} ({} nodes; 0=clockwork, 1=Poisson, >1=bursty)",
            ias.len()
        );
    }

    // Temporality.
    let window = Time::from_secs(10);
    let bw = BandwidthSeries::from_index(index, window);
    println!(
        "\ntemporality: burstiness {:.1} (peak/mean), duty cycle {:.0}%, peak {:.2} MB/s",
        bw.burstiness(),
        100.0 * bw.duty_cycle(),
        bw.peak_bps() / 1e6,
    );

    // Peak-window drill-down: a Pablo time-window summary of the
    // busiest bandwidth window — a binary-search query the index
    // answers without another scan.
    let peak = bw
        .bytes_per_window
        .iter()
        .enumerate()
        .max_by_key(|&(_, b)| b)
        .map(|(i, _)| i);
    if let Some(i) = peak {
        let t0 = Time::from_nanos(i as u64 * window.as_nanos());
        let t1 = t0.saturating_add(window);
        let w = sioscope_trace::TimeWindowSummary::from_index(index, t0, t1);
        println!("\npeak window [{t0}, {t1}):");
        for (kind, s) in &w.per_kind {
            println!(
                "  {kind:?}: {} ops, {:.1} MB, {:.3}s I/O time",
                s.count,
                s.bytes as f64 / 1e6,
                s.total_duration.as_secs_f64(),
            );
        }
    }
}
