//! Collate a Criterion run into a numbered `BENCH_<n>.json` baseline,
//! or compare two baselines.
//!
//! Usage (from the repository root, after `cargo bench -p
//! sioscope-bench --bench hotpath`):
//!
//! ```text
//! cargo run -p sioscope-bench --bin bench_baseline                   # print
//! cargo run -p sioscope-bench --bin bench_baseline -- --out BENCH_1.json
//! cargo run -p sioscope-bench --bin bench_baseline -- \
//!     --compare BENCH_0.json --bench full_registry_cold --min-speedup 1.5
//! ```
//!
//! `--compare OLD` prints the speedup of every bench present in both
//! baselines (current run vs. `OLD`); with `--bench NAME
//! --min-speedup X` the process exits `4` if that bench's speedup is
//! below `X`, making the perf bar enforceable in CI. Exit codes follow
//! the repro contract: `2` unusable arguments, `3` I/O failures
//! (naming the path), `4` a failed expectation.

use sioscope_bench::{
    baseline_speedup, baseline_value_multi, collect_estimates, exit_with, write_atomic, CliError,
    BASELINE_GROUPS,
};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn real_main() -> Result<(), CliError> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let criterion_dir = PathBuf::from(
        arg_value(&args, "--criterion-dir").unwrap_or_else(|| "target/criterion".to_string()),
    );
    // Collect every baseline group. A group directory that does not
    // exist yet (e.g. a partial bench run) is treated as empty; only
    // finding *no* estimates at all is an error.
    let mut groups = BTreeMap::new();
    for group in BASELINE_GROUPS {
        match collect_estimates(&criterion_dir, group) {
            Ok(estimates) => {
                groups.insert(group.to_string(), estimates);
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                groups.insert(group.to_string(), BTreeMap::new());
            }
            Err(e) => return Err(CliError::io(criterion_dir.join(group), e)),
        }
    }
    if groups.values().all(|e| e.is_empty()) {
        return Err(CliError::io(
            &criterion_dir,
            std::io::Error::other(
                "no estimates found; run `cargo bench -p sioscope-bench --bench hotpath` first",
            ),
        ));
    }
    let current = baseline_value_multi(&groups);
    let rendered = format!(
        "{}\n",
        serde_json::to_string_pretty(&current).expect("serialize baseline")
    );

    if let Some(old_path) = arg_value(&args, "--compare") {
        let old_text =
            std::fs::read_to_string(&old_path).map_err(|e| CliError::io(&old_path, e))?;
        let old: serde_json::Value = serde_json::from_str(&old_text)
            .map_err(|e| CliError::io(&old_path, std::io::Error::other(e)))?;
        println!("speedup vs {old_path} (old mean / new mean):");
        for (group, estimates) in &groups {
            for name in estimates.keys() {
                match baseline_speedup(&old, &current, name) {
                    Some(s) => println!("  {group}/{name:<24} {s:.2}x"),
                    None => println!("  {group}/{name:<24} (not in old baseline)"),
                }
            }
        }
        let gate = arg_value(&args, "--bench");
        let min: Option<f64> = match arg_value(&args, "--min-speedup") {
            Some(v) => Some(v.parse().map_err(|_| {
                CliError::BadArgs(format!("--min-speedup expects a number, got `{v}`"))
            })?),
            None => None,
        };
        if let (Some(bench), Some(min)) = (gate, min) {
            match baseline_speedup(&old, &current, &bench) {
                Some(s) if s >= min => {
                    println!("PASS: {bench} speedup {s:.2}x >= {min:.2}x");
                }
                Some(s) => {
                    return Err(CliError::GoldenMismatch(format!(
                        "{bench} speedup {s:.2}x < {min:.2}x"
                    )));
                }
                None => {
                    return Err(CliError::GoldenMismatch(format!(
                        "{bench} missing from one of the baselines"
                    )));
                }
            }
        }
        return Ok(());
    }

    match arg_value(&args, "--out") {
        Some(path) => {
            write_atomic(Path::new(&path), &rendered)?;
            println!("baseline written to {path}");
        }
        None => print!("{rendered}"),
    }
    Ok(())
}

fn main() {
    if let Err(e) = real_main() {
        exit_with(e);
    }
}
