//! Regenerate every table and figure of Smirni et al. (HPDC 1996).
//!
//! Usage:
//!
//! ```text
//! cargo run -p sioscope-bench --bin repro --release                # everything
//! cargo run -p sioscope-bench --bin repro --release escat-table2  # one artifact
//! cargo run -p sioscope-bench --bin repro --release -- --out out/ # also write files
//! SIOSCOPE_SCALE=smoke cargo run -p sioscope-bench --bin repro    # fast smoke run
//! ```
//!
//! Experiments are selected by bare ids or after an `--experiments`
//! marker (`repro --experiments recovery-escat recovery-prism`); no
//! selection runs everything. With `--out DIR`, each artifact is
//! staged to `DIR/<id>.txt.tmp` and atomically renamed into place, and
//! a machine-readable summary of the shape checks goes to
//! `DIR/checks.json` the same way — a killed run never leaves a
//! truncated artifact. `--resume` skips experiments whose artifact
//! already exists in `DIR` *and* holds trustworthy contents (a `.json`
//! artifact must parse; an empty or corrupt file is regenerated), so
//! an interrupted generation picks up where it stopped. `--sweeps` appends the machine-configuration
//! sweeps of the paper's future-work agenda (§7) plus the
//! recovery-engine axes; `--sweeps=io_nodes,mtbf` selects a subset.
//!
//! Exit codes are part of the contract: `0` success, `2` unusable
//! arguments, `3` an I/O failure (the failing path is printed), `4`
//! artifacts ran but shape checks disagreed with the paper.

use sioscope::experiments::{run_experiment, Experiment};
use sioscope::report;
use sioscope::sweeps::{run_sweep, SweepId};
use sioscope_bench::{
    artifact_resumable, exit_with, scale_from_env, try_experiments_from_args, try_sweeps_from_args,
    write_atomic, CliError,
};
use std::path::PathBuf;

struct Cli {
    out: Option<PathBuf>,
    resume: bool,
    sweeps: Option<Vec<SweepId>>,
    experiments: Vec<Experiment>,
}

fn parse(args: &[String]) -> Result<Cli, CliError> {
    let mut out = None;
    let mut resume = false;
    let mut sweep_args: Vec<String> = Vec::new();
    let mut ids: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if a == "--out" {
            i += 1;
            let dir = args
                .get(i)
                .ok_or_else(|| CliError::BadArgs("--out requires a directory".into()))?;
            out = Some(PathBuf::from(dir));
        } else if a == "--resume" {
            resume = true;
        } else if a == "--experiments" {
            // Marker only: the ids that follow are collected like any
            // bare argument.
        } else if a == "--sweeps" || a.starts_with("--sweeps=") {
            sweep_args.push(a.clone());
        } else if a.starts_with('-') {
            return Err(CliError::BadArgs(format!(
                "unknown flag `{a}` (known: --out DIR, --resume, --experiments ID..., --sweeps[=id,...])"
            )));
        } else {
            ids.push(a.clone());
        }
        i += 1;
    }
    let experiments = try_experiments_from_args(&ids).map_err(|unknown| {
        let valid: Vec<&str> = Experiment::all().iter().map(|e| e.id()).collect();
        CliError::BadArgs(format!(
            "unknown experiment id(s): {}\nvalid ids: {}",
            unknown.join(", "),
            valid.join(", ")
        ))
    })?;
    let sweeps = try_sweeps_from_args(&sweep_args).map_err(|unknown| {
        let valid: Vec<&str> = SweepId::all().iter().map(|s| s.id()).collect();
        CliError::BadArgs(format!(
            "unknown sweep id(s): {}\nvalid ids: {}",
            unknown.join(", "),
            valid.join(", ")
        ))
    })?;
    if resume && out.is_none() {
        return Err(CliError::BadArgs(
            "--resume requires --out DIR (there is no artifact directory to resume into)".into(),
        ));
    }
    Ok(Cli {
        out,
        resume,
        sweeps,
        experiments,
    })
}

fn real_main() -> Result<(), CliError> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = parse(&args)?;
    let scale = scale_from_env();
    if let Some(dir) = &cli.out {
        std::fs::create_dir_all(dir).map_err(|e| CliError::io(dir, e))?;
    }

    println!("{}", report::render_paper_reference());

    let mut failures = 0usize;
    let mut check_rows = Vec::new();
    for e in cli.experiments {
        let artifact = cli
            .out
            .as_ref()
            .map(|dir| dir.join(format!("{}.txt", e.id())));
        if cli.resume {
            if let Some(path) = &artifact {
                if artifact_resumable(path) {
                    println!("-- {} already written, skipping (--resume)", e.id());
                    continue;
                }
            }
        }
        let out = run_experiment(e, scale);
        let rendered = report::render_output(&out);
        print!("{rendered}");
        if let Some(path) = &artifact {
            write_atomic(path, &rendered)?;
        }
        for c in &out.checks {
            check_rows.push(serde_json::json!({
                "experiment": e.id(),
                "check": c.name,
                "pass": c.pass,
                "detail": c.detail,
            }));
        }
        failures += out.failures().len();
    }
    if let Some(selection) = &cli.sweeps {
        println!("================================================================");
        println!("Machine-configuration sweeps (the paper's §7 future work)");
        println!("================================================================");
        for &id in selection {
            let path = cli
                .out
                .as_ref()
                .map(|dir| dir.join(format!("sweep-{}.txt", id.id())));
            if cli.resume {
                if let Some(p) = &path {
                    if artifact_resumable(p) {
                        println!("-- sweep {} already written, skipping (--resume)", id.id());
                        continue;
                    }
                }
            }
            let sweep = run_sweep(id, scale);
            println!("{}", sweep.render());
            if let Some(p) = &path {
                write_atomic(p, sweep.render())?;
            }
        }
    }
    if let Some(dir) = &cli.out {
        let json = serde_json::to_string_pretty(&check_rows)
            .map_err(|e| CliError::io(dir.join("checks.json"), std::io::Error::other(e)))?;
        write_atomic(&dir.join("checks.json"), json)?;
        println!("\nartifacts written to {}", dir.display());
    }
    if failures > 0 {
        return Err(CliError::GoldenMismatch(format!(
            "{failures} shape check(s) disagree with the paper"
        )));
    }
    println!("\nall shape checks passed");
    Ok(())
}

fn main() {
    if let Err(e) = real_main() {
        exit_with(e);
    }
}
