//! Run a campaign: a cross-product of simulator runs fanned out over
//! a work-stealing pool, with a content-addressed result cache.
//!
//! Usage:
//!
//! ```text
//! cargo run -p sioscope-bench --bin campaign --release -- \
//!     run examples/smoke.campaign.toml                 # execute it
//! cargo run -p sioscope-bench --bin campaign --release -- \
//!     plan examples/smoke.campaign.toml                # just list the runs
//! ```
//!
//! Flags (after the spec path):
//!
//! * `--jobs N` — worker threads (`0` = one per core, the default);
//! * `--no-cache` — bypass the result cache entirely (neither read
//!   nor write entries);
//! * `--cache-dir DIR` — cache location (default `artifacts/campaign`);
//! * `--out FILE` — also write the deterministic campaign report JSON
//!   to `FILE` (atomically);
//! * `--min-hit-rate PCT` — fail (exit 4) if fewer than `PCT`% of
//!   runs were served from the cache. CI uses this to prove that a
//!   repeated campaign really is cached.
//!
//! Exit codes are the repro contract: `0` success, `2` unusable
//! arguments or unknown ids, `3` an I/O failure (the failing path is
//! printed), `4` the campaign ran but failed an expectation (a failed
//! run, or a missed `--min-hit-rate`).
//!
//! The report JSON on stdout-adjacent paths is deterministic by
//! construction: a cold campaign, a fully cached re-run, and a
//! `--jobs 1` run all write bit-identical bytes. Wall-clock time and
//! hit/miss accounting appear only in the terminal summary.

use sioscope_campaign::{
    exit_with, run_campaign, write_atomic, CampaignSpec, CliError, ExecOptions,
};
use std::path::PathBuf;
use std::time::Instant;

struct Cli {
    command: Command,
    spec_path: PathBuf,
    opts: ExecOptions,
    out: Option<PathBuf>,
    min_hit_rate: Option<u32>,
}

enum Command {
    Plan,
    Run,
}

const USAGE: &str = "usage: campaign <plan|run> SPEC.toml \
[--jobs N] [--no-cache] [--cache-dir DIR] [--out FILE] [--min-hit-rate PCT]";

fn parse(args: &[String]) -> Result<Cli, CliError> {
    let mut positional: Vec<&String> = Vec::new();
    let mut opts = ExecOptions::default();
    let mut out = None;
    let mut min_hit_rate = None;
    let mut i = 0;
    let value_of = |args: &[String], i: &mut usize, flag: &str| -> Result<String, CliError> {
        *i += 1;
        args.get(*i)
            .cloned()
            .ok_or_else(|| CliError::BadArgs(format!("{flag} requires a value\n{USAGE}")))
    };
    while i < args.len() {
        let a = &args[i];
        if a == "--jobs" {
            let v = value_of(args, &mut i, "--jobs")?;
            opts.jobs = v
                .parse()
                .map_err(|_| CliError::BadArgs(format!("--jobs expects a number, got `{v}`")))?;
        } else if a == "--no-cache" {
            opts.no_cache = true;
        } else if a == "--cache-dir" {
            opts.cache_dir = PathBuf::from(value_of(args, &mut i, "--cache-dir")?);
        } else if a == "--out" {
            out = Some(PathBuf::from(value_of(args, &mut i, "--out")?));
        } else if a == "--min-hit-rate" {
            let v = value_of(args, &mut i, "--min-hit-rate")?;
            let pct: u32 = v.parse().map_err(|_| {
                CliError::BadArgs(format!("--min-hit-rate expects a percent, got `{v}`"))
            })?;
            if pct > 100 {
                return Err(CliError::BadArgs(format!(
                    "--min-hit-rate must be 0..=100, got {pct}"
                )));
            }
            min_hit_rate = Some(pct);
        } else if a.starts_with('-') {
            return Err(CliError::BadArgs(format!("unknown flag `{a}`\n{USAGE}")));
        } else {
            positional.push(a);
        }
        i += 1;
    }
    let [command, spec_path] = positional.as_slice() else {
        return Err(CliError::BadArgs(USAGE.to_string()));
    };
    let command = match command.as_str() {
        "plan" => Command::Plan,
        "run" => Command::Run,
        other => {
            return Err(CliError::BadArgs(format!(
                "unknown command `{other}`\n{USAGE}"
            )))
        }
    };
    Ok(Cli {
        command,
        spec_path: PathBuf::from(spec_path),
        opts,
        out,
        min_hit_rate,
    })
}

fn real_main() -> Result<(), CliError> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = parse(&args)?;
    let text =
        std::fs::read_to_string(&cli.spec_path).map_err(|e| CliError::io(&cli.spec_path, e))?;
    let spec = CampaignSpec::from_toml_str(&text).map_err(|e| CliError::BadArgs(e.to_string()))?;
    sioscope_campaign::exec::validate_spec(&spec)?;

    match cli.command {
        Command::Plan => {
            let runs = spec.expand();
            println!(
                "campaign `{}` ({} scale): {} runs",
                spec.name,
                spec.scale,
                runs.len()
            );
            for run in &runs {
                println!(
                    "  {}  {}",
                    sioscope_campaign::config_hash(&run.canon()),
                    run.label()
                );
            }
            Ok(())
        }
        Command::Run => {
            let started = Instant::now();
            let report = run_campaign(&spec, &cli.opts)?;
            let wall_ns = started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
            let jobs = if cli.opts.jobs == 0 {
                rayon::current_num_threads()
            } else {
                cli.opts.jobs
            };
            print!("{}", report.human_summary(wall_ns, jobs));
            if let Some(path) = &cli.out {
                if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
                    std::fs::create_dir_all(dir).map_err(|e| CliError::io(dir, e))?;
                }
                write_atomic(path, report.render())?;
                println!("report written to {}", path.display());
            }
            let failed = report.failed().count();
            if failed > 0 {
                return Err(CliError::GoldenMismatch(format!(
                    "{failed} of {} campaign run(s) failed",
                    report.runs.len()
                )));
            }
            if let Some(min) = cli.min_hit_rate {
                let hit_pct = if report.runs.is_empty() {
                    100
                } else {
                    (report.hits() * 100 / report.runs.len()) as u32
                };
                if hit_pct < min {
                    return Err(CliError::GoldenMismatch(format!(
                        "cache hit rate {hit_pct}% below required {min}% \
                         ({} hits of {} runs)",
                        report.hits(),
                        report.runs.len()
                    )));
                }
            }
            Ok(())
        }
    }
}

fn main() {
    if let Err(e) = real_main() {
        exit_with(e);
    }
}
