//! # sioscope-bench
//!
//! Benchmark harness for the sioscope reproduction:
//!
//! * the `repro` binary regenerates **every table and figure** of the
//!   paper (run `cargo run -p sioscope-bench --bin repro --release`),
//!   printing each artifact with its shape checks against the paper's
//!   published values;
//! * the Criterion benches (`cargo bench`) time the simulator on each
//!   experiment and on the PFS fast paths.

use sioscope::experiments::{Experiment, Scale};
use sioscope::sweeps::SweepId;
use sioscope_faults::{FaultKind, FaultSchedule, Tier};
use sioscope_pfs::BackendKind;
use sioscope_sim::Time;
use std::collections::BTreeMap;
use std::path::Path;

// The CLI error/exit-code contract and the crash-safe artifact write
// now live in `sioscope-campaign` (the campaign cache is built on
// them); re-exported here so every existing `sioscope_bench::` import
// keeps working.
pub use sioscope_campaign::cliutil::{exit_with, tmp_sibling, write_atomic, CliError};

/// The fault-validation tier a storage backend interprets its
/// schedules against (the burst tier's *inner* PFS schedule is
/// validated separately, against [`Tier::Pfs`]).
pub fn backend_tier(kind: BackendKind) -> Tier {
    match kind {
        BackendKind::Pfs => Tier::Pfs,
        BackendKind::Object => Tier::Object,
        BackendKind::Burst => Tier::Burst,
    }
}

/// The usage error (exit code 2) for a fault schedule the chosen tier
/// cannot express: every problem, then the tier's valid fault set.
pub fn fault_mismatch_error(kind: BackendKind, problems: &[String]) -> CliError {
    let tier = backend_tier(kind);
    CliError::BadArgs(format!(
        "fault schedule invalid for the {} tier:\n  {}\nvalid faults on {}: {}",
        kind.id(),
        problems.join("\n  "),
        tier,
        tier.valid_fault_labels().join(", ")
    ))
}

/// Every fault label any tier can express, for diagnostics.
const ALL_FAULT_LABELS: [&str; 11] = [
    "latent-sector",
    "spindle-failure",
    "ion-crash",
    "ion-slowdown",
    "link-congestion",
    "compute-crash",
    "md-shard-outage",
    "degraded-service",
    "drain-stall",
    "burst-crash",
    "consumer-crash",
];

/// Parse a `--faults` spec: a comma list of `label@frac` events, each
/// placed at `frac`× the run horizon with canned parameters (windows
/// span 20% of the horizon, slowdown factors are 2×). The spec is
/// *not* tier-checked here — that is the job of
/// `BackendConfig::validate_faults`, so a cross-tier schedule fails
/// through [`fault_mismatch_error`] naming the valid set rather than
/// being rejected ad hoc at parse time.
pub fn parse_fault_spec(spec: &str, horizon: Time) -> Result<FaultSchedule, CliError> {
    let window = horizon.scale(0.2).max(Time::from_millis(1));
    let mut schedule = FaultSchedule::empty();
    for part in spec.split(',').filter(|p| !p.is_empty()) {
        let (label, frac) = match part.split_once('@') {
            Some((l, f)) => {
                let frac: f64 = f.parse().map_err(|_| {
                    CliError::BadArgs(format!("bad fault placement `{part}` (want label@frac)"))
                })?;
                if !(0.0..=1.0).contains(&frac) {
                    return Err(CliError::BadArgs(format!(
                        "fault placement `{part}` outside [0, 1]"
                    )));
                }
                (l, frac)
            }
            None => (part, 0.5),
        };
        let kind = match label {
            "latent-sector" => FaultKind::LatentSector {
                ion: 0,
                duration: window,
                penalty: Time::from_millis(5),
            },
            "spindle-failure" => FaultKind::SpindleFailure {
                ion: 0,
                rebuild: Some(window),
            },
            "ion-crash" => FaultKind::IonCrash {
                ion: 0,
                restart: window,
            },
            "ion-slowdown" => FaultKind::IonSlowdown {
                ion: 0,
                duration: window,
                factor: 2.0,
            },
            "link-congestion" => FaultKind::LinkCongestion {
                duration: window,
                factor: 2.0,
            },
            "compute-crash" => FaultKind::ComputeNodeCrash {
                node: 0,
                rework: window,
            },
            "md-shard-outage" => FaultKind::MetadataShardOutage {
                shard: 0,
                duration: window,
            },
            "degraded-service" => FaultKind::DegradedService {
                duration: window,
                factor: 2.0,
            },
            "drain-stall" => FaultKind::DrainStall { duration: window },
            "burst-crash" => FaultKind::BurstNodeCrash { repair: window },
            "consumer-crash" => FaultKind::ConsumerCrash { stall: window },
            other => {
                return Err(CliError::BadArgs(format!(
                    "unknown fault label `{other}`; known labels: {}",
                    ALL_FAULT_LABELS.join(", ")
                )))
            }
        };
        schedule.push(horizon.scale(frac), kind);
    }
    Ok(schedule)
}

/// Whether an artifact at `path` can be trusted by `--resume`: it must
/// be a readable, non-empty file, and a `.json` artifact must actually
/// parse — a file that exists but holds truncated or corrupt JSON is
/// regenerated, not skipped. (Artifacts written through
/// [`write_atomic`] are never truncated by a crash, but artifacts from
/// older runs, other tools, or interrupted copies can be.)
pub fn artifact_resumable(path: &Path) -> bool {
    let Ok(contents) = std::fs::read_to_string(path) else {
        return false;
    };
    if contents.is_empty() {
        return false;
    }
    if path.extension().is_some_and(|e| e == "json") {
        return sioscope_campaign::json::Json::parse(&contents).is_ok();
    }
    true
}

/// Resolve the scale requested via the `SIOSCOPE_SCALE` environment
/// variable (`full` default, `smoke` for quick runs).
pub fn scale_from_env() -> Scale {
    match std::env::var("SIOSCOPE_SCALE").as_deref() {
        Ok("smoke") | Ok("SMOKE") => Scale::Smoke,
        _ => Scale::Full,
    }
}

/// Parse experiment filters from CLI arguments; empty = all.
///
/// Unknown identifiers are an error, not a no-op: `Err` carries every
/// unrecognized ID so the caller can report all of them at once.
pub fn try_experiments_from_args(args: &[String]) -> Result<Vec<Experiment>, Vec<String>> {
    let filters: Vec<&String> = args.iter().filter(|a| !a.starts_with('-')).collect();
    if filters.is_empty() {
        return Ok(Experiment::all());
    }
    let mut selected = Vec::new();
    let mut unknown = Vec::new();
    for f in filters {
        match Experiment::from_id(f) {
            Some(e) => selected.push(e),
            None => unknown.push(f.clone()),
        }
    }
    if unknown.is_empty() {
        Ok(selected)
    } else {
        Err(unknown)
    }
}

/// Parse experiment filters from CLI arguments; empty = all.
///
/// Exits with status 2 after printing the unknown IDs and the valid
/// set to stderr — a typo must not silently shrink the run to nothing.
pub fn experiments_from_args(args: &[String]) -> Vec<Experiment> {
    match try_experiments_from_args(args) {
        Ok(experiments) => experiments,
        Err(unknown) => {
            for id in &unknown {
                eprintln!("error: unknown experiment id `{id}`");
            }
            eprintln!("valid experiment ids:");
            for e in Experiment::all() {
                eprintln!("  {}", e.id());
            }
            std::process::exit(2);
        }
    }
}

/// Parse the `--sweeps[=id,id,...]` flag.
///
/// * No flag → `Ok(None)` (no sweeps requested).
/// * Bare `--sweeps` → every sweep.
/// * `--sweeps=a,b` → exactly those, in registry order.
///
/// Unknown ids are an error, not a no-op — `Err` carries every
/// unrecognized id so a typo cannot silently shrink the sweep set
/// (the bug this replaces: `--sweeps` ignored its argument entirely).
pub fn try_sweeps_from_args(args: &[String]) -> Result<Option<Vec<SweepId>>, Vec<String>> {
    let mut requested: Option<Vec<&str>> = None;
    for a in args {
        if a == "--sweeps" {
            requested.get_or_insert_with(Vec::new);
        } else if let Some(list) = a.strip_prefix("--sweeps=") {
            requested
                .get_or_insert_with(Vec::new)
                .extend(list.split(',').filter(|s| !s.is_empty()));
        }
    }
    let Some(filters) = requested else {
        return Ok(None);
    };
    if filters.is_empty() {
        return Ok(Some(SweepId::all()));
    }
    let mut unknown: Vec<String> = Vec::new();
    let mut wanted = Vec::new();
    for f in &filters {
        match SweepId::from_id(f) {
            Some(s) => wanted.push(s),
            None => unknown.push((*f).to_string()),
        }
    }
    if !unknown.is_empty() {
        return Err(unknown);
    }
    // Registry order, deduplicated.
    Ok(Some(
        SweepId::all()
            .into_iter()
            .filter(|s| wanted.contains(s))
            .collect(),
    ))
}

/// Parse the `--sweeps[=id,id,...]` flag; exits with status 2 after
/// printing the unknown ids and the valid set to stderr.
pub fn sweeps_from_args(args: &[String]) -> Option<Vec<SweepId>> {
    match try_sweeps_from_args(args) {
        Ok(selection) => selection,
        Err(unknown) => {
            for id in &unknown {
                eprintln!("error: unknown sweep id `{id}`");
            }
            eprintln!("valid sweep ids:");
            for s in SweepId::all() {
                eprintln!("  {}", s.id());
            }
            std::process::exit(2);
        }
    }
}

/// Mean and median point estimates of one Criterion bench, in
/// nanoseconds.
pub type BenchEstimate = (f64, f64);

/// Collect Criterion's point estimates for every bench in `group` from
/// `criterion_dir` (normally `target/criterion`). Reads each
/// `<group>/<bench>/new/estimates.json` written by a `cargo bench` run.
pub fn collect_estimates(
    criterion_dir: &Path,
    group: &str,
) -> std::io::Result<BTreeMap<String, BenchEstimate>> {
    let mut out = BTreeMap::new();
    for entry in std::fs::read_dir(criterion_dir.join(group))? {
        let path = entry?.path();
        let estimates = path.join("new").join("estimates.json");
        if !estimates.is_file() {
            continue;
        }
        let text = std::fs::read_to_string(&estimates)?;
        let v: serde_json::Value = serde_json::from_str(&text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        let point = |stat: &str| v[stat]["point_estimate"].as_f64();
        if let (Some(mean), Some(median)) = (point("mean"), point("median")) {
            let name = path
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or_default()
                .to_string();
            out.insert(name, (mean, median));
        }
    }
    Ok(out)
}

/// Assemble a `BENCH_<n>.json` baseline document from collected
/// estimates.
pub fn baseline_value(
    group: &str,
    estimates: &BTreeMap<String, BenchEstimate>,
) -> serde_json::Value {
    let benches: serde_json::Map<String, serde_json::Value> = estimates
        .iter()
        .map(|(name, (mean, median))| {
            (
                name.clone(),
                serde_json::json!({ "mean_ns": mean, "median_ns": median }),
            )
        })
        .collect();
    serde_json::json!({
        "schema": "sioscope-bench-baseline/1",
        "group": group,
        "command": format!("cargo bench -p sioscope-bench --bench {group}"),
        "benches": benches,
    })
}

/// The Criterion groups a `BENCH_<n>.json` baseline captures: the
/// simulator hot paths, the trace analytics engine, and the batch
/// scheduler. All live in the `hotpath` bench target, so one
/// `cargo bench --bench hotpath` run produces estimates for every
/// group.
pub const BASELINE_GROUPS: [&str; 3] = ["hotpath", "analysis", "sched"];

/// Assemble a multi-group `BENCH_<n>.json` baseline document
/// (schema `sioscope-bench-baseline/2`) from per-group estimates.
/// Groups with no collected estimates are omitted.
pub fn baseline_value_multi(
    groups: &BTreeMap<String, BTreeMap<String, BenchEstimate>>,
) -> serde_json::Value {
    let rendered: serde_json::Map<String, serde_json::Value> = groups
        .iter()
        .filter(|(_, estimates)| !estimates.is_empty())
        .map(|(group, estimates)| {
            let benches: serde_json::Map<String, serde_json::Value> = estimates
                .iter()
                .map(|(name, (mean, median))| {
                    (
                        name.clone(),
                        serde_json::json!({ "mean_ns": mean, "median_ns": median }),
                    )
                })
                .collect();
            (group.clone(), serde_json::json!({ "benches": benches }))
        })
        .collect();
    serde_json::json!({
        "schema": "sioscope-bench-baseline/2",
        "command": "cargo bench -p sioscope-bench --bench hotpath",
        "groups": rendered,
    })
}

/// Locate `bench` in a baseline of either schema: the v1 top-level
/// `benches` map, or any group of a v2 `groups` map (bench names are
/// unique across groups).
fn find_bench<'a>(v: &'a serde_json::Value, bench: &str) -> Option<&'a serde_json::Value> {
    let direct = &v["benches"][bench];
    if !direct.is_null() {
        return Some(direct);
    }
    v["groups"]
        .as_object()?
        .values()
        .map(|g| &g["benches"][bench])
        .find(|b| !b.is_null())
}

/// Speedup of `bench` going from the `old` baseline to the `new` one
/// (mean-over-mean; > 1.0 means `new` is faster). `None` when either
/// baseline lacks the bench or a captured mean. Accepts baselines of
/// either schema version.
pub fn baseline_speedup(
    old: &serde_json::Value,
    new: &serde_json::Value,
    bench: &str,
) -> Option<f64> {
    let mean = |v: &serde_json::Value| find_bench(v, bench)?["mean_ns"].as_f64();
    match (mean(old), mean(new)) {
        (Some(o), Some(n)) if n > 0.0 => Some(o / n),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_filtering() {
        let all = try_experiments_from_args(&[]).unwrap();
        assert_eq!(all.len(), Experiment::all().len());
        let one = try_experiments_from_args(&["escat-table2".to_string()]).unwrap();
        assert_eq!(one, vec![Experiment::EscatTable2]);
    }

    #[test]
    fn unknown_ids_are_an_error_listing_every_offender() {
        let err = try_experiments_from_args(&[
            "bogus".to_string(),
            "escat-table2".to_string(),
            "also-bogus".to_string(),
        ])
        .unwrap_err();
        assert_eq!(err, vec!["bogus".to_string(), "also-bogus".to_string()]);
    }

    #[test]
    fn flags_are_ignored_by_the_filter() {
        let got = try_experiments_from_args(&["--sweeps".to_string()]).unwrap();
        assert_eq!(got.len(), Experiment::all().len());
    }

    #[test]
    fn sweeps_flag_absent_bare_and_selective() {
        assert_eq!(try_sweeps_from_args(&[]).unwrap(), None);
        assert_eq!(
            try_sweeps_from_args(&["--sweeps".to_string()]).unwrap(),
            Some(SweepId::all())
        );
        let got = try_sweeps_from_args(&["--sweeps=stripe_unit,io_nodes".to_string()]).unwrap();
        // Selection is reported in registry order regardless of the
        // order the ids were given in.
        assert_eq!(got, Some(vec![SweepId::IoNodes, SweepId::StripeUnit]));
    }

    #[test]
    fn unknown_sweep_ids_are_an_error_listing_every_offender() {
        let err =
            try_sweeps_from_args(&["--sweeps=io_nodes,bogus,also-bogus".to_string()]).unwrap_err();
        assert_eq!(err, vec!["bogus".to_string(), "also-bogus".to_string()]);
    }

    #[test]
    fn baseline_collation_and_speedup() {
        let dir = std::env::temp_dir().join(format!("sioscope-bench-{}", std::process::id()));
        let bench_dir = dir.join("hotpath").join("full_registry_cold").join("new");
        std::fs::create_dir_all(&bench_dir).unwrap();
        std::fs::write(
            bench_dir.join("estimates.json"),
            r#"{"mean":{"point_estimate":3000.0},"median":{"point_estimate":2900.0}}"#,
        )
        .unwrap();
        // A "report" directory (criterion writes one) must be skipped.
        std::fs::create_dir_all(dir.join("hotpath").join("report")).unwrap();
        let estimates = collect_estimates(&dir, "hotpath").unwrap();
        assert_eq!(estimates.get("full_registry_cold"), Some(&(3000.0, 2900.0)));
        let old = baseline_value("hotpath", &estimates);
        assert_eq!(old["benches"]["full_registry_cold"]["mean_ns"], 3000.0);
        let mut faster = estimates.clone();
        faster.insert("full_registry_cold".to_string(), (1500.0, 1400.0));
        let new = baseline_value("hotpath", &faster);
        assert_eq!(
            baseline_speedup(&old, &new, "full_registry_cold"),
            Some(2.0)
        );
        assert_eq!(baseline_speedup(&old, &new, "missing"), None);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn multi_group_baseline_schema_and_cross_version_speedup() {
        let mut groups: BTreeMap<String, BTreeMap<String, BenchEstimate>> = BTreeMap::new();
        groups.insert(
            "hotpath".to_string(),
            BTreeMap::from([("full_registry_cold".to_string(), (3000.0, 2900.0))]),
        );
        groups.insert(
            "analysis".to_string(),
            BTreeMap::from([("window_query_indexed".to_string(), (80.0, 78.0))]),
        );
        groups.insert("empty".to_string(), BTreeMap::new());
        let v2 = baseline_value_multi(&groups);
        assert_eq!(v2["schema"], "sioscope-bench-baseline/2");
        assert_eq!(
            v2["groups"]["analysis"]["benches"]["window_query_indexed"]["mean_ns"],
            80.0
        );
        assert!(
            v2["groups"]["empty"].is_null(),
            "estimate-less groups are omitted"
        );

        // v2-vs-v2 lookups find benches in any group.
        let mut faster = groups.clone();
        faster
            .get_mut("analysis")
            .unwrap()
            .insert("window_query_indexed".to_string(), (20.0, 19.0));
        let new = baseline_value_multi(&faster);
        assert_eq!(
            baseline_speedup(&v2, &new, "window_query_indexed"),
            Some(4.0)
        );
        assert_eq!(baseline_speedup(&v2, &new, "full_registry_cold"), Some(1.0));
        assert_eq!(baseline_speedup(&v2, &new, "missing"), None);

        // A v1 baseline compares against a v2 one transparently.
        let v1 = baseline_value(
            "hotpath",
            &BTreeMap::from([("full_registry_cold".to_string(), (6000.0, 5800.0))]),
        );
        assert_eq!(baseline_speedup(&v1, &new, "full_registry_cold"), Some(2.0));
    }

    #[test]
    fn cli_error_exit_codes_are_stable() {
        assert_eq!(CliError::BadArgs("x".into()).exit_code(), 2);
        let io = CliError::io("/nope/artifact.txt", std::io::Error::other("disk on fire"));
        assert_eq!(io.exit_code(), 3);
        let msg = io.to_string();
        assert!(
            msg.contains("/nope/artifact.txt"),
            "I/O errors must name the failing path: {msg}"
        );
        assert_eq!(CliError::GoldenMismatch("x".into()).exit_code(), 4);
    }

    #[test]
    fn write_atomic_lands_contents_and_cleans_its_scratch() {
        let dir = std::env::temp_dir().join(format!("sioscope-atomic-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("artifact.txt");
        write_atomic(&path, "first").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "first");
        // Overwrites go through the same staged rename.
        write_atomic(&path, "second").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "second");
        assert!(
            !tmp_sibling(&path).exists(),
            "no .tmp straggler after a clean write"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn write_atomic_reports_the_failing_path() {
        let path = Path::new("/nonexistent-sioscope-dir/artifact.txt");
        let err = write_atomic(path, "x").unwrap_err();
        assert_eq!(err.exit_code(), 3);
        assert!(err.to_string().contains("nonexistent-sioscope-dir"));
    }

    #[test]
    fn resume_trusts_only_parseable_artifacts() {
        let dir = std::env::temp_dir().join(format!("sioscope-resume-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();

        // Missing and empty files are never resumable.
        assert!(!artifact_resumable(&dir.join("missing.txt")));
        let empty = dir.join("empty.txt");
        std::fs::write(&empty, "").unwrap();
        assert!(!artifact_resumable(&empty));

        // Non-JSON artifacts only need contents.
        let txt = dir.join("escat-table2.txt");
        std::fs::write(&txt, "rendered table\n").unwrap();
        assert!(artifact_resumable(&txt));

        // JSON artifacts must parse: a truncated checks.json from a
        // pre-write_atomic run (or an interrupted copy) is regenerated.
        let json = dir.join("checks.json");
        std::fs::write(&json, r#"[{"experiment": "escat-table2", "pass": true}]"#).unwrap();
        assert!(artifact_resumable(&json));
        std::fs::write(&json, r#"[{"experiment": "escat-ta"#).unwrap();
        assert!(!artifact_resumable(&json));

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fault_spec_parses_and_places_events() {
        let horizon = Time::from_secs(10);
        let s = parse_fault_spec("ion-crash@0.5,drain-stall", horizon).unwrap();
        assert_eq!(s.events.len(), 2);
        assert_eq!(s.events[0].at, Time::from_secs(5));
        assert!(s.engages());

        let err = parse_fault_spec("warp-core-breach@0.5", horizon).unwrap_err();
        assert_eq!(err.exit_code(), 2);
        assert!(err.to_string().contains("known labels"));

        let err = parse_fault_spec("ion-crash@1.5", horizon).unwrap_err();
        assert_eq!(err.exit_code(), 2);
    }

    #[test]
    fn fault_mismatch_is_a_usage_error_naming_the_valid_set() {
        let problems = vec!["event 0: drain-stall is not a fault of the pfs tier".to_string()];
        let err = fault_mismatch_error(BackendKind::Pfs, &problems);
        assert_eq!(err.exit_code(), 2);
        let msg = err.to_string();
        assert!(msg.contains("valid faults on pfs"));
        assert!(msg.contains("ion-crash"));
        let burst = fault_mismatch_error(BackendKind::Burst, &problems).to_string();
        assert!(burst.contains("drain-stall") && burst.contains("burst-crash"));
    }

    #[test]
    fn cross_tier_spec_fails_fast_through_backend_validation() {
        use sioscope_pfs::{BackendConfig, ObjectStoreConfig};
        let faults = parse_fault_spec("drain-stall@0.2", Time::from_secs(10)).unwrap();
        let mut obj = ObjectStoreConfig::modern(4);
        obj.faults = faults;
        let cfg = BackendConfig::Object(obj);
        let problems = cfg.validate_faults(4);
        assert!(!problems.is_empty());
        let err = fault_mismatch_error(BackendKind::Object, &problems);
        assert_eq!(err.exit_code(), 2);
        assert!(err.to_string().contains("valid faults on object"));
    }

    #[test]
    fn stream_experiments_and_depth_sweep_are_selectable() {
        let got =
            try_experiments_from_args(&["stream-prism".to_string(), "stream-vs-file".to_string()])
                .unwrap();
        assert_eq!(got, vec![Experiment::StreamPrism, Experiment::StreamVsFile]);
        let sweeps = try_sweeps_from_args(&["--sweeps=staging_depth".to_string()]).unwrap();
        assert_eq!(sweeps, Some(vec![SweepId::StagingDepth]));
        // Near-miss ids stay usage errors naming the unknown id.
        let err = try_experiments_from_args(&["stream-vs-pfs".to_string()]).unwrap_err();
        assert_eq!(err, vec!["stream-vs-pfs".to_string()]);
        let err = try_sweeps_from_args(&["--sweeps=staging-depth".to_string()]).unwrap_err();
        assert_eq!(err, vec!["staging-depth".to_string()]);
    }

    #[test]
    fn consumer_crash_parses_but_stays_stream_only() {
        use sioscope_pfs::mode::OsRelease;
        use sioscope_pfs::{BackendConfig, PfsConfig};
        let horizon = Time::from_secs(10);
        let faults = parse_fault_spec("consumer-crash@0.3", horizon).unwrap();
        assert_eq!(faults.events.len(), 1);
        assert_eq!(faults.events[0].at, Time::from_secs(3));
        // On a storage tier the same schedule is a cross-tier usage
        // error, exit 2, naming the tier's valid set.
        let mut pfs = PfsConfig::caltech(4, OsRelease::Osf13);
        pfs.faults = faults;
        let cfg = BackendConfig::Pfs(pfs);
        let problems = cfg.validate_faults(4);
        assert!(!problems.is_empty(), "consumer-crash must not pass on pfs");
        let err = fault_mismatch_error(BackendKind::Pfs, &problems);
        assert_eq!(err.exit_code(), 2);
        assert!(err.to_string().contains("valid faults on pfs"));
    }

    #[test]
    fn resilience_experiments_are_selectable() {
        let got = try_experiments_from_args(&[
            "resilience-escat".to_string(),
            "resilience-prism".to_string(),
        ])
        .unwrap();
        assert_eq!(
            got,
            vec![Experiment::ResilienceEscat, Experiment::ResiliencePrism]
        );
    }

    #[test]
    fn scheduler_experiments_and_load_sweep_are_selectable() {
        let got = try_experiments_from_args(&[
            "contention-mix".to_string(),
            "backfill-vs-fcfs".to_string(),
        ])
        .unwrap();
        assert_eq!(
            got,
            vec![Experiment::ContentionMix, Experiment::BackfillVsFcfs]
        );
        let sweeps = try_sweeps_from_args(&["--sweeps=load_factor".to_string()]).unwrap();
        assert_eq!(sweeps, Some(vec![SweepId::LoadFactor]));
        assert!(BASELINE_GROUPS.contains(&"sched"));
    }
}
