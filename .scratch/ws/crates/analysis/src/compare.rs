//! Version-to-version evolution deltas.
//!
//! The paper's narrative is built from *differences* between code
//! versions — "a significant reduction in read time was achieved via
//! code restructuring" (§4.1), "the total read time decreases by 125
//! seconds" (§5.3), "the write time in version B increases as a
//! consequence of the concurrent writes" (§5.1). This module computes
//! those deltas from two traces.

use serde::{Deserialize, Serialize};
use sioscope_pfs::OpKind;
use sioscope_sim::Time;
use sioscope_trace::TraceRecorder;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Change in one operation category between two versions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OpDelta {
    /// Total client-observed time in the "from" version.
    pub from_time: Time,
    /// Total client-observed time in the "to" version.
    pub to_time: Time,
    /// Operation count in the "from" version.
    pub from_count: u64,
    /// Operation count in the "to" version.
    pub to_count: u64,
}

impl OpDelta {
    /// Signed time change in seconds (negative = improvement).
    pub fn time_change_s(&self) -> f64 {
        self.to_time.as_secs_f64() - self.from_time.as_secs_f64()
    }

    /// Speedup factor (`from / to`; infinity if `to` is zero).
    pub fn speedup(&self) -> f64 {
        let to = self.to_time.as_secs_f64();
        if to <= 0.0 {
            f64::INFINITY
        } else {
            self.from_time.as_secs_f64() / to
        }
    }
}

/// Full comparison of two versions' traces.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Evolution {
    /// Label of the "from" version.
    pub from_label: String,
    /// Label of the "to" version.
    pub to_label: String,
    /// Per-kind deltas (kinds present in either trace).
    pub per_kind: BTreeMap<OpKind, OpDelta>,
}

impl Evolution {
    /// Compare two traces.
    pub fn between(
        from_label: &str,
        from: &TraceRecorder,
        to_label: &str,
        to: &TraceRecorder,
    ) -> Self {
        let mut per_kind: BTreeMap<OpKind, OpDelta> = BTreeMap::new();
        for kind in OpKind::all() {
            let from_time = from.of_kind(kind).map(|e| e.duration).sum::<Time>();
            let to_time = to.of_kind(kind).map(|e| e.duration).sum::<Time>();
            let from_count = from.of_kind(kind).count() as u64;
            let to_count = to.of_kind(kind).count() as u64;
            if from_count > 0 || to_count > 0 {
                per_kind.insert(
                    kind,
                    OpDelta {
                        from_time,
                        to_time,
                        from_count,
                        to_count,
                    },
                );
            }
        }
        Evolution {
            from_label: from_label.to_string(),
            to_label: to_label.to_string(),
            per_kind,
        }
    }

    /// Delta for one kind, if either version used it.
    pub fn delta(&self, kind: OpKind) -> Option<&OpDelta> {
        self.per_kind.get(&kind)
    }

    /// The operation whose time *fell* the most (the optimization's
    /// main effect), as `(kind, seconds saved)`.
    pub fn biggest_win(&self) -> Option<(OpKind, f64)> {
        self.per_kind
            .iter()
            .map(|(&k, d)| (k, -d.time_change_s()))
            .filter(|&(_, saved)| saved > 0.0)
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("no NaN"))
    }

    /// The operation whose time *rose* the most (the optimization's
    /// cost), as `(kind, seconds added)`.
    pub fn biggest_regression(&self) -> Option<(OpKind, f64)> {
        self.per_kind
            .iter()
            .map(|(&k, d)| (k, d.time_change_s()))
            .filter(|&(_, added)| added > 0.0)
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("no NaN"))
    }

    /// Net change in total I/O time (negative = improvement).
    pub fn net_change_s(&self) -> f64 {
        self.per_kind.values().map(OpDelta::time_change_s).sum()
    }

    /// Render as a delta table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Evolution {} -> {} (client-observed I/O time)",
            self.from_label, self.to_label
        );
        let _ = writeln!(
            out,
            "{:<10}{:>12}{:>12}{:>12}{:>10}{:>10}",
            "op", self.from_label, self.to_label, "change", "ops", "ops'"
        );
        let _ = writeln!(out, "{}", "-".repeat(66));
        for (kind, d) in &self.per_kind {
            let _ = writeln!(
                out,
                "{:<10}{:>11.2}s{:>11.2}s{:>+11.2}s{:>10}{:>10}",
                kind.label(),
                d.from_time.as_secs_f64(),
                d.to_time.as_secs_f64(),
                d.time_change_s(),
                d.from_count,
                d.to_count,
            );
        }
        let _ = writeln!(out, "net change: {:+.2}s", self.net_change_s());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sioscope_pfs::IoMode;
    use sioscope_sim::{FileId, Pid};
    use sioscope_trace::IoEvent;

    fn trace(entries: &[(OpKind, u64)]) -> TraceRecorder {
        let mut t = TraceRecorder::new();
        for &(kind, dur_ms) in entries {
            t.record(IoEvent {
                pid: Pid(0),
                file: FileId(0),
                kind,
                start: Time::ZERO,
                duration: Time::from_millis(dur_ms),
                bytes: 1,
                offset: 0,
                mode: IoMode::MUnix,
            });
        }
        t
    }

    #[test]
    fn deltas_reflect_changes() {
        let a = trace(&[(OpKind::Read, 1000), (OpKind::Open, 500)]);
        let b = trace(&[(OpKind::Read, 200), (OpKind::Write, 100)]);
        let ev = Evolution::between("A", &a, "B", &b);
        let read = ev.delta(OpKind::Read).expect("reads in both");
        assert!((read.time_change_s() + 0.8).abs() < 1e-9);
        assert!((read.speedup() - 5.0).abs() < 1e-9);
        // Open disappeared entirely; write appeared.
        assert_eq!(ev.delta(OpKind::Open).unwrap().to_count, 0);
        assert_eq!(ev.delta(OpKind::Write).unwrap().from_count, 0);
        assert!(ev.delta(OpKind::Seek).is_none());
    }

    #[test]
    fn wins_and_regressions() {
        let a = trace(&[(OpKind::Read, 1000), (OpKind::Write, 100)]);
        let b = trace(&[(OpKind::Read, 100), (OpKind::Write, 400)]);
        let ev = Evolution::between("A", &a, "B", &b);
        let (win_kind, saved) = ev.biggest_win().expect("read improved");
        assert_eq!(win_kind, OpKind::Read);
        assert!((saved - 0.9).abs() < 1e-9);
        let (reg_kind, added) = ev.biggest_regression().expect("write regressed");
        assert_eq!(reg_kind, OpKind::Write);
        assert!((added - 0.3).abs() < 1e-9);
        assert!((ev.net_change_s() + 0.6).abs() < 1e-9);
    }

    #[test]
    fn identical_traces_have_zero_net() {
        let a = trace(&[(OpKind::Read, 123)]);
        let ev = Evolution::between("A", &a, "A2", &a);
        assert!(ev.net_change_s().abs() < 1e-12);
        assert!(ev.biggest_win().is_none());
        assert!(ev.biggest_regression().is_none());
    }

    #[test]
    fn render_shows_rows() {
        let a = trace(&[(OpKind::Seek, 1000)]);
        let b = trace(&[(OpKind::Seek, 10)]);
        let text = Evolution::between("B", &a, "C", &b).render();
        assert!(text.contains("seek"));
        assert!(text.contains("net change"));
    }
}
